"""Event heap, events, and generator-based processes.

Usage sketch::

    sim = Simulator()

    def pinger(sim, link):
        yield sim.timeout(600e-9)
        link.fire("ping")

    sim.process(pinger(sim, link))
    sim.run()

A process is a generator that yields :class:`Event` objects; it is resumed
with the event's value once the event triggers (or the event's exception is
thrown into it).  A :class:`Process` is itself an event that succeeds with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.util.errors import SimulationError

#: Type of the generators that implement processes.
ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence with a value or an exception.

    Events start *pending*; exactly one of :meth:`succeed` or :meth:`fail`
    may be called, after which waiting callbacks run at the current
    simulation time (scheduled, not inline, to keep ordering deterministic).
    """

    __slots__ = ("sim", "callbacks", "_state", "_value")

    PENDING, SUCCEEDED, FAILED = 0, 1, 2

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._state = Event.PENDING
        self._value: Any = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def ok(self) -> bool:
        return self._state == Event.SUCCEEDED

    @property
    def value(self) -> Any:
        if self._state == Event.PENDING:
            raise SimulationError("event value read before trigger")
        if self._state == Event.FAILED:
            raise self._value
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._value if self._state == Event.FAILED else None

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        self._trigger(Event.SUCCEEDED, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(Event.FAILED, exc)
        return self

    def _trigger(self, state: int, value: Any) -> None:
        if self._state != Event.PENDING:
            raise SimulationError("event triggered twice")
        self._state = state
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:  # type: ignore[union-attr]
            self.sim.schedule(0.0, cb, self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` once the event triggers (immediately-scheduled
        if it already has)."""
        if self.callbacks is None:
            self.sim.schedule(0.0, cb, self)
        else:
            self.callbacks.append(cb)


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Models an asynchronous hardware interrupt (e.g. a supervisor packet
    arriving at a neighbour's CPU, paper section 2.2 item 2).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Runs a generator, resuming it each time its yielded event triggers."""

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time, after already-queued events.
        sim.schedule(0.0, self._resume, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    # -- internals ----------------------------------------------------------
    def _resume(self, trigger: Optional[Event]) -> None:
        if self.triggered:
            return
        if trigger is not None and not trigger.ok:
            self._advance(lambda: self.gen.throw(trigger.exception))
        else:
            value = None if trigger is None else trigger._value
            self._advance(lambda: self.gen.send(value))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        self._advance(lambda: self.gen.throw(exc))

    def _advance(self, step: Callable[[], Any]) -> None:
        try:
            target = step()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.gen.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_target)

    def _on_target(self, event: Event) -> None:
        # Stale callback after an interrupt redirected the process.
        if self._waiting_on is not event:
            return
        self._waiting_on = None
        self._resume(event)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds with the first triggering child (fails if that child failed)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event.exception)  # type: ignore[arg-type]


class AllOf(_Condition):
    """Succeeds with the list of child values once every child succeeded."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class _NullShardContext:
    """``Simulator.context()`` no-op (single-shard engines have one lane)."""

    __slots__ = ()

    def __enter__(self) -> "_NullShardContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


class Simulator:
    """Deterministic event loop over a (time, seq) heap.

    Tie order: simultaneous events execute in ``seq`` (schedule) order —
    ``seq`` is unique, so the heap never compares the callback objects.
    The sharded engine (:mod:`repro.sim.shard`) extends this to a
    ``(time, seq, shard)`` total order: per-lane heaps keep ``(time,
    seq)`` and cross-shard deliveries are pinned by the barrier's
    ``(time, src_shard, src_seq)`` flush order.
    """

    #: single-shard identity (the sharded subclass overrides these, so
    #: machine code can be written against one shard-addressing API)
    n_shards = 1
    current_shard = 0
    #: callbacks executed (instance attr from the first step; the
    #: sharded subclass overrides this with a sum over its lanes)
    events_processed = 0

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._now = 0.0
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def context(self, shard: int) -> _NullShardContext:
        """Shard-routing context; a no-op on the single-heap engine."""
        if shard != 0:
            raise SimulationError(
                f"single-shard simulator has no shard {shard}"
            )
        return _NullShardContext()

    # -- scheduling ---------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` seconds from now (FIFO within a tick)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))
        self._seq += 1

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- running ------------------------------------------------------------
    def step(self) -> None:
        """Execute the single next scheduled callback."""
        time, _seq, fn, args = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        fn(*args)

    def peek(self) -> float:
        """Time of the next scheduled callback (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(
        self,
        until: Optional[Event] = None,
        max_time: float = float("inf"),
        stop: Optional[Callable[[], bool]] = None,
    ) -> Any:
        """Run until ``until`` triggers, ``stop()`` holds, the heap
        drains, or ``max_time``.

        Returns ``until.value`` when an event is given.  ``stop`` is a
        zero-argument predicate evaluated after every step — the
        single-heap twin of the sharded engine's barrier stop condition,
        so machine code driving concurrent jobs (the job-service layer)
        can be written against one API.  Raises :class:`SimulationError`
        if the heap drains with ``until`` pending or ``stop`` unmet
        (deadlock), or the time horizon is exceeded.
        """
        if until is not None and until.triggered:
            return until.value
        if stop is not None and stop():
            return None
        while self._heap:
            if self._heap[0][0] > max_time:
                raise SimulationError(
                    f"simulation exceeded time horizon {max_time} s at t={self._now}"
                )
            self.step()
            if until is not None and until.triggered:
                return until.value
            if stop is not None and stop():
                return None
        if until is not None:
            raise SimulationError(
                f"deadlock: event heap drained at t={self._now} with target pending"
            )
        if stop is not None:
            raise SimulationError(
                f"deadlock: event heap drained at t={self._now} with stop "
                "condition unmet"
            )
        return None
