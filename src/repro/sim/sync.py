"""Conservative window synchronisation for the sharded event engine.

The sharded simulator (:mod:`repro.sim.shard`) advances every shard in
lockstep *windows* ``[T, T + W)`` where ``T`` is the globally earliest
pending event and ``W`` is the **conservative lookahead**: the minimum
simulated time any cross-shard influence needs to take effect.  For the
QCDOC mesh that bound is physical — the shortest thing that can cross a
shard boundary is a bare-header HSSL frame, whose serialisation plus
time of flight is

    W = frame_header_bits / clock_hz + wire_latency

(:meth:`repro.machine.asic.ASICConfig.shard_lookahead`; 26 ns at the
500 MHz design point).  Every frame transmitted during a window is
therefore delivered at ``>= T + W``, i.e. strictly after the window — so
shards can process their local events for the window independently and
exchange the buffered cross-shard traffic at the barrier without ever
violating causality.  Global-sum completions are safe for the same
reason with margin: one reduction takes at least a full 72-bit word
serialisation (144 ns), which exceeds ``W``.

This module is the machinery *below* the machine layer (it must not
import :mod:`repro.machine` — see the REPRO403 layering DAG): typed
cross-shard posts, the per-window outbox/notification buffers, and the
:class:`CrossShardRouter` that gives every post a deterministic
``(time, src_shard, src_seq)`` total order at the barrier.  Frame and
global-sum endpoints register themselves by key; the router only ever
calls the duck-typed ``_deliver`` / coordinator hooks it is handed.

Everything that crosses a shard boundary is *data* (frames, arrays,
plain dicts) — never a closure — so the serial in-process executor and
the forked process-per-shard executor run the identical protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.util.errors import SimulationError

#: ``src_shard`` value for posts injected by the barrier coordinator
#: (global-sum completions): sorts *before* every worker shard at equal
#: time, which pins the cross-shard tie order.
COORDINATOR = -1


def conservative_lookahead(asic: Any) -> float:
    """The window width ``W``: minimum cross-shard influence latency.

    Duck-typed on the ASIC config (layering: :mod:`repro.sim` cannot
    import :mod:`repro.machine`); the closed form itself lives with the
    other link closed forms as
    :meth:`repro.machine.asic.ASICConfig.shard_lookahead`.
    """
    lookahead = getattr(asic, "shard_lookahead", None)
    if lookahead is not None:
        return float(lookahead)
    return float(asic.frame_header_bits) / float(asic.clock_hz) + float(
        asic.wire_latency
    )


class ShardPost(NamedTuple):
    """One cross-shard influence, exchanged at a window barrier.

    ``kind`` selects the decoder (``"frame"`` — an HSSL frame for the
    link registered under ``key``; ``"gsum"`` — a global-sum completion
    for the engine/generation/rank in ``key``).  ``(time, src_shard,
    src_seq)`` is the deterministic delivery order for ties.
    """

    time: float
    target_shard: int
    kind: str
    key: Any
    payload: Any
    src_shard: int
    src_seq: int

    @property
    def order(self) -> Tuple[float, int, int]:
        return (self.time, self.src_shard, self.src_seq)


class Notification(NamedTuple):
    """A coordinator-bound control message (no simulated-time payload).

    Used for rank completion/fault reports, LINK_DOWN escalation and
    global-sum contributions; processed at the barrier in deterministic
    ``(src_shard, seq)`` order.
    """

    kind: str
    src_shard: int
    seq: int
    data: Dict[str, Any]

    @property
    def order(self) -> Tuple[int, int]:
        return (self.src_shard, self.seq)


class CrossShardRouter:
    """Batched cross-shard message buffers plus the endpoint registries.

    One router is shared by all shards of a :class:`ShardedSimulator`.
    During a window, lane code appends to the outbox/notification
    buffers; at the barrier the simulator drains them, dispatches the
    notifications to coordinator handlers (which may post completions
    back), and delivers every post into its target lane in ``(time,
    src_shard, src_seq)`` order.

    Under the fork executor the *same object* exists in every worker
    (copy-on-write after ``os.fork``): workers drain their local outbox
    into the pipe, the parent dispatches notifications, and posts travel
    back as data — the registries (``links``, ``engines``) were
    populated before the fork, so both sides decode identically.
    """

    def __init__(self, n_shards: int, current_shard: Callable[[], int]) -> None:
        self.n_shards = int(n_shards)
        self._current_shard = current_shard
        #: link-key -> SerialLink (duck-typed: needs ``_deliver(frame)``)
        self.links: Dict[Any, Any] = {}
        #: engine-id -> sharded global-ops engine (duck-typed: needs
        #: ``_finish_rank(key, value, emit)`` + ``_coordinator_note``)
        self.engines: Dict[int, Any] = {}
        #: (engine_id, generation, rank) -> waiter Event, registered on
        #: the contributing shard (worker-local under fork)
        self.gsum_waiters: Dict[Tuple[int, int, int], Any] = {}
        #: notification kind -> coordinator handler
        self.note_handlers: Dict[str, Callable[[Notification], None]] = {}
        self._outbox: List[ShardPost] = []
        self._notes: List[Notification] = []
        self._post_seq = 0
        self._note_seq = 0
        self._coordinator_box: List[ShardPost] = []
        self._coordinator_seq = 0

    # -- registries (populated at machine construction, pre-fork) ---------
    def register_link(self, key: Any, link: Any) -> None:
        self.links[key] = link

    def register_engine(self, engine: Any) -> int:
        engine_id = len(self.engines)
        self.engines[engine_id] = engine
        return engine_id

    # -- posting (lane side) ----------------------------------------------
    def post(self, kind: str, target_shard: int, time: float, key: Any,
             payload: Any) -> None:
        self._outbox.append(
            ShardPost(
                time,
                int(target_shard),
                kind,
                key,
                payload,
                self._current_shard(),
                self._post_seq,
            )
        )
        self._post_seq += 1

    def post_frame(self, target_shard: int, time: float, key: Any,
                   frame: Any) -> None:
        self.post("frame", target_shard, time, key, frame)

    def notify(self, kind: str, **data: Any) -> None:
        self._notes.append(
            Notification(kind, self._current_shard(), self._note_seq, data)
        )
        self._note_seq += 1

    # -- coordinator side --------------------------------------------------
    def coordinator_post(self, kind: str, target_shard: int, time: float,
                         key: Any, payload: Any) -> None:
        """Post from the barrier coordinator (e.g. a gsum completion)."""
        self._coordinator_box.append(
            ShardPost(
                time,
                int(target_shard),
                kind,
                key,
                payload,
                COORDINATOR,
                self._coordinator_seq,
            )
        )
        self._coordinator_seq += 1

    def drain(self) -> Tuple[List[ShardPost], List[Notification]]:
        """Take the window's posts and notifications, in canonical order."""
        posts = sorted(self._outbox, key=lambda p: p.order)
        notes = sorted(self._notes, key=lambda n: n.order)
        self._outbox = []
        self._notes = []
        return posts, notes

    def drain_coordinator(self) -> List[ShardPost]:
        posts = sorted(self._coordinator_box, key=lambda p: p.order)
        self._coordinator_box = []
        return posts

    def dispatch_notes(self, notes: List[Notification]) -> None:
        """Run the coordinator handlers over a barrier's notifications.

        ``notes`` must already be in canonical ``(src_shard, seq)`` order
        (:meth:`drain` returns them so).  Unhandled kinds are an error:
        a silently dropped control message is exactly the kind of
        nondeterminism this layer exists to forbid.
        """
        for note in notes:
            handler = self.note_handlers.get(note.kind)
            if handler is None:
                raise SimulationError(
                    f"no coordinator handler for cross-shard notification "
                    f"{note.kind!r}"
                )
            handler(note)

    # -- delivery (target-lane side) --------------------------------------
    def deliver(self, post: ShardPost, lane: Any) -> None:
        """Decode one post into a heap entry on its target lane."""
        if post.kind == "frame":
            link = self.links.get(post.key)
            if link is None:
                raise SimulationError(
                    f"cross-shard frame for unregistered link {post.key!r}"
                )
            lane.push_abs(post.time, link._deliver, (post.payload,))
        elif post.kind == "gsum":
            engine = self.engines.get(post.key[0])
            if engine is None:
                raise SimulationError(
                    f"cross-shard gsum for unregistered engine {post.key[0]!r}"
                )
            value, emit = post.payload
            lane.push_abs(post.time, engine._finish_rank, (post.key, value, emit))
        else:
            raise SimulationError(f"unknown cross-shard post kind {post.kind!r}")
