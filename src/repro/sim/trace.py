"""Event tracing for protocol tests and debugging.

Machine components emit ``trace.emit(tag, **fields)``; tests assert on the
recorded sequence (e.g. "a parity error is followed by exactly one resend of
the same word").  Tracing is off unless a Trace is attached, so the hot path
costs one attribute check.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    tag: str
    fields: Dict[str, Any]


class Trace:
    """An append-only record of tagged simulation occurrences."""

    def __init__(self, sim=None):
        self.sim = sim
        self.records: List[TraceRecord] = []

    def emit(self, tag: str, **fields: Any) -> None:
        t = self.sim.now if self.sim is not None else 0.0
        self.records.append(TraceRecord(t, tag, fields))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def tagged(self, tag: str) -> List[TraceRecord]:
        """All records with the given tag, in time order."""
        return [r for r in self.records if r.tag == tag]

    def count(self, tag: str) -> int:
        return sum(1 for r in self.records if r.tag == tag)

    def last(self, tag: str) -> Optional[TraceRecord]:
        for r in reversed(self.records):
            if r.tag == tag:
                return r
        return None

    def clear(self) -> None:
        self.records.clear()
