"""Event tracing for protocol tests, telemetry, and debugging.

Machine components emit ``trace.emit(tag, **fields)``; tests assert on the
recorded sequence (e.g. "a parity error is followed by exactly one resend of
the same word").  Tracing is off unless a Trace is attached, so the hot path
costs one attribute check.

Structured-trace contract (PR 3)
--------------------------------
* **Tags are namespaced** ``"unit.event"`` (``scu.resend``, ``link.fault``,
  ``cpu.compute`` ...).  Every tag emitted anywhere in :mod:`repro` is
  enumerated — with its exact field names — in
  :data:`repro.telemetry.schema.TRACE_SCHEMA`; a regression test fails on
  unregistered tags or field-name drift.
* **Records carry a monotone per-trace sequence number** in addition to the
  simulation time.  A Trace attached to no simulator records ``time=0.0``
  for everything, which used to break ordering assertions; ``seq`` is the
  durable order and is what :meth:`tagged` / :meth:`last` sort by.
* **Ring-buffer mode** (``maxlen=``) bounds memory on long runs: the deque
  drops the oldest records and :attr:`dropped` counts how many were lost.
* **Spans**: a record whose fields include ``dur`` (seconds) describes a
  completed interval ending at ``record.time``; the Chrome-tracing exporter
  (:mod:`repro.telemetry.chrometrace`) renders those as complete events so
  a dslash iteration shows up as a per-node compute/comms timeline.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    tag: str
    fields: Dict[str, Any]
    #: monotone per-trace emission index (total order even at equal time,
    #: or when the trace is detached from a simulator and time is 0.0)
    seq: int = -1


class TraceNamespace:
    """A bound emitter that prefixes every tag with ``prefix + '.'``."""

    __slots__ = ("trace", "prefix")

    def __init__(self, trace: "Trace", prefix: str) -> None:
        self.trace = trace
        self.prefix = prefix

    def emit(self, tag: str, **fields: Any) -> None:
        self.trace.emit(f"{self.prefix}.{tag}", **fields)

    def namespace(self, sub: str) -> "TraceNamespace":
        return TraceNamespace(self.trace, f"{self.prefix}.{sub}")

    def __repr__(self) -> str:
        return f"TraceNamespace({self.prefix!r})"


class Trace:
    """An append-only (optionally ring-buffered) record of tagged
    simulation occurrences.

    Parameters
    ----------
    sim:
        The simulator whose clock stamps records; ``None`` (detached mode,
        used by unit tests) stamps ``time=0.0`` — ordering then relies on
        the per-record ``seq``.
    maxlen:
        When given, keep only the newest ``maxlen`` records (bounded
        ring-buffer mode for long runs); :attr:`dropped` counts evictions.
    """

    def __init__(self, sim: Optional[Any] = None, maxlen: Optional[int] = None) -> None:
        self.sim = sim
        self.maxlen = maxlen
        self.records = deque(maxlen=maxlen) if maxlen is not None else []
        #: total records ever emitted (>= len(records) in ring-buffer mode)
        self.emitted = 0

    def emit(self, tag: str, **fields: Any) -> None:
        t = self.sim.now if self.sim is not None else 0.0
        self.records.append(TraceRecord(t, tag, fields, self.emitted))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer (0 in unbounded mode)."""
        return self.emitted - len(self.records)

    def namespace(self, prefix: str) -> TraceNamespace:
        """A bound emitter whose tags are all ``prefix + '.' + tag``."""
        return TraceNamespace(self, prefix)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def tags(self) -> set:
        """The set of distinct tags recorded."""
        return {r.tag for r in self.records}

    def tagged(self, tag: str) -> List[TraceRecord]:
        """All records with the given tag, in emission (``seq``) order.

        ``seq`` — not ``time`` — is the ordering key: a detached trace
        stamps every record ``time=0.0``, and simultaneous events tie.
        """
        return sorted(
            (r for r in self.records if r.tag == tag), key=lambda r: r.seq
        )

    def prefixed(self, prefix: str) -> List[TraceRecord]:
        """All records in the ``prefix`` namespace, in ``seq`` order."""
        dotted = prefix + "."
        return sorted(
            (r for r in self.records if r.tag.startswith(dotted) or r.tag == prefix),
            key=lambda r: r.seq,
        )

    def count(self, tag: str) -> int:
        return sum(1 for r in self.records if r.tag == tag)

    def last(self, tag: str) -> Optional[TraceRecord]:
        """The highest-``seq`` record with the given tag."""
        best: Optional[TraceRecord] = None
        for r in self.records:
            if r.tag == tag and (best is None or r.seq > best.seq):
                best = r
        return best

    def clear(self) -> None:
        self.records.clear()
