"""A small discrete-event simulation kernel.

The QCDOC machine model (:mod:`repro.machine`) is a timed, functional
simulation: SCU DMA engines, serial links, Ethernet hubs and node programs
are all *processes* — Python generators that yield events to this kernel.
The kernel is deliberately SimPy-shaped (events, generator processes,
timeouts, shared stores) but written from scratch so the whole stack is
self-contained and deterministic.

Determinism contract: given the same initial processes and the same RNG
streams, event ordering is a pure function of (time, schedule order); ties
are broken by a monotone sequence number, never by hash order or id().
"""

from repro.sim.core import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from repro.sim.channel import Channel, Resource
from repro.sim.shard import ShardedSimulator, ShardLane
from repro.sim.sync import (
    CrossShardRouter,
    Notification,
    ShardPost,
    conservative_lookahead,
)
from repro.sim.trace import Trace

__all__ = [
    "Simulator",
    "ShardedSimulator",
    "ShardLane",
    "CrossShardRouter",
    "ShardPost",
    "Notification",
    "conservative_lookahead",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Channel",
    "Resource",
    "Trace",
]
