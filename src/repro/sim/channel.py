"""Shared-state primitives on top of the event kernel.

:class:`Channel` — a FIFO message queue with optional capacity and per-item
latency; used for the Ethernet tree and for test scaffolding.  The SCU mesh
links do *not* use Channel: their flow control ("three in the air",
idle-receive) is modelled explicitly in :mod:`repro.machine.scu`.

:class:`Resource` — an N-slot mutex with a FIFO wait queue; used for PLB bus
and memory-port arbitration inside the ASIC model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Event, Simulator
from repro.util.errors import SimulationError


class Channel:
    """FIFO of items between producer and consumer processes.

    ``latency`` delays each item's availability after ``put``; ``capacity``
    (if given) blocks producers while the in-flight item count is at the
    limit, releasing them in FIFO order as consumers drain items.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        latency: float = 0.0,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("channel capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.latency = latency
        #: home shard lane (sharded engine): arrival events are pinned to
        #: the lane the channel was built in, so a producer on another
        #: lane cannot drag the consumer's wake-ups across shards.  On the
        #: single-heap engine this is always 0 and ``context`` is a no-op.
        self.home = sim.current_shard
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (done-event, item)
        self._in_flight = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Offer an item; the returned event succeeds once it is accepted."""
        done = self.sim.event()
        if self.capacity is not None and self._in_flight >= self.capacity:
            self._putters.append((done, item))
        else:
            self._accept(item)
            done.succeed()
        return done

    def get(self) -> Event:
        """Request the next item; the returned event succeeds with it."""
        ev = self.sim.event()
        if self._items:
            self._release(ev)
        else:
            self._getters.append(ev)
        return ev

    # -- internals ----------------------------------------------------------
    def _accept(self, item: Any) -> None:
        self._in_flight += 1
        with self.sim.context(self.home):
            self.sim.schedule(self.latency, self._arrive, item)

    def _arrive(self, item: Any) -> None:
        self._items.append(item)
        if self._getters:
            self._release(self._getters.popleft())

    def _release(self, getter: Event) -> None:
        item = self._items.popleft()
        self._in_flight -= 1
        getter.succeed(item)
        if self._putters and (
            self.capacity is None or self._in_flight < self.capacity
        ):
            putter, pending = self._putters.popleft()
            self._accept(pending)
            putter.succeed()


class Resource:
    """N interchangeable slots with a FIFO wait queue.

    >>> req = bus.acquire()     # yield req in a process
    >>> ...                     # critical section
    >>> bus.release()
    """

    def __init__(self, sim: Simulator, slots: int = 1) -> None:
        if slots < 1:
            raise SimulationError("resource needs >= 1 slot")
        self.sim = sim
        self.slots = slots
        self._busy = 0
        self._waiters: Deque[Event] = deque()

    @property
    def busy(self) -> int:
        return self._busy

    def acquire(self) -> Event:
        ev = self.sim.event()
        if self._busy < self.slots:
            self._busy += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._busy == 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._busy -= 1
