"""The sharded discrete-event engine.

:class:`ShardedSimulator` partitions one simulation into ``n_shards``
*lanes*, each with its own ``(time, seq)`` event heap, and advances them
in conservative lockstep windows (see :mod:`repro.sim.sync` for the
lookahead argument).  It is API-compatible with
:class:`repro.sim.core.Simulator` — events, timeouts, processes and
conditions work unchanged — plus:

* :meth:`context` — route subsequent ``schedule()`` calls to a given
  shard (the machine layer wraps per-node setup in the node's shard);
* ``run(stop=...)`` — a barrier-granularity stop predicate evaluated by
  the window coordinator (how a sharded ``run_partition`` terminates
  without a cross-shard ``AllOf``);
* :meth:`run_forked` — execute the same window protocol with one forked
  OS process per shard, exchanging posts/notifications over pipes and
  merging per-shard machine state back from snapshots at the end.

Determinism contract
--------------------
Within a lane, events execute in ``(time, seq)`` order exactly like the
single-heap engine.  Across lanes, the window protocol preserves *time*
order for anything further apart than the lookahead; simultaneous
events on different shards are delivered in the pinned ``(time,
src_shard, src_seq)`` barrier order (coordinator posts first, see
:data:`repro.sim.sync.COORDINATOR`), so a given configuration replays
bit-identically run over run.  Observable equivalence with ``shards=1``
(counters, residuals, trace multisets) is the property the
``tests/test_sim_sharding.py`` suite locks down.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.sim.core import Event, Simulator
from repro.sim.sync import CrossShardRouter, ShardPost, conservative_lookahead
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

#: seconds the fork coordinator waits on a worker pipe before declaring
#: the worker hung (a backstop against protocol bugs, not a tuning knob)
_WORKER_TIMEOUT = 120.0


class ShardLane:
    """One shard's event heap: a ``(time, seq, fn, args)`` min-heap.

    Times are absolute.  ``seq`` is per-lane and, together with the
    lane index carried by cross-shard posts, realises the global
    ``(time, seq, shard)`` total order for ties.
    """

    __slots__ = ("index", "heap", "now", "seq", "events_processed")

    def __init__(self, index: int) -> None:
        self.index = index
        self.heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self.now = 0.0
        self.seq = 0
        self.events_processed = 0

    def push_abs(self, time: float, fn: Callable[..., None], args: tuple) -> None:
        heappush(self.heap, (time, self.seq, fn, args))
        self.seq += 1

    def peek(self) -> float:
        return self.heap[0][0] if self.heap else float("inf")

    def clear(self) -> None:
        self.heap = []

    def __repr__(self) -> str:
        return f"ShardLane({self.index}, pending={len(self.heap)})"


class _ShardContext:
    """Context manager pushing a target shard for ``schedule()`` routing."""

    __slots__ = ("sim", "shard")

    def __init__(self, sim: "ShardedSimulator", shard: int) -> None:
        self.sim = sim
        self.shard = shard

    def __enter__(self) -> "_ShardContext":
        self.sim._ctx_stack.append(self.shard)
        return self

    def __exit__(self, *exc: Any) -> None:
        self.sim._ctx_stack.pop()


class ShardedSimulator(Simulator):
    """A :class:`Simulator` whose heap is partitioned into window-synced
    shard lanes."""

    def __init__(self, n_shards: int, lookahead: float) -> None:
        super().__init__()
        if n_shards < 1:
            raise SimulationError(f"need >= 1 shard, got {n_shards}")
        if lookahead <= 0.0:
            raise SimulationError(f"lookahead must be positive, got {lookahead}")
        self.lookahead = float(lookahead)
        self._lanes = [ShardLane(i) for i in range(int(n_shards))]
        self.router = CrossShardRouter(int(n_shards), self._current_shard)
        self._ctx_stack: List[int] = []
        self._exec_lane: Optional[ShardLane] = None
        #: the executing event's timestamp — the causal "now" regardless
        #: of which lane a context manager is currently targeting
        self._event_time: Optional[float] = None
        #: committed time between runs (max lane time reached so far)
        self._committed = 0.0
        #: hooks the machine layer installs for :meth:`run_forked`
        #: ("snapshot", "apply", "ctrl")
        self.fork_hooks: Dict[str, Any] = {}

    # -- identity ---------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._lanes)

    @property
    def lanes(self) -> List[ShardLane]:
        return self._lanes

    @property
    def events_processed(self) -> int:
        return sum(lane.events_processed for lane in self._lanes)

    def _current_shard(self) -> int:
        if self._ctx_stack:
            return self._ctx_stack[-1]
        if self._exec_lane is not None:
            return self._exec_lane.index
        return 0

    @property
    def current_shard(self) -> int:
        return self._current_shard()

    def context(self, shard: int) -> _ShardContext:
        """Route ``schedule()`` calls in the ``with`` body to ``shard``."""
        if not 0 <= shard < len(self._lanes):
            raise SimulationError(
                f"shard {shard} out of range ({len(self._lanes)} shards)"
            )
        return _ShardContext(self, shard)

    # -- time & scheduling -------------------------------------------------
    @property
    def now(self) -> float:
        """The executing event's time, or the committed barrier time."""
        if self._event_time is not None:
            return self._event_time
        return self._committed

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` seconds from now, on the current
        shard (context stack > executing lane > shard 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._lanes[self._current_shard()].push_abs(self.now + delay, fn, args)

    # -- stepping ----------------------------------------------------------
    def peek(self) -> float:
        return min(lane.peek() for lane in self._lanes)

    def step(self) -> None:
        """Execute the single globally-earliest event (lowest lane wins
        ties — mainly an API-compat affordance for unit tests)."""
        lane = min(self._lanes, key=lambda l: (l.peek(), l.index))
        time, _seq, fn, args = heappop(lane.heap)
        lane.now = time
        lane.events_processed += 1
        self._exec_lane = lane
        self._event_time = time
        try:
            fn(*args)
        finally:
            self._exec_lane = None
            self._event_time = None
        self._committed = max(self._committed, time)

    def _run_lane(self, lane: ShardLane, horizon: float) -> None:
        """Drain one lane's events strictly below ``horizon`` (hot loop)."""
        heap = lane.heap
        self._exec_lane = lane
        processed = 0
        try:
            while heap and heap[0][0] < horizon:
                time, _seq, fn, args = heappop(heap)
                lane.now = time
                self._event_time = time
                processed += 1
                fn(*args)
        finally:
            lane.events_processed += processed
            self._exec_lane = None
            self._event_time = None

    # -- the serial window loop -------------------------------------------
    def run(
        self,
        until: Optional[Event] = None,
        max_time: float = float("inf"),
        stop: Optional[Callable[[], bool]] = None,
    ) -> Any:
        """Run conservative windows until ``until`` triggers, ``stop()``
        holds at a barrier, every lane drains, or ``max_time``.

        ``until``/``stop`` are only evaluated at window barriers: the
        sharded engine commits to whole windows, so it may process a few
        events *past* the exact trigger instant that the single-heap
        engine would not have — compare observables after a full drain
        (:meth:`repro.machine.machine.QCDOCMachine.quiesce`) when
        bit-identity matters.
        """
        if until is not None and until.triggered:
            return until.value
        while True:
            if stop is not None and stop():
                self._commit()
                return None
            start = self.peek()
            if start == float("inf"):
                # Lanes drained mid-window with traffic possibly still
                # buffered in the router (e.g. a notification recorded by
                # the last event): flush it before judging deadlock — it
                # may wake a lane or satisfy the stop predicate.
                self._barrier()
                start = self.peek()
                if stop is not None and stop():
                    self._commit()
                    return None
            if start == float("inf"):
                self._commit()
                if until is not None and until.triggered:
                    return until.value
                if until is not None:
                    raise SimulationError(
                        f"deadlock: event heap drained at t={self._committed} "
                        "with target pending"
                    )
                if stop is not None:
                    raise SimulationError(
                        f"deadlock: event heap drained at t={self._committed} "
                        "with stop condition unmet"
                    )
                return None
            if start > max_time:
                raise SimulationError(
                    f"simulation exceeded time horizon {max_time} s "
                    f"at t={self._committed}"
                )
            horizon = start + self.lookahead
            for lane in self._lanes:
                self._run_lane(lane, horizon)
            self._barrier()
            if until is not None and until.triggered:
                self._commit()
                return until.value

    def _barrier(self) -> None:
        """Exchange the window's cross-shard traffic (serial executor)."""
        posts, notes = self.router.drain()
        self.router.dispatch_notes(notes)
        posts.extend(self.router.drain_coordinator())
        for post in sorted(posts, key=lambda p: p.order):
            self.router.deliver(post, self._lanes[post.target_shard])

    def _commit(self) -> None:
        self._committed = max(
            [self._committed] + [lane.now for lane in self._lanes]
        )

    # -- the forked window loop -------------------------------------------
    def run_forked(
        self,
        stop: Callable[[], bool],
        max_time: float = float("inf"),
        ctrl_for_stop: Optional[Callable[[], List[str]]] = None,
    ) -> None:
        """Run the window protocol with one forked worker per shard.

        Workers inherit the fully-built simulation by copy-on-write and
        each executes only its own lane; the parent is the barrier
        coordinator (it routes posts, dispatches notifications, and owns
        the stop predicate).  Once ``stop()`` holds the coordinator
        issues the ``ctrl_for_stop()`` control hooks (e.g. ``"abort"``)
        and keeps running windows until every lane drains, then gathers
        per-shard state snapshots and applies them to the parent via the
        machine-installed :attr:`fork_hooks` — the parent's lanes are
        discarded (the run is fully quiesced by construction).

        Requires ``os.fork`` (POSIX); the machine layer falls back to
        the serial executor elsewhere.
        """
        import multiprocessing as mp

        hooks = self.fork_hooks
        if not hooks.get("snapshot") or not hooks.get("apply"):
            raise SimulationError(
                "run_forked needs machine snapshot/apply fork_hooks"
            )
        lanes = self._lanes
        n = len(lanes)
        conns = []
        pids = []
        for k in range(n):
            parent_conn, child_conn = mp.Pipe()
            pid = os.fork()
            if pid == 0:
                # -- worker process: runs lane k only, then exits --------
                try:
                    parent_conn.close()
                    self._fork_worker(k, child_conn)
                except BaseException:
                    import traceback

                    try:
                        child_conn.send(("err", traceback.format_exc()))
                    except OSError:
                        pass  # parent gone; its pipe timeout reports us
                finally:
                    os._exit(0)
            child_conn.close()
            conns.append(parent_conn)
            pids.append(pid)
        try:
            self._fork_coordinate(conns, stop, max_time, ctrl_for_stop)
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass  # already closed by a worker error path
            for pid in pids:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass

    def _fork_recv(self, conn: "Connection") -> tuple:
        if not conn.poll(_WORKER_TIMEOUT):
            raise SimulationError("fork worker stalled (pipe timeout)")
        msg = conn.recv()
        if msg[0] == "err":
            raise SimulationError(f"fork worker died:\n{msg[1]}")
        return msg

    def _fork_coordinate(
        self,
        conns: List["Connection"],
        stop: Callable[[], bool],
        max_time: float,
        ctrl_for_stop: Optional[Callable[[], List[str]]],
    ) -> None:
        n = len(conns)
        peeks = [lane.peek() for lane in self._lanes]
        pending: List[List[ShardPost]] = [[] for _ in range(n)]
        pending_ctrls: List[str] = []
        draining = False
        while True:
            if not draining and stop():
                draining = True
                if ctrl_for_stop is not None:
                    pending_ctrls = list(ctrl_for_stop())
            effective = [
                min(
                    peeks[k],
                    min((p.time for p in pending[k]), default=float("inf")),
                )
                for k in range(n)
            ]
            start = min(effective)
            if start == float("inf"):
                if draining:
                    break
                raise SimulationError(
                    "deadlock: event heap drained with stop condition unmet"
                )
            if start > max_time:
                raise SimulationError(
                    f"simulation exceeded time horizon {max_time} s "
                    f"at t={self._committed}"
                )
            horizon = start + self.lookahead
            for k in range(n):
                conns[k].send(("win", horizon, pending[k], pending_ctrls))
                pending[k] = []
            pending_ctrls = []
            posts: List[ShardPost] = []
            notes = []
            for k in range(n):
                _tag, peek_k, posts_k, notes_k = self._fork_recv(conns[k])
                peeks[k] = peek_k
                posts.extend(posts_k)
                notes.extend(notes_k)
            self.router.dispatch_notes(sorted(notes, key=lambda m: m.order))
            posts.extend(self.router.drain_coordinator())
            for post in sorted(posts, key=lambda p: p.order):
                pending[post.target_shard].append(post)
        # -- gather: per-shard snapshots back into the parent ------------
        snaps = []
        for k in range(n):
            conns[k].send(("snap",))
            _tag, snap, lane_now, lane_events = self._fork_recv(conns[k])
            snaps.append((k, snap, lane_now))
            # the parent's COW lane counter stopped at the fork point;
            # adopt the worker's (it includes the pre-fork events)
            self._lanes[k].events_processed = lane_events
        for k in range(n):
            conns[k].send(("exit",))
        self.fork_hooks["apply"](snaps)
        for lane in self._lanes:
            lane.clear()
        self._committed = max(
            [self._committed] + [lane_now for _k, _s, lane_now in snaps]
        )

    def _fork_worker(self, k: int, conn: "Connection") -> None:
        lane = self._lanes[k]
        ctrl_hooks = self.fork_hooks.get("ctrl", {})
        while True:
            msg = conn.recv()
            if msg[0] == "win":
                _tag, horizon, posts, ctrls = msg
                for name in ctrls:
                    with self.context(k):
                        ctrl_hooks[name](k)
                for post in posts:
                    self.router.deliver(post, lane)
                self._run_lane(lane, horizon)
                posts_out, notes_out = self.router.drain()
                conn.send(("done", lane.peek(), posts_out, notes_out))
            elif msg[0] == "snap":
                conn.send(
                    (
                        "snap",
                        self.fork_hooks["snapshot"](k),
                        lane.now,
                        lane.events_processed,
                    )
                )
            elif msg[0] == "exit":
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown fork command {msg[0]!r}")
