"""Gauge fields: storage, starts, transport, plaquettes, staples.

A :class:`GaugeField` holds one SU(3) matrix per (direction, site):
``U[mu][x]`` transports colour from ``x`` to ``x + mu``.  All operations are
batched over sites.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lattice.geometry import LatticeGeometry
from repro.lattice.su3 import dagger, is_su3, project_su3, random_algebra, random_su3, expm_su3
from repro.util.errors import ConfigError


def cmatvec(
    u: np.ndarray, psi: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Apply per-site colour matrices to a field with colour as last axis.

    ``u`` is ``(V, 3, 3)``; ``psi`` is ``(V, ..., 3)`` (any spin axes in
    between).  Returns ``(V, ..., 3)``.  ``out`` reuses a caller-owned
    buffer (allocation-free hot loops); the contraction string is the
    single one used by every kernel in the package, so serial and
    distributed applications are arithmetically identical.
    """
    if out is None:
        return np.einsum("xab,x...b->x...a", u, psi)
    return np.einsum("xab,x...b->x...a", u, psi, out=out)


class GaugeField:
    """SU(3) link variables on a :class:`LatticeGeometry`.

    Parameters
    ----------
    geometry:
        The (4-dimensional for QCD) lattice.
    links:
        Optional ``(ndim, V, 3, 3)`` complex array; defaults to the unit
        (free-field) configuration.
    """

    def __init__(self, geometry: LatticeGeometry, links: Optional[np.ndarray] = None):
        self.geometry = geometry
        expected = (geometry.ndim, geometry.volume, 3, 3)
        if links is None:
            links = np.broadcast_to(
                np.eye(3, dtype=np.complex128), expected
            ).copy()
        links = np.asarray(links, dtype=np.complex128)
        if links.shape != expected:
            raise ConfigError(
                f"links shape {links.shape} does not match geometry {expected}"
            )
        self.links = links

    # -- constructors ---------------------------------------------------------
    @classmethod
    def unit(cls, geometry: LatticeGeometry) -> "GaugeField":
        """Free field: every link is the identity."""
        return cls(geometry)

    @classmethod
    def hot(cls, geometry: LatticeGeometry, rng: np.random.Generator) -> "GaugeField":
        """Disordered start: every link independently Haar-random."""
        n = geometry.ndim * geometry.volume
        u = random_su3(rng, n).reshape(geometry.ndim, geometry.volume, 3, 3)
        return cls(geometry, u)

    @classmethod
    def weak(
        cls,
        geometry: LatticeGeometry,
        rng: np.random.Generator,
        eps: float = 0.1,
    ) -> "GaugeField":
        """Links near the identity: ``U = exp(eps * random algebra)``.

        Useful for perturbative checks (observables must approach their
        free-field values as ``eps -> 0``).
        """
        n = geometry.ndim * geometry.volume
        a = random_algebra(rng, n, scale=eps)
        u = expm_su3(a).reshape(geometry.ndim, geometry.volume, 3, 3)
        return cls(geometry, u)

    def copy(self) -> "GaugeField":
        return GaugeField(self.geometry, self.links.copy())

    # -- basic properties -------------------------------------------------------
    def __getitem__(self, mu: int) -> np.ndarray:
        """The ``(V, 3, 3)`` link matrices in direction ``mu``."""
        return self.links[mu]

    @property
    def nbytes(self) -> int:
        return self.links.nbytes

    def is_unitary(self, tol: float = 1e-10) -> bool:
        return is_su3(self.links, tol)

    def reunitarise(self) -> None:
        """Project every link back onto SU(3) (drift control)."""
        self.links = project_su3(self.links)

    # -- transport ---------------------------------------------------------
    def transport_fwd(self, mu: int, field: np.ndarray) -> np.ndarray:
        """``U_mu(x) field(x + mu)`` — pull the forward neighbour back to x."""
        fwd = self.geometry.neighbour_fwd(mu)
        return cmatvec(self.links[mu], field[fwd])

    def transport_bwd(self, mu: int, field: np.ndarray) -> np.ndarray:
        """``U_mu(x - mu)^dagger field(x - mu)``."""
        bwd = self.geometry.neighbour_bwd(mu)
        return cmatvec(dagger(self.links[mu][bwd]), field[bwd])

    # -- observables ---------------------------------------------------------
    def plaquette_field(self, mu: int, nu: int) -> np.ndarray:
        """``(V, 3, 3)`` plaquette matrices ``P_{mu nu}(x)``.

        ``P = U_mu(x) U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+``.
        """
        g = self.geometry
        fmu, fnu = g.neighbour_fwd(mu), g.neighbour_fwd(nu)
        u = self.links
        return (
            u[mu]
            @ u[nu][fmu]
            @ dagger(u[mu][fnu])
            @ dagger(u[nu])
        )

    def plaquette(self) -> float:
        """Average ``Re tr P / 3`` over all sites and ``mu < nu`` planes.

        Equals 1 on the unit configuration; ~0 deep in the disordered phase.
        This is the standard first observable of any lattice code and the
        cheapest cross-check between serial and machine-distributed runs.
        """
        g = self.geometry
        total = 0.0
        nplanes = 0
        for mu in range(g.ndim):
            for nu in range(mu + 1, g.ndim):
                p = self.plaquette_field(mu, nu)
                total += float(np.einsum("xaa->", p).real)
                nplanes += 1
        return total / (3.0 * g.volume * nplanes)

    def staple(self, mu: int) -> np.ndarray:
        """``(V, 3, 3)`` sum of the 2(d-1) staples around link ``(x, mu)``.

        The Wilson gauge action and its HMC force are
        ``S = -(beta/3) sum Re tr[U_mu(x) V_mu(x)^+]`` with ``V`` this staple
        sum (up staple + down staple per transverse direction).
        """
        g = self.geometry
        u = self.links
        fmu = g.neighbour_fwd(mu)
        out = np.zeros((g.volume, 3, 3), dtype=np.complex128)
        for nu in range(g.ndim):
            if nu == mu:
                continue
            fnu = g.neighbour_fwd(nu)
            bnu = g.neighbour_bwd(nu)
            # up: U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+  (dagger applied at end,
            # so accumulate V with the convention S = U_nu(x) U_mu(x+nu) U_nu(x+mu)^+ ...)
            out += u[nu][fmu] @ dagger(u[mu][fnu]) @ dagger(u[nu])
            # down: U_nu(x+mu-nu)^+ U_mu(x-nu)^+ U_nu(x-nu)
            out += dagger(u[nu][bnu][fmu]) @ dagger(u[mu][bnu]) @ u[nu][bnu]
        return out

    def clover_leaves(self, mu: int, nu: int) -> np.ndarray:
        """``(V, 3, 3)`` sum of the four plaquette leaves in the
        ``(mu, nu)`` plane around each site — the "clover".

        The clover-improved Wilson operator (paper section 4 benchmarks it at
        46.5% of peak) builds the field strength from
        ``F_{mu nu} = (Q_{mu nu} - Q_{mu nu}^+) / 8`` with ``Q`` this sum.
        """
        g = self.geometry
        u = self.links
        fmu, fnu = g.neighbour_fwd(mu), g.neighbour_fwd(nu)
        bmu, bnu = g.neighbour_bwd(mu), g.neighbour_bwd(nu)
        # Leaf 1: x -> +mu -> +nu -> -mu -> -nu
        q = u[mu] @ u[nu][fmu] @ dagger(u[mu][fnu]) @ dagger(u[nu])
        # Leaf 2: x -> +nu -> -mu -> -nu -> +mu
        q = q + u[nu] @ dagger(u[mu][bmu][fnu]) @ dagger(u[nu][bmu]) @ u[mu][bmu]
        # Leaf 3: x -> -mu -> -nu -> +mu -> +nu
        q = q + dagger(u[mu][bmu]) @ dagger(u[nu][bmu][bnu]) @ u[mu][bmu][bnu] @ u[nu][bnu]
        # Leaf 4: x -> -nu -> +mu -> +nu -> -mu
        q = q + dagger(u[nu][bnu]) @ u[mu][bnu] @ u[nu][bnu][fmu] @ dagger(u[mu])
        return q

    def field_strength(self, mu: int, nu: int) -> np.ndarray:
        """Clover-discretised ``F_{mu nu}``: anti-hermitian, traceless part
        of the leaf sum divided by 8 (lattice units, coupling absorbed)."""
        q = self.clover_leaves(mu, nu)
        f = (q - dagger(q)) / 8.0
        tr = np.einsum("xaa->x", f) / 3.0
        f[:, 0, 0] -= tr
        f[:, 1, 1] -= tr
        f[:, 2, 2] -= tr
        return f

    def __repr__(self) -> str:
        return f"GaugeField(shape={self.geometry.shape})"
