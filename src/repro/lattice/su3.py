"""Batched SU(3) linear algebra.

Everything operates on arrays of shape ``(..., 3, 3)`` so a whole gauge
field's links are processed in single numpy calls (per the HPC guide: no
per-site Python loops).
"""

from __future__ import annotations

import numpy as np

#: The eight Gell-Mann matrices, ``(8, 3, 3)`` complex.  Generators of su(3):
#: ``T_a = lambda_a / 2``, normalised as ``tr(T_a T_b) = delta_ab / 2``.
_GM = np.zeros((8, 3, 3), dtype=np.complex128)
_GM[0, 0, 1] = _GM[0, 1, 0] = 1
_GM[1, 0, 1] = -1j
_GM[1, 1, 0] = 1j
_GM[2, 0, 0] = 1
_GM[2, 1, 1] = -1
_GM[3, 0, 2] = _GM[3, 2, 0] = 1
_GM[4, 0, 2] = -1j
_GM[4, 2, 0] = 1j
_GM[5, 1, 2] = _GM[5, 2, 1] = 1
_GM[6, 1, 2] = -1j
_GM[6, 2, 1] = 1j
_GM[7, 0, 0] = _GM[7, 1, 1] = 1 / np.sqrt(3)
_GM[7, 2, 2] = -2 / np.sqrt(3)
_GM.setflags(write=False)


def gell_mann() -> np.ndarray:
    """The eight Gell-Mann matrices ``lambda_1..lambda_8`` (read-only view)."""
    return _GM


def dagger(m: np.ndarray) -> np.ndarray:
    """Hermitian conjugate over the trailing two axes."""
    return np.conj(np.swapaxes(m, -1, -2))


def random_su3(rng: np.random.Generator, n: int = 1) -> np.ndarray:
    """``(n, 3, 3)`` Haar-distributed SU(3) matrices.

    QR of a complex Ginibre matrix with the R-diagonal phase fix gives
    Haar U(3) (Mezzadri 2007); dividing by the cube root of the determinant
    lands in SU(3) without disturbing the Haar measure.
    """
    z = rng.standard_normal((n, 3, 3)) + 1j * rng.standard_normal((n, 3, 3))
    q, r = np.linalg.qr(z)
    d = np.diagonal(r, axis1=-2, axis2=-1)
    q = q * (d / np.abs(d))[:, np.newaxis, :]
    det = np.linalg.det(q)
    return q / np.cbrt(np.abs(det))[:, None, None] / np.exp(
        1j * np.angle(det) / 3.0
    )[:, None, None]


def random_algebra(
    rng: np.random.Generator, n: int = 1, scale: float = 1.0
) -> np.ndarray:
    """``(n, 3, 3)`` traceless anti-hermitian matrices ``i sum_a c_a T_a``.

    The coefficients ``c_a`` are standard normal times ``scale`` — exactly
    the Gaussian momenta HMC draws at the start of a trajectory.
    """
    c = rng.standard_normal((n, 8)) * scale
    return 1j * np.einsum("na,aij->nij", c, _GM / 2.0)


def algebra_coefficients(a: np.ndarray) -> np.ndarray:
    """Invert :func:`random_algebra`: ``c_a = 2 tr(-i a T_a)`` (real part)."""
    return 2.0 * np.real(np.einsum("...ij,aji->...a", -1j * a, _GM / 2.0))


def expm_su3(a: np.ndarray) -> np.ndarray:
    """Exponential of traceless anti-hermitian matrices (batched, exact).

    Writes ``a = iH`` with ``H`` hermitian, diagonalises ``H`` and
    exponentiates the (real) eigenvalues; the result is exactly unitary up
    to roundoff.  Used by the HMC link update ``U -> exp(eps P) U``.
    """
    h = -1j * np.asarray(a)
    w, v = np.linalg.eigh(h)
    phase = np.exp(1j * w)
    return np.einsum("...ik,...k,...jk->...ij", v, phase, np.conj(v))


def project_su3(m: np.ndarray) -> np.ndarray:
    """Nearest SU(3) matrix via polar decomposition + determinant fix.

    Reunitarisation guards against drift after many HMC link updates.
    """
    u, _s, vh = np.linalg.svd(m)
    w = u @ vh
    det = np.linalg.det(w)
    return w / np.exp(1j * np.angle(det) / 3.0)[..., None, None]


def unitarity_defect(u: np.ndarray) -> float:
    """``max |U U+ - 1|`` over a batch — 0 for exact SU(3)."""
    eye = np.eye(3)
    return float(np.max(np.abs(u @ dagger(u) - eye)))


def determinant_defect(u: np.ndarray) -> float:
    """``max |det U - 1|`` over a batch."""
    return float(np.max(np.abs(np.linalg.det(u) - 1.0)))


def su3_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``max |a - b|`` elementwise — a crude but monotone matrix metric."""
    return float(np.max(np.abs(a - b)))


def is_su3(u: np.ndarray, tol: float = 1e-10) -> bool:
    """True when every matrix in the batch is unitary with det 1."""
    return unitarity_defect(u) < tol and determinant_defect(u) < tol
