"""Periodic lattice geometry: site indexing, neighbours, parity, faces.

All Dirac operators and halo-exchange plans are written against the index
tables built here, so the whole stack shares one site-ordering convention:
lexicographic with the last axis fastest (numpy C order over ``shape``).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.lattice import stencil
from repro.util.errors import ConfigError


class LatticeGeometry:
    """A periodic ``shape[0] x ... x shape[d-1]`` grid.

    Parameters
    ----------
    shape:
        Extent of each axis.  QCD uses 4 axes (x, y, z, t) or 5 for
        domain-wall fermions; the class is dimension-agnostic because the
        QCDOC machine itself is a 6-dimensional grid and reuses this code
        via :mod:`repro.machine.topology`.

    Attributes
    ----------
    volume:
        Total number of sites.
    parity:
        ``(V,)`` int8 array, ``(sum of coordinates) mod 2`` — the even/odd
        (red/black) colouring used by preconditioned solvers.
    """

    def __init__(self, shape: Sequence[int]):
        shape = tuple(int(s) for s in shape)
        if len(shape) == 0:
            raise ConfigError("lattice needs at least one axis")
        if any(s < 1 for s in shape):
            raise ConfigError(f"axis extents must be >= 1, got {shape}")
        self.shape: Tuple[int, ...] = shape
        self.ndim = len(shape)
        self.volume = int(np.prod(shape))

        # All index tables are memoised process-wide by shape in
        # repro.lattice.stencil; every LatticeGeometry of the same shape
        # (e.g. the per-rank local geometries of a distributed run)
        # shares one set of read-only tables.
        # coords[i] = coordinate vector of site i (C order, last axis fastest)
        self.coords = stencil.coords(shape)  # (V, ndim), read-only
        self.parity = stencil.parity(shape)

    # -- indexing -----------------------------------------------------------
    def index(self, coord: Sequence[int]) -> int:
        """Linear index of a coordinate vector (periodically wrapped)."""
        if len(coord) != self.ndim:
            raise ConfigError(
                f"coordinate has {len(coord)} entries, lattice has {self.ndim} axes"
            )
        wrapped = tuple(int(c) % s for c, s in zip(coord, self.shape))
        return int(np.ravel_multi_index(wrapped, self.shape))

    def coord(self, index: int) -> Tuple[int, ...]:
        """Coordinate vector of a linear site index."""
        return tuple(int(c) for c in self.coords[index])

    # -- neighbours -----------------------------------------------------------
    def neighbour_fwd(self, mu: int) -> np.ndarray:
        """``(V,)`` index table: site at ``x + e_mu`` (memoised)."""
        return stencil.neighbour(self.shape, mu, +1)

    def neighbour_bwd(self, mu: int) -> np.ndarray:
        """``(V,)`` index table: site at ``x - e_mu`` (memoised)."""
        return stencil.neighbour(self.shape, mu, -1)

    def hop(self, mu: int, steps: int) -> np.ndarray:
        """Index table for ``x + steps * e_mu`` (negative steps go backward).

        The ASQTAD Naik term needs 3-link hops (paper section 1: "second or
        third nearest-neighbor communications"); tables are memoised
        process-wide by shape in :mod:`repro.lattice.stencil`.
        """
        return stencil.hop(self.shape, mu, steps)

    # -- parity -----------------------------------------------------------
    @property
    def even_sites(self) -> np.ndarray:
        return stencil.parity_sites(self.shape, 0)

    @property
    def odd_sites(self) -> np.ndarray:
        return stencil.parity_sites(self.shape, 1)

    # -- decomposition ------------------------------------------------------
    def tile(self, pgrid: Sequence[int]) -> "Tiling":
        """Split the lattice into an ``pgrid`` grid of equal sub-lattices.

        This is the "initial trivial mapping of the physics coordinate grid
        to the machine mesh" of paper section 1; each tile becomes one
        QCDOC node's local volume.
        """
        return Tiling(self, pgrid)

    def __repr__(self) -> str:
        return f"LatticeGeometry(shape={self.shape})"

    def __eq__(self, other) -> bool:
        return isinstance(other, LatticeGeometry) and other.shape == self.shape

    def __hash__(self) -> int:
        return hash(self.shape)


class Tiling:
    """Equal-block decomposition of a lattice over a processor grid.

    ``pgrid`` must have the lattice's dimensionality and divide each axis.
    Tiles are indexed lexicographically like sites (last axis fastest).
    """

    def __init__(self, geometry: LatticeGeometry, pgrid: Sequence[int]):
        pgrid = tuple(int(p) for p in pgrid)
        if len(pgrid) != geometry.ndim:
            raise ConfigError(
                f"processor grid {pgrid} has wrong dimensionality for {geometry}"
            )
        for L, p in zip(geometry.shape, pgrid):
            if p < 1 or L % p != 0:
                raise ConfigError(
                    f"processor grid {pgrid} does not divide lattice {geometry.shape}"
                )
        self.geometry = geometry
        self.pgrid = pgrid
        self.ntiles = int(np.prod(pgrid))
        self.local_shape = tuple(
            L // p for L, p in zip(geometry.shape, pgrid)
        )
        self.local_geometry = LatticeGeometry(self.local_shape)
        self.local_volume = self.local_geometry.volume

        # tile_of[i]  = tile owning global site i
        # local_of[i] = site index within that tile
        tcoord = self.geometry.coords // np.array(self.local_shape)
        lcoord = self.geometry.coords % np.array(self.local_shape)
        self.tile_of = np.ravel_multi_index(tcoord.T, pgrid)
        self.local_of = np.ravel_multi_index(lcoord.T, self.local_shape)

        # global_of[tile][j] = global site index of local site j on tile
        order = np.lexsort((self.local_of, self.tile_of))
        self.global_of = np.asarray(order).reshape(self.ntiles, self.local_volume)

    def tile_coord(self, tile: int) -> Tuple[int, ...]:
        return tuple(int(c) for c in np.unravel_index(tile, self.pgrid))

    def tile_index(self, coord: Sequence[int]) -> int:
        wrapped = tuple(int(c) % p for c, p in zip(coord, self.pgrid))
        return int(np.ravel_multi_index(wrapped, self.pgrid))

    def neighbour_tile(self, tile: int, mu: int, sign: int) -> int:
        """Tile adjacent to ``tile`` in direction ``+/-mu`` (periodic)."""
        c = list(self.tile_coord(tile))
        c[mu] += 1 if sign > 0 else -1
        return self.tile_index(c)

    def scatter(self, field: np.ndarray) -> np.ndarray:
        """Split a global per-site field ``(V, ...)`` into ``(ntiles, v, ...)``."""
        return field[self.global_of]

    def gather(self, locals_: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`scatter`."""
        out = np.empty(
            (self.geometry.volume,) + tuple(locals_.shape[2:]), dtype=locals_.dtype
        )
        out[self.global_of.reshape(-1)] = locals_.reshape(
            (-1,) + tuple(locals_.shape[2:])
        )
        return out

    def __repr__(self) -> str:
        return f"Tiling({self.geometry.shape} over {self.pgrid})"
