"""Fermion boundary conditions via phased links.

Finite-temperature field theory requires fermions **antiperiodic** in
Euclidean time; production codes implement this (and twisted spatial
boundary conditions used for momentum interpolation) by multiplying the
gauge links that cross the boundary by a phase before handing the field to
the Dirac operator.  Every operator in :mod:`repro.fermions` then inherits
the boundary condition with no code changes — including the distributed
versions, since the phase rides along with the scattered links.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.gauge import GaugeField
from repro.util.errors import ConfigError


def with_boundary_phase(
    gauge: GaugeField, axis: int, phase: complex = -1.0
) -> GaugeField:
    """A copy of the field with boundary-crossing links multiplied by
    ``phase`` along ``axis``.

    ``phase=-1`` gives antiperiodic fermions (the thermal choice);
    ``exp(i theta)`` gives twisted boundary conditions.  The gauge action
    and all gauge observables are unaffected by a pure phase (it cancels
    in every closed loop that wraps the axis zero or a multiple-of-|phase
    order| times — and identically for the plaquette, which never wraps).
    """
    g = gauge.geometry
    if not 0 <= axis < g.ndim:
        raise ConfigError(f"axis {axis} out of range for {g}")
    p = complex(phase)
    if abs(abs(p) - 1.0) > 1e-12:
        raise ConfigError(f"boundary phase must be a pure phase, got {phase!r}")
    out = gauge.copy()
    boundary = np.nonzero(g.coords[:, axis] == g.shape[axis] - 1)[0]
    out.links[axis][boundary] = p * out.links[axis][boundary]
    return out


def antiperiodic_in_time(gauge: GaugeField) -> GaugeField:
    """The standard thermal setup: ``phase=-1`` on the last axis."""
    return with_boundary_phase(gauge, gauge.geometry.ndim - 1, -1.0)
