"""Memoised gather-index tables: the one place stencil indices are built.

Every Dirac operator, halo plan, and observable in the stack gathers
neighbour sites through index tables keyed only by a lattice *shape* (plus
axis / sign / hop depth).  Before this module each
:class:`~repro.lattice.geometry.LatticeGeometry` instance rebuilt its own
``np.roll`` tables and every halo plan recomputed its face masks — per
rank, per context, per call.  The hardware this codebase twins does the
opposite: QCDOC's hand-tuned dslash precomputes its block-strided DMA
descriptors and gather offsets **once** and replays them on every
application (paper sections 2.2 and 3.3).

This module is that precomputation, functional: a process-wide memo cache
of

* site coordinate arrays and parity colourings,
* per-``(mu, sign)`` nearest-neighbour index tables and per-``(mu,
  steps)`` multi-hop tables (the ASQTAD Naik term needs 3-link hops),
* per-``(axis, side, depth)`` boundary-face site lists and the
  :class:`HaloPlan` send/fill index sets built from them,
* per-``(comm_axes, depth)`` interior masks and the disjoint
  interior/boundary site partitions of the overlapped pipeline.

All entries are keyed by the plain shape tuple, so the per-rank local
geometries of a distributed run (every tile has the same local shape)
share one set of tables.  Returned arrays are **read-only** views of the
cached entries; callers gather through them (producing fresh writable
arrays) but can never corrupt the shared state.

``cache_info()`` exposes hit/miss counters so tests can assert the hot
path performs *zero* per-call index recomputation.

Layering: this module imports only numpy and the error types;
:mod:`repro.lattice.geometry` and :mod:`repro.lattice.halos` delegate to
it (not the other way around).
"""

from __future__ import annotations

from typing import Dict, Iterable, NamedTuple, Tuple, Union

import numpy as np

from repro.util.errors import ConfigError

Shape = Tuple[int, ...]
ShapeLike = Union[Shape, Iterable[int], "object"]


class HaloPlan(NamedTuple):
    """Index plan for one (axis, hop-distance) halo exchange."""

    axis: int
    depth: int
    #: local sites sent toward the -mu neighbour (our low face)
    send_low: np.ndarray
    #: local sites sent toward the +mu neighbour (our high face)
    send_high: np.ndarray
    #: rows of a ``field[hop(mu, +depth)]`` gather to overwrite with the
    #: halo received from the +mu neighbour (our high face)
    fill_from_fwd: np.ndarray
    #: rows of a ``field[hop(mu, -depth)]`` gather to overwrite with the
    #: halo received from the -mu neighbour (our low face)
    fill_from_bwd: np.ndarray


#: the process-wide memo store: ``(shape, kind, *args) -> table``
_CACHE: Dict[tuple, object] = {}
_HITS = 0
_MISSES = 0


def shape_key(shape: ShapeLike) -> Shape:
    """Normalise a shape-like (tuple, list, or object with ``.shape``)."""
    inner = getattr(shape, "shape", shape)
    key = tuple(int(s) for s in inner)
    if not key:
        raise ConfigError("lattice needs at least one axis")
    if any(s < 1 for s in key):
        raise ConfigError(f"axis extents must be >= 1, got {key}")
    return key


def _freeze(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def _get(key: tuple, builder):
    global _HITS, _MISSES
    try:
        value = _CACHE[key]
    except KeyError:
        _MISSES += 1
        value = builder()
        _CACHE[key] = value
        return value
    _HITS += 1
    return value


def cache_info() -> Dict[str, int]:
    """Memo-cache statistics: ``{"hits", "misses", "entries"}``.

    ``hits`` counts table lookups served without building anything;
    ``misses`` counts one-time table constructions.  A warmed-up solver
    loop must drive ``hits`` without ever growing ``misses`` — the
    "zero per-call index-table recomputation" contract.
    """
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def cache_clear() -> None:
    """Drop every memoised table and reset the counters (tests/benches)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


# -- coordinate / parity tables ---------------------------------------------

def coords(shape: ShapeLike) -> np.ndarray:
    """``(V, ndim)`` coordinate vectors, C order (last axis fastest)."""
    key = shape_key(shape)

    def build():
        ndim = len(key)
        volume = int(np.prod(key))
        grid = np.indices(key).reshape(ndim, volume)
        return _freeze(np.ascontiguousarray(grid.T))

    return _get((key, "coords"), build)


def parity(shape: ShapeLike) -> np.ndarray:
    """``(V,)`` int8 even/odd (red/black) colouring."""
    key = shape_key(shape)
    return _get(
        (key, "parity"),
        lambda: _freeze((coords(key).sum(axis=1) % 2).astype(np.int8)),
    )


def parity_sites(shape: ShapeLike, p: int) -> np.ndarray:
    """Sorted site indices of parity ``p`` (0 = even, 1 = odd)."""
    key = shape_key(shape)
    if p not in (0, 1):
        raise ConfigError(f"parity must be 0 or 1, got {p}")
    return _get(
        (key, "parity_sites", p),
        lambda: _freeze(np.nonzero(parity(key) == p)[0]),
    )


# -- neighbour / hop tables --------------------------------------------------

def _index_grid(key: Shape) -> np.ndarray:
    return _get(
        (key, "grid"),
        lambda: _freeze(np.arange(int(np.prod(key))).reshape(key)),
    )


def neighbour(shape: ShapeLike, mu: int, sign: int) -> np.ndarray:
    """``(V,)`` index table of the site at ``x + sign * e_mu`` (periodic)."""
    key = shape_key(shape)
    if not 0 <= mu < len(key):
        raise ConfigError(f"axis {mu} out of range for shape {key}")
    if sign not in (+1, -1):
        raise ConfigError(f"sign must be +-1, got {sign}")
    return _get(
        (key, "nbr", mu, sign),
        lambda: _freeze(np.roll(_index_grid(key), -sign, axis=mu).ravel()),
    )


def hop(shape: ShapeLike, mu: int, steps: int) -> np.ndarray:
    """Index table for ``x + steps * e_mu`` (negative steps go backward)."""
    key = shape_key(shape)
    if not 0 <= mu < len(key):
        raise ConfigError(f"axis {mu} out of range for shape {key}")

    def build():
        if steps == 0:
            return _freeze(np.arange(int(np.prod(key))))
        base = neighbour(key, mu, +1 if steps > 0 else -1)
        table = base
        for _ in range(abs(steps) - 1):
            table = base[table]
        return _freeze(np.ascontiguousarray(table))

    return _get((key, "hop", mu, steps), build)


# -- faces and halo plans -----------------------------------------------------

def face_sites(shape: ShapeLike, axis: int, side: int, depth: int = 1) -> np.ndarray:
    """Sites within ``depth`` of one boundary face, in ascending site order.

    ``side=-1`` selects ``x_axis < depth`` (the low face); ``side=+1``
    selects ``x_axis >= L - depth``.
    """
    key = shape_key(shape)
    if not 0 <= axis < len(key):
        raise ConfigError(f"axis {axis} out of range for shape {key}")
    L = key[axis]
    if depth < 1 or depth > L:
        raise ConfigError(f"face depth {depth} invalid for axis extent {L}")
    side = -1 if side < 0 else +1

    def build():
        x = coords(key)[:, axis]
        mask = (x < depth) if side < 0 else (x >= L - depth)
        return _freeze(np.nonzero(mask)[0])

    return _get((key, "face", axis, side, depth), build)


def halo_plan(shape: ShapeLike, axis: int, depth: int = 1) -> HaloPlan:
    """The memoised :class:`HaloPlan` for one axis at one hop distance."""
    key = shape_key(shape)

    def build():
        low = face_sites(key, axis, -1, depth)
        high = face_sites(key, axis, +1, depth)
        return HaloPlan(
            axis=axis,
            depth=depth,
            send_low=low,
            send_high=high,
            fill_from_fwd=high,
            fill_from_bwd=low,
        )

    return _get((key, "plan", axis, depth), build)


# -- interior / boundary partitions ------------------------------------------

def interior_mask(
    shape: ShapeLike, comm_axes: Tuple[int, ...], depth: int = 1
) -> np.ndarray:
    """Boolean mask of sites whose ``depth``-deep stencil touches no halo.

    A site is *interior* iff ``depth <= x_mu < L_mu - depth`` for every
    communicated axis ``mu``; non-communicated axes impose no constraint
    (their periodic wrap is local memory).
    """
    key = shape_key(shape)
    axes = tuple(sorted(set(int(a) for a in comm_axes)))
    for mu in axes:
        if not 0 <= mu < len(key):
            raise ConfigError(f"axis {mu} out of range for shape {key}")

    def build():
        mask = np.ones(int(np.prod(key)), dtype=bool)
        c = coords(key)
        for mu in axes:
            x = c[:, mu]
            L = key[mu]
            mask = mask & (x >= depth) & (x < L - depth)
        return _freeze(mask)

    return _get((key, "interior", axes, depth), build)


def site_partition(
    shape: ShapeLike, comm_axes: Tuple[int, ...], depth: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Disjoint sorted (interior, boundary) cover of every local site."""
    key = shape_key(shape)
    axes = tuple(sorted(set(int(a) for a in comm_axes)))

    def build():
        mask = interior_mask(key, axes, depth)
        return (
            _freeze(np.nonzero(mask)[0]),
            _freeze(np.nonzero(~mask)[0]),
        )

    return _get((key, "partition", axes, depth), build)


def face_layer_rows(
    shape: ShapeLike, axis: int, side: int, depth: int, layer: int
) -> np.ndarray:
    """Rows of a depth-``depth`` face whose face-normal coordinate equals
    ``layer`` — e.g. the ``x_mu == 0`` layer inside a depth-3 low face
    (the staggered 1-hop fill within the packed Naik halo)."""
    key = shape_key(shape)
    face = face_sites(key, axis, side, depth)

    def build():
        x = coords(key)[face][:, axis]
        return _freeze(np.nonzero(x == layer)[0])

    return _get((key, "layer", axis, -1 if side < 0 else +1, depth, layer), build)
