"""Halo (ghost-zone) index plans for distributed operators.

When the physics lattice is tiled over QCDOC nodes (one tile per node,
paper section 1), every Dirac application needs the neighbour tile's
boundary sites.  These helpers compute, once per geometry, exactly which
local site rows are sent and which rows of a gathered-neighbour array must
be overwritten with received data.  The index tables themselves live in
the process-wide memo cache of :mod:`repro.lattice.stencil` — every rank
of a distributed run (same local shape) shares one set, and repeated
operator applications never rebuild them.

Convention (matches :mod:`repro.parallel.pdirac`):

* the tile sends its **low** face (``x_mu = 0``) toward its ``-mu``
  neighbour — that neighbour needs it as "my forward neighbour's value";
* rows of ``psi[fwd[mu]]`` belonging to the **high** face
  (``x_mu = L_mu - 1``) wrapped around the local torus and must be
  overwritten with the halo received from the ``+mu`` neighbour.

Because every tile has the same local geometry and faces are enumerated in
lexicographic site order, the sender's low-face ordering and the receiver's
high-face fill ordering agree element-by-element with *no* permutation on
the wire — this is what lets the SCU DMA engines move the data with plain
block-strided descriptors (paper section 2.2) and keeps distributed
arithmetic bitwise identical to serial arithmetic.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.lattice import stencil
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.stencil import HaloPlan

__all__ = [
    "HaloPlan",
    "face_indices",
    "halo_exchange_plan",
    "all_halo_plans",
    "interior_mask",
    "interior_boundary_sites",
    "fill_positions",
    "surface_site_count",
]


def face_indices(
    geometry: LatticeGeometry, axis: int, side: int, depth: int = 1
) -> np.ndarray:
    """Site indices within ``depth`` of one boundary face, in site order.

    ``side=-1`` selects ``x_axis < depth`` (the low face), ``side=+1``
    selects ``x_axis >= L - depth``.  ``depth > 1`` supports the ASQTAD
    Naik term's 3-link hops.  Memoised per (shape, axis, side, depth).
    """
    return stencil.face_sites(geometry.shape, axis, side, depth)


def halo_exchange_plan(
    geometry: LatticeGeometry, axis: int, depth: int = 1
) -> HaloPlan:
    """The memoised :class:`HaloPlan` for one axis at one hop distance.

    For ``depth=1`` this is the nearest-neighbour plan every Wilson-type
    operator uses; ASQTAD additionally needs ``depth=3`` plans.
    """
    return stencil.halo_plan(geometry.shape, axis, depth)


def all_halo_plans(
    geometry: LatticeGeometry, depths: Tuple[int, ...] = (1,)
) -> Dict[Tuple[int, int], HaloPlan]:
    """Plans for every axis at every requested depth, keyed ``(axis, depth)``."""
    plans: Dict[Tuple[int, int], HaloPlan] = {}
    for mu in range(geometry.ndim):
        for d in depths:
            plans[(mu, d)] = halo_exchange_plan(geometry, mu, d)
    return plans


def interior_mask(
    geometry: LatticeGeometry,
    comm_axes: Tuple[int, ...],
    depth: int = 1,
) -> np.ndarray:
    """Boolean mask of sites whose ``depth``-deep stencil touches no halo.

    A site is *interior* iff ``depth <= x_mu < L_mu - depth`` for every
    communicated axis ``mu``.  Interior sites can be computed the instant
    ``start_stored()`` fires — concurrently with all 24 DMA transfers —
    which is the overlap the paper's sustained-efficiency model (section 4)
    assumes.  Non-communicated axes impose no constraint (their "halo" is
    the local torus wrap, already present in memory).

    Note that an axis with ``L_mu <= 2 * depth`` has **no** interior sites
    at all: at the paper's headline 2^4 local volume every site is a
    boundary site, and the overlap win comes entirely from pipelining
    per-axis boundary work against the remaining transfers.
    """
    return stencil.interior_mask(geometry.shape, tuple(comm_axes), depth)


def interior_boundary_sites(
    geometry: LatticeGeometry,
    comm_axes: Tuple[int, ...],
    depth: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Partition local sites into (interior, boundary) index arrays.

    Both arrays are sorted ascending, disjoint, and together cover every
    site exactly once — the two-phase hopping term computes the first set
    during communication and the second as halos land, then merges rows,
    so the union must be a permutation-free cover for bit-exactness.
    """
    return stencil.site_partition(geometry.shape, tuple(comm_axes), depth)


def fill_positions(subset: np.ndarray, face: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Locate halo-fill rows within a gathered *subset* of sites.

    Given ``subset`` (sorted site indices over which a boundary-phase
    gather like ``field[hop(mu, +1)][subset]`` is evaluated) and ``face``
    (sorted site indices whose gathered rows must be overwritten with
    received halo data, e.g. :attr:`HaloPlan.fill_from_fwd`), returns
    ``(rows_in_subset, rows_in_face)`` such that::

        gathered = field[hop][subset]
        gathered[rows_in_subset] = halo[rows_in_face]

    reproduces exactly the rows the monolithic full-volume fill
    ``field[hop][face] = halo`` would have produced for those sites.
    Both inputs must be sorted ascending (as produced by ``np.nonzero``).
    """
    present = np.isin(subset, face, assume_unique=True)
    rows_in_subset = np.nonzero(present)[0]
    rows_in_face = np.searchsorted(face, subset[rows_in_subset])
    return rows_in_subset, rows_in_face


def surface_site_count(geometry: LatticeGeometry, depth: int = 1) -> int:
    """Total sites sent per direction pair, summed over axes.

    Used by the performance model: communication volume per Dirac
    application is ``surface sites x payload per site``.
    """
    total = 0
    for mu in range(geometry.ndim):
        face = geometry.volume // geometry.shape[mu]
        total += 2 * face * min(depth, geometry.shape[mu])
    return total
