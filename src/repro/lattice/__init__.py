"""Lattice-QCD substrate: grids, SU(3) algebra, gauge fields.

QCDOC exists to run lattice QCD (paper section 1): a regular four-dimensional
space-time grid (five-dimensional for domain-wall fermions) of SU(3) gauge
links and fermion fields.  This package is the from-scratch implementation of
that substrate; the Dirac operators live in :mod:`repro.fermions` and the
machine mapping in :mod:`repro.parallel`.

Conventions
-----------
* Sites are indexed lexicographically with the **last** axis fastest
  (C order over ``shape``); :class:`LatticeGeometry` owns all index maps.
* A gauge field is a complex array ``U[mu, site, a, b]`` of shape
  ``(ndim, V, 3, 3)``; ``U[mu][x]`` is the parallel transporter from site
  ``x`` to ``x + mu``.
* Wilson-type fermion fields are ``psi[site, spin, color]`` =
  ``(V, 4, 3)``; staggered fields are ``(V, 3)``; domain-wall fields are
  ``(Ls, V, 4, 3)``.
"""

from repro.lattice.geometry import LatticeGeometry
from repro.lattice.su3 import (
    expm_su3,
    gell_mann,
    project_su3,
    random_algebra,
    random_su3,
    su3_distance,
    unitarity_defect,
)
from repro.lattice.gauge import GaugeField
from repro.lattice.halos import face_indices, halo_exchange_plan
from repro.lattice.boundary import antiperiodic_in_time, with_boundary_phase
from repro.lattice.io import gauge_from_bytes, gauge_to_bytes, load_gauge, save_gauge
from repro.lattice.observables import (
    average_wilson_loops,
    creutz_ratio,
    plaquette_by_plane,
    polyakov_loop,
    wilson_loop,
)

__all__ = [
    "with_boundary_phase",
    "antiperiodic_in_time",
    "save_gauge",
    "load_gauge",
    "gauge_to_bytes",
    "gauge_from_bytes",
    "wilson_loop",
    "average_wilson_loops",
    "creutz_ratio",
    "polyakov_loop",
    "plaquette_by_plane",
    "LatticeGeometry",
    "GaugeField",
    "random_su3",
    "random_algebra",
    "project_su3",
    "expm_su3",
    "gell_mann",
    "su3_distance",
    "unitarity_defect",
    "face_indices",
    "halo_exchange_plan",
]
