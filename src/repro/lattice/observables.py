"""Gauge observables: Wilson loops, Polyakov loops, plane plaquettes.

The measurement side of the QCD application suite: what the physics runs
on QCDOC actually computed between trajectories.  Everything is batched
over sites and gauge-invariant (tested under random gauge rotations).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError


def line_product(gauge: GaugeField, mu: int, length: int) -> np.ndarray:
    """``(V, 3, 3)`` ordered products of ``length`` links along ``+mu``."""
    if length < 1:
        raise ConfigError(f"line length must be >= 1, got {length}")
    g = gauge.geometry
    out = gauge.links[mu].copy()
    idx = g.neighbour_fwd(mu)
    hop = idx
    for _ in range(length - 1):
        out = out @ gauge.links[mu][hop]
        hop = idx[hop]
    return out


def wilson_loop(gauge: GaugeField, mu: int, nu: int, r: int, t: int) -> float:
    """Average ``Re tr W(r x t) / 3`` in the ``(mu, nu)`` plane.

    ``W = L_mu(x; r) L_nu(x + r mu; t) L_mu(x + t nu; r)^+ L_nu(x; t)^+``.
    The ``1x1`` loop is the plaquette.
    """
    g = gauge.geometry
    if mu == nu:
        raise ConfigError("Wilson loop needs two distinct directions")
    lr = line_product(gauge, mu, r)
    lt = line_product(gauge, nu, t)
    shift_r = g.hop(mu, r)
    shift_t = g.hop(nu, t)
    w = lr @ lt[shift_r] @ dagger(lr[shift_t]) @ dagger(lt)
    return float(np.einsum("xaa->", w).real) / (3.0 * g.volume)


def average_wilson_loops(
    gauge: GaugeField, max_r: int, max_t: int, mu: int = 0, nu: int = 3
) -> Dict[Tuple[int, int], float]:
    """``W(r, t)`` for all ``1 <= r <= max_r``, ``1 <= t <= max_t``."""
    return {
        (r, t): wilson_loop(gauge, mu, nu, r, t)
        for r in range(1, max_r + 1)
        for t in range(1, max_t + 1)
    }


def creutz_ratio(loops: Dict[Tuple[int, int], float], r: int, t: int) -> float:
    """``chi(r, t) = -ln[ W(r,t) W(r-1,t-1) / (W(r,t-1) W(r-1,t)) ]`` —
    the local string-tension estimator."""
    num = loops[(r, t)] * loops[(r - 1, t - 1)]
    den = loops[(r, t - 1)] * loops[(r - 1, t)]
    if num <= 0 or den <= 0:
        raise ConfigError("Wilson loops too noisy for a Creutz ratio")
    return float(-np.log(num / den))


def polyakov_loop(gauge: GaugeField, mu: int = -1) -> complex:
    """Volume-averaged Polyakov loop ``<tr P> / 3`` along axis ``mu``
    (default: the last, "time").

    The deconfinement order parameter: ~0 in the confined phase, |P| > 0
    deconfined, exactly 1 on the unit configuration.
    """
    g = gauge.geometry
    axis = g.ndim - 1 if mu < 0 else mu
    line = line_product(gauge, axis, g.shape[axis])
    # average over the 3-volume (sites with x_axis == 0 to count each line once)
    base = np.nonzero(g.coords[:, axis] == 0)[0]
    traces = np.einsum("xaa->x", line[base]) / 3.0
    return complex(traces.mean())


def plaquette_by_plane(gauge: GaugeField) -> Dict[Tuple[int, int], float]:
    """Average plaquette per ``(mu, nu)`` plane (isotropy diagnostic)."""
    g = gauge.geometry
    out = {}
    for mu in range(g.ndim):
        for nu in range(mu + 1, g.ndim):
            p = gauge.plaquette_field(mu, nu)
            out[(mu, nu)] = float(np.einsum("xaa->", p).real) / (3.0 * g.volume)
    return out
