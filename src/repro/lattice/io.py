"""Gauge-configuration I/O with integrity checksums.

QCDOC jobs ran for months and streamed configurations to host disks over
NFS (paper section 3.2: "support for NFS mounting of remote disks, which
is already being used by application programs to write directly to the
host disk system").  This module provides the corresponding serialisation:
a self-describing header (shape, plaquette, link trace) plus the raw
little-endian complex128 payload, checksummed with the same 64-bit
word-sum used by the SCU link audit — so a corrupted configuration is
rejected at load, exactly in the spirit of the machine's end-to-end
checksum discipline.
"""

from __future__ import annotations

import io
import json
import struct
from typing import BinaryIO, Union

import numpy as np

from repro.lattice.gauge import GaugeField
from repro.lattice.geometry import LatticeGeometry
from repro.util.errors import ConfigError

MAGIC = b"QCDOCGF1"


def _payload_checksum(links: np.ndarray) -> int:
    words = np.ascontiguousarray(links).view(np.float64).view(np.uint64)
    with np.errstate(over="ignore"):
        return int(words.sum(dtype=np.uint64))


def save_gauge(gauge: GaugeField, fh: BinaryIO) -> dict:
    """Write a configuration; returns the header written."""
    links = np.ascontiguousarray(gauge.links, dtype=np.complex128)
    header = {
        "shape": list(gauge.geometry.shape),
        "plaquette": gauge.plaquette(),
        "link_trace": float(np.einsum("dxaa->", links).real / links.shape[0] / links.shape[1] / 3.0),
        "checksum": _payload_checksum(links),
        "dtype": "complex128-le",
    }
    blob = json.dumps(header, sort_keys=True).encode()
    fh.write(MAGIC)
    fh.write(struct.pack("<I", len(blob)))
    fh.write(blob)
    fh.write(links.astype("<c16").tobytes())
    return header


def load_gauge(fh: BinaryIO, verify: bool = True) -> GaugeField:
    """Read a configuration, verifying checksum and observables.

    ``verify=True`` recomputes the payload checksum and the plaquette and
    rejects mismatches (bit-level and physics-level integrity).
    """
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise ConfigError(f"not a QCDOC gauge file (magic {magic!r})")
    (hlen,) = struct.unpack("<I", fh.read(4))
    header = json.loads(fh.read(hlen).decode())
    shape = tuple(header["shape"])
    geometry = LatticeGeometry(shape)
    n = len(shape) * geometry.volume * 9
    raw = fh.read(n * 16)
    if len(raw) != n * 16:
        raise ConfigError("truncated gauge payload")
    links = (
        np.frombuffer(raw, dtype="<c16")
        .astype(np.complex128)
        .reshape(len(shape), geometry.volume, 3, 3)
    )
    gauge = GaugeField(geometry, links)
    if verify:
        if _payload_checksum(gauge.links) != header["checksum"]:
            raise ConfigError("gauge payload checksum mismatch (corrupt file)")
        if abs(gauge.plaquette() - header["plaquette"]) > 1e-10:
            raise ConfigError("plaquette mismatch: payload inconsistent with header")
    return gauge


def gauge_to_bytes(gauge: GaugeField) -> bytes:
    buf = io.BytesIO()
    save_gauge(gauge, buf)
    return buf.getvalue()


def gauge_from_bytes(data: Union[bytes, bytearray], verify: bool = True) -> GaugeField:
    return load_gauge(io.BytesIO(bytes(data)), verify=verify)
