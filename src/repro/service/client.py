"""Asyncio client API over :class:`~repro.service.service.QcdocService`.

Tenants are naturally concurrent — each scripts its own submit/wait
logic while the machine multiplexes everybody's partitions — so the
client API is written as coroutines.  Determinism is preserved by
construction: the event loop here is a *cooperative scheduler only*.
Nothing ever awaits a timer or an I/O source; coroutines yield control
exclusively through ``asyncio.sleep(0)``, so the interleaving is the
loop's deterministic ready-queue order and no wall-clock value can leak
into results (REPRO101 stays satisfied — simulated time comes from the
machine's event heap alone).

:func:`run_service` is the driver: it steps the tenants' coroutines and
the service's pump/advance loop in strict alternation until every
client script has returned.
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine, Optional

from repro.service.jobs import Job, JobResult, WilsonJobSpec
from repro.service.service import QcdocService
from repro.util.errors import MachineError


class ServiceClient:
    """One tenant's handle on the service (submit / wait / solve)."""

    def __init__(self, service: QcdocService, tenant: str) -> None:
        self.service = service
        self.tenant = tenant

    async def submit(
        self, spec: WilsonJobSpec, priority: int = 0
    ) -> Job:
        """Admit one job (admission errors raise into the coroutine)."""
        job = self.service.submit(spec, tenant=self.tenant, priority=priority)
        await asyncio.sleep(0)
        return job

    async def wait(self, job: Job) -> JobResult:
        """Suspend until ``job`` resolves; re-raise its error if it failed."""
        while not job.terminal:
            await asyncio.sleep(0)
        if job.error is not None:
            raise job.error
        assert job.result is not None
        return job.result

    async def solve(
        self, spec: WilsonJobSpec, priority: int = 0
    ) -> JobResult:
        """Submit and wait — the one-call path for a scripted tenant."""
        job = await self.submit(spec, priority=priority)
        return await self.wait(job)


def run_service(
    service: QcdocService,
    *coros: Coroutine[Any, Any, Any],
    max_time: float = float("inf"),
    idle_limit: int = 10_000,
) -> list:
    """Drive tenant coroutines against the service until all return.

    Alternates one ready-queue pass of the asyncio loop with one service
    round (reap + dispatch, then advance the machine simulation when
    jobs are in flight).  Returns the coroutines' results in argument
    order; a coroutine that raised re-raises here.

    ``idle_limit`` bounds consecutive rounds in which neither the loop,
    the service, nor the simulation made progress — a tenant awaiting
    something that can never happen fails fast as a :class:`MachineError`
    instead of spinning forever.
    """
    loop = asyncio.new_event_loop()
    try:
        tasks = [loop.create_task(c) for c in coros]

        async def tick():
            # one cooperative pass: every ready coroutine runs to its
            # next suspension point before control returns here
            await asyncio.sleep(0)

        idle = 0
        while not all(task.done() for task in tasks):
            loop.run_until_complete(tick())
            progressed = service.pump()
            if not progressed and not all(task.done() for task in tasks):
                if service._active or service.core.pending:
                    progressed = service.advance(max_time)
            idle = 0 if progressed else idle + 1
            if idle > idle_limit:
                for task in tasks:
                    task.cancel()
                loop.run_until_complete(tick())
                raise MachineError(
                    "service driver wedged: clients awaiting, no job "
                    f"progress for {idle_limit} rounds (deadlocked "
                    "tenant script?)"
                )
        for task in tasks:
            if task.exception() is not None:
                raise task.exception()
        return [task.result() for task in tasks]
    finally:
        loop.close()
        asyncio.set_event_loop(None)
