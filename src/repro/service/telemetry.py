"""Per-job and per-tenant usage attribution over the CounterBank paths.

The machine's counters are machine-wide; the scheduler's no-node-sharing
invariant is what makes attribution exact: between a job's launch and
its teardown, *every* delta on its nodes' counters belongs to that job.
:func:`usage_totals` reads the same ``node<i>.*`` paths the telemetry
bank samples (via :func:`repro.telemetry.counters.sample_nodes`) and
collapses them to the handful of totals the service accounts per job;
:class:`TenantRollup` sums resolved jobs into the per-tenant ledger the
E17 artifact reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List


import numpy as np

from repro.telemetry.counters import sample_nodes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.jobs import Job

#: job-attributed totals -> the per-node counter path suffix they sum
USAGE_COUNTERS: Dict[str, str] = {
    "flops": "cpu.flops_charged",
    "compute_seconds": "cpu.compute_seconds",
    "payload_words": "scu.payload_words_sent",
    "wire_words": "scu.wire_words_sent",
    "resends": "scu.resends",
}


def usage_totals(machine: Any, node_ids: Iterable[int]) -> Dict[str, float]:
    """The :data:`USAGE_COUNTERS` totals summed over ``node_ids``."""
    wanted = {suffix: key for key, suffix in USAGE_COUNTERS.items()}
    totals = {key: 0.0 for key in USAGE_COUNTERS}
    for path, value in sample_nodes(machine, node_ids).items():
        suffix = path.split(".", 1)[1]
        key = wanted.get(suffix)
        if key is not None:
            totals[key] += value
    return totals


def usage_delta(
    after: Dict[str, float], before: Dict[str, float]
) -> Dict[str, float]:
    """Per-key difference (counters are monotone, so this is the usage)."""
    return {key: after[key] - before.get(key, 0.0) for key in after}


def percentile(values: List[float], q: float) -> float:
    """Percentile of a sample (0 for an empty one)."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


class TenantRollup:
    """Accumulated per-tenant accounting, fed one resolved job at a time."""

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.restarts = 0
        self.preemptions = 0
        self.node_seconds = 0.0
        self.queue_latencies: List[float] = []
        self.usage: Dict[str, float] = {key: 0.0 for key in USAGE_COUNTERS}

    def absorb(self, job: "Job") -> None:
        """Fold one terminal job into the rollup."""
        from repro.service.jobs import JobState  # local: avoid cycle

        if job.state is JobState.DONE:
            self.jobs_completed += 1
        else:
            self.jobs_failed += 1
        self.restarts += job.restarts
        self.preemptions += job.preemptions
        self.node_seconds += job.run_seconds * job.spec.n_nodes
        self.queue_latencies.append(job.queue_latency)
        for key, value in job.usage.items():
            self.usage[key] = self.usage.get(key, 0.0) + value

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "restarts": self.restarts,
            "preemptions": self.preemptions,
            "node_seconds": self.node_seconds,
            "queue_latency_p50": percentile(self.queue_latencies, 50),
            "queue_latency_p99": percentile(self.queue_latencies, 99),
            "usage": dict(self.usage),
        }

    def __repr__(self) -> str:
        return (
            f"TenantRollup({self.tenant!r}, {self.jobs_completed} done, "
            f"{self.jobs_failed} failed)"
        )
