"""Machine-as-a-service: the job service over one qdaemon-managed machine.

The companion papers run QCDOC as a shared facility: the qdaemon boots
the machine once and then carves independently bootable sub-torus
partitions for users as jobs come and go.  :class:`QcdocService` is that
operating mode for the software twin — a submission queue with admission
control, the :class:`~repro.service.scheduler.SchedulerCore` packing
concurrent congruent partitions, and a recovery loop that turns SCU
watchdog LINK_DOWN escalations into quarantine + remap + resubmit with
zero lost jobs.

Concurrency model: jobs run as :class:`~repro.machine.machine
.PartitionRun` launches on *one* shared event simulation; the service is
the (host-side) coordinator that advances the simulation between
scheduling decisions.  ``sim.run(stop=...)`` returns to the service
whenever something it must act on happened — a run settled (direct
callback) or a revocation ticker fired — so the host never busy-waits
and never runs a foreign job to completion by accident.  Everything is
deterministic: decisions happen at event boundaries, orderings are
explicit, and no wall-clock or entropy source is consulted.

Preemption protocol (satellite of DESIGN.md §13):

1. the scheduler emits :class:`~repro.service.scheduler.Preempt`;
2. the victim enters ``PREEMPTING`` but keeps running until its
   host-side checkpoint store holds a *complete* generation — the
   "always checkpoint before revoke" invariant is structural;
3. the victim is aborted, drained to quiescence (no live rank process,
   no in-flight word on its nodes), finalized, released, and requeued
   with its original submission seq;
4. its next launch resumes from the newest complete generation —
   bit-identical to the run it would have had (PR 5's guarantee).

Fault recovery is the same drain with abort-first (the partition is
already dead) plus a bounded qdaemon diagnosis sweep
(``handle_fault(drain=False)``) that quarantines cables/nodes without
running healthy neighbours' jobs to completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.fermions.clover import CloverDirac
from repro.host.qdaemon import Qdaemon
from repro.host.remap import find_healthy_partition
from repro.parallel.decomp import PhysicsMapping
from repro.parallel.pcg import cg_rank_program, gather_cg_results
from repro.service.jobs import Job, JobResult, JobState, WilsonJobSpec
from repro.service.scheduler import (
    Preempt,
    SchedJob,
    SchedulerCore,
    Start,
)
from repro.service.telemetry import (
    TenantRollup,
    percentile,
    usage_delta,
    usage_totals,
)
from repro.solvers.checkpoint import CGCheckpointStore
from repro.util.errors import (
    ConfigError,
    DegradedMachineError,
    MachineError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import PartitionRun
    from repro.machine.topology import Partition


class QcdocService:
    """Multi-tenant job service over one booted, qdaemon-managed machine.

    Parameters
    ----------
    daemon:
        A :class:`~repro.host.qdaemon.Qdaemon` whose :meth:`boot` has
        succeeded.  The service adopts placements through it, so the
        daemon's books (allocations, quarantine, failed nodes) stay the
        single source of truth.
    quotas:
        Per-tenant cap on concurrently held nodes (admission refuses
        wider jobs outright).  Tenants absent from the dict are
        unlimited.
    checkpoint_every:
        Cadence (CG iterations) of each job's host-side checkpoint
        store — the preemption/recovery granularity.
    max_restarts:
        Fault-driven restarts a single job may survive before it is
        failed (a job repeatedly unlucky enough to sit on dying
        hardware must not cycle forever).
    poll_period:
        Simulated seconds between revocation-ticker checks while a
        victim drains.  Pure polling granularity — results are
        identical for any value, only decision timestamps move.
    """

    def __init__(
        self,
        daemon: Qdaemon,
        quotas: Optional[Dict[str, int]] = None,
        max_queue: int = 256,
        checkpoint_every: int = 5,
        max_restarts: int = 3,
        backfill: bool = True,
        preemption: bool = True,
        poll_period: float = 2e-6,
    ) -> None:
        if not daemon.booted:
            raise MachineError("boot the machine before serving jobs")
        machine = daemon.machine
        if machine.shards > 1 and machine.shard_workers != "serial":
            raise ConfigError(
                "the job service multiplexes partitions in-process; "
                "use shard_workers='serial'"
            )
        self.daemon = daemon
        self.machine = machine
        self.sim = machine.sim
        self.checkpoint_every = int(checkpoint_every)
        self.max_restarts = int(max_restarts)
        self.poll_period = float(poll_period)
        self.core = SchedulerCore(
            self._place,
            quotas=quotas,
            max_queue=max_queue,
            backfill=backfill,
            preemption=preemption,
        )
        #: every job ever admitted, by id (terminal jobs included —
        #: the zero-lost-jobs audit trail)
        self.jobs: Dict[int, Job] = {}
        #: jobs currently holding hardware (RUNNING/PREEMPTING/RECOVERING)
        self._active: Dict[int, Job] = {}
        self.rollups: Dict[str, TenantRollup] = {}
        self._seq = 0
        self._wake = False
        self.started_serving: Optional[float] = None

    # -- placement (the scheduler's injected place_fn) -----------------------
    def _place(
        self, entry: SchedJob, held: Iterable[int]
    ) -> Optional[Tuple["Partition", FrozenSet[int]]]:
        """First healthy congruent placement avoiding held/dead hardware."""
        spec = self.jobs[entry.job_id].spec
        exclude = sorted(
            set(self.daemon.failed_nodes()) | set(self.daemon.failed) | set(held)
        )
        try:
            partition = find_healthy_partition(
                self.machine,
                spec.groups,
                spec.extents,
                exclude_nodes=exclude,
                require_periodic=spec.require_periodic,
            )
        except DegradedMachineError:
            return None
        nodes = frozenset(
            partition.physical_node(r) for r in range(partition.n_nodes)
        )
        return partition, nodes

    # -- submission ----------------------------------------------------------
    def submit(
        self, spec: WilsonJobSpec, tenant: str = "default", priority: int = 0
    ) -> Job:
        """Admit one job (synchronous; raises on admission refusal)."""
        spec.validate()
        if spec.n_nodes > self.machine.n_nodes:
            raise ConfigError(
                f"job wants {spec.n_nodes} nodes; machine has "
                f"{self.machine.n_nodes}"
            )
        self._seq += 1
        job = Job(
            job_id=self._seq,
            tenant=tenant,
            spec=spec,
            priority=priority,
            seq=self._seq,
            submit_time=self.sim.now,
            store=CGCheckpointStore(every=self.checkpoint_every),
        )
        self.core.submit(
            SchedJob(
                job_id=job.job_id,
                tenant=tenant,
                n_nodes=spec.n_nodes,
                priority=priority,
                seq=job.seq,
            )
        )
        self.jobs[job.job_id] = job
        if self.started_serving is None:
            self.started_serving = self.sim.now
        return job

    # -- the service loop ----------------------------------------------------
    @property
    def drained(self) -> bool:
        """No job holds hardware and none waits in the queue."""
        return not self._active and not self.core.pending

    def pump(self) -> bool:
        """One host-side decision round: reap outcomes, then dispatch.

        Returns True when anything changed (a job completed, started,
        was revoked, requeued, or failed) — the caller keeps pumping
        until a round is quiet, then advances the simulation.
        """
        progressed = self._reap()
        if self._dispatch():
            progressed = True
        return progressed

    def advance(
        self,
        max_time: float = float("inf"),
        horizon: Optional[float] = None,
    ) -> bool:
        """Run the shared simulation until the service must act again.

        ``horizon`` is a *soft* bound (simulated seconds from now): the
        advance returns quietly when it elapses, so a driver can
        interleave submissions with partial progress.  ``max_time`` stays
        the engine's hard deadlock horizon (absolute; exceeding it
        raises).
        """
        if self.sim.peek() == float("inf"):
            if self._active:
                raise MachineError(
                    "service deadlock: jobs hold hardware but no event "
                    "is scheduled"
                )
            return False
        self._wake = False
        until = None if horizon is None else self.sim.timeout(horizon)
        self.sim.run(until=until, stop=self._woken, max_time=max_time)
        return True

    def _woken(self) -> bool:
        return self._wake or not self._active

    def run_until_drained(self, max_time: float = float("inf")) -> dict:
        """Drive the queue to empty (synchronous clients), then report.

        On return every submitted job is terminal (DONE or FAILED), the
        machine holds zero allocated partitions, all in-flight words
        have drained, and the link checksum audit has run.
        """
        while not self.drained:
            if self.pump():
                continue
            self.advance(max_time)
        self.machine.quiesce()
        return self.report()

    # -- reaping -------------------------------------------------------------
    def _reap(self) -> bool:
        progressed = False
        for job_id in sorted(self._active):
            job = self._active.get(job_id)
            if job is None:
                continue
            run = job.run
            if run.faults and not run.aborted:
                self._begin_recovery(job)
                progressed = True
            elif run.settled and not run.faults and not run.aborted:
                self._complete(job)
                progressed = True
            elif (
                job.state is JobState.PREEMPTING
                and not run.aborted
                and job.store.has_complete_generation(run.n_ranks)
            ):
                # the checkpoint-before-revoke gate just opened
                run.abort()
                progressed = True
            elif run.aborted and run.quiesced():
                self._finish_revoke(job)
                progressed = True
        return progressed

    # -- dispatching ---------------------------------------------------------
    def _dispatch(self) -> bool:
        self.daemon.ingest_link_down()
        progressed = False
        for action in self.core.dispatch():
            if isinstance(action, Start):
                if self._start(self.jobs[action.job_id], action.placement):
                    progressed = True
            elif isinstance(action, Preempt):
                self._revoke(action)
                progressed = True
        if not progressed and not self._active and self.core.pending:
            progressed = self._fail_unplaceable()
        return progressed

    def _start(self, job: Job, partition: "Partition") -> bool:
        """Launch (or resume) one job on an adopted placement."""
        spec = job.spec
        try:
            alloc = self.daemon.adopt_partition(job.tenant, partition)
        except MachineError:
            # A LINK_DOWN ingested at adoption invalidated the placement
            # between the scheduler's decision and now; requeue at the
            # original position and let the next round re-place it.
            self.core.job_ended(job.job_id, 0.0, requeue=True)
            return False
        resume_states = None
        if job.restarts or job.preemptions:
            resume_states = job.store.latest_complete_states(
                partition.n_nodes
            )
        mapping = PhysicsMapping(spec.gauge.geometry, partition)
        local_links = mapping.scatter_gauge(spec.gauge)
        local_b = mapping.scatter_field(spec.b)
        clover_locals = None
        if spec.c_sw is not None:
            serial = CloverDirac(
                spec.gauge, mass=spec.mass, c_sw=spec.c_sw, r=spec.r
            )
            clover_locals = mapping.scatter_field(serial.clover_tensor)
        run = self.machine.launch_partition(
            partition,
            cg_rank_program,
            tag=f"job{job.job_id}",
            mapping=mapping,
            local_links=local_links,
            local_b=local_b,
            mass=spec.mass,
            r=spec.r,
            clover_locals=clover_locals,
            tol=spec.tol,
            maxiter=spec.maxiter,
            checkpoint=job.store,
            resume_states=resume_states,
        )
        run.on_settled = self._on_settled
        job.run = run
        job.alloc = alloc
        job.mapping = mapping
        job.state = JobState.RUNNING
        if job.started_at is None:
            job.started_at = self.sim.now
        job.last_start = self.sim.now
        job.usage_baseline = usage_totals(self.machine, run.node_ids())
        self._active[job.job_id] = job
        return True

    def _on_settled(self, run: "PartitionRun") -> None:
        self._wake = True

    # -- revocation (preemption + fault recovery) ----------------------------
    def _revoke(self, action: Preempt) -> None:
        victim = self.jobs[action.victim_id]
        if victim.state is not JobState.RUNNING:
            return  # already settling or draining; the plan is stale
        victim.state = JobState.PREEMPTING
        if victim.store.has_complete_generation(victim.run.n_ranks):
            victim.run.abort()
        self._spawn_ticker(victim)

    def _begin_recovery(self, job: Job) -> None:
        had_ticker = job.state is JobState.PREEMPTING
        job.state = JobState.RECOVERING
        job.run.abort()
        if not had_ticker:
            self._spawn_ticker(job)
        self._wake = True

    def _spawn_ticker(self, job: Job) -> None:
        """Keep the service waking while a revocation drains.

        The ticker is the liveness source for states with no settle
        callback: each period it flags a wake-up so :meth:`_reap` can
        re-check the checkpoint gate / quiescence.  It exits on its own
        once the job leaves the draining states.
        """

        def tick():
            while job.state in (JobState.PREEMPTING, JobState.RECOVERING):
                self._wake = True
                yield self.sim.timeout(self.poll_period)

        self.sim.process(tick(), name=f"revoke-ticker{job.job_id}")

    def _finish_revoke(self, job: Job) -> None:
        """The drained victim's teardown: finalize, release, requeue."""
        run = job.run
        run.finalize()
        self.daemon.release(job.alloc)
        self._account_attempt(job)
        node_seconds = run.n_ranks * (self.sim.now - job.last_start)
        del self._active[job.job_id]
        if job.state is JobState.PREEMPTING:
            job.preemptions += 1
            self.core.job_ended(job.job_id, node_seconds, requeue=True)
            job.state = JobState.QUEUED
            return
        # fault recovery: bounded diagnosis sweep, then requeue or fail
        diagnosis = self.daemon.handle_fault(drain=False)
        job.diagnoses.append(diagnosis)
        job.restarts += 1
        if job.restarts > self.max_restarts:
            self.core.job_ended(job.job_id, node_seconds, requeue=False)
            self._fail(
                job,
                MachineError(
                    f"job {job.job_id} exceeded {self.max_restarts} "
                    f"fault restarts (last fault: {run.faults[0]!r})"
                ),
            )
            return
        self.core.job_ended(job.job_id, node_seconds, requeue=True)
        job.state = JobState.QUEUED

    # -- resolution ----------------------------------------------------------
    def _account_attempt(self, job: Job) -> None:
        """Fold this attempt's node-counter deltas into the job ledger."""
        after = usage_totals(self.machine, job.run.node_ids())
        for key, value in usage_delta(after, job.usage_baseline).items():
            job.usage[key] = job.usage.get(key, 0.0) + value
        job.run_seconds += self.sim.now - job.last_start

    def _complete(self, job: Job) -> None:
        run = job.run
        results = run.results()
        self._account_attempt(job)
        run.finalize()
        self.daemon.release(job.alloc)
        node_seconds = run.n_ranks * (self.sim.now - job.last_start)
        del self._active[job.job_id]
        self.core.job_ended(job.job_id, node_seconds, requeue=False)
        solve = gather_cg_results(
            self.machine,
            job.mapping,
            results,
            machine_time=job.run_seconds,
            flops=job.usage.get("flops", 0.0),
            audit=False,  # other jobs are mid-flight; audited at drain
        )
        job.result = JobResult(
            job_id=job.job_id,
            tenant=job.tenant,
            x=solve.x,
            converged=solve.converged,
            iterations=solve.iterations,
            residuals=solve.residuals,
            machine_time=job.run_seconds,
            flops=job.usage.get("flops", 0.0),
            restarts=job.restarts,
            preemptions=job.preemptions,
            queue_latency=job.queue_latency,
        )
        job.state = JobState.DONE
        job.finished_at = self.sim.now
        self._rollup(job.tenant).absorb(job)

    def _fail(self, job: Job, error: BaseException) -> None:
        job.error = error
        job.state = JobState.FAILED
        job.finished_at = self.sim.now
        self._rollup(job.tenant).absorb(job)

    def _fail_unplaceable(self) -> bool:
        """Nothing runs and nothing starts: the leftovers cannot ever run.

        With an idle machine, quota cannot be the blocker (admission
        bounds every job by its quota), so a pending job that still has
        no placement is blocked by dead hardware — permanently.  Failing
        it (with the degraded-machine diagnosis) instead of leaving it
        queued is what "zero lost jobs" means on a shrinking machine.
        """
        progressed = False
        for entry in self.core.order():
            if self._place(entry, frozenset()) is None:
                self.core.drop_pending(entry.job_id)
                self._fail(
                    self.jobs[entry.job_id],
                    DegradedMachineError(
                        requested=tuple(self.jobs[entry.job_id].spec.extents),
                        failed_nodes=sorted(
                            set(self.daemon.failed_nodes())
                            | set(self.daemon.failed)
                        ),
                        dead_links=self.machine.network.dead_links(),
                        detail="no healthy congruent sub-torus remains",
                    ),
                )
                progressed = True
        if not progressed:
            raise MachineError(
                "service wedged: idle machine, placeable jobs, no dispatch"
            )
        return progressed

    def _rollup(self, tenant: str) -> TenantRollup:
        rollup = self.rollups.get(tenant)
        if rollup is None:
            rollup = self.rollups[tenant] = TenantRollup(tenant)
        return rollup

    # -- reporting -----------------------------------------------------------
    def report(self) -> dict:
        """Service-level accounting (the E17 artifact's body)."""
        states: Dict[str, int] = {}
        for job_id in sorted(self.jobs):
            state = self.jobs[job_id].state.value
            states[state] = states.get(state, 0) + 1
        terminal = [j for j in self.jobs.values() if j.terminal]
        latencies = [j.queue_latency for j in terminal]
        busy_node_seconds = sum(
            j.run_seconds * j.spec.n_nodes for j in self.jobs.values()
        )
        makespan = (
            self.sim.now - self.started_serving
            if self.started_serving is not None
            else 0.0
        )
        capacity = self.machine.n_nodes * makespan
        return {
            "jobs": {
                "submitted": len(self.jobs),
                "resolved": len(terminal),
                "lost": len(self.jobs) - len(terminal) - len(self._active)
                - len(self.core.pending),
                "states": states,
                "restarts": sum(j.restarts for j in self.jobs.values()),
                "preemptions": sum(
                    j.preemptions for j in self.jobs.values()
                ),
            },
            "queue_latency": {
                "p50": percentile(latencies, 50),
                "p99": percentile(latencies, 99),
                "max": max(latencies) if latencies else 0.0,
            },
            "packing": {
                "busy_node_seconds": busy_node_seconds,
                "makespan": makespan,
                "efficiency": (
                    busy_node_seconds / capacity if capacity > 0 else 0.0
                ),
            },
            "machine": {
                "nodes": self.machine.n_nodes,
                "shards": self.machine.shards,
                "held_nodes": len(self.daemon.held_nodes()),
                "failed_nodes": sorted(
                    set(self.daemon.failed_nodes()) | set(self.daemon.failed)
                ),
                "quarantined_cables": list(self.daemon.quarantined_cables),
                "in_flight_words": sum(
                    self.machine.nodes[i].scu.in_flight_words()
                    for i in sorted(self.machine.nodes)
                ),
                "checksum_mismatches": self.machine.audit_checksums(),
            },
            "tenants": {
                name: self.rollups[name].as_dict()
                for name in sorted(self.rollups)
            },
        }

    def __repr__(self) -> str:
        return (
            f"QcdocService({len(self.core.pending)} queued, "
            f"{len(self._active)} active, "
            f"{len(self.jobs)} total on {self.machine!r})"
        )
