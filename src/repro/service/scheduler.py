"""Partition scheduler core: pure decision logic, no simulator.

The qdaemon of the companion papers time-shares one machine between
users by carving independently bootable sub-torus partitions; this
module decides *which* queued job gets *which* placement and when.  It
is deliberately free of any machine or event-loop dependency — placement
is delegated to an injected ``place_fn`` — so the Hypothesis property
suite (``tests/test_service_scheduler.py``) can drive thousands of
submit/dispatch/complete interleavings directly and check the
invariants:

* no two running jobs ever share a node;
* a tenant's running jobs never hold more nodes than its quota;
* jobs of equal (priority, tenant, size) start in submission order;
* a preemption plan only ever victimises strictly-lower-priority jobs.

Policy: strict priority first, then fair share (tenants with less
accumulated node-seconds go first), then FIFO.  Placement is first-fit
over the injected enumeration with backfill — a job that does not fit
does not block smaller jobs behind it — and optional priority
preemption: when the head job fits nowhere, the cheapest set of
lower-priority victims whose nodes would make room is asked to
checkpoint and drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.util.errors import MachineError


class AdmissionError(MachineError):
    """The submission can never run under this tenant's quota."""


class QueueFullError(MachineError):
    """The bounded submission queue is at capacity."""


@dataclass(frozen=True)
class SchedJob:
    """What the scheduler needs to know about one job."""

    job_id: int
    tenant: str
    n_nodes: int
    priority: int = 0
    #: submission sequence number — the FIFO key, preserved across
    #: requeues so a preempted job keeps its place in line
    seq: int = 0


@dataclass(frozen=True)
class Start:
    """Dispatch decision: launch ``job_id`` on ``placement``."""

    job_id: int
    placement: object
    nodes: FrozenSet[int]


@dataclass(frozen=True)
class Preempt:
    """Dispatch decision: checkpoint-and-revoke ``victim_id`` so the
    higher-priority ``beneficiary_id`` can be placed."""

    victim_id: int
    beneficiary_id: int


#: ``place_fn(job, held_nodes) -> (placement, nodes) | None`` — find a
#: placement for ``job`` avoiding ``held_nodes`` (plus whatever hardware
#: the implementation knows is dead).  Must be deterministic.
PlaceFn = Callable[
    [SchedJob, FrozenSet[int]], Optional[Tuple[object, FrozenSet[int]]]
]


class SchedulerCore:
    """Admission, ordering, packing, and preemption planning.

    The host service calls :meth:`submit` / :meth:`dispatch` /
    :meth:`job_ended`; this class never touches the machine — it only
    records who holds which nodes and emits :class:`Start` /
    :class:`Preempt` decisions for the caller to execute.
    """

    def __init__(
        self,
        place_fn: PlaceFn,
        quotas: Optional[Dict[str, int]] = None,
        max_queue: int = 256,
        backfill: bool = True,
        preemption: bool = True,
    ) -> None:
        self.place_fn = place_fn
        self.quotas: Dict[str, int] = dict(quotas or {})
        self.max_queue = int(max_queue)
        self.backfill = bool(backfill)
        self.preemption = bool(preemption)
        #: admitted, not running (insertion order; :meth:`order` ranks it)
        self.pending: List[SchedJob] = []
        #: job_id -> (entry, held nodes, start counter)
        self.running: Dict[int, Tuple[SchedJob, FrozenSet[int], int]] = {}
        #: accumulated node-seconds per tenant — the fair-share key
        self.usage: Dict[str, float] = {}
        #: victim job_id -> beneficiary job_id for in-flight preemptions
        self.preempting: Dict[int, int] = {}
        self._starts = 0

    # -- admission -----------------------------------------------------------
    def quota(self, tenant: str) -> Optional[int]:
        return self.quotas.get(tenant)

    def submit(self, job: SchedJob) -> None:
        """Admit a job to the queue, or refuse it outright.

        Refusal is immediate and typed: a job wider than its tenant's
        quota can *never* run (:class:`AdmissionError`), and a full
        queue applies backpressure (:class:`QueueFullError`) instead of
        growing without bound.
        """
        quota = self.quota(job.tenant)
        if quota is not None and job.n_nodes > quota:
            raise AdmissionError(
                f"job {job.job_id} wants {job.n_nodes} nodes; tenant "
                f"{job.tenant!r} quota is {quota}"
            )
        if len(self.pending) >= self.max_queue:
            raise QueueFullError(
                f"queue full ({self.max_queue} pending jobs)"
            )
        self.pending.append(job)

    # -- bookkeeping ---------------------------------------------------------
    def held_nodes(self) -> FrozenSet[int]:
        held: set = set()
        for _entry, nodes, _idx in self.running.values():
            held |= nodes
        return frozenset(held)

    def active_nodes(self, tenant: str) -> int:
        return sum(
            len(nodes)
            for entry, nodes, _idx in self.running.values()
            if entry.tenant == tenant
        )

    def job_ended(
        self, job_id: int, node_seconds: float = 0.0, requeue: bool = False
    ) -> None:
        """A running job finished, failed, or was revoked.

        ``node_seconds`` feeds the tenant's fair-share usage;
        ``requeue=True`` (preemption, fault recovery) puts the entry back
        in the queue with its original ``seq``, so it re-enters FIFO at
        its old position rather than the back of the line.
        """
        entry, _nodes, _idx = self.running.pop(job_id)
        self.usage[entry.tenant] = (
            self.usage.get(entry.tenant, 0.0) + node_seconds
        )
        self.preempting.pop(job_id, None)
        if requeue:
            self.pending.append(entry)

    def drop_pending(self, job_id: int) -> None:
        """Remove a queued job (permanent failure or cancellation)."""
        self.pending = [j for j in self.pending if j.job_id != job_id]

    # -- ordering ------------------------------------------------------------
    def order(self) -> List[SchedJob]:
        """Queue in dispatch order: priority desc, fair share, FIFO.

        The fair-share key is the tenant's accumulated node-seconds, so
        a tenant that has consumed less machine goes first; ties break
        on tenant name then submission sequence (both total, so the
        order is deterministic).
        """
        return sorted(
            self.pending,
            key=lambda j: (
                -j.priority,
                self.usage.get(j.tenant, 0.0),
                j.tenant,
                j.seq,
            ),
        )

    # -- dispatch ------------------------------------------------------------
    def dispatch(self) -> List[object]:
        """Decide what to launch (and whom to preempt) right now.

        First-fit with backfill over :meth:`order`: each queue entry in
        turn is offered every node not yet held (including nodes claimed
        by earlier decisions in this very round); entries that fit
        nowhere — or whose tenant is at quota — are skipped rather than
        blocking the queue.  If nothing could start and the head job is
        blocked on *space* (not quota), a preemption plan is drawn up
        against strictly-lower-priority victims.
        """
        actions: List[object] = []
        held = set(self.held_nodes())
        active = {
            entry.tenant: 0 for entry, _n, _i in self.running.values()
        }
        for entry, nodes, _idx in self.running.values():
            active[entry.tenant] += len(nodes)
        space_blocked: Optional[SchedJob] = None
        for job in self.order():
            quota = self.quota(job.tenant)
            if (
                quota is not None
                and active.get(job.tenant, 0) + job.n_nodes > quota
            ):
                if self.backfill:
                    continue
                break
            placed = self.place_fn(job, frozenset(held))
            if placed is None:
                if space_blocked is None:
                    space_blocked = job
                if self.backfill:
                    continue
                break
            placement, nodes = placed
            nodes = frozenset(nodes)
            self.pending.remove(job)
            self._starts += 1
            self.running[job.job_id] = (job, nodes, self._starts)
            actions.append(Start(job.job_id, placement, nodes))
            held |= nodes
            active[job.tenant] = active.get(job.tenant, 0) + len(nodes)
        if not actions and space_blocked is not None and self.preemption:
            actions.extend(
                self._plan_preemption(space_blocked, frozenset(held))
            )
        return actions

    def _plan_preemption(
        self, job: SchedJob, held: FrozenSet[int]
    ) -> List[Preempt]:
        """The cheapest victim set that would make room for ``job``.

        Victims must be strictly lower priority and not already
        draining; they are taken lowest-priority-first, most-recently-
        started first (LIFO — the job that has run longest keeps
        running).  Victims accumulate until the placement succeeds; if
        even revoking every eligible victim frees no valid placement,
        nobody is disturbed.
        """
        if any(b == job.job_id for b in self.preempting.values()):
            return []  # victims already draining for this job
        candidates = sorted(
            (
                (entry, nodes, idx)
                for job_id, (entry, nodes, idx) in self.running.items()
                if entry.priority < job.priority
                and job_id not in self.preempting
            ),
            key=lambda t: (t[0].priority, -t[2]),
        )
        victims: List[SchedJob] = []
        freed: set = set()
        for entry, nodes, _idx in candidates:
            victims.append(entry)
            freed |= nodes
            if self.place_fn(job, frozenset(held - freed)) is not None:
                for victim in victims:
                    self.preempting[victim.job_id] = job.job_id
                return [
                    Preempt(victim.job_id, job.job_id) for victim in victims
                ]
        return []

    def __repr__(self) -> str:
        return (
            f"SchedulerCore({len(self.pending)} pending, "
            f"{len(self.running)} running, "
            f"{len(self.preempting)} preempting)"
        )
