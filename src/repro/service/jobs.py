"""Job specifications and runtime records for the service layer.

A :class:`WilsonJobSpec` is everything a tenant hands over: the physics
(gauge field, source, mass, clover) and the machine shape it wants (the
logical sub-torus ``groups``/``extents``).  The service wraps each
accepted spec in a :class:`Job` — the host-side record that survives
restarts, remaps, and preemptions — and resolves it to a
:class:`JobResult` exactly once (zero lost jobs, zero double
completions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.solvers.checkpoint import CGCheckpointStore
from repro.util.errors import ConfigError


class JobState(enum.Enum):
    """Host-side lifecycle of a submitted job.

    ``QUEUED -> RUNNING -> DONE`` is the happy path.  ``PREEMPTING``
    and ``RECOVERING`` are both "revocation in flight" (a checkpointed
    drain for preemption, an abort-and-quarantine for a hard fault);
    both return to ``QUEUED`` for re-dispatch.  ``FAILED`` is terminal
    and always carries the error.
    """

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTING = "preempting"
    RECOVERING = "recovering"
    DONE = "done"
    FAILED = "failed"


@dataclass
class WilsonJobSpec:
    """One Wilson/clover CGNE solve, as a tenant submits it."""

    gauge: Any
    b: np.ndarray
    mass: float
    #: physical-axis folding groups for the requested logical machine
    groups: Sequence[Sequence[int]]
    #: physical extents of the requested sub-torus
    extents: Tuple[int, ...]
    r: float = 1.0
    c_sw: Optional[float] = None
    tol: float = 1e-8
    maxiter: int = 2000
    require_periodic: bool = True

    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.extents))

    def validate(self) -> None:
        if self.b.shape != (self.gauge.geometry.volume, 4, 3):
            raise ConfigError(f"bad source shape {self.b.shape}")
        if self.n_nodes < 1:
            raise ConfigError(f"bad partition extents {self.extents}")


@dataclass
class JobResult:
    """The resolved outcome of one job, with its service-level history."""

    job_id: int
    tenant: str
    x: np.ndarray
    converged: bool
    iterations: int
    residuals: List[float]
    #: simulated seconds this job spent running (summed over attempts)
    machine_time: float
    #: flops charged on this job's nodes (summed over attempts)
    flops: float
    #: fault-driven restarts survived
    restarts: int
    #: preemption round-trips survived
    preemptions: int
    #: submit -> first launch, simulated seconds
    queue_latency: float


class Job:
    """Host-side record of one submitted job (the service owns these)."""

    def __init__(
        self,
        job_id: int,
        tenant: str,
        spec: WilsonJobSpec,
        priority: int,
        seq: int,
        submit_time: float,
        store: CGCheckpointStore,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.submit_time = submit_time
        #: host-side checkpoint store — survives every remap/preemption
        self.store = store
        self.state = JobState.QUEUED
        #: live execution state (valid while RUNNING/PREEMPTING/RECOVERING)
        self.run = None
        self.alloc = None
        self.mapping = None
        #: counter snapshot of this attempt's nodes at launch
        self.usage_baseline: Optional[Dict[str, float]] = None
        self.restarts = 0
        self.preemptions = 0
        #: qdaemon diagnoses collected after each fault recovery
        self.diagnoses: List[dict] = []
        self.started_at: Optional[float] = None
        self.last_start: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: simulated seconds spent running, summed over attempts
        self.run_seconds = 0.0
        #: attributed usage totals, summed over attempts
        self.usage: Dict[str, float] = {}
        self.result: Optional[JobResult] = None
        self.error: Optional[BaseException] = None

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def queue_latency(self) -> float:
        """Submit -> first launch, simulated seconds (0 until launched)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submit_time

    def __repr__(self) -> str:
        return (
            f"Job({self.job_id}, {self.tenant!r}, {self.state.value}, "
            f"{self.spec.n_nodes} nodes)"
        )
