"""Machine-as-a-service: multi-tenant job service over one machine.

The layer the facility papers describe around QCDOC — one booted
machine, many users, the qdaemon carving congruent sub-torus partitions
per job — realised over the software twin:

* :class:`~repro.service.scheduler.SchedulerCore` — pure packing /
  fair-share / preemption decisions (property-tested in isolation);
* :class:`~repro.service.service.QcdocService` — the orchestrator
  binding those decisions to real launches, checkpointed preemption,
  and fault-driven remap + resubmit;
* :class:`~repro.service.client.ServiceClient` — the asyncio tenant
  API (cooperative, wall-clock free).
"""

from repro.service.client import ServiceClient, run_service
from repro.service.jobs import Job, JobResult, JobState, WilsonJobSpec
from repro.service.scheduler import (
    AdmissionError,
    Preempt,
    QueueFullError,
    SchedJob,
    SchedulerCore,
    Start,
)
from repro.service.service import QcdocService
from repro.service.telemetry import TenantRollup, usage_delta, usage_totals

__all__ = [
    "AdmissionError",
    "Job",
    "JobResult",
    "JobState",
    "Preempt",
    "QcdocService",
    "QueueFullError",
    "SchedJob",
    "SchedulerCore",
    "ServiceClient",
    "Start",
    "TenantRollup",
    "WilsonJobSpec",
    "run_service",
    "usage_delta",
    "usage_totals",
]
