"""Distributed conjugate gradients on the simulated machine.

This is the paper's benchmark workload end to end: CG on the Dirac normal
equations, with every inner product flowing through the SCU global-sum tree
and every hopping term through SCU DMA halo exchanges.  The loop's
arithmetic mirrors :func:`repro.solvers.cg.cg` step for step, so iteration
counts and residual histories are directly comparable with the serial
solver; because the global sum accumulates in canonical rank order, the
residual history — and therefore the entire execution — is **bitwise
reproducible** run over run (the paper's section-4 verification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.fermions.clover import CloverDirac
from repro.lattice.gauge import GaugeField
from repro.machine.machine import QCDOCMachine
from repro.machine.topology import Partition
from repro.parallel.decomp import PhysicsMapping
from repro.parallel.pdirac import DistributedWilsonContext
from repro.solvers.checkpoint import CGCheckpointStore
from repro.solvers.kernels import axpy, scale_axpy, xpay
from repro.solvers.sitedot import reduce_site_inner, site_inner
from repro.util.errors import ConfigError


@dataclass
class DistributedSolveResult:
    """Gathered outcome of a machine-distributed CGNE solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: List[float]
    #: simulated wall-clock of the solve (seconds of machine time)
    machine_time: float
    #: total flops charged across nodes
    flops: float
    #: link checksum audit result (must be [])
    checksum_mismatches: List[str] = field(default_factory=list)

    @property
    def sustained_flops(self) -> float:
        return self.flops / self.machine_time if self.machine_time > 0 else 0.0


class MachineSiteDot:
    """Canonical inner product through the SCU global-sum tree (generator).

    Bitwise mirror of :func:`repro.solvers.sitedot.canonical_dot`: the
    rank reduces its own sites locally (per-site, so the partials do not
    depend on the tiling), scatters them into a zero-padded global site
    array, and contributes that through the machine's elementwise global
    sum.  Canonical rank-order accumulation of disjoint zero-padded
    arrays rebuilds exactly the site array the serial code sums — every
    rank then finishes with the identical
    :func:`~repro.solvers.sitedot.reduce_site_inner`, so the dot value
    is the serial value in all bits at any node count, shard count or
    word batch.

    Works in any dtype the fields carry — the mixed-precision inner
    solver routes ``complex64`` site arrays through the same tree.
    """

    def __init__(self, api, global_sites: np.ndarray, global_volume: int):
        self.api = api
        self.global_sites = np.asarray(global_sites)
        self.global_volume = int(global_volume)

    def __call__(self, u: np.ndarray, v: np.ndarray):
        site = site_inner(u, v)
        padded = np.zeros(self.global_volume, dtype=site.dtype)
        padded[self.global_sites] = site
        summed = yield self.api.global_sum(padded)
        return reduce_site_inner(summed)


def machine_cg(api, ctx, b, dot, tol, maxiter):
    """Distributed CG directly on ``ctx.normal`` (generator).

    The HMC force solver: mirrors :func:`repro.solvers.cg.cg` with
    ``x0=None`` *bit for bit* — same fused vector kernels
    (:mod:`repro.solvers.kernels`, elementwise so tiling is invisible),
    same arithmetic order, with every inner product a
    :class:`MachineSiteDot` — so iteration counts, residual histories
    and the solution field all match the serial solve exactly.  (The
    serial solver's audit-only ``true_residual`` applies are skipped:
    they read the finished solution and touch nothing the evolution
    consumes.)

    Returns ``(x, converged, iterations, residuals)``.
    """
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rr = (yield from dot(r, r)).real
    bb = (yield from dot(b, b)).real
    if bb == 0.0:
        return x, True, 0, [0.0]
    target = tol * tol * bb
    residuals = [float(np.sqrt(rr / bb))]
    converged = rr <= target
    it = 0
    ws = np.empty_like(b)
    while not converged and it < maxiter:
        ap = yield from ctx.normal(p)
        alpha = rr / (yield from dot(p, ap)).real
        axpy(alpha, p, x, ws)  # x += alpha p
        axpy(-alpha, ap, r, ws)  # r -= alpha ap (axpy_norm2, dot split off)
        rr_new = (yield from dot(r, r)).real
        beta = rr_new / rr
        xpay(r, beta, p)  # p <- r + beta p, in place
        rr = rr_new
        it += 1
        residuals.append(float(np.sqrt(rr / bb)))
        converged = rr <= target
        if api.trace is not None:
            api.trace.emit(
                "cg.iteration",
                rank=api.rank,
                iteration=it,
                residual=residuals[-1],
            )
    return x, bool(converged), it, residuals


def machine_mixed_cg(api, ctx, b, dot, tol, maxiter, delta=1e-2, max_inner=100):
    """Distributed mixed-precision CG with reliable updates (generator).

    Bitwise mirror of :func:`repro.solvers.cg.mixed_precision_cg`: the
    inner defect solve runs entirely in ``complex64`` — vectors, fused
    kernels and the canonical site dots (which flow through the global-
    sum tree in single precision too) — while each operator application
    promotes to the shared double-precision kernel and each cycle ends
    with a double-precision residual replacement ``r = b - A x``.

    Returns ``(x, converged, iterations, residuals)``.
    """
    x = np.zeros_like(b)
    bb = (yield from dot(b, b)).real
    if bb == 0.0:
        return x, True, 0, [0.0]
    target = tol * tol * bb
    r = b.copy()
    rr = bb
    residuals = [float(np.sqrt(rr / bb))]
    converged = rr <= target
    it = 0
    ws32 = None
    while not converged and it < maxiter:
        # -- inner cycle: CG on A e = r, entirely in single precision --
        r32 = r.astype(np.complex64)
        e = np.zeros_like(r32)
        p = r32.copy()
        rr32 = (yield from dot(r32, r32)).real
        if rr32 == 0.0:
            break  # r underflows single precision: no representable defect
        inner_target = (delta * delta) * rr32
        if ws32 is None:
            ws32 = np.empty_like(r32)
        inner = 0
        while rr32 > inner_target and inner < max_inner and it + inner < maxiter:
            ap = yield from ctx.normal(p.astype(np.complex128))
            ap32 = ap.astype(np.complex64)
            alpha = rr32 / (yield from dot(p, ap32)).real
            axpy(alpha, p, e, ws32)  # e += alpha p
            axpy(-alpha, ap32, r32, ws32)
            rr32_new = (yield from dot(r32, r32)).real
            beta = rr32_new / rr32
            xpay(r32, beta, p)  # p <- r32 + beta p
            rr32 = rr32_new
            inner += 1
        it += inner
        # -- reliable update: promote, accumulate, replace the residual --
        x += e.astype(np.complex128)
        ax = yield from ctx.normal(x)
        r = b - ax
        rr = (yield from dot(r, r)).real
        residuals.append(float(np.sqrt(rr / bb)))
        converged = rr <= target
        if api.trace is not None:
            api.trace.emit(
                "cg.iteration",
                rank=api.rank,
                iteration=it,
                residual=residuals[-1],
            )
    return x, bool(converged), it, residuals


def machine_multishift_cg(api, ctx, b, shifts, dot, tol, maxiter):
    """Distributed multi-shift CG on ``ctx.normal`` (generator).

    Bitwise mirror of :func:`repro.solvers.multishift.multishift_cg`
    including the converged-shift freezing — the Jegerlehner zeta
    recursion runs on globally-summed scalars, the per-shift vector
    updates are the same fused kernels on the local tile, and a shift
    is frozen the moment ``zeta_s^2 ||r||^2 <= tol^2 ||b||^2``.  The
    multi-mass/RHMC-style action path of the distributed HMC rides on
    this.

    Returns ``(shifts, x, converged, iterations, residuals)`` with ``x``
    a dict keyed by shift.
    """
    shifts = [float(s) for s in shifts]
    if not shifts:
        raise ConfigError("need at least one shift")
    if any(s < 0 for s in shifts):
        raise ConfigError(f"shifts must be non-negative: {shifts}")
    if tol <= 0:
        raise ConfigError("tolerance must be positive")

    bb = (yield from dot(b, b)).real
    if bb == 0.0:
        zero = {s: np.zeros_like(b) for s in shifts}
        return shifts, zero, True, 0, [0.0]
    target = tol * tol * bb

    r = b.copy()
    p = b.copy()
    rr = bb
    alpha_old = 1.0
    beta_old = 0.0

    x = {s: np.zeros_like(b) for s in shifts}
    ps = {s: b.copy() for s in shifts}
    zeta = {s: 1.0 for s in shifts}
    zeta_prev = {s: 1.0 for s in shifts}

    residuals = [float(np.sqrt(rr / bb))]
    it = 0
    active = [s for s in shifts if zeta[s] * zeta[s] * rr > target]
    ws = np.empty_like(b)
    while active and it < maxiter:
        ap = yield from ctx.normal(p)
        p_ap = (yield from dot(p, ap)).real
        alpha = rr / p_ap

        for s in active:
            denom = (
                alpha * beta_old * (zeta_prev[s] - zeta[s])
                + zeta_prev[s] * alpha_old * (1.0 + s * alpha)
            )
            zeta_new = (zeta[s] * zeta_prev[s] * alpha_old) / denom
            alpha_s = alpha * zeta_new / zeta[s]
            axpy(alpha_s, ps[s], x[s], ws)  # x_s += alpha_s p_s
            zeta_prev[s], zeta[s] = zeta[s], zeta_new

        axpy(-alpha, ap, r, ws)  # r -= alpha ap
        rr_new = (yield from dot(r, r)).real
        beta = rr_new / rr
        xpay(r, beta, p)  # p <- r + beta p, in place
        still_active = [
            s for s in active if zeta[s] * zeta[s] * rr_new > target
        ]
        for s in still_active:
            beta_s = beta * (zeta[s] / zeta_prev[s]) ** 2
            scale_axpy(zeta[s], r, beta_s, ps[s], ws)
        active = still_active
        alpha_old, beta_old = alpha, beta
        rr = rr_new
        it += 1
        residuals.append(float(np.sqrt(rr / bb)))
        if api.trace is not None:
            api.trace.emit(
                "cg.iteration",
                rank=api.rank,
                iteration=it,
                residual=residuals[-1],
            )
    return shifts, x, not active, it, residuals


def machine_cgne(api, ctx, b, tol, maxiter, checkpoint=None, resume_state=None):
    """CGNE over any distributed operator context (generator).

    ``ctx`` must provide generator methods ``apply``, ``apply_dagger`` and
    ``normal`` (e.g. :class:`DistributedWilsonContext` or
    :class:`repro.parallel.pstaggered.DistributedStaggeredContext`).
    Yields machine events; returns ``(x, converged, iterations, residuals)``.

    ``checkpoint`` (a :class:`~repro.solvers.checkpoint.CGCheckpointStore`)
    captures this rank's end-of-iteration state at the store's cadence —
    iteration 0 always, so a hard fault at any point can resume rather
    than restart.  ``resume_state`` is one rank's stored state: the solve
    then skips the ``D^+ b`` setup and the initial global sums and
    continues the residual history **bit-identically** (global sums
    accumulate in canonical rank order, so the arithmetic after a resume
    is exactly the arithmetic of the uninterrupted run).
    """

    def dot(u, v):
        # local partial, then the SCU global sum (canonical rank order)
        return np.array([np.vdot(u, v)])

    if resume_state is not None:
        x = resume_state["x"].copy()
        resid = resume_state["resid"].copy()
        p = resume_state["p"].copy()
        rr = resume_state["rr"]
        bb = resume_state["bb"]
        it = resume_state["it"]
        residuals = list(resume_state["residuals"])
    else:
        # rhs of the normal equations: D^+ b
        rhs = yield from ctx.apply_dagger(b)

        x = np.zeros_like(rhs)
        resid = rhs.copy()
        p = resid.copy()
        rr = (yield api.global_sum(dot(resid, resid)))[0].real
        bb = (yield api.global_sum(dot(rhs, rhs)))[0].real
        if bb == 0.0:
            return x, True, 0, [0.0]
        residuals = [float(np.sqrt(rr / bb))]
        it = 0
    target = tol * tol * bb
    converged = rr <= target
    if checkpoint is not None and resume_state is None:
        _cg_checkpoint(api, checkpoint, it, x, resid, p, rr, bb, residuals)
    while not converged and it < maxiter:
        ap = yield from ctx.normal(p)
        p_ap = (yield api.global_sum(dot(p, ap)))[0].real
        alpha = rr / p_ap
        x += alpha * p
        resid -= alpha * ap
        rr_new = (yield api.global_sum(dot(resid, resid)))[0].real
        beta = rr_new / rr
        p = resid + beta * p
        rr = rr_new
        it += 1
        residuals.append(float(np.sqrt(rr / bb)))
        converged = rr <= target
        if api.trace is not None:
            api.trace.emit(
                "cg.iteration",
                rank=api.rank,
                iteration=it,
                residual=residuals[-1],
            )
        if checkpoint is not None and checkpoint.due(it, converged):
            _cg_checkpoint(api, checkpoint, it, x, resid, p, rr, bb, residuals)
    return x, bool(converged), it, residuals


def _cg_checkpoint(api, store, it, x, resid, p, rr, bb, residuals):
    """Stream one rank's end-of-iteration CG state to the host-side store."""
    store.put(
        api.rank,
        it,
        {
            "it": it,
            "x": x,
            "resid": resid,
            "p": p,
            "rr": rr,
            "bb": bb,
            "residuals": residuals,
        },
    )
    if api.trace is not None:
        api.trace.emit("cg.checkpoint", rank=api.rank, iteration=it)


def cg_rank_program(
    api,
    mapping,
    local_links,
    local_b,
    mass,
    r=1.0,
    clover_locals=None,
    tol=1e-8,
    maxiter=2000,
    checkpoint=None,
    resume_states=None,
):
    """The per-rank node program: Wilson/clover CGNE with machine collectives.

    Public so job-launching layers (the service scheduler) can hand it to
    :meth:`~repro.machine.machine.QCDOCMachine.launch_partition` directly;
    :func:`solve_on_machine` wraps it with scatter/gather for the blocking
    single-job path.
    """
    rank = api.rank
    ctx = DistributedWilsonContext(
        api,
        mapping.local_shape,
        local_links[rank],
        mass=mass,
        r=r,
        clover_tensor=None if clover_locals is None else clover_locals[rank],
    )
    result = yield from machine_cgne(
        api,
        ctx,
        local_b[rank],
        tol,
        maxiter,
        checkpoint=checkpoint,
        resume_state=None if resume_states is None else resume_states[rank],
    )
    return result


def solve_on_machine(
    machine: QCDOCMachine,
    partition: Partition,
    gauge: GaugeField,
    b: np.ndarray,
    mass: float,
    r: float = 1.0,
    c_sw: Optional[float] = None,
    tol: float = 1e-8,
    maxiter: int = 2000,
    max_time: float = 10_000.0,
    checkpoint: Optional[CGCheckpointStore] = None,
    resume: bool = False,
) -> DistributedSolveResult:
    """Solve ``D x = b`` (Wilson, or clover when ``c_sw`` given) on the
    simulated machine via CG on the normal equations.

    The lattice is tiled over ``partition``; returns the gathered global
    solution plus machine-level accounting (simulated time, flops,
    checksum audit).

    With ``checkpoint`` given, each rank streams its iteration state to
    the host-side store at the store's cadence; ``resume=True`` loads the
    newest complete generation before launching the node programs (loaded
    host-side, so every rank sees one consistent generation even though
    a fault may have caught them mid-stride).  A solve resumed on a
    *different* healthy partition of the same logical shape reproduces
    the uninterrupted residual history bit for bit.
    """
    resume_states: Optional[Dict[int, dict]] = None
    if resume:
        if checkpoint is None:
            raise ConfigError("resume=True needs a checkpoint store")
        resume_states = checkpoint.latest_complete_states(partition.n_nodes)
    mapping = PhysicsMapping(gauge.geometry, partition)
    if b.shape != (gauge.geometry.volume, 4, 3):
        raise ConfigError(f"bad source shape {b.shape}")
    local_links = mapping.scatter_gauge(gauge)
    local_b = mapping.scatter_field(b)
    clover_locals = None
    if c_sw is not None:
        serial = CloverDirac(gauge, mass=mass, c_sw=c_sw, r=r)
        clover_locals = mapping.scatter_field(serial.clover_tensor)

    flops_before = sum(n.flops_charged for n in machine.nodes.values())
    t0 = machine.sim.now
    results = machine.run_partition(
        partition,
        cg_rank_program,
        max_time=max_time,
        mapping=mapping,
        local_links=local_links,
        local_b=local_b,
        mass=mass,
        r=r,
        clover_locals=clover_locals,
        tol=tol,
        maxiter=maxiter,
        checkpoint=checkpoint,
        resume_states=resume_states,
    )
    machine_time = machine.sim.now - t0
    flops = sum(n.flops_charged for n in machine.nodes.values()) - flops_before

    return gather_cg_results(machine, mapping, results, machine_time, flops)


def gather_cg_results(
    machine, mapping, results, machine_time, flops, audit=True
):
    """Assemble per-rank ``machine_cgne`` returns into one
    :class:`DistributedSolveResult`.

    ``audit=False`` skips the machine-wide link-checksum comparison —
    the per-job path on a shared machine, where other jobs are still
    mid-flight and the service audits once at drain.
    """
    x_locals = np.stack([res[0] for res in results])
    x = mapping.gather_field(x_locals)
    # Control flow is driven by globally-summed residuals, so every rank
    # must agree exactly on iterations and convergence.
    iterations = {res[2] for res in results}
    if len(iterations) != 1:
        raise ConfigError(f"ranks disagree on iteration count: {iterations}")
    return DistributedSolveResult(
        x=x,
        converged=all(res[1] for res in results),
        iterations=results[0][2],
        residuals=results[0][3],
        machine_time=machine_time,
        flops=flops,
        checksum_mismatches=machine.audit_checksums() if audit else [],
    )


def _dwf_program(api, mapping, local_links, local_b, Ls, M5, mf, tol, maxiter):
    """Per-rank node program: domain-wall CGNE (5D fields, 4D halos)."""
    from repro.parallel.pdwf import DistributedDWFContext

    ctx = DistributedDWFContext(
        api, mapping.local_shape, local_links[api.rank], Ls=Ls, M5=M5, mf=mf
    )
    result = yield from machine_cgne(api, ctx, local_b[api.rank], tol, maxiter)
    return result


def solve_dwf_on_machine(
    machine: QCDOCMachine,
    partition: Partition,
    gauge: GaugeField,
    b: np.ndarray,
    Ls: int,
    M5: float = 1.8,
    mf: float = 0.1,
    tol: float = 1e-8,
    maxiter: int = 4000,
    max_time: float = 10_000.0,
) -> DistributedSolveResult:
    """Solve the domain-wall system ``D x = b`` on the simulated machine.

    ``b`` has shape ``(Ls, V, 4, 3)``; the fifth dimension stays node-local
    while space-time tiles over the partition.
    """
    mapping = PhysicsMapping(gauge.geometry, partition)
    if b.shape != (Ls, gauge.geometry.volume, 4, 3):
        raise ConfigError(f"bad domain-wall source shape {b.shape}")
    local_links = mapping.scatter_gauge(gauge)
    # scatter each s slice over the tiles: (Ls, V, ...) -> (ranks, Ls, v, ...)
    local_b = np.stack(
        [mapping.scatter_field(b[s]) for s in range(Ls)], axis=1
    )

    flops_before = sum(n.flops_charged for n in machine.nodes.values())
    t0 = machine.sim.now
    results = machine.run_partition(
        partition,
        _dwf_program,
        max_time=max_time,
        mapping=mapping,
        local_links=local_links,
        local_b=local_b,
        Ls=Ls,
        M5=M5,
        mf=mf,
        tol=tol,
        maxiter=maxiter,
    )
    machine_time = machine.sim.now - t0
    flops = sum(n.flops_charged for n in machine.nodes.values()) - flops_before

    # gather: per-rank (Ls, v, ...) -> global (Ls, V, ...)
    x_locals = np.stack([res[0] for res in results])  # (ranks, Ls, v, 4, 3)
    x = np.stack(
        [mapping.gather_field(x_locals[:, s]) for s in range(Ls)]
    )
    iterations = {res[2] for res in results}
    if len(iterations) != 1:
        raise ConfigError(f"ranks disagree on iteration count: {iterations}")
    return DistributedSolveResult(
        x=x,
        converged=all(res[1] for res in results),
        iterations=results[0][2],
        residuals=results[0][3],
        machine_time=machine_time,
        flops=flops,
        checksum_mismatches=machine.audit_checksums(),
    )


def _staggered_program(api, mapping, local_fat, local_long, local_b, mass, tol, maxiter):
    """Per-rank node program: ASQTAD CGNE (1-hop and 3-hop halos)."""
    from repro.parallel.pstaggered import DistributedStaggeredContext

    ctx = DistributedStaggeredContext(
        api,
        mapping.local_shape,
        local_fat[api.rank],
        local_long[api.rank],
        mass=mass,
    )
    result = yield from machine_cgne(api, ctx, local_b[api.rank], tol, maxiter)
    return result


def solve_staggered_on_machine(
    machine: QCDOCMachine,
    partition: Partition,
    gauge: GaugeField,
    b: np.ndarray,
    mass: float,
    tol: float = 1e-8,
    maxiter: int = 2000,
    max_time: float = 10_000.0,
) -> DistributedSolveResult:
    """Solve the ASQTAD system ``D x = b`` on the simulated machine.

    The fat and Naik links are smeared from the global gauge field before
    scattering (smearing needs neighbour links); the solve itself runs
    distributed, exchanging both depth-1 and depth-3 halos per hop.
    """
    from repro.fermions.staggered import fat_links, long_links

    mapping = PhysicsMapping(gauge.geometry, partition)
    if b.shape != (gauge.geometry.volume, 3):
        raise ConfigError(f"bad staggered source shape {b.shape}")
    fat = fat_links(gauge)
    long = long_links(gauge)
    ndim = gauge.geometry.ndim
    v = mapping.tiling.local_volume
    local_fat = np.empty((mapping.n_ranks, ndim, v, 3, 3), dtype=np.complex128)
    local_long = np.empty_like(local_fat)
    for mu in range(ndim):
        local_fat[:, mu] = mapping.tiling.scatter(fat[mu])
        local_long[:, mu] = mapping.tiling.scatter(long[mu])
    local_b = mapping.scatter_field(b)

    flops_before = sum(n.flops_charged for n in machine.nodes.values())
    t0 = machine.sim.now
    results = machine.run_partition(
        partition,
        _staggered_program,
        max_time=max_time,
        mapping=mapping,
        local_fat=local_fat,
        local_long=local_long,
        local_b=local_b,
        mass=mass,
        tol=tol,
        maxiter=maxiter,
    )
    machine_time = machine.sim.now - t0
    flops = sum(n.flops_charged for n in machine.nodes.values()) - flops_before
    return gather_cg_results(machine, mapping, results, machine_time, flops)
