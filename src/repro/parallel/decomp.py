"""Mapping the physics lattice onto a machine partition.

"On a four-dimensional machine, each processor becomes responsible for the
local variables associated with a space-time hypercube" (paper section 1).
:class:`PhysicsMapping` pairs a global :class:`~repro.lattice.geometry.Tiling`
with a :class:`~repro.machine.topology.Partition` whose logical dimensions
equal the processor grid — tile index *is* logical rank (both enumerate
lexicographically) — and provides the scatter/gather of gauge and fermion
fields.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.lattice.gauge import GaugeField
from repro.lattice.geometry import LatticeGeometry, Tiling
from repro.machine.topology import Partition
from repro.util.errors import ConfigError


class PhysicsMapping:
    """One tile of the physics lattice per logical machine rank."""

    def __init__(self, geometry: LatticeGeometry, partition: Partition):
        pgrid = partition.logical_dims
        if len(pgrid) != geometry.ndim:
            raise ConfigError(
                f"lattice is {geometry.ndim}-dim but partition is "
                f"{len(pgrid)}-dim; remap the partition first"
            )
        self.geometry = geometry
        self.partition = partition
        self.tiling = geometry.tile(pgrid)
        self.local_geometry = self.tiling.local_geometry
        self.local_shape = self.tiling.local_shape
        self.n_ranks = partition.n_nodes

    # -- fermion fields ------------------------------------------------------
    def scatter_field(self, field: np.ndarray) -> np.ndarray:
        """Global ``(V, ...)`` -> per-rank ``(n_ranks, v, ...)``."""
        return self.tiling.scatter(field)

    def gather_field(self, locals_: np.ndarray) -> np.ndarray:
        return self.tiling.gather(np.asarray(locals_))

    # -- gauge fields ---------------------------------------------------------
    def scatter_gauge(self, gauge: GaugeField) -> np.ndarray:
        """``(n_ranks, ndim, v, 3, 3)`` local link sets.

        Only the links *owned* by each tile are shipped; the backward-face
        link matrices a node would need (``U_mu(x - mu)`` for ``x`` on the
        low face) are never fetched — instead the *owner* applies them and
        sends the product, halving gauge traffic exactly as the real
        half-spinor kernels do.
        """
        if gauge.geometry != self.geometry:
            raise ConfigError("gauge field geometry does not match the mapping")
        ndim = self.geometry.ndim
        v = self.tiling.local_volume
        out = np.empty((self.n_ranks, ndim, v, 3, 3), dtype=np.complex128)
        for mu in range(ndim):
            out[:, mu] = self.tiling.scatter(gauge.links[mu])
        return out

    def rank_coord(self, rank: int) -> Sequence[int]:
        return self.partition.logical_coord(rank)

    def __repr__(self) -> str:
        return (
            f"PhysicsMapping({self.geometry.shape} over "
            f"{self.partition.logical_dims})"
        )
