"""Distributed two-flavor dynamical HMC on the simulated machine.

The paper's production workload — "evolve[ing] a QCD system through the
phase space of the Feynman path integral" with Dirac solves inside every
MD force step (the five-day 128-node verification run) — executed end to
end on the machine model: the pseudofermion heat-bath
(``phi = D^+ eta``), every fermion-force CG solve, the ``Y = D X`` apply,
the force outer products (with their own SCU halo exchange) and the
Metropolis pseudofermion action all run as node programs through
:class:`~repro.parallel.pdirac.DistributedWilsonContext`, while the RNG
draws, the gauge force, the symplectic drift and the accept/reject test
stay host-side with arithmetic identical to the serial driver.

Bit-identity contract
---------------------
:class:`DistributedTwoFlavorHMC` produces *exactly* the trajectory
history of :class:`repro.hmc.pseudofermion.TwoFlavorWilsonHMC` — same
``delta_h`` doubles, same acceptances, same ``cg_iterations``, same final
links — at any node count, shard count or word batch, because every
ingredient is individually bitwise stable under tiling:

* the operator applications (``D``, ``D^+``, ``D^+ D``) are the
  established bit-identical distributed kernels of ``pdirac``;
* every inner product is the decomposition-independent canonical site
  dot (:mod:`repro.solvers.sitedot`), serial and machine flavours
  summing the *same* length-``V`` site array in the same order;
* the CG loops (:func:`~repro.parallel.pcg.machine_cg`,
  :func:`~repro.parallel.pcg.machine_mixed_cg`) reuse the serial fused
  vector kernels, which are elementwise;
* the fermion-force kernel mirrors the serial einsum chain per site,
  with raw ``X``/``Y`` low faces exchanged over the SCU and the
  ``(r + gamma_mu)`` projection recomputed on received rows (projection
  is row-independent, so patch-then-project equals project-then-gather).

Named RNG streams keyed by the absolute trajectory index make the
evolution a pure function of ``(configuration, seed)``, so
:class:`~repro.hmc.checkpoint.HMCCheckpoint` snapshots restore onto a
*different* healthy partition (after a hard fault and a Qdaemon remap)
and replay the chain bit-identically — benchmark E18.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.comms.api import full_descriptor
from repro.fermions.flops import (
    WILSON_FORCE_FLOPS_PER_DIRECTION,
    WILSON_FORCE_HALO_PROJ_FLOPS,
)
from repro.fermions.gamma import GAMMA, apply_spin_matrix
from repro.hmc.actions import WilsonGaugeAction, traceless_antihermitian
from repro.hmc.hmc import TrajectoryResult, kinetic_energy
from repro.hmc.integrators import omelyan
from repro.hmc.pseudofermion import SOLVERS
from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import dagger, random_algebra
from repro.machine.machine import QCDOCMachine
from repro.machine.topology import Partition
from repro.parallel.decomp import PhysicsMapping
from repro.parallel.pcg import (
    MachineSiteDot,
    machine_cg,
    machine_mixed_cg,
    machine_multishift_cg,
)
from repro.parallel.pdirac import DistributedWilsonContext
from repro.solvers.sitedot import canonical_dot
from repro.util.errors import ConfigError
from repro.util.rng import rng_stream


def wilson_force_kernel(api, ctx, x_field, y_field):
    """The two-flavor fermion force on one rank's tile (generator).

    Per communicated axis the rank ships the raw low faces of **both**
    solver fields packed into a single transfer (``X`` then ``Y``,
    ``2 * nface`` full spinors — the ``"wilson-force"`` wire format of
    :func:`repro.perfmodel.dirac_perf.halo_payload_words`) and patches
    the received rows into its locally-gathered forward hops.  The
    ``(r + gamma_mu) Y(x + mu)`` projection is recomputed on the halo
    rows — projection is per-site and row-independent, so the patched
    arrays equal the serial project-then-gather bit for bit.

    The per-``mu`` einsum chain then mirrors
    :meth:`repro.hmc.pseudofermion.TwoFlavorWilsonHMC.fermion_force`
    exactly; flops are charged against the exact closed form of
    :func:`repro.perfmodel.dirac_perf.dirac_flops_per_node`
    (``op="wilson-force"``), which the telemetry crosscheck enforces.
    """
    g = ctx.geometry
    v = g.volume
    r = ctx.r
    mem = api.memory
    halos = {}
    events = []
    for mu in ctx.comm_axes:
        plan = ctx.plans[mu]
        nface = len(plan.send_low)
        stage = mem.zeros(f"force_stage{mu}", (2, nface, 4, 3))
        halos[mu] = mem.zeros(f"force_halo{mu}", (2, nface, 4, 3))
        api.cpu_write(f"force_stage{mu}")
        stage[0] = x_field[plan.send_low]
        stage[1] = y_field[plan.send_low]
        events.append(
            api.send(
                mu,
                -1,
                full_descriptor(api.node, f"force_stage{mu}"),
                word_batch=ctx.word_batch,
            )
        )
        events.append(
            api.recv(mu, +1, full_descriptor(api.node, f"force_halo{mu}"))
        )
    yield api.wait(events)

    out = np.empty((g.ndim, v, 3, 3), dtype=np.complex128)
    for mu in range(g.ndim):
        fwd = g.neighbour_fwd(mu)
        proj_minus_y = r * y_field - apply_spin_matrix(GAMMA[mu], y_field)
        proj_plus_y = r * y_field + apply_spin_matrix(GAMMA[mu], y_field)
        x_fwd = x_field[fwd]
        proj_plus_fwd = proj_plus_y[fwd]
        nface = 0
        if mu in halos:
            api.cpu_read(f"force_halo{mu}")
            plan = ctx.plans[mu]
            halo_x, halo_y = halos[mu][0], halos[mu][1]
            x_fwd[plan.fill_from_fwd] = halo_x
            proj_plus_fwd[plan.fill_from_fwd] = r * halo_y + apply_spin_matrix(
                GAMMA[mu], halo_y
            )
            nface = len(plan.fill_from_fwd)
        b1 = np.einsum("xtc,xta->xca", x_fwd, np.conj(proj_minus_y))
        d2 = np.einsum("xtb,xtc->xbc", x_field, np.conj(proj_plus_fwd))
        grad = ctx.links[mu] @ b1 - d2 @ dagger(ctx.links[mu])
        out[mu] = 0.5 * traceless_antihermitian(grad)
        yield api.compute(
            v * WILSON_FORCE_FLOPS_PER_DIRECTION
            + nface * WILSON_FORCE_HALO_PROJ_FLOPS,
            kernel="fermion_force",
        )
    return out


def _force_context(api, mapping, local_links, mass, r, word_batch):
    return DistributedWilsonContext(
        api,
        mapping.local_shape,
        local_links[api.rank],
        mass=mass,
        r=r,
        word_batch=word_batch,
    )


def _machine_dot(api, mapping):
    return MachineSiteDot(
        api, mapping.tiling.global_of[api.rank], mapping.geometry.volume
    )


def _machine_solve(api, ctx, dot, b, solver, tol, maxiter):
    if solver == "mixed":
        x, converged, iters, residuals = yield from machine_mixed_cg(
            api, ctx, b, dot, tol, maxiter
        )
    else:
        x, converged, iters, residuals = yield from machine_cg(
            api, ctx, b, dot, tol, maxiter
        )
    if not converged:
        raise ConfigError(f"fermion-force CG failed to converge in {maxiter}")
    return x, iters


def hmc_heatbath_program(api, mapping, local_links, local_eta, mass, r, word_batch):
    """``phi = D^+ eta`` on the machine (the pseudofermion heat-bath)."""
    ctx = _force_context(api, mapping, local_links, mass, r, word_batch)
    phi = yield from ctx.apply_dagger(local_eta[api.rank])
    return phi.copy()


def hmc_force_program(
    api, mapping, local_links, local_phi, mass, r, solver, tol, maxiter, word_batch
):
    """Solve ``X = (D^+ D)^{-1} phi``, apply ``Y = D X``, form the force."""
    ctx = _force_context(api, mapping, local_links, mass, r, word_batch)
    dot = _machine_dot(api, mapping)
    x, iters = yield from _machine_solve(
        api, ctx, dot, local_phi[api.rank], solver, tol, maxiter
    )
    y = yield from ctx.apply(x)
    force = yield from wilson_force_kernel(api, ctx, x, y.copy())
    if api.trace is not None:
        api.trace.emit("hmc.force", rank=api.rank, iterations=iters)
    return force, iters


def hmc_action_program(
    api, mapping, local_links, local_phi, mass, r, solver, tol, maxiter, word_batch
):
    """``S_pf = phi^+ (D^+ D)^{-1} phi`` for the Metropolis Hamiltonian."""
    ctx = _force_context(api, mapping, local_links, mass, r, word_batch)
    dot = _machine_dot(api, mapping)
    x, iters = yield from _machine_solve(
        api, ctx, dot, local_phi[api.rank], solver, tol, maxiter
    )
    s_pf = yield from dot(local_phi[api.rank], x)
    return s_pf, iters


def hmc_multishift_program(
    api, mapping, local_links, local_b, shifts, mass, r, tol, maxiter, word_batch
):
    """Multi-mass solve ``(D^+ D + sigma) x = b`` for an RHMC-style action."""
    ctx = _force_context(api, mapping, local_links, mass, r, word_batch)
    dot = _machine_dot(api, mapping)
    shifts_out, x, converged, iters, residuals = yield from machine_multishift_cg(
        api, ctx, local_b[api.rank], shifts, dot, tol, maxiter
    )
    return [x[s] for s in shifts_out], converged, iters, residuals


def multishift_solve_on_machine(
    machine: QCDOCMachine,
    partition: Partition,
    gauge: GaugeField,
    b: np.ndarray,
    shifts,
    mass: float,
    r: float = 1.0,
    tol: float = 1e-8,
    maxiter: int = 2000,
    max_time: float = 1e9,
    word_batch=None,
):
    """Distributed multi-shift CG on the normal operator (blocking).

    Returns ``(x, converged, iterations, residuals)`` with ``x`` a dict
    of *global* solution fields keyed by shift — the machine counterpart
    of :func:`repro.solvers.multishift.multishift_cg` (which it matches
    bit for bit when the serial solve uses the canonical site dot).
    """
    mapping = PhysicsMapping(gauge.geometry, partition)
    if b.shape != (gauge.geometry.volume, 4, 3):
        raise ConfigError(f"bad source shape {b.shape}")
    results = machine.run_partition(
        partition,
        hmc_multishift_program,
        max_time=max_time,
        mapping=mapping,
        local_links=mapping.scatter_gauge(gauge),
        local_b=mapping.scatter_field(b),
        shifts=[float(s) for s in shifts],
        mass=mass,
        r=r,
        tol=tol,
        maxiter=maxiter,
        word_batch=word_batch,
    )
    iterations = {res[2] for res in results}
    if len(iterations) != 1:
        raise ConfigError(f"ranks disagree on iteration count: {iterations}")
    x = {}
    for i, s in enumerate([float(v) for v in shifts]):
        x[s] = mapping.gather_field(np.stack([res[0][i] for res in results]))
    return x, all(res[1] for res in results), results[0][2], results[0][3]


class DistributedTwoFlavorHMC:
    """Two-flavor Wilson HMC whose fermionic work runs on the machine.

    Drop-in for :class:`~repro.hmc.pseudofermion.TwoFlavorWilsonHMC`
    (same constructor physics parameters, same ``trajectory``/``run``/
    ``history``/``cg_iterations``/``fingerprint`` surface, checkpoints
    through :class:`~repro.hmc.checkpoint.HMCCheckpoint`) with the
    machine and partition prepended.  Each trajectory launches
    ``2 * n_steps + 2`` node-program runs: the heat-bath, two force
    evaluations per Omelyan step (links change, so each run rebuilds its
    operator context from freshly scattered links), and the final
    pseudofermion action.  Run-allocated node buffers are freed after
    every run so repeated launches on one machine never collide.
    """

    def __init__(
        self,
        machine: QCDOCMachine,
        partition: Partition,
        gauge: GaugeField,
        beta: float,
        mass: float,
        seed: int = 0,
        n_steps: int = 10,
        dt: float = 0.05,
        cg_tol: float = 1e-10,
        cg_maxiter: int = 4000,
        solver: str = "cg",
        r: float = 1.0,
        word_batch=None,
        max_time: float = 1e9,
    ):
        if solver not in SOLVERS:
            raise ConfigError(
                f"unknown force solver {solver!r}; options: {list(SOLVERS)}"
            )
        self.machine = machine
        self.partition = partition
        self.mapping = PhysicsMapping(gauge.geometry, partition)
        self.gauge = gauge
        self.gauge_action = WilsonGaugeAction(beta)
        self.mass = float(mass)
        self.seed = int(seed)
        self.n_steps = int(n_steps)
        self.dt = float(dt)
        self.cg_tol = float(cg_tol)
        self.cg_maxiter = int(cg_maxiter)
        self.solver = solver
        self.r = float(r)
        self.word_batch = word_batch
        self.max_time = float(max_time)
        self.trajectory_index = 0
        self.history: List[TrajectoryResult] = []
        self.cg_iterations: List[int] = []

    # -- machine plumbing --------------------------------------------------------
    def rebind(self, machine: QCDOCMachine, partition: Partition) -> None:
        """Re-home the evolution onto a congruent (healthy) partition.

        The fault-recovery path: after a hard fault kills the current
        partition, the Qdaemon maps it out and allocates a spare of the
        same logical shape; the evolution then restores its checkpoint
        and replays bit-identically — tiling, not placement, is what the
        arithmetic sees.
        """
        mapping = PhysicsMapping(self.gauge.geometry, partition)
        if mapping.local_shape != self.mapping.local_shape:
            raise ConfigError(
                f"partition tiles the lattice as {mapping.local_shape}, "
                f"evolution ran at {self.mapping.local_shape}; refusing"
            )
        self.machine = machine
        self.partition = partition
        self.mapping = mapping

    def _run(self, program, **kwargs):
        """``run_partition`` + free the buffers the programs allocated.

        The success path of :meth:`QCDOCMachine.run_partition` leaves
        node buffers in place (the fault path finalizes); an HMC
        trajectory launches many runs on the same nodes, so each run
        cleans up after itself exactly the way
        :meth:`~repro.machine.machine.PartitionRun.finalize` would.
        """
        nodes = [
            self.machine.nodes[self.partition.physical_node(rank)]
            for rank in range(self.partition.n_nodes)
        ]
        pre = {n.node_id: set(n.memory.buffer_names()) for n in nodes}
        try:
            return self.machine.run_partition(
                self.partition, program, max_time=self.max_time, **kwargs
            )
        finally:
            for n in nodes:
                for name in set(n.memory.buffer_names()) - pre[n.node_id]:
                    n.memory.free(name)

    def _solve_kwargs(self, gauge: GaugeField, phi: np.ndarray) -> dict:
        return dict(
            mapping=self.mapping,
            local_links=self.mapping.scatter_gauge(gauge),
            local_phi=self.mapping.scatter_field(phi),
            mass=self.mass,
            r=self.r,
            solver=self.solver,
            tol=self.cg_tol,
            maxiter=self.cg_maxiter,
            word_batch=self.word_batch,
        )

    def _record_iterations(self, results, index: int) -> None:
        iters = {res[index] for res in results}
        if len(iters) != 1:
            raise ConfigError(f"ranks disagree on CG iteration count: {iters}")
        self.cg_iterations.append(results[0][index])

    # -- pseudofermion machinery (machine-side) ----------------------------------
    def fermion_force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        results = self._run(hmc_force_program, **self._solve_kwargs(gauge, phi))
        self._record_iterations(results, 1)
        stacked = np.stack([res[0] for res in results])
        g = self.gauge.geometry
        out = np.empty((g.ndim, g.volume, 3, 3), dtype=np.complex128)
        for mu in range(g.ndim):
            out[mu] = self.mapping.tiling.gather(stacked[:, mu])
        return out

    def pseudofermion_action(self, gauge: GaugeField, phi: np.ndarray) -> float:
        results = self._run(hmc_action_program, **self._solve_kwargs(gauge, phi))
        self._record_iterations(results, 1)
        values = {complex(res[0]) for res in results}
        if len(values) != 1:
            raise ConfigError(f"ranks disagree on S_pf: {values}")
        return float(results[0][0].real)

    def total_force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        return self.gauge_action.force(gauge) + self.fermion_force(gauge, phi)

    # -- trajectories ------------------------------------------------------------
    def draw_fields(self):
        """Host-side RNG draws (identical streams to the serial driver);
        the heat-bath ``phi = D^+ eta`` runs on the machine."""
        g = self.gauge.geometry
        rng_p = rng_stream(self.seed, f"momenta/{self.trajectory_index}")
        momenta = random_algebra(rng_p, g.ndim * g.volume).reshape(
            g.ndim, g.volume, 3, 3
        )
        rng_e = rng_stream(self.seed, f"eta/{self.trajectory_index}")
        eta = (
            rng_e.standard_normal((g.volume, 4, 3))
            + 1j * rng_e.standard_normal((g.volume, 4, 3))
        ) / np.sqrt(2.0)
        results = self._run(
            hmc_heatbath_program,
            mapping=self.mapping,
            local_links=self.mapping.scatter_gauge(self.gauge),
            local_eta=self.mapping.scatter_field(eta),
            mass=self.mass,
            r=self.r,
            word_batch=self.word_batch,
        )
        phi = self.mapping.gather_field(np.stack(results))
        return momenta, eta, phi

    def trajectory(self) -> TrajectoryResult:
        momenta, eta, phi = self.draw_fields()
        # S_pf(start) = eta^+ eta exactly, by construction of phi.
        h_old = (
            kinetic_energy(momenta)
            + self.gauge_action(self.gauge)
            + float(canonical_dot(eta, eta).real)
        )
        proposal = self.gauge.copy()
        # the shared Omelyan loop; the closed-over force runs on the machine
        omelyan(
            proposal,
            momenta,
            lambda g: self.total_force(g, phi),
            self.n_steps,
            self.dt,
        )
        h_new = (
            kinetic_energy(momenta)
            + self.gauge_action(proposal)
            + self.pseudofermion_action(proposal, phi)
        )
        delta_h = h_new - h_old

        rng = rng_stream(self.seed, f"metropolis/{self.trajectory_index}")
        accepted = bool(rng.random() < np.exp(min(0.0, -delta_h)))
        if accepted:
            self.gauge.links = proposal.links
        result = TrajectoryResult(
            index=self.trajectory_index,
            delta_h=float(delta_h),
            accepted=accepted,
            plaquette=self.gauge.plaquette(),
            action=self.gauge_action(self.gauge),
        )
        self.history.append(result)
        self.trajectory_index += 1
        return result

    def run(self, n_trajectories: int) -> List[TrajectoryResult]:
        return [self.trajectory() for _ in range(n_trajectories)]

    @property
    def acceptance_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(t.accepted for t in self.history) / len(self.history)

    def fingerprint(self) -> bytes:
        return self.gauge.links.tobytes()
