"""Distributed lattice QCD on the simulated QCDOC machine.

This is the paper's workload actually running on the machine model: the
physics lattice is tiled over a logical partition (one tile per node,
paper section 1's "trivial mapping of the physics coordinate grid to the
machine mesh"), each node program applies the Wilson/clover operator to its
tile with **halo exchange through the simulated SCU DMA engines**, and the
conjugate-gradient reductions run through the **SCU global-sum tree** — so
a distributed solve exercises links, windows, checksums and collectives end
to end, and its residual history can be compared against the serial solver.
"""

from repro.parallel.decomp import PhysicsMapping
from repro.parallel.pdirac import DistributedWilsonContext
from repro.parallel.pstaggered import DistributedStaggeredContext
from repro.parallel.pdwf import DistributedDWFContext
from repro.parallel.pcg import (
    DistributedSolveResult,
    MachineSiteDot,
    machine_cg,
    machine_cgne,
    machine_mixed_cg,
    machine_multishift_cg,
    solve_dwf_on_machine,
    solve_on_machine,
    solve_staggered_on_machine,
)
from repro.parallel.phmc import (
    DistributedTwoFlavorHMC,
    multishift_solve_on_machine,
)

__all__ = [
    "PhysicsMapping",
    "DistributedWilsonContext",
    "DistributedStaggeredContext",
    "DistributedDWFContext",
    "DistributedSolveResult",
    "MachineSiteDot",
    "machine_cg",
    "machine_cgne",
    "machine_mixed_cg",
    "machine_multishift_cg",
    "solve_on_machine",
    "solve_staggered_on_machine",
    "solve_dwf_on_machine",
    "DistributedTwoFlavorHMC",
    "multishift_solve_on_machine",
]
