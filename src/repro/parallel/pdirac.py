"""The distributed Wilson/clover operator: a node program building block.

Each rank owns one tile of the lattice.  Applying the hopping term needs,
per axis ``mu``:

* the **+mu neighbour's low face** of the source field — used as "my
  forward neighbour's value" on my high face; and
* the **-mu neighbour's** precomputed ``U^+`` products from *its* high
  face — used as my backward hopping term on my low face.  Shipping the
  product instead of (spinor + gauge link) halves the traffic and matches
  the zero-copy, sender-side-multiply structure of the real kernels.

Half-spinor compression (``compress=True``, the default at ``r == 1``)
----------------------------------------------------------------------
The Wilson hopping projector ``(1 -+ gamma_mu)`` has rank 2, so only two
of the four spin rows are independent (:func:`repro.fermions.gamma.
spin_project`).  QCDOC's SCU therefore never puts a full spinor on the
wire: the sender projects *before* posting the send, and the receiver
reconstructs after the SU(3) multiply.  Both directions ship
``HALF_SPINOR_WORDS`` = 12 words per face site instead of 24:

* **forward halo**: the sender spin-projects its low face with
  ``(1 - gamma_mu)`` into ``stage_fwd`` and ships the half spinor; the
  receiver multiplies by its own ``U_mu`` and reconstructs.
* **backward halo**: the sender fuses the projection into the staged
  product — ``U^+ (1 + gamma_mu) psi`` on its high face is a **half
  product** (2 spin rows), shipped as-is and row-copied by the receiver.

Because projection commutes with the colour multiply and is row-
independent, the assembled physics is *bit-identical* to the full-spinor
exchange and to the serial operator.  ``compress=False`` (forced for
``r != 1``, where the projector has full rank) keeps the original
full-spinor wire format for comparison benchmarks.

All four transfers per axis run through **persistent SCU descriptors**
stored once at context creation: every subsequent operator application
starts its 4-ndim transfers with a *single* ``start_stored`` call, which is
precisely the "only a single write (start transfer) is needed to start up
to 24 communications" usage of paper section 3.3.

Two-phase overlapped pipeline (default)
---------------------------------------
The paper's sustained-efficiency claims (section 4) model dslash time as
``T_interior + max(T_comm, T_boundary)`` — DMA transfers run *concurrently*
with CPU arithmetic.  ``hopping`` therefore splits each application into

1. an **interior phase**: the ``"early"`` descriptor group is started
   the instant the source lands in ``work`` (*both* receives, plus the
   raw low-face send when uncompressed, so no link ever idles waiting
   for a late receive); the sender-side staging buffers are then
   computed, group ``"staged"`` starts their sends, and every matvec
   that needs no halo data — plus the full per-site merge on interior
   sites (``depth <= x_mu < L_mu - depth`` on all communicated axes) —
   runs while the wires are busy;
2. a **boundary phase**: a completion-order drain loop
   (:meth:`CommsAPI.wait_any`) patches the per-axis face rows as each
   axis's halo lands — forward-hop rows need one SU(3) matvec per face
   site, backward-hop rows are a pure row copy of the received products —
   then merges the boundary sites.

The assembled hopping sum is **bit-identical** (``==``, not allclose) to
the monolithic path (``overlap=False``) and to the serial operator: all
per-site kernels are row-independent einsums, the interior/boundary site
sets are a disjoint sorted cover, and the per-``mu`` accumulation order of
the merge is preserved exactly.  Simulated flops charged are likewise
identical — only their placement on the timeline changes.

The source field always sits in the node-memory buffer ``work`` (so the
descriptors can be persistent), and every numpy evaluation charges
simulated CPU time through the cost sheets of :mod:`repro.fermions.flops`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comms.api import CommsAPI, face_descriptor, full_descriptor
from repro.fermions.flops import (
    CLOVER_TERM_FLOPS,
    DIAG_AXPY_FLOPS,
    HALF_SPINOR_WORDS,
    MATVEC_SU3,
    SPINOR_WORDS,
    operator_cost,
)
from repro.fermions.gamma import (
    GAMMA,
    apply_spin_matrix,
    gamma5_sandwich,
    spin_project,
    spin_reconstruct,
)
from repro.lattice.gauge import cmatvec
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.halos import halo_exchange_plan, interior_boundary_sites
from repro.lattice.su3 import dagger
from repro.machine.scu import normalise_word_batch
from repro.util.errors import ConfigError
from repro.util.hotpath import hot_path

#: 64-bit words per Wilson spinor site (12 complex doubles) — the single
#: source of truth is :mod:`repro.fermions.flops`.
WORDS_PER_SITE = SPINOR_WORDS
#: 64-bit words per compressed face site (6 complex doubles)
HALF_WORDS_PER_SITE = HALF_SPINOR_WORDS


class DistributedWilsonContext:
    """Per-rank state for the distributed Wilson (or clover) operator.

    Parameters
    ----------
    api:
        The rank's :class:`CommsAPI`.
    local_shape:
        The tile's lattice extents (must match the partition's grid).
    links:
        ``(ndim, v, 3, 3)`` local gauge links from
        :meth:`repro.parallel.decomp.PhysicsMapping.scatter_gauge`.
    clover_tensor:
        Optional local ``(v, 4, 3, 4, 3)`` clover term (site-local, so
        distribution is a plain scatter).
    overlap:
        When ``True`` (default) ``hopping`` runs the two-phase
        interior/boundary pipeline overlapping DMA with compute; when
        ``False`` it runs the serialized monolithic assembly.  Both paths
        produce bit-identical output and charge identical flops.
    compress:
        When ``True`` the halo exchange ships spin-projected **half
        spinors** (12 words per face site); ``False`` keeps the
        full-spinor wire format (24 words).  Defaults to ``r == 1.0``,
        the only case where the rank-2 compression is exact; requesting
        compression at ``r != 1`` raises.
    """

    def __init__(
        self,
        api: CommsAPI,
        local_shape,
        links: np.ndarray,
        mass: float,
        r: float = 1.0,
        clover_tensor: Optional[np.ndarray] = None,
        overlap: bool = True,
        compress: Optional[bool] = None,
        word_batch=None,
    ):
        self.api = api
        #: DMA framing of the stored halo exchanges.  ``None`` (default)
        #: inherits the machine's configured ``word_batch`` — the one
        #: knob propagates consistently to every unit; ``"face"`` is the
        #: hot-path configuration, ``1`` the seed's word-at-a-time
        #: protocol (mandatory on lossy links, where go-back-N must
        #: rewind words, not whole faces).
        self.word_batch = (
            None if word_batch is None else normalise_word_batch(word_batch)
        )
        self.geometry = LatticeGeometry(local_shape)
        v = self.geometry.volume
        ndim = self.geometry.ndim
        if links.shape != (ndim, v, 3, 3):
            raise ConfigError(f"bad local link shape {links.shape}")
        if tuple(api.dims) != tuple(
            g for g in api.partition.logical_dims
        ):
            raise ConfigError("partition mismatch")
        self.links = links
        self.links_dagger_bwd = np.stack(
            [dagger(links[mu][self.geometry.neighbour_bwd(mu)]) for mu in range(ndim)]
        )
        self.mass = float(mass)
        self.r = float(r)
        self.clover_tensor = clover_tensor
        self.plans = {
            mu: halo_exchange_plan(self.geometry, mu) for mu in range(ndim)
        }
        self.cost = operator_cost("wilson" if clover_tensor is None else "clover")
        #: per-site flops of the *hopping term alone*.  The clover cost
        #: sheet's ``flops_per_site`` includes the site-local clover term,
        #: which :meth:`apply` charges where that einsum actually runs —
        #: basing the hopping charges on the clover sheet double-counted
        #: ``CLOVER_TERM_FLOPS`` per site (the telemetry crosscheck against
        #: :func:`repro.perfmodel.dirac_perf.dirac_flops_per_node` caught
        #: this).
        self.hop_flops_per_site = self.cost.flops_per_site - (
            0 if clover_tensor is None else CLOVER_TERM_FLOPS
        )
        self.overlap = bool(overlap)
        if compress is None:
            compress = self.r == 1.0
        elif compress and self.r != 1.0:
            raise ConfigError(
                "half-spinor compression requires r == 1 (the projector "
                f"(r -+ gamma) has full rank at r={self.r})"
            )
        self.compress = bool(compress)
        #: test seam: when set, called as ``hook(self)`` immediately after
        #: the overlapped pipeline fires its "early" transfer group — i.e.
        #: while all receives are in flight.  The race-sanitizer tests use
        #: it to inject a deterministic premature halo read; ``None``
        #: (default) costs one attribute check per application.
        self.race_injection_hook = None

        #: axes actually decomposed over nodes; an extent-1 logical axis
        #: keeps the whole physics axis on-tile, so its periodic wrap is
        #: local arithmetic and needs no SCU traffic.
        self.comm_axes = [mu for mu in range(ndim) if api.dims[mu] > 1]

        #: disjoint sorted cover of the tile: interior sites touch no halo
        #: and are fully computable during communication; boundary sites
        #: wait on per-axis halo arrival.
        self.interior_sites, self.boundary_sites = interior_boundary_sites(
            self.geometry, tuple(self.comm_axes), depth=1
        )
        #: per-site flops of the per-``mu`` merge (spin project/reconstruct
        #: and accumulate), summed over all axes: the hopping total minus
        #: the 2*ndim SU(3) matvecs charged where the rows are computed.
        self.merge_flops_per_site = (
            self.hop_flops_per_site - DIAG_AXPY_FLOPS - 2 * ndim * MATVEC_SU3
        )

        mem = api.memory
        self.work = mem.zeros("work", (v, 4, 3))
        self.halo_fwd = {}
        self.halo_bwd = {}
        self.stage_fwd = {}
        self.stage_bwd = {}
        #: spin rows per wire site: 2 (half spinor) when compressed, 4 raw
        spin_rows = 2 if self.compress else 4
        for mu in self.comm_axes:
            nface = len(self.plans[mu].send_low)
            self.halo_fwd[mu] = mem.zeros(f"halo_fwd{mu}", (nface, spin_rows, 3))
            self.halo_bwd[mu] = mem.zeros(f"halo_bwd{mu}", (nface, spin_rows, 3))
            self.stage_bwd[mu] = mem.zeros(f"stage_bwd{mu}", (nface, spin_rows, 3))
            # Persistent descriptors (stored once, restarted every apply).
            # Group "early" starts the instant the source lands; group
            # "staged" waits for sender-side compute.
            if self.compress:
                # Compressed wire format: both directions ship half
                # spinors (12 words per face site).  The forward halo is
                # spin-projected *before* the send, so its descriptor
                # reads the staged buffer.  The projection is pure
                # sign/permute adds — no SU(3) matvec — so it gets its
                # own start-group "proj" and hits the wire before the
                # backward-product staging compute is charged.
                self.stage_fwd[mu] = mem.zeros(f"stage_fwd{mu}", (nface, 2, 3))
                api.store_send(
                    mu,
                    -1,
                    full_descriptor(api.node, f"stage_fwd{mu}"),
                    group="proj",
                    word_batch=self.word_batch,
                )
            else:
                #  raw low face of `work` -> the -mu neighbour,
                api.store_send(
                    mu,
                    -1,
                    face_descriptor("work", local_shape, mu, -1, WORDS_PER_SITE),
                    group="early",
                    word_batch=self.word_batch,
                )
            #  U^+ (projected) products from my high face -> +mu neighbour,
            api.store_send(
                mu,
                +1,
                full_descriptor(api.node, f"stage_bwd{mu}"),
                group="staged",
                word_batch=self.word_batch,
            )
            #  (half) spinors arriving from the +mu neighbour,
            api.store_recv(
                mu, +1, full_descriptor(api.node, f"halo_fwd{mu}"), group="early"
            )
            #  products arriving from the -mu neighbour.
            api.store_recv(
                mu, -1, full_descriptor(api.node, f"halo_bwd{mu}"), group="early"
            )

        # ---- zero-copy hot-path scratch -------------------------------
        # Every buffer the steady-state pipeline touches is allocated
        # exactly once here and reused across applications (DESIGN.md §12
        # buffer-ownership contract): arrays returned by hopping/apply are
        # owned by the context and valid until its next application.
        dt = self.work.dtype
        self._gather = np.empty((v, 4, 3), dtype=dt)
        self._half = np.empty((v, 2, 3), dtype=dt) if self.compress else None
        self._fwd = [np.empty((v, spin_rows, 3), dtype=dt) for _ in range(ndim)]
        self._bwd = [np.empty((v, spin_rows, 3), dtype=dt) for _ in range(ndim)]
        self._hop_out = np.empty((v, 4, 3), dtype=dt)
        self._apply_out = np.empty((v, 4, 3), dtype=dt)
        self._rot_in = np.empty((v, 4, 3), dtype=dt)
        self._rot_out = np.empty((v, 4, 3), dtype=dt)
        if clover_tensor is not None:
            self._clover_scratch = np.empty((v, 4, 3), dtype=dt)
        # merge scratch (sliced per call to the site-set length)
        self._merge_acc = np.empty((v, 4, 3), dtype=dt)
        self._merge_f = np.empty((v, spin_rows, 3), dtype=dt)
        self._merge_b = np.empty((v, spin_rows, 3), dtype=dt)
        self._merge_t = np.empty((v, 4, 3), dtype=dt)
        self._merge_rec = np.empty((v, 4, 3), dtype=dt)
        # per-axis face scratch + constant gauge-face gathers (links are
        # immutable for the context's lifetime, so the per-application
        # fancy-index/dagger of the seed path is hoisted here once)
        self._face_gather = {}
        self._face_half = {}
        self._face_patch = {}
        self._links_dagger_high = {}
        self._links_fwd_face = {}
        for mu in self.comm_axes:
            plan = self.plans[mu]
            nface = len(plan.send_low)
            self._face_gather[mu] = np.empty((nface, 4, 3), dtype=dt)
            if self.compress:
                self._face_half[mu] = np.empty((nface, 2, 3), dtype=dt)
            self._face_patch[mu] = np.empty((nface, spin_rows, 3), dtype=dt)
            self._links_dagger_high[mu] = dagger(self.links[mu][plan.send_high])
            self._links_fwd_face[mu] = self.links[mu][plan.fill_from_fwd].copy()

    @property
    def volume(self) -> int:
        return self.geometry.volume

    @property
    def diag(self) -> float:
        return self.mass + self.geometry.ndim * self.r

    # -- one hopping application (generator: yields comm/compute events) -----
    def hopping(self, src: np.ndarray):
        """Distributed dslash of ``src``; returns the hopping sum array.

        Dispatches to the overlapped two-phase pipeline or the serialized
        monolithic assembly according to ``self.overlap``; both are
        bit-identical in output and total charged flops.  Each application
        is one hot epoch: the first learns the SCU transfer schedule, the
        rest replay its compiled trace (:mod:`repro.machine.replay`).
        """
        self.api.begin_hot_epoch("pdirac.hopping")
        try:
            if self.overlap:
                out = yield from self._hopping_overlapped(src)
            else:
                out = yield from self._hopping_monolithic(src)
        finally:
            self.api.end_hot_epoch("pdirac.hopping")
        return out

    @hot_path
    def _project_faces(self) -> None:
        """Compressed mode: spin-project the forward (low-face) halo into
        ``stage_fwd`` — ``(1 - gamma_mu) psi``, a half spinor per site.

        Pure sign/permute additions (no SU(3) arithmetic), so the
        overlapped pipeline fires these sends *before* the backward
        staging matvecs are charged; the projection's adds are part of the
        merge accounting, exactly as the seed charged its raw-face sends.
        """
        if not self.compress:
            return
        for mu in self.comm_axes:
            self.api.cpu_write(f"stage_fwd{mu}")
            face = self._face_gather[mu]
            np.take(self.work, self.plans[mu].send_low, axis=0, out=face)
            spin_project(mu, +1, face, out=self.stage_fwd[mu])

    @hot_path
    def _stage_products(self) -> int:
        """Sender-side staging for every communicated axis; returns the
        staged site count (for flop charging).

        Uncompressed: ``U^+ psi`` full products on the high face.
        Compressed: the backward product fuses the ``(1 + gamma_mu)``
        projection *before* the SU(3) multiply — half the colour
        arithmetic, half the wire (the forward halo is projected
        separately in :meth:`_project_faces`).  The ``U^+`` face gathers
        are hoisted to context creation (``_links_dagger_high``).
        """
        staged_sites = 0
        for mu in self.comm_axes:
            plan = self.plans[mu]
            high = plan.send_high
            self.api.cpu_write(f"stage_bwd{mu}")
            face = self._face_gather[mu]
            np.take(self.work, high, axis=0, out=face)
            if self.compress:
                half = self._face_half[mu]
                spin_project(mu, -1, face, out=half)
                cmatvec(self._links_dagger_high[mu], half, out=self.stage_bwd[mu])
            else:
                cmatvec(self._links_dagger_high[mu], face, out=self.stage_bwd[mu])
            staged_sites += len(high)
        return staged_sites

    def _hopping_monolithic(self, src: np.ndarray):
        """Serialized reference path: all comms complete, then all compute."""
        g = self.geometry
        ndim = g.ndim
        self.api.cpu_write("work")
        np.copyto(self.work, src)

        self._project_faces()
        staged_sites = self._stage_products()
        yield self.api.compute(staged_sites * MATVEC_SU3, kernel="dslash")

        # One write starts all 4*ndim stored transfers.
        yield self.api.start_stored()

        # Assemble, exactly mirroring the serial operator's arithmetic.
        out = np.zeros_like(self.work)
        for mu in range(ndim):
            plan = self.plans[mu]
            if self.compress:
                # Half-spinor path: identical statement sequence to the
                # serial r == 1 kernel, with face rows of the projected
                # gather overwritten by the received halves (the sender
                # projected the same values, so the rows are bit-equal).
                half = spin_project(mu, +1, self.work[g.hop(mu, +1)])
                if mu in self.halo_fwd:
                    self.api.cpu_read(f"halo_fwd{mu}")
                    half[plan.fill_from_fwd] = self.halo_fwd[mu]
                fwd = cmatvec(self.links[mu], half)
                out += spin_reconstruct(mu, +1, fwd)
                bwd = cmatvec(
                    self.links_dagger_bwd[mu],
                    spin_project(mu, -1, self.work[g.hop(mu, -1)]),
                )
                if mu in self.halo_bwd:
                    self.api.cpu_read(f"halo_bwd{mu}")
                    bwd[plan.fill_from_bwd] = self.halo_bwd[mu]
                out += spin_reconstruct(mu, -1, bwd)
                continue
            gathered = self.work[g.hop(mu, +1)]
            if mu in self.halo_fwd:
                self.api.cpu_read(f"halo_fwd{mu}")
                gathered[plan.fill_from_fwd] = self.halo_fwd[mu]
            fwd = cmatvec(self.links[mu], gathered)

            bwd = cmatvec(self.links_dagger_bwd[mu], self.work[g.hop(mu, -1)])
            if mu in self.halo_bwd:
                self.api.cpu_read(f"halo_bwd{mu}")
                bwd[plan.fill_from_bwd] = self.halo_bwd[mu]

            out += self.r * (fwd + bwd)
            out -= apply_spin_matrix(GAMMA[mu], fwd - bwd)
        yield self.api.compute(
            self.volume * (self.hop_flops_per_site - DIAG_AXPY_FLOPS),
            kernel="dslash",
        )
        return out

    @hot_path
    def _merge(self, out, fwd_arr, bwd_arr, sites: np.ndarray) -> None:
        """Per-``mu`` spin accumulate on ``sites``.

        Row-for-row the same mu-ascending accumulation sequence as the
        monolithic assembly, so the merged rows are bit-identical: the
        site rows are gathered once into context scratch, every per-mu
        term is added in the monolithic order, and the accumulated rows
        scatter back — per element exactly ``((x + t_0) + t_1) + ...``.
        """
        n = len(sites)
        acc = self._merge_acc[:n]
        f = self._merge_f[:n]
        b = self._merge_b[:n]
        rec = self._merge_rec[:n]
        np.take(out, sites, axis=0, out=acc)
        for mu in range(self.geometry.ndim):
            np.take(fwd_arr[mu], sites, axis=0, out=f)
            np.take(bwd_arr[mu], sites, axis=0, out=b)
            if self.compress:
                # f, b are half products: reconstruct then accumulate —
                # the exact per-row arithmetic of the serial kernel.
                spin_reconstruct(mu, +1, f, out=rec)
                acc += rec
                spin_reconstruct(mu, -1, b, out=rec)
                acc += rec
            else:
                t = self._merge_t[:n]
                np.add(f, b, out=t)
                np.multiply(t, self.r, out=t)
                acc += t
                np.subtract(f, b, out=t)
                apply_spin_matrix(GAMMA[mu], t, out=rec)
                acc -= rec
        out[sites] = acc

    @hot_path
    def _hopping_overlapped(self, src: np.ndarray):
        """Two-phase pipeline: interior compute under way while DMA flies,
        per-axis boundary work as each axis's halo lands.

        Steady-state allocation-free: every numpy result lands in context
        scratch (``out=`` kernels, ``np.take(..., out=)`` gathers); the
        returned hopping sum is the context-owned ``_hop_out`` buffer,
        valid until the next application.
        """
        g = self.geometry
        ndim = g.ndim
        v = self.volume
        api = self.api
        api.cpu_write("work")
        np.copyto(self.work, src)

        # Raw halos (and all receives) hit the wire immediately; the
        # projected forward faces follow as soon as the (uncharged,
        # matvec-free) projection lands; the backward staging products
        # overlap all of those transfers, then their sends start.
        pending = dict(api.start_stored_events(group="early"))
        if self.race_injection_hook is not None:
            self.race_injection_hook(self)
        self._project_faces()
        pending.update(api.start_stored_events(group="proj"))
        staged_sites = self._stage_products()
        if staged_sites:
            yield api.compute(staged_sites * MATVEC_SU3, kernel="dslash")
        pending.update(api.start_stored_events(group="staged"))

        # ---- interior phase: every matvec that needs no halo data -------
        local_flops = 0.0
        fwd_arr = self._fwd
        bwd_arr = self._bwd
        for mu in range(ndim):
            # Forward hop: the full-volume gather/matvec; for comm axes the
            # face rows are placeholders until the halo lands (their
            # matvec is charged in the boundary phase instead).
            np.take(self.work, g.hop(mu, +1), axis=0, out=self._gather)
            if self.compress:
                spin_project(mu, +1, self._gather, out=self._half)
                cmatvec(self.links[mu], self._half, out=fwd_arr[mu])
            else:
                cmatvec(self.links[mu], self._gather, out=fwd_arr[mu])
            nface = len(self.plans[mu].fill_from_fwd) if mu in self.halo_fwd else 0
            local_flops += (v - nface) * MATVEC_SU3
            # Backward hop: the local matvec is always computed in full —
            # face rows are later *replaced* by the received products
            # (exactly as the monolithic path computes then overwrites).
            np.take(self.work, g.hop(mu, -1), axis=0, out=self._gather)
            if self.compress:
                spin_project(mu, -1, self._gather, out=self._half)
                cmatvec(self.links_dagger_bwd[mu], self._half, out=bwd_arr[mu])
            else:
                cmatvec(self.links_dagger_bwd[mu], self._gather, out=bwd_arr[mu])
            local_flops += v * MATVEC_SU3

        out = self._hop_out
        out.fill(0)
        interior = self.interior_sites
        if len(interior):
            self._merge(out, fwd_arr, bwd_arr, interior)
            local_flops += len(interior) * self.merge_flops_per_site
        if local_flops:
            yield api.compute(local_flops, kernel="dslash")

        # ---- boundary phase: drain transfers in completion order --------
        while pending:
            fired = yield api.wait_any(pending.values())
            key = next(k for k, e in pending.items() if e is fired)
            del pending[key]
            kind, mu, sign = key
            if kind != "recv":
                continue  # send completions need no compute
            plan = self.plans[mu]
            if sign == +1:
                # Raw spinors from the +mu neighbour: one matvec per face
                # site patches the forward-hop rows (gauge face rows were
                # gathered once at context creation).
                rows = plan.fill_from_fwd
                api.cpu_read(f"halo_fwd{mu}")
                patch = self._face_patch[mu]
                cmatvec(self._links_fwd_face[mu], self.halo_fwd[mu], out=patch)
                fwd_arr[mu][rows] = patch
                yield api.compute(len(rows) * MATVEC_SU3, kernel="dslash")
            else:
                # Products from the -mu neighbour: pure row copy.
                api.cpu_read(f"halo_bwd{mu}")
                bwd_arr[mu][plan.fill_from_bwd] = self.halo_bwd[mu]

        boundary = self.boundary_sites
        if len(boundary):
            self._merge(out, fwd_arr, bwd_arr, boundary)
            yield api.compute(
                len(boundary) * self.merge_flops_per_site, kernel="dslash"
            )
        return out

    @hot_path
    def apply(self, src: np.ndarray):
        """Distributed ``D src`` (Wilson or clover).

        Returns the context-owned ``_apply_out`` buffer (valid until the
        next application); the arithmetic — ``diag*src - 0.5*hop`` plus
        the clover einsum — is elementwise identical to the seed's
        allocating expression.
        """
        hop = yield from self.hopping(src)
        out = self._apply_out
        flops = DIAG_AXPY_FLOPS * self.volume
        kernel = "diag"
        if self.clover_tensor is not None:
            # site-local term evaluated before ``out`` is written, so a
            # caller passing the context's previous output still reads
            # the pre-overwrite source
            np.einsum(
                "xsatb,xtb->xsa",
                self.clover_tensor,
                src,
                out=self._clover_scratch,
            )
            flops += CLOVER_TERM_FLOPS * self.volume
            kernel = "clover_term"
        np.multiply(src, self.diag, out=out)
        np.multiply(hop, 0.5, out=hop)
        np.subtract(out, hop, out=out)
        if self.clover_tensor is not None:
            np.add(out, self._clover_scratch, out=out)
        yield self.api.compute(flops, kernel=kernel)
        return out

    @hot_path
    def apply_dagger(self, src: np.ndarray):
        """``D^+ src = gamma_5 D gamma_5 src`` (distributed)."""
        rotated = gamma5_sandwich(src, out=self._rot_in)
        applied = yield from self.apply(rotated)
        return gamma5_sandwich(applied, out=self._rot_out)

    def normal(self, src: np.ndarray):
        """``D^+ D src`` — one CG iteration's operator work."""
        d_src = yield from self.apply(src)
        out = yield from self.apply_dagger(d_src)
        return out
