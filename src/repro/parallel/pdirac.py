"""The distributed Wilson/clover operator: a node program building block.

Each rank owns one tile of the lattice.  Applying the hopping term needs,
per axis ``mu``:

* the **+mu neighbour's low face** of the source field (raw spinors) — used
  as "my forward neighbour's value" on my high face; and
* the **-mu neighbour's** precomputed ``U^+ psi`` products from *its* high
  face — used as my backward hopping term on my low face.  Shipping the
  product instead of (spinor + gauge link) halves the traffic and matches
  the zero-copy, sender-side-multiply structure of the real kernels.

All four transfers per axis run through **persistent SCU descriptors**
stored once at context creation: every subsequent operator application
starts its 4-ndim transfers with a *single* ``start_stored`` call, which is
precisely the "only a single write (start transfer) is needed to start up
to 24 communications" usage of paper section 3.3.

The source field always sits in the node-memory buffer ``work`` (so the
descriptors can be persistent), and every numpy evaluation charges
simulated CPU time through the cost sheets of :mod:`repro.fermions.flops`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comms.api import CommsAPI, face_descriptor, full_descriptor
from repro.fermions.flops import CLOVER_TERM_FLOPS, MATVEC_SU3, operator_cost
from repro.fermions.gamma import GAMMA, apply_spin_matrix, gamma5_sandwich
from repro.lattice.gauge import cmatvec
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.halos import halo_exchange_plan
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError

#: 64-bit words per Wilson spinor site (12 complex doubles)
WORDS_PER_SITE = 24


class DistributedWilsonContext:
    """Per-rank state for the distributed Wilson (or clover) operator.

    Parameters
    ----------
    api:
        The rank's :class:`CommsAPI`.
    local_shape:
        The tile's lattice extents (must match the partition's grid).
    links:
        ``(ndim, v, 3, 3)`` local gauge links from
        :meth:`repro.parallel.decomp.PhysicsMapping.scatter_gauge`.
    clover_tensor:
        Optional local ``(v, 4, 3, 4, 3)`` clover term (site-local, so
        distribution is a plain scatter).
    """

    def __init__(
        self,
        api: CommsAPI,
        local_shape,
        links: np.ndarray,
        mass: float,
        r: float = 1.0,
        clover_tensor: Optional[np.ndarray] = None,
    ):
        self.api = api
        self.geometry = LatticeGeometry(local_shape)
        v = self.geometry.volume
        ndim = self.geometry.ndim
        if links.shape != (ndim, v, 3, 3):
            raise ConfigError(f"bad local link shape {links.shape}")
        if tuple(api.dims) != tuple(
            g for g in api.partition.logical_dims
        ):
            raise ConfigError("partition mismatch")
        self.links = links
        self.links_dagger_bwd = np.stack(
            [dagger(links[mu][self.geometry.neighbour_bwd(mu)]) for mu in range(ndim)]
        )
        self.mass = float(mass)
        self.r = float(r)
        self.clover_tensor = clover_tensor
        self.plans = {
            mu: halo_exchange_plan(self.geometry, mu) for mu in range(ndim)
        }
        self.cost = operator_cost("wilson" if clover_tensor is None else "clover")

        #: axes actually decomposed over nodes; an extent-1 logical axis
        #: keeps the whole physics axis on-tile, so its periodic wrap is
        #: local arithmetic and needs no SCU traffic.
        self.comm_axes = [mu for mu in range(ndim) if api.dims[mu] > 1]

        mem = api.memory
        self.work = mem.zeros("work", (v, 4, 3))
        self.halo_fwd = {}
        self.halo_bwd = {}
        self.stage_bwd = {}
        for mu in self.comm_axes:
            nface = len(self.plans[mu].send_low)
            self.halo_fwd[mu] = mem.zeros(f"halo_fwd{mu}", (nface, 4, 3))
            self.halo_bwd[mu] = mem.zeros(f"halo_bwd{mu}", (nface, 4, 3))
            self.stage_bwd[mu] = mem.zeros(f"stage_bwd{mu}", (nface, 4, 3))
            # Persistent descriptors (stored once, restarted every apply):
            #  raw low face of `work` -> the -mu neighbour,
            api.store_send(
                mu,
                -1,
                face_descriptor(
                    "work", local_shape, mu, -1, WORDS_PER_SITE
                ),
            )
            #  U^+ psi products from my high face -> the +mu neighbour,
            api.store_send(mu, +1, full_descriptor(api.node, f"stage_bwd{mu}"))
            #  raw spinors arriving from the +mu neighbour,
            api.store_recv(mu, +1, full_descriptor(api.node, f"halo_fwd{mu}"))
            #  products arriving from the -mu neighbour.
            api.store_recv(mu, -1, full_descriptor(api.node, f"halo_bwd{mu}"))

    @property
    def volume(self) -> int:
        return self.geometry.volume

    @property
    def diag(self) -> float:
        return self.mass + self.geometry.ndim * self.r

    # -- one hopping application (generator: yields comm/compute events) -----
    def hopping(self, src: np.ndarray):
        """Distributed dslash of ``src``; returns the hopping sum array."""
        g = self.geometry
        ndim = g.ndim
        np.copyto(self.work, src)

        # Sender-side products for every high face (the neighbour's
        # backward term), charged as one SU(3) matvec per face site.
        staged_sites = 0
        for mu in self.comm_axes:
            plan = self.plans[mu]
            high = plan.send_high
            np.copyto(
                self.stage_bwd[mu],
                cmatvec(dagger(self.links[mu][high]), self.work[high]),
            )
            staged_sites += len(high)
        yield self.api.compute(staged_sites * MATVEC_SU3)

        # One write starts all 4*ndim stored transfers.
        yield self.api.start_stored()

        # Assemble, exactly mirroring the serial operator's arithmetic.
        out = np.zeros_like(self.work)
        for mu in range(ndim):
            plan = self.plans[mu]
            gathered = self.work[g.hop(mu, +1)]
            if mu in self.halo_fwd:
                gathered[plan.fill_from_fwd] = self.halo_fwd[mu]
            fwd = cmatvec(self.links[mu], gathered)

            bwd = cmatvec(self.links_dagger_bwd[mu], self.work[g.hop(mu, -1)])
            if mu in self.halo_bwd:
                bwd[plan.fill_from_bwd] = self.halo_bwd[mu]

            out += self.r * (fwd + bwd)
            out -= apply_spin_matrix(GAMMA[mu], fwd - bwd)
        yield self.api.compute(self.volume * (self.cost.flops_per_site - 48))
        return out

    def apply(self, src: np.ndarray):
        """Distributed ``D src`` (Wilson or clover)."""
        hop = yield from self.hopping(src)
        out = self.diag * src - 0.5 * hop
        flops = 48 * self.volume
        if self.clover_tensor is not None:
            out += np.einsum("xsatb,xtb->xsa", self.clover_tensor, src)
            flops += CLOVER_TERM_FLOPS * self.volume
        yield self.api.compute(flops)
        return out

    def apply_dagger(self, src: np.ndarray):
        """``D^+ src = gamma_5 D gamma_5 src`` (distributed)."""
        rotated = gamma5_sandwich(src)
        applied = yield from self.apply(rotated)
        return gamma5_sandwich(applied)

    def normal(self, src: np.ndarray):
        """``D^+ D src`` — one CG iteration's operator work."""
        d_src = yield from self.apply(src)
        out = yield from self.apply_dagger(d_src)
        return out
