"""The distributed ASQTAD operator: 1-hop *and* 3-hop halo exchange.

Paper section 1: improved discretisations "may require second or third
nearest-neighbor communications in the physics problem grid.  In either
case, the communications requirements are easily met by a computer with a
regular Cartesian grid network".  This module is that claim, functional:
the ASQTAD Naik term needs the neighbour's three boundary layers, which
travel over the same nearest-neighbour SCU links as the one-hop fat-link
halo — one DMA message per link per application, using the depth-3
block-strided face descriptors.

Per axis ``mu`` and application, each rank exchanges:

* toward ``-mu``: its **depth-3 low face** of the source field (raw
  colour vectors) — the ``+mu`` neighbour uses layer 0 for the fat-link
  forward hop and layers 0-2 for the Naik forward hop;
* toward ``+mu``: a packed staging buffer of sender-side products —
  ``V^+ chi`` on the depth-1 high face followed by ``W^+ chi`` on the
  depth-3 high face — the ``-mu`` neighbour's backward hops.

Like :mod:`repro.parallel.pdirac`, ``hopping`` defaults to the two-phase
**overlapped** pipeline: the depth-3 raw-face DMA (descriptor group
``"early"``) starts before the staging products are computed; the local
backward matvecs and the full assembly of interior sites (``3 <= x_mu <
L_mu - 3`` on communicated axes — the Naik term makes the boundary shell
three sites deep) run while the wires are busy; and a per-axis drain loop
patches face rows as halos land (all staggered halo patches are pure row
copies — the forward matvecs happen in the merge).  Output is
bit-identical to the monolithic path (``overlap=False``) and charged
flops are identical; only the timeline changes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comms.api import CommsAPI, face_descriptor, full_descriptor
from repro.fermions.flops import (
    MATVEC_SU3,
    STAGGERED_DIAG_FLOPS,
    STAGGERED_WORDS,
    operator_cost,
)
from repro.fermions.staggered import staggered_phases
from repro.lattice import stencil
from repro.lattice.gauge import cmatvec
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.halos import halo_exchange_plan, interior_boundary_sites
from repro.lattice.su3 import dagger
from repro.machine.scu import normalise_word_batch
from repro.util.errors import ConfigError
from repro.util.hotpath import hot_path

#: 64-bit words per staggered site (3 complex doubles).  A colour vector
#: has no rank-2 spin structure, so — unlike Wilson/DWF — there is no
#: half-spinor compression: the staggered wire format is already minimal.
#: Single source of truth in :mod:`repro.fermions.flops`.
WORDS_PER_SITE = STAGGERED_WORDS


class DistributedStaggeredContext:
    """Per-rank state for the distributed ASQTAD operator.

    Parameters
    ----------
    fat, long:
        ``(ndim, v, 3, 3)`` local fat links and Naik 3-link transporters
        (built globally by :func:`repro.fermions.staggered.fat_links` /
        ``long_links`` and scattered — smearing needs neighbour links, so
        it runs on the gauge field before distribution, exactly as
        production codes precompute smeared links).
    """

    def __init__(
        self,
        api: CommsAPI,
        local_shape,
        fat: np.ndarray,
        long: np.ndarray,
        mass: float,
        c_naik: float = -1.0 / 24.0,
        overlap: bool = True,
        word_batch=None,
    ):
        self.api = api
        #: DMA framing of the stored halo exchanges (``None`` = inherit
        #: the machine's ``word_batch``; ``"face"`` = the hot path)
        self.word_batch = (
            None if word_batch is None else normalise_word_batch(word_batch)
        )
        self.geometry = LatticeGeometry(local_shape)
        g = self.geometry
        v, ndim = g.volume, g.ndim
        if fat.shape != (ndim, v, 3, 3) or long.shape != (ndim, v, 3, 3):
            raise ConfigError("bad local link shapes for staggered context")
        self.fat = fat
        self.long = long
        self.mass = float(mass)
        self.c_naik = float(c_naik)
        self.phases = staggered_phases(g)
        self.cost = operator_cost("asqtad")
        self.overlap = bool(overlap)
        self.comm_axes = [mu for mu in range(ndim) if api.dims[mu] > 1]
        for mu in self.comm_axes:
            if local_shape[mu] < 3:
                raise ConfigError(
                    f"axis {mu}: local extent {local_shape[mu]} < 3; the Naik "
                    "halo would span two tiles (enlarge the local volume)"
                )
        self.fat_dagger_bwd = np.stack(
            [dagger(fat[mu][g.neighbour_bwd(mu)]) for mu in range(ndim)]
        )
        self.long_dagger_bwd3 = np.stack(
            [dagger(long[mu][g.hop(mu, -3)]) for mu in range(ndim)]
        )
        # plans only for decomposed axes: undecomposed axes wrap locally,
        # whatever their extent.
        self.plan1 = {mu: halo_exchange_plan(g, mu, 1) for mu in self.comm_axes}
        self.plan3 = {mu: halo_exchange_plan(g, mu, 3) for mu in self.comm_axes}
        #: the Naik term reaches 3 sites, so the boundary shell is 3 deep
        self.interior_sites, self.boundary_sites = interior_boundary_sites(
            g, tuple(self.comm_axes), depth=3
        )
        #: per-site merge flops summed over axes (forward fat/long matvecs
        #: plus the combine/phase arithmetic); the 2*ndim backward matvecs
        #: are charged where their rows are computed.
        self.merge_flops_per_site = (
            self.cost.flops_per_site - STAGGERED_DIAG_FLOPS - 2 * ndim * MATVEC_SU3
        )

        mem = api.memory
        self.work = mem.zeros("work", (v, 3))
        self.raw_halo: Dict[int, np.ndarray] = {}
        self.prod_halo: Dict[int, np.ndarray] = {}
        self.stage: Dict[int, np.ndarray] = {}
        #: rows of the depth-3 raw halo that form the neighbour's x==0
        #: layer (used for the 1-hop forward fill)
        self.raw_layer0: Dict[int, np.ndarray] = {}
        for mu in self.comm_axes:
            n1 = len(self.plan1[mu].send_low)
            n3 = len(self.plan3[mu].send_low)
            self.raw_halo[mu] = mem.zeros(f"raw_halo{mu}", (n3, 3))
            # packed products: [fat products (n1) ; naik products (n3)]
            self.prod_halo[mu] = mem.zeros(f"prod_halo{mu}", (n1 + n3, 3))
            self.stage[mu] = mem.zeros(f"stage{mu}", (n1 + n3, 3))
            # which depth-3 low-face rows have face coordinate x_mu == 0:
            # memoised process-wide (same table on every rank of a run).
            self.raw_layer0[mu] = stencil.face_layer_rows(
                g.shape, mu, -1, 3, 0
            )
            api.store_send(
                mu,
                -1,
                face_descriptor("work", local_shape, mu, -1, WORDS_PER_SITE, depth=3),
                group="early",
                word_batch=self.word_batch,
            )
            api.store_send(
                mu,
                +1,
                full_descriptor(api.node, f"stage{mu}"),
                group="staged",
                word_batch=self.word_batch,
            )
            api.store_recv(
                mu, +1, full_descriptor(api.node, f"raw_halo{mu}"), group="early"
            )
            api.store_recv(
                mu, -1, full_descriptor(api.node, f"prod_halo{mu}"), group="early"
            )

        # ---- zero-copy hot-path scratch (see DESIGN.md §12) -----------
        # Preallocated once; reused every application.  Gauge-gather
        # constants on the staging faces are hoisted (links immutable).
        dt = self.work.dtype
        self._fwd1 = [np.empty((v, 3), dtype=dt) for _ in range(ndim)]
        self._fwd3 = [np.empty((v, 3), dtype=dt) for _ in range(ndim)]
        self._bwd1 = [np.empty((v, 3), dtype=dt) for _ in range(ndim)]
        self._bwd3 = [np.empty((v, 3), dtype=dt) for _ in range(ndim)]
        self._gather = np.empty((v, 3), dtype=dt)
        self._hop_out = np.empty((v, 3), dtype=dt)
        self._apply_out = np.empty((v, 3), dtype=dt)
        self._dagger_out = np.empty((v, 3), dtype=dt)
        self._m_acc = np.empty((v, 3), dtype=dt)
        self._m_term = np.empty((v, 3), dtype=dt)
        self._m_tmp = np.empty((v, 3), dtype=dt)
        self._m_vec = np.empty((v, 3), dtype=dt)
        self._m_gauge = np.empty((v, 3, 3), dtype=dt)
        self._m_ph = np.empty((v,), dtype=self.phases.dtype)
        self._fat_dagger_high = {}
        self._long_dagger_high3 = {}
        self._stage_v1 = {}
        self._stage_v3 = {}
        self._raw_l0 = {}
        for mu in self.comm_axes:
            high1 = self.plan1[mu].send_high
            high3 = self.plan3[mu].send_high
            self._fat_dagger_high[mu] = dagger(self.fat[mu][high1])
            self._long_dagger_high3[mu] = dagger(self.long[mu][high3])
            self._stage_v1[mu] = np.empty((len(high1), 3), dtype=dt)
            self._stage_v3[mu] = np.empty((len(high3), 3), dtype=dt)
            self._raw_l0[mu] = np.empty((len(high1), 3), dtype=dt)

    @property
    def volume(self) -> int:
        return self.geometry.volume

    def hopping(self, src: np.ndarray):
        """Distributed ASQTAD dslash (generator).

        Dispatches to the overlapped two-phase pipeline or the serialized
        monolithic assembly according to ``self.overlap``; both are
        bit-identical in output and total charged flops.  Each application
        is one hot epoch: the first learns the SCU transfer schedule, the
        rest replay its compiled trace (:mod:`repro.machine.replay`).
        """
        self.api.begin_hot_epoch("pstaggered.hopping")
        try:
            if self.overlap:
                out = yield from self._hopping_overlapped(src)
            else:
                out = yield from self._hopping_monolithic(src)
        finally:
            self.api.end_hot_epoch("pstaggered.hopping")
        return out

    @hot_path
    def _stage_products(self) -> int:
        """Sender-side backward products for every neighbour."""
        staged = 0
        for mu in self.comm_axes:
            high1 = self.plan1[mu].send_high
            high3 = self.plan3[mu].send_high
            n1 = len(high1)
            buf = self.stage[mu]
            self.api.cpu_write(f"stage{mu}")
            np.take(self.work, high1, axis=0, out=self._stage_v1[mu])
            cmatvec(self._fat_dagger_high[mu], self._stage_v1[mu], out=buf[:n1])
            np.take(self.work, high3, axis=0, out=self._stage_v3[mu])
            cmatvec(self._long_dagger_high3[mu], self._stage_v3[mu], out=buf[n1:])
            staged += n1 + len(high3)
        return staged

    def _hopping_monolithic(self, src: np.ndarray):
        """Serialized reference path: all comms complete, then all compute."""
        g = self.geometry
        self.api.cpu_write("work")
        np.copyto(self.work, src)

        staged = self._stage_products()
        yield self.api.compute(staged * MATVEC_SU3, kernel="asqtad")

        yield self.api.start_stored()

        out = np.zeros_like(self.work)
        for mu in range(g.ndim):
            fwd1 = self.work[g.hop(mu, +1)]
            fwd3 = self.work[g.hop(mu, +3)]
            bwd1 = cmatvec(self.fat_dagger_bwd[mu], self.work[g.hop(mu, -1)])
            bwd3 = cmatvec(self.long_dagger_bwd3[mu], self.work[g.hop(mu, -3)])
            if mu in self.raw_halo:
                self.api.cpu_read(f"raw_halo{mu}")
                raw = self.raw_halo[mu]
                fwd1[self.plan1[mu].fill_from_fwd] = raw[self.raw_layer0[mu]]
                fwd3[self.plan3[mu].fill_from_fwd] = raw
                self.api.cpu_read(f"prod_halo{mu}")
                prod = self.prod_halo[mu]
                n1 = len(self.plan1[mu].send_low)
                bwd1[self.plan1[mu].fill_from_bwd] = prod[:n1]
                bwd3[self.plan3[mu].fill_from_bwd] = prod[n1:]
            term = cmatvec(self.fat[mu], fwd1) - bwd1
            term += self.c_naik * (cmatvec(self.long[mu], fwd3) - bwd3)
            out += self.phases[mu][:, None] * term
        yield self.api.compute(
            self.volume * (self.cost.flops_per_site - STAGGERED_DIAG_FLOPS),
            kernel="asqtad",
        )
        return out

    @hot_path
    def _merge(self, out, fwd1_arr, fwd3_arr, bwd1_arr, bwd3_arr, sites) -> None:
        """Forward matvecs + combine/phase accumulate on ``sites``.

        Row-for-row the same statement sequence (mu ascending) as the
        monolithic assembly, so merged rows are bit-identical: site rows
        are gathered once into context scratch, accumulated in the
        monolithic order, and scattered back.
        """
        n = len(sites)
        acc = self._m_acc[:n]
        term = self._m_term[:n]
        tmp = self._m_tmp[:n]
        vec = self._m_vec[:n]
        gauge = self._m_gauge[:n]
        ph = self._m_ph[:n]
        np.take(out, sites, axis=0, out=acc)
        for mu in range(self.geometry.ndim):
            np.take(self.fat[mu], sites, axis=0, out=gauge)
            np.take(fwd1_arr[mu], sites, axis=0, out=vec)
            cmatvec(gauge, vec, out=term)
            np.take(bwd1_arr[mu], sites, axis=0, out=vec)
            term -= vec
            np.take(self.long[mu], sites, axis=0, out=gauge)
            np.take(fwd3_arr[mu], sites, axis=0, out=vec)
            cmatvec(gauge, vec, out=tmp)
            np.take(bwd3_arr[mu], sites, axis=0, out=vec)
            np.subtract(tmp, vec, out=tmp)
            np.multiply(tmp, self.c_naik, out=tmp)
            term += tmp
            np.take(self.phases[mu], sites, axis=0, out=ph)
            np.multiply(term, ph[:, None], out=tmp)
            acc += tmp
        out[sites] = acc

    @hot_path
    def _hopping_overlapped(self, src: np.ndarray):
        """Two-phase pipeline: interior assembly while DMA flies, per-axis
        boundary row patches (pure copies) as each axis's halo lands.
        Steady state is allocation-free: every gather and merge lands in
        context-owned scratch preallocated by ``__init__``."""
        g = self.geometry
        v = self.volume
        api = self.api
        api.cpu_write("work")
        np.copyto(self.work, src)

        pending = dict(api.start_stored_events(group="early"))
        staged = self._stage_products()
        if staged:
            yield api.compute(staged * MATVEC_SU3, kernel="asqtad")
        pending.update(api.start_stored_events(group="staged"))

        # ---- interior phase: raw forward gathers + local backward matvecs
        local_flops = 0.0
        fwd1_arr = self._fwd1
        fwd3_arr = self._fwd3
        bwd1_arr = self._bwd1
        bwd3_arr = self._bwd3
        for mu in range(g.ndim):
            np.take(self.work, g.hop(mu, +1), axis=0, out=fwd1_arr[mu])
            np.take(self.work, g.hop(mu, +3), axis=0, out=fwd3_arr[mu])
            np.take(self.work, g.hop(mu, -1), axis=0, out=self._gather)
            cmatvec(self.fat_dagger_bwd[mu], self._gather, out=bwd1_arr[mu])
            np.take(self.work, g.hop(mu, -3), axis=0, out=self._gather)
            cmatvec(self.long_dagger_bwd3[mu], self._gather, out=bwd3_arr[mu])
            local_flops += 2 * v * MATVEC_SU3

        out = self._hop_out
        out.fill(0)
        interior = self.interior_sites
        if len(interior):
            self._merge(out, fwd1_arr, fwd3_arr, bwd1_arr, bwd3_arr, interior)
            local_flops += len(interior) * self.merge_flops_per_site
        yield api.compute(local_flops, kernel="asqtad")

        # ---- boundary phase: drain transfers in completion order --------
        # (every staggered halo patch is a pure row copy; the forward
        # matvecs are merge work, so arrival handlers charge no flops)
        while pending:
            fired = yield api.wait_any(pending.values())
            key = next(k for k, e in pending.items() if e is fired)
            del pending[key]
            kind, mu, sign = key
            if kind != "recv":
                continue
            if sign == +1:
                api.cpu_read(f"raw_halo{mu}")
                raw = self.raw_halo[mu]
                np.take(raw, self.raw_layer0[mu], axis=0, out=self._raw_l0[mu])
                fwd1_arr[mu][self.plan1[mu].fill_from_fwd] = self._raw_l0[mu]
                fwd3_arr[mu][self.plan3[mu].fill_from_fwd] = raw
            else:
                api.cpu_read(f"prod_halo{mu}")
                prod = self.prod_halo[mu]
                n1 = len(self.plan1[mu].send_low)
                bwd1_arr[mu][self.plan1[mu].fill_from_bwd] = prod[:n1]
                bwd3_arr[mu][self.plan3[mu].fill_from_bwd] = prod[n1:]

        boundary = self.boundary_sites
        if len(boundary):
            self._merge(out, fwd1_arr, fwd3_arr, bwd1_arr, bwd3_arr, boundary)
            yield api.compute(
                len(boundary) * self.merge_flops_per_site, kernel="asqtad"
            )
        return out

    @hot_path
    def apply(self, src: np.ndarray):
        """Returns a context-owned buffer, valid until the next application."""
        hop = yield from self.hopping(src)
        out = self._apply_out
        np.multiply(src, self.mass, out=out)
        np.multiply(hop, 0.5, out=hop)
        np.add(out, hop, out=out)
        yield self.api.compute(STAGGERED_DIAG_FLOPS * self.volume, kernel="diag")
        return out

    @hot_path
    def apply_dagger(self, src: np.ndarray):
        """``D^+ = m - (1/2) hopping`` (anti-hermitian hopping).

        Returns a context-owned buffer, valid until the next application.
        """
        hop = yield from self.hopping(src)
        out = self._dagger_out
        np.multiply(src, self.mass, out=out)
        np.multiply(hop, 0.5, out=hop)
        np.subtract(out, hop, out=out)
        yield self.api.compute(STAGGERED_DIAG_FLOPS * self.volume, kernel="diag")
        return out

    def normal(self, src: np.ndarray):
        d_src = yield from self.apply(src)
        out = yield from self.apply_dagger(d_src)
        return out
