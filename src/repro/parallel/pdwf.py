"""The distributed domain-wall operator: 5-dimensional physics on the mesh.

"This discretization is naturally five-dimensional" (paper section 4) and
was the prime production target for QCDOC.  The standard decomposition
keeps the fifth dimension local (the gauge field is the same on every
``s`` slice, so splitting space-time maximises gauge reuse) and ships
**all ``Ls`` slices of a face in one DMA message** per direction — the
5-dimensional field is stored slice-major, so the multi-slice face is
*still* a uniform block-strided pattern and a single SCU descriptor moves
it (``Ls x head`` blocks at the intra-slice pitch).

As with Wilson, the backward hop travels as sender-side ``U^+ psi``
products, halving traffic; the 5th-dimension chiral hops are site-local in
space-time and need no communication at all.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.comms.api import CommsAPI, face_descriptor, full_descriptor
from repro.fermions.flops import DWF_5D_EXTRA_FLOPS, MATVEC_SU3, WILSON_DSLASH_FLOPS
from repro.fermions.gamma import GAMMA, P_MINUS, P_PLUS, apply_spin_matrix, gamma5_sandwich
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.halos import halo_exchange_plan
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError

#: 64-bit words per (4-dimensional site, 5th-dim slice): 12 complex doubles
WORDS_PER_SITE = 24


def _cmatvec5(u: np.ndarray, psi: np.ndarray) -> np.ndarray:
    """Apply per-4D-site colour matrices to all Ls slices: ``(v,3,3) x
    (Ls, v, 4, 3) -> (Ls, v, 4, 3)``."""
    return np.einsum("xab,sxtb->sxta", u, psi)


class DistributedDWFContext:
    """Per-rank state for the distributed Shamir domain-wall operator."""

    def __init__(
        self,
        api: CommsAPI,
        local_shape,
        links: np.ndarray,
        Ls: int,
        M5: float = 1.8,
        mf: float = 0.1,
    ):
        self.api = api
        self.geometry = LatticeGeometry(local_shape)
        g = self.geometry
        v, ndim = g.volume, g.ndim
        if ndim != 4:
            raise ConfigError("domain-wall decomposition needs a 4D tile")
        if links.shape != (ndim, v, 3, 3):
            raise ConfigError(f"bad local link shape {links.shape}")
        if Ls < 1:
            raise ConfigError(f"Ls must be >= 1, got {Ls}")
        self.links = links
        self.links_dagger_bwd = np.stack(
            [dagger(links[mu][g.neighbour_bwd(mu)]) for mu in range(ndim)]
        )
        self.Ls = int(Ls)
        self.M5 = float(M5)
        self.mf = float(mf)
        self.comm_axes = [mu for mu in range(ndim) if api.dims[mu] > 1]
        self.plans = {mu: halo_exchange_plan(g, mu) for mu in self.comm_axes}

        mem = api.memory
        shape5 = (self.Ls,) + tuple(local_shape)
        self.work = mem.zeros("work", (self.Ls, v, 4, 3))
        self.halo_fwd: Dict[int, np.ndarray] = {}
        self.halo_bwd: Dict[int, np.ndarray] = {}
        self.stage_bwd: Dict[int, np.ndarray] = {}
        for mu in self.comm_axes:
            nface = len(self.plans[mu].send_low)
            self.halo_fwd[mu] = mem.zeros(f"halo_fwd{mu}", (self.Ls, nface, 4, 3))
            self.halo_bwd[mu] = mem.zeros(f"halo_bwd{mu}", (self.Ls, nface, 4, 3))
            self.stage_bwd[mu] = mem.zeros(f"stage_bwd{mu}", (self.Ls, nface, 4, 3))
            # one descriptor covers the face of *every* s slice: the 5D
            # field is slice-major, so the blocks stay uniformly strided.
            api.store_send(
                mu,
                -1,
                face_descriptor("work", shape5, mu + 1, -1, WORDS_PER_SITE),
            )
            api.store_send(mu, +1, full_descriptor(api.node, f"stage_bwd{mu}"))
            api.store_recv(mu, +1, full_descriptor(api.node, f"halo_fwd{mu}"))
            api.store_recv(mu, -1, full_descriptor(api.node, f"halo_bwd{mu}"))

    @property
    def volume5(self) -> int:
        return self.Ls * self.geometry.volume

    # -- the operator --------------------------------------------------------
    def apply(self, src: np.ndarray):
        """Distributed ``D_dwf src`` (generator yielding machine events)."""
        g = self.geometry
        np.copyto(self.work, src)

        staged = 0
        for mu in self.comm_axes:
            high = self.plans[mu].send_high
            np.copyto(
                self.stage_bwd[mu],
                _cmatvec5(dagger(self.links[mu][high]), self.work[:, high]),
            )
            staged += self.Ls * len(high)
        yield self.api.compute(staged * MATVEC_SU3)

        yield self.api.start_stored()

        # 4D Wilson kernel D_w(-M5) + 1, slice-batched.
        diag = (-self.M5 + 4.0) + 1.0
        out = diag * self.work
        for mu in range(4):
            plan = self.plans.get(mu)
            fwd = self.work[:, g.hop(mu, +1)]
            if plan is not None:
                fwd[:, plan.fill_from_fwd] = self.halo_fwd[mu]
            fwd = _cmatvec5(self.links[mu], fwd)
            bwd = _cmatvec5(self.links_dagger_bwd[mu], self.work[:, g.hop(mu, -1)])
            if plan is not None:
                bwd[:, plan.fill_from_bwd] = self.halo_bwd[mu]
            out -= 0.5 * ((fwd + bwd) - apply_spin_matrix(GAMMA[mu], fwd - bwd))

        # 5th dimension: chiral hops with mass-coupled walls (local).
        for s in range(self.Ls):
            up = src[s + 1] if s + 1 < self.Ls else -self.mf * src[0]
            dn = src[s - 1] if s - 1 >= 0 else -self.mf * src[self.Ls - 1]
            out[s] -= apply_spin_matrix(P_MINUS, up)
            out[s] -= apply_spin_matrix(P_PLUS, dn)

        yield self.api.compute(
            self.volume5 * (WILSON_DSLASH_FLOPS + DWF_5D_EXTRA_FLOPS)
        )
        return out

    def apply_dagger(self, src: np.ndarray):
        """``D^+ = (Gamma_5 R) D (R Gamma_5)`` with R the s reflection."""
        flipped = gamma5_sandwich(src[::-1])
        applied = yield from self.apply(flipped)
        return gamma5_sandwich(applied[::-1])

    def normal(self, src: np.ndarray):
        d_src = yield from self.apply(src)
        out = yield from self.apply_dagger(d_src)
        return out
