"""The distributed domain-wall operator: 5-dimensional physics on the mesh.

"This discretization is naturally five-dimensional" (paper section 4) and
was the prime production target for QCDOC.  The standard decomposition
keeps the fifth dimension local (the gauge field is the same on every
``s`` slice, so splitting space-time maximises gauge reuse) and ships
**all ``Ls`` slices of a face in one DMA message** per direction — the
5-dimensional field is stored slice-major, so the multi-slice face is
*still* a uniform block-strided pattern and a single SCU descriptor moves
it (``Ls x head`` blocks at the intra-slice pitch).

As with Wilson, the backward hop travels as sender-side ``U^+`` products,
and (``compress=True``, the default) both directions are spin-projected to
**half spinors** before hitting the wire — the 4D hopping term of the
domain-wall kernel is exactly the ``r = 1`` Wilson dslash, so the rank-2
``(1 -+ gamma_mu)`` compression of :mod:`repro.parallel.pdirac` applies
slice-by-slice: 12 words per (face site, s slice) instead of 24.  The
5th-dimension chiral hops are site-local in space-time and need no
communication at all.

Like :mod:`repro.parallel.pdirac`, ``apply`` defaults to the two-phase
**overlapped** pipeline: raw-halo DMA (descriptor group ``"early"``)
starts before the staging products are computed, every halo-free matvec
plus the full interior-site assembly (4D merge, diagonal, and 5th-dim
chiral hops) runs while the wires are busy, and a per-axis drain loop
patches face rows as each axis's halo lands.  Output is bit-identical to
the monolithic path (``overlap=False``) and to the serial operator, with
identical total charged flops — only the timeline changes, reproducing
the paper's ``T_interior + max(T_comm, T_boundary)`` efficiency model.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.comms.api import CommsAPI, face_descriptor, full_descriptor
from repro.fermions.flops import (
    CADD,
    DIAG_AXPY_FLOPS,
    DWF_5D_EXTRA_FLOPS,
    HALF_SPINOR_WORDS,
    MATVEC_SU3,
    SPINOR_WORDS,
    WILSON_DSLASH_FLOPS,
)
from repro.fermions.gamma import (
    GAMMA,
    P_MINUS,
    P_PLUS,
    apply_spin_matrix,
    gamma5_sandwich,
    spin_project,
    spin_reconstruct,
)
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.halos import halo_exchange_plan, interior_boundary_sites
from repro.lattice.su3 import dagger
from repro.machine.scu import normalise_word_batch
from repro.util.errors import ConfigError
from repro.util.hotpath import hot_path

#: per-(site, slice) flops of the halo-independent-of-matvec assembly: the
#: 4D spin project/reconstruct + accumulate plus the two 5th-dim chiral
#: hops (the diagonal axpy is charged separately, full-volume, interior
#: phase — it is pure elementwise work).
MERGE5_FLOPS_PER_SITE = (
    WILSON_DSLASH_FLOPS
    - 2 * 4 * MATVEC_SU3
    + (DWF_5D_EXTRA_FLOPS - DIAG_AXPY_FLOPS)
)  # = 840

#: 64-bit words per (4-dimensional site, 5th-dim slice): 12 complex
#: doubles — single source of truth in :mod:`repro.fermions.flops`.
WORDS_PER_SITE = SPINOR_WORDS
#: 64-bit words per compressed wire site (6 complex doubles)
HALF_WORDS_PER_SITE = HALF_SPINOR_WORDS


def _cmatvec5(u: np.ndarray, psi: np.ndarray, out=None) -> np.ndarray:
    """Apply per-4D-site colour matrices to all Ls slices: ``(v,3,3) x
    (Ls, v, 4, 3) -> (Ls, v, 4, 3)``.  ``out`` reuses a caller-owned
    buffer (allocation-free hot loops) with identical einsum arithmetic."""
    if out is None:
        return np.einsum("xab,sxtb->sxta", u, psi)
    return np.einsum("xab,sxtb->sxta", u, psi, out=out)


class DistributedDWFContext:
    """Per-rank state for the distributed Shamir domain-wall operator."""

    def __init__(
        self,
        api: CommsAPI,
        local_shape,
        links: np.ndarray,
        Ls: int,
        M5: float = 1.8,
        mf: float = 0.1,
        overlap: bool = True,
        compress: bool = True,
        word_batch=None,
    ):
        self.api = api
        #: DMA framing of the stored halo exchanges (``None`` = inherit
        #: the machine's ``word_batch``; ``"face"`` = the hot path)
        self.word_batch = (
            None if word_batch is None else normalise_word_batch(word_batch)
        )
        self.geometry = LatticeGeometry(local_shape)
        g = self.geometry
        v, ndim = g.volume, g.ndim
        if ndim != 4:
            raise ConfigError("domain-wall decomposition needs a 4D tile")
        if links.shape != (ndim, v, 3, 3):
            raise ConfigError(f"bad local link shape {links.shape}")
        if Ls < 1:
            raise ConfigError(f"Ls must be >= 1, got {Ls}")
        self.links = links
        self.links_dagger_bwd = np.stack(
            [dagger(links[mu][g.neighbour_bwd(mu)]) for mu in range(ndim)]
        )
        self.Ls = int(Ls)
        self.M5 = float(M5)
        self.mf = float(mf)
        self.overlap = bool(overlap)
        self.compress = bool(compress)
        self.comm_axes = [mu for mu in range(ndim) if api.dims[mu] > 1]
        self.plans = {mu: halo_exchange_plan(g, mu) for mu in self.comm_axes}
        self.interior_sites, self.boundary_sites = interior_boundary_sites(
            g, tuple(self.comm_axes), depth=1
        )

        mem = api.memory
        shape5 = (self.Ls,) + tuple(local_shape)
        self.work = mem.zeros("work", (self.Ls, v, 4, 3))
        self.halo_fwd: Dict[int, np.ndarray] = {}
        self.halo_bwd: Dict[int, np.ndarray] = {}
        self.stage_fwd: Dict[int, np.ndarray] = {}
        self.stage_bwd: Dict[int, np.ndarray] = {}
        spin_rows = 2 if self.compress else 4
        for mu in self.comm_axes:
            nface = len(self.plans[mu].send_low)
            self.halo_fwd[mu] = mem.zeros(
                f"halo_fwd{mu}", (self.Ls, nface, spin_rows, 3)
            )
            self.halo_bwd[mu] = mem.zeros(
                f"halo_bwd{mu}", (self.Ls, nface, spin_rows, 3)
            )
            self.stage_bwd[mu] = mem.zeros(
                f"stage_bwd{mu}", (self.Ls, nface, spin_rows, 3)
            )
            # one descriptor covers the face of *every* s slice: the 5D
            # field is slice-major, so the blocks stay uniformly strided.
            if self.compress:
                # Forward halo spin-projected before the send: half
                # spinors for all Ls slices in one staged buffer.
                self.stage_fwd[mu] = mem.zeros(
                    f"stage_fwd{mu}", (self.Ls, nface, 2, 3)
                )
                api.store_send(
                    mu,
                    -1,
                    full_descriptor(api.node, f"stage_fwd{mu}"),
                    group="proj",
                    word_batch=self.word_batch,
                )
            else:
                api.store_send(
                    mu,
                    -1,
                    face_descriptor("work", shape5, mu + 1, -1, WORDS_PER_SITE),
                    group="early",
                    word_batch=self.word_batch,
                )
            api.store_send(
                mu,
                +1,
                full_descriptor(api.node, f"stage_bwd{mu}"),
                group="staged",
                word_batch=self.word_batch,
            )
            api.store_recv(
                mu, +1, full_descriptor(api.node, f"halo_fwd{mu}"), group="early"
            )
            api.store_recv(
                mu, -1, full_descriptor(api.node, f"halo_bwd{mu}"), group="early"
            )

        # ---- zero-copy hot-path scratch (see DESIGN.md §12) -----------
        # Allocated once per context, reused every application; arrays
        # returned by ``apply`` are context-owned and valid until the
        # next application.
        dt = self.work.dtype
        Ls5 = self.Ls
        self._gather5 = np.empty((Ls5, v, 4, 3), dtype=dt)
        self._half5 = np.empty((Ls5, v, 2, 3), dtype=dt) if self.compress else None
        self._fwd = [np.empty((Ls5, v, spin_rows, 3), dtype=dt) for _ in range(4)]
        self._bwd = [np.empty((Ls5, v, spin_rows, 3), dtype=dt) for _ in range(4)]
        self._out5 = np.empty((Ls5, v, 4, 3), dtype=dt)
        self._rot_in = np.empty((Ls5, v, 4, 3), dtype=dt)
        self._rot_out = np.empty((Ls5, v, 4, 3), dtype=dt)
        self._merge_acc = np.empty((Ls5, v, 4, 3), dtype=dt)
        self._merge_f = np.empty((Ls5, v, spin_rows, 3), dtype=dt)
        self._merge_b = np.empty((Ls5, v, spin_rows, 3), dtype=dt)
        self._merge_rec = np.empty((Ls5, v, 4, 3), dtype=dt)
        if not self.compress:
            self._merge_t = np.empty((Ls5, v, 4, 3), dtype=dt)
        # 5th-dimension wall terms (-mf * edge slice) and merge gathers
        self._wall_up = np.empty((v, 4, 3), dtype=dt)
        self._wall_dn = np.empty((v, 4, 3), dtype=dt)
        self._m5_up = np.empty((v, 4, 3), dtype=dt)
        self._m5_rec = np.empty((v, 4, 3), dtype=dt)
        self._face_gather5 = {}
        self._face_half5 = {}
        self._face_patch5 = {}
        self._links_dagger_high = {}
        self._links_fwd_face = {}
        for mu in self.comm_axes:
            plan = self.plans[mu]
            nface = len(plan.send_low)
            self._face_gather5[mu] = np.empty((Ls5, nface, 4, 3), dtype=dt)
            if self.compress:
                self._face_half5[mu] = np.empty((Ls5, nface, 2, 3), dtype=dt)
            self._face_patch5[mu] = np.empty((Ls5, nface, spin_rows, 3), dtype=dt)
            self._links_dagger_high[mu] = dagger(self.links[mu][plan.send_high])
            self._links_fwd_face[mu] = self.links[mu][plan.fill_from_fwd].copy()

    @property
    def volume5(self) -> int:
        return self.Ls * self.geometry.volume

    # -- the operator --------------------------------------------------------
    def apply(self, src: np.ndarray):
        """Distributed ``D_dwf src`` (generator yielding machine events).

        Dispatches to the overlapped two-phase pipeline or the serialized
        monolithic assembly according to ``self.overlap``; both are
        bit-identical in output and total charged flops.  Each application
        is one hot epoch: the first learns the SCU transfer schedule, the
        rest replay its compiled trace (:mod:`repro.machine.replay`).
        """
        self.api.begin_hot_epoch("pdwf.apply")
        try:
            if self.overlap:
                out = yield from self._apply_overlapped(src)
            else:
                out = yield from self._apply_monolithic(src)
        finally:
            self.api.end_hot_epoch("pdwf.apply")
        return out

    @hot_path
    def _project_faces(self) -> None:
        """Compressed mode: spin-project the forward (low-face) halo for
        every s slice — matvec-free adds, sent from group "proj" before
        the backward staging compute (see :mod:`repro.parallel.pdirac`)."""
        if not self.compress:
            return
        for mu in self.comm_axes:
            self.api.cpu_write(f"stage_fwd{mu}")
            face = self._face_gather5[mu]
            np.take(self.work, self.plans[mu].send_low, axis=1, out=face)
            spin_project(mu, +1, face, out=self.stage_fwd[mu])

    @hot_path
    def _stage_products(self) -> int:
        staged = 0
        for mu in self.comm_axes:
            plan = self.plans[mu]
            high = plan.send_high
            self.api.cpu_write(f"stage_bwd{mu}")
            face = self._face_gather5[mu]
            np.take(self.work, high, axis=1, out=face)
            if self.compress:
                half = self._face_half5[mu]
                spin_project(mu, -1, face, out=half)
                _cmatvec5(
                    self._links_dagger_high[mu], half, out=self.stage_bwd[mu]
                )
            else:
                _cmatvec5(
                    self._links_dagger_high[mu], face, out=self.stage_bwd[mu]
                )
            staged += self.Ls * len(high)
        return staged

    def _apply_monolithic(self, src: np.ndarray):
        """Serialized reference path: all comms complete, then all compute."""
        g = self.geometry
        self.api.cpu_write("work")
        np.copyto(self.work, src)

        self._project_faces()
        staged = self._stage_products()
        yield self.api.compute(staged * MATVEC_SU3, kernel="dwf")

        yield self.api.start_stored()

        # 4D Wilson kernel D_w(-M5) + 1, slice-batched.
        diag = (-self.M5 + 4.0) + 1.0
        out = diag * self.work
        for mu in range(4):
            plan = self.plans.get(mu)
            if self.compress:
                half = spin_project(mu, +1, self.work[:, g.hop(mu, +1)])
                if plan is not None:
                    self.api.cpu_read(f"halo_fwd{mu}")
                    half[:, plan.fill_from_fwd] = self.halo_fwd[mu]
                fwd = _cmatvec5(self.links[mu], half)
                out -= 0.5 * spin_reconstruct(mu, +1, fwd)
                bwd = _cmatvec5(
                    self.links_dagger_bwd[mu],
                    spin_project(mu, -1, self.work[:, g.hop(mu, -1)]),
                )
                if plan is not None:
                    self.api.cpu_read(f"halo_bwd{mu}")
                    bwd[:, plan.fill_from_bwd] = self.halo_bwd[mu]
                out -= 0.5 * spin_reconstruct(mu, -1, bwd)
                continue
            fwd = self.work[:, g.hop(mu, +1)]
            if plan is not None:
                self.api.cpu_read(f"halo_fwd{mu}")
                fwd[:, plan.fill_from_fwd] = self.halo_fwd[mu]
            fwd = _cmatvec5(self.links[mu], fwd)
            bwd = _cmatvec5(self.links_dagger_bwd[mu], self.work[:, g.hop(mu, -1)])
            if plan is not None:
                self.api.cpu_read(f"halo_bwd{mu}")
                bwd[:, plan.fill_from_bwd] = self.halo_bwd[mu]
            out -= 0.5 * ((fwd + bwd) - apply_spin_matrix(GAMMA[mu], fwd - bwd))

        # 5th dimension: chiral hops with mass-coupled walls (local).
        for s in range(self.Ls):
            up = src[s + 1] if s + 1 < self.Ls else -self.mf * src[0]
            dn = src[s - 1] if s - 1 >= 0 else -self.mf * src[self.Ls - 1]
            out[s] -= apply_spin_matrix(P_MINUS, up)
            out[s] -= apply_spin_matrix(P_PLUS, dn)

        yield self.api.compute(
            self.volume5 * (WILSON_DSLASH_FLOPS + DWF_5D_EXTRA_FLOPS),
            kernel="dwf",
        )
        return out

    @hot_path
    def _merge(self, out, fwd_arr, bwd_arr, src, sites: np.ndarray) -> None:
        """Assemble the 4D merge and the 5th-dim chiral hops on ``sites``.

        Row-for-row the same statement sequence (mu ascending, then the
        s loop) as the monolithic assembly, so merged rows are
        bit-identical: the site rows are gathered once into context
        scratch, accumulated in the monolithic order, and scattered back.
        The wall terms ``-mf * src[edge]`` are precomputed per
        application in ``_wall_up``/``_wall_dn``.
        """
        n = len(sites)
        acc = self._merge_acc[:, :n]
        f = self._merge_f[:, :n]
        b = self._merge_b[:, :n]
        rec = self._merge_rec[:, :n]
        np.take(out, sites, axis=1, out=acc)
        for mu in range(4):
            np.take(fwd_arr[mu], sites, axis=1, out=f)
            np.take(bwd_arr[mu], sites, axis=1, out=b)
            if self.compress:
                spin_reconstruct(mu, +1, f, out=rec)
                np.multiply(rec, 0.5, out=rec)
                acc -= rec
                spin_reconstruct(mu, -1, b, out=rec)
                np.multiply(rec, 0.5, out=rec)
                acc -= rec
            else:
                t = self._merge_t[:, :n]
                np.subtract(f, b, out=rec)
                t_spin = self._merge_rec[:, :n]
                np.add(f, b, out=t)
                apply_spin_matrix(GAMMA[mu], rec, out=t_spin)
                np.subtract(t, t_spin, out=t)
                np.multiply(t, 0.5, out=t)
                acc -= t
        for s in range(self.Ls):
            up = src[s + 1] if s + 1 < self.Ls else self._wall_up
            dn = src[s - 1] if s - 1 >= 0 else self._wall_dn
            up_g = self._m5_up[:n]
            rec4 = self._m5_rec[:n]
            np.take(up, sites, axis=0, out=up_g)
            apply_spin_matrix(P_MINUS, up_g, out=rec4)
            acc[s] -= rec4
            np.take(dn, sites, axis=0, out=up_g)
            apply_spin_matrix(P_PLUS, up_g, out=rec4)
            acc[s] -= rec4
        out[:, sites] = acc

    @hot_path
    def _apply_overlapped(self, src: np.ndarray):
        """Two-phase pipeline: interior assembly while DMA flies, per-axis
        boundary work as each axis's halo lands.  Steady state is
        allocation-free: every gather, projection, and merge lands in
        context-owned scratch preallocated by ``__init__``."""
        g = self.geometry
        v = g.volume
        api = self.api
        api.cpu_write("work")
        np.copyto(self.work, src)
        # Wall terms and 5th-dim hop sources are read from ``self.work``
        # (identical to ``src`` from here on, and never mutated during an
        # application) so that passing the context's own output buffer
        # back in as ``src`` stays well-defined.
        np.multiply(self.work[0], -self.mf, out=self._wall_up)
        np.multiply(self.work[self.Ls - 1], -self.mf, out=self._wall_dn)

        pending = dict(api.start_stored_events(group="early"))
        self._project_faces()
        pending.update(api.start_stored_events(group="proj"))
        staged = self._stage_products()
        if staged:
            yield api.compute(staged * MATVEC_SU3, kernel="dwf")
        pending.update(api.start_stored_events(group="staged"))

        # ---- interior phase ---------------------------------------------
        diag = (-self.M5 + 4.0) + 1.0
        out = self._out5
        np.multiply(self.work, diag, out=out)
        local_flops = float(DIAG_AXPY_FLOPS * self.volume5)
        fwd_arr = self._fwd
        bwd_arr = self._bwd
        for mu in range(4):
            np.take(self.work, g.hop(mu, +1), axis=1, out=self._gather5)
            if self.compress:
                spin_project(mu, +1, self._gather5, out=self._half5)
                _cmatvec5(self.links[mu], self._half5, out=fwd_arr[mu])
            else:
                _cmatvec5(self.links[mu], self._gather5, out=fwd_arr[mu])
            nface = len(self.plans[mu].fill_from_fwd) if mu in self.plans else 0
            local_flops += self.Ls * (v - nface) * MATVEC_SU3
            np.take(self.work, g.hop(mu, -1), axis=1, out=self._gather5)
            if self.compress:
                spin_project(mu, -1, self._gather5, out=self._half5)
                _cmatvec5(
                    self.links_dagger_bwd[mu], self._half5, out=bwd_arr[mu]
                )
            else:
                _cmatvec5(
                    self.links_dagger_bwd[mu], self._gather5, out=bwd_arr[mu]
                )
            local_flops += self.Ls * v * MATVEC_SU3

        interior = self.interior_sites
        if len(interior):
            self._merge(out, fwd_arr, bwd_arr, self.work, interior)
            local_flops += self.Ls * len(interior) * MERGE5_FLOPS_PER_SITE
        yield api.compute(local_flops, kernel="dwf")

        # ---- boundary phase: drain transfers in completion order --------
        while pending:
            fired = yield api.wait_any(pending.values())
            key = next(k for k, e in pending.items() if e is fired)
            del pending[key]
            kind, mu, sign = key
            if kind != "recv":
                continue
            plan = self.plans[mu]
            if sign == +1:
                rows = plan.fill_from_fwd
                api.cpu_read(f"halo_fwd{mu}")
                patch = self._face_patch5[mu]
                _cmatvec5(self._links_fwd_face[mu], self.halo_fwd[mu], out=patch)
                fwd_arr[mu][:, rows] = patch
                yield api.compute(self.Ls * len(rows) * MATVEC_SU3, kernel="dwf")
            else:
                api.cpu_read(f"halo_bwd{mu}")
                bwd_arr[mu][:, plan.fill_from_bwd] = self.halo_bwd[mu]

        boundary = self.boundary_sites
        if len(boundary):
            self._merge(out, fwd_arr, bwd_arr, self.work, boundary)
            yield api.compute(
                self.Ls * len(boundary) * MERGE5_FLOPS_PER_SITE, kernel="dwf"
            )
        return out

    @hot_path
    def apply_dagger(self, src: np.ndarray):
        """``D^+ = (Gamma_5 R) D (R Gamma_5)`` with R the s reflection.

        Returns a context-owned buffer (``_rot_out``), valid until the
        context's next application.
        """
        flipped = gamma5_sandwich(src[::-1], out=self._rot_in)
        applied = yield from self.apply(flipped)
        return gamma5_sandwich(applied[::-1], out=self._rot_out)

    def normal(self, src: np.ndarray):
        d_src = yield from self.apply(src)
        out = yield from self.apply_dagger(d_src)
        return out
