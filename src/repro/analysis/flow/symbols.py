"""Project-wide symbol table: functions, methods and classes per module.

Qualified names are ``relpath::Class.method`` / ``relpath::function`` —
stable across runs (the engine hands modules over in sorted relpath
order) and unique within one scan.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.engine import ModuleContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    node: FunctionNode
    module: ModuleContext
    cls: Optional[str] = None  # owning class name, None for free functions

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition and its directly-defined methods."""

    name: str
    node: ast.ClassDef
    module: ModuleContext
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)


class SymbolTable:
    """Functions and classes of a scanned tree, keyed by name."""

    def __init__(self) -> None:
        #: bare name -> every definition with that name (project-wide)
        self.functions: Dict[str, List[FunctionInfo]] = {}
        #: class name -> every class with that name
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: qualified name -> unique definition
        self.by_qualname: Dict[str, FunctionInfo] = {}

    def add_function(self, info: FunctionInfo) -> None:
        self.functions.setdefault(info.name, []).append(info)
        self.by_qualname[info.qualname] = info

    def add_class(self, info: ClassInfo) -> None:
        self.classes.setdefault(info.name, []).append(info)

    def methods_of(self, cls_name: str, method: str) -> List[FunctionInfo]:
        """Every definition of ``method`` on a class named ``cls_name``."""
        return [
            c.methods[method]
            for c in self.classes.get(cls_name, [])
            if method in c.methods
        ]


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def build_symbols(modules: Sequence[ModuleContext]) -> SymbolTable:
    """Collect every top-level function and class method of ``modules``.

    Functions nested inside other functions are deliberately skipped:
    closures are invisible to name-based call resolution anyway, and
    including them would alias unrelated helpers.
    """
    table = SymbolTable()
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table.add_function(
                    FunctionInfo(
                        qualname=f"{module.relpath}::{node.name}",
                        name=node.name,
                        node=node,
                        module=module,
                    )
                )
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    name=node.name,
                    node=node,
                    module=module,
                    bases=[_base_name(b) for b in node.bases],
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            qualname=f"{module.relpath}::{node.name}.{item.name}",
                            name=item.name,
                            node=item,
                            module=module,
                            cls=node.name,
                        )
                        cls.methods[item.name] = info
                        table.add_function(info)
                table.add_class(cls)
    return table
