"""Whole-program flow analysis for reprolint (the REPRO5xx rule family).

This subpackage layers interprocedural analysis on top of the per-file
engine in :mod:`repro.analysis.engine`:

``symbols``
    A project-wide symbol table: every function/method of every scanned
    module, keyed by bare name and by qualified name.
``callgraph``
    A name-resolved call graph over the symbol table (``self.m()`` binds
    to the caller's own class when it defines ``m``).
``cfg``
    Per-function control-flow graphs at statement granularity, with
    exception edges into enclosing ``except`` handlers.
``dataflow``
    Def-use helpers: dead-store detection, taint-style return/escape
    tracking, and consuming-use classification.
``rules``
    The REPRO501..REPRO504 whole-program rules.  They register into the
    ordinary rule registry but carry ``whole_program = True`` so the CLI
    only runs them under ``--flow`` (or an explicit ``--select``).

The model-bounds and soundness caveats are documented in DESIGN.md
section 14.
"""

from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
    build_symbols,
)

__all__ = [
    "CFG",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "SymbolTable",
    "build_call_graph",
    "build_cfg",
    "build_symbols",
]
