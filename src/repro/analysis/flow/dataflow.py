"""Def-use helpers: dead stores, consuming uses, and return-escape taint.

These are the small, deliberately flow-*insensitive* building blocks
the REPRO5xx rules compose with the CFG (which supplies the
path-sensitivity where it matters).  Everything here operates on one
function body at a time.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def own_statements(fn: FunctionNode) -> Iterator[ast.stmt]:
    """Every statement of ``fn`` excluding bodies of nested defs."""
    stack: List[ast.stmt] = list(fn.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.ExceptHandler,)):
                stack.extend(child.body)
    return


def load_counts(fn: FunctionNode) -> Dict[str, int]:
    """How often each local name is *read* anywhere in ``fn``.

    Loads inside nested lambdas/defs count — a captured name is a use.
    """
    counts: Dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            counts[node.id] = counts.get(node.id, 0) + 1
        elif isinstance(node, ast.arg):
            # lambda capture idiom: ``lambda _e, c=claim: ...`` reads
            # ``claim`` via the default, which is an ast.Name Load and
            # already counted; nothing extra needed here.
            pass
    return counts


def simple_assign_target(stmt: ast.stmt) -> Optional[str]:
    """``x = <expr>`` -> ``"x"``; anything fancier -> None."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            return stmt.target.id
    return None


def assign_value(stmt: ast.stmt) -> Optional[ast.expr]:
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return stmt.value
    return None


def stmt_mentions_load(stmt: ast.AST, name: str) -> bool:
    """Does ``stmt`` read ``name`` (including inside a nested lambda)?"""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


# -- return/escape taint ----------------------------------------------------


def _expr_tainted(
    expr: Optional[ast.expr],
    tainted: Set[str],
    is_source_call: Callable[[ast.Call], bool],
) -> bool:
    """Does evaluating ``expr`` produce (or contain) a source value?

    Containers count: a dict/list/tuple holding a tainted element is
    itself tainted, as is a subscript read of a tainted container —
    ``events[key]`` yields an event when ``events`` holds events.
    """
    if expr is None:
        return False
    if isinstance(expr, ast.Call):
        if is_source_call(expr):
            return True
        return False  # calls launder taint unless themselves sources
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    if isinstance(expr, ast.Await):
        return False  # awaiting consumes the completion
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return any(_expr_tainted(e, tainted, is_source_call) for e in expr.elts)
    if isinstance(expr, ast.Dict):
        return any(_expr_tainted(v, tainted, is_source_call) for v in expr.values)
    if isinstance(expr, ast.Subscript):
        return _expr_tainted(expr.value, tainted, is_source_call)
    if isinstance(expr, ast.IfExp):
        return _expr_tainted(
            expr.body, tainted, is_source_call
        ) or _expr_tainted(expr.orelse, tainted, is_source_call)
    if isinstance(expr, ast.Starred):
        return _expr_tainted(expr.value, tainted, is_source_call)
    if isinstance(expr, ast.ListComp):
        return _expr_tainted(expr.elt, tainted, is_source_call)
    if isinstance(expr, ast.DictComp):
        return _expr_tainted(expr.value, tainted, is_source_call)
    return False


def tainted_locals(
    fn: FunctionNode, is_source_call: Callable[[ast.Call], bool]
) -> Set[str]:
    """Fixpoint of local names holding source values.

    Handles direct assignment, aliasing, container literals, and
    element insertion (``events[k] = source()`` taints ``events``).
    """
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for stmt in own_statements(fn):
            if isinstance(stmt, ast.Assign):
                value_tainted = _expr_tainted(stmt.value, tainted, is_source_call)
                for target in stmt.targets:
                    name: Optional[str] = None
                    if isinstance(target, ast.Name) and value_tainted:
                        name = target.id
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and value_tainted
                    ):
                        name = target.value.id  # insertion taints container
                    if name is not None and name not in tainted:
                        tainted.add(name)
                        changed = True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and _expr_tainted(stmt.value, tainted, is_source_call)
                    and stmt.target.id not in tainted
                ):
                    tainted.add(stmt.target.id)
                    changed = True
    return tainted


def returns_source(
    fn: FunctionNode, is_source_call: Callable[[ast.Call], bool]
) -> bool:
    """Does some ``return`` of ``fn`` hand a source value to the caller?"""
    tainted = tainted_locals(fn, is_source_call)
    for stmt in own_statements(fn):
        if isinstance(stmt, ast.Return) and _expr_tainted(
            stmt.value, tainted, is_source_call
        ):
            return True
    return False


# -- drop-site classification ------------------------------------------------


def dropped_calls(
    fn: FunctionNode, matches: Callable[[ast.Call], bool]
) -> Iterator[ast.Call]:
    """Bare-expression statements whose call result is discarded."""
    for stmt in own_statements(fn):
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            if matches(stmt.value):
                yield stmt.value


def dead_stores(
    fn: FunctionNode, matches: Callable[[ast.Call], bool]
) -> Iterator[Tuple[str, ast.Call]]:
    """``x = matching_call(...)`` where ``x`` is never read afterwards.

    Flow-insensitive: any read of ``x`` anywhere in the function (or a
    nested lambda) counts as a use, so this only fires on names that
    are *never* consumed at all.
    """
    loads = load_counts(fn)
    for stmt in own_statements(fn):
        name = simple_assign_target(stmt)
        value = assign_value(stmt)
        if (
            name is not None
            and isinstance(value, ast.Call)
            and matches(value)
            and loads.get(name, 0) == 0
        ):
            yield name, value
