"""The REPRO5xx whole-program rules.

Each rule accumulates every :class:`ModuleContext` during
:meth:`check` and runs its interprocedural analysis in :meth:`finish`,
once the symbol table and call graph cover the full scan.

Ambiguity policy: Python call sites resolve by *name*, so a site can
bind to several definitions.  Every rule here fires only when the
analysis verdict holds for **all** candidates — recall is traded for a
zero false-positive budget, because these rules gate CI.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext, Rule, register_rule
from repro.analysis.flow import cfg as cfgmod
from repro.analysis.flow.callgraph import CallGraph, build_call_graph, resolve
from repro.analysis.flow.dataflow import (
    dead_stores,
    dropped_calls,
    own_statements,
    returns_source,
    stmt_mentions_load,
)
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable, build_symbols
from repro.analysis.rules.protocol import _SEND_FAMILY_ALWAYS, _SEND_FAMILY_ON
from repro.analysis.visitor import attr_chain


class FlowRule(Rule):
    """Base for REPRO5xx: collect modules, analyse in finish()."""

    whole_program = True

    def __init__(self) -> None:
        self._modules: List[ModuleContext] = []

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        self._modules.append(module)
        return ()

    def finish(self) -> Iterable[Finding]:
        symbols = build_symbols(self._modules)
        graph = build_call_graph(symbols)
        return self.analyse(symbols, graph)

    def analyse(
        self, symbols: SymbolTable, graph: CallGraph
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def finding_at(
        self, info: FunctionInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=info.module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _is_base_send_call(call: ast.Call) -> bool:
    """The syntactic send-family matcher REPRO201 already polices."""
    chain = attr_chain(call.func)
    method = chain[-1]
    base = chain[-2] if len(chain) >= 2 else None
    return method in _SEND_FAMILY_ALWAYS or (
        method in _SEND_FAMILY_ON and base in _SEND_FAMILY_ON[method]
    )


@register_rule
class SendCompletionEscapeRule(FlowRule):
    """Completion events must be consumed through *wrappers* too.

    REPRO201 flags a discarded ``api.send(...)`` syntactically.  This
    rule closes the interprocedural hole: a helper that *returns* a
    send-family completion event (directly, through a local, or inside
    a container) is itself event-returning, and dropping its result —
    or assigning it to a name that is never read — loses the only
    handle proving the DMA engine is done with the buffer.
    """

    rule_id = "REPRO501"
    name = "send-completion-escape"
    summary = (
        "a function returning an SCU completion event (directly or via "
        "locals/containers) must have its result consumed at every "
        "call site, like the send-family calls themselves"
    )

    def analyse(
        self, symbols: SymbolTable, graph: CallGraph
    ) -> Iterable[Finding]:
        # Fixpoint: functions whose return value derives from a
        # send-family call or from another derived function.
        derived: Set[str] = set()

        def source_call(call: ast.Call) -> bool:
            if _is_base_send_call(call):
                return True
            candidates = [
                info
                for infos in (symbols.functions.get(_callee(call), ()),)
                for info in infos
            ]
            return bool(candidates) and all(
                c.qualname in derived for c in candidates
            )

        changed = True
        while changed:
            changed = False
            for infos in symbols.functions.values():
                for info in infos:
                    if info.qualname in derived:
                        continue
                    if returns_source(info.node, source_call):
                        derived.add(info.qualname)
                        changed = True

        def event_call(caller: FunctionInfo, call: ast.Call) -> bool:
            """Event-producing call at a site: base family (dead-store
            checks only) or an unambiguously derived wrapper."""
            if _is_base_send_call(call):
                return True
            candidates = resolve(call, caller, symbols)
            return bool(candidates) and all(
                c.qualname in derived for c in candidates
            )

        findings: List[Finding] = []
        for infos in symbols.functions.values():
            for info in infos:
                def matches(call: ast.Call, _info: FunctionInfo = info) -> bool:
                    return event_call(_info, call)

                for call in dropped_calls(info.node, matches):
                    if _is_base_send_call(call):
                        continue  # REPRO201's beat: don't double-report
                    chain = attr_chain(call.func)
                    findings.append(
                        self.finding_at(
                            info,
                            call,
                            f"completion event of {'.'.join(chain)}() is "
                            "discarded; the callee returns an SCU "
                            "completion handle that some path must wait on",
                        )
                    )
                for name, call in dead_stores(info.node, matches):
                    chain = attr_chain(call.func)
                    findings.append(
                        self.finding_at(
                            info,
                            call,
                            f"completion event of {'.'.join(chain)}() is "
                            f"assigned to '{name}' but never consumed on "
                            "any path; wait on it, return it, or register "
                            "a completion callback",
                        )
                    )
        return findings


def _callee(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


#: sanitizer acquire -> release method-name pairs REPRO502 balances
_CLAIM_PAIRS = {"dma_begin": "dma_end"}


@register_rule
class ClaimReleaseBalanceRule(FlowRule):
    """Sanitizer claims must be handed off on every path.

    A ``claim = san.dma_begin(...)`` opens a DMA window on a halo
    buffer; the window closes through ``dma_end(claim)`` — usually
    deferred via a completion callback.  Any control-flow path (most
    dangerously an ``except LinkDownError`` / ``DegradedMachineError``
    edge, or a ``finally``-less early return) that reaches the function
    exit without *touching* the claim leaks the window: the sanitizer
    then reports phantom races against a transfer that was abandoned.

    "Touching" means any read of the claim variable — a release call,
    a callback capture (``lambda _e, c=claim: san.dma_end(c)``), or an
    escape (returning/storing it, transferring ownership).
    """

    rule_id = "REPRO502"
    name = "claim-release-balance"
    summary = (
        "every path from dma_begin() to function exit (including "
        "exception edges) must release or hand off the claim"
    )

    def analyse(
        self, symbols: SymbolTable, graph: CallGraph
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for infos in symbols.functions.values():
            for info in infos:
                findings.extend(self._check_function(info))
        return findings

    def _check_function(self, info: FunctionInfo) -> Iterable[Finding]:
        acquires: List[Tuple[ast.stmt, str]] = []
        for stmt in own_statements(info.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            value = stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and _callee(value) in _CLAIM_PAIRS
            ):
                acquires.append((stmt, target.id))
        if not acquires:
            return ()
        cfg = cfgmod.build_cfg(info.node)
        findings: List[Finding] = []
        for stmt, name in acquires:
            start = cfg.nid_of(stmt)
            if start is None:  # unreachable fixture code
                continue
            touching = {
                nid
                for nid, node in cfg.stmts.items()
                if node is not None
                and node is not stmt
                and stmt_mentions_load(node, name)
            }
            if cfg.reaches_exit_avoiding(start, touching):
                findings.append(
                    self.finding_at(
                        info,
                        stmt,
                        f"sanitizer claim '{name}' from "
                        f"{_callee(stmt.value)}() can reach the exit of "
                        f"{info.qualname.split('::')[-1]}() without being "
                        "released or handed off (check exception edges: "
                        "LinkDownError/DegradedMachineError handlers and "
                        "early returns must route through dma_end or a "
                        "completion callback)",
                    )
                )
        return findings


#: flop-bearing operator kernels: each call performs O(volume) complex
#: arithmetic the machine must charge.  O(V) vector algebra (vdot,
#: axpy) is deliberately absent — the solver layer accounts for it in
#: the closed-form model, not per call.
_NUMPY_KERNELS_NP = frozenset({"einsum", "matmul", "tensordot"})
_NUMPY_KERNELS_FREE = frozenset(
    {"cmatvec", "spin_project", "spin_reconstruct", "apply_spin_matrix"}
)


def _is_numpy_kernel(call: ast.Call) -> bool:
    chain = attr_chain(call.func)
    name = chain[-1]
    base = chain[-2] if len(chain) >= 2 else None
    if name in _NUMPY_KERNELS_NP and base in ("np", "numpy"):
        return True
    return name in _NUMPY_KERNELS_FREE


def _is_charge_call(call: ast.Call) -> bool:
    return _callee(call) == "compute" and any(
        kw.arg == "kernel" for kw in call.keywords
    )


@register_rule
class FlopChargeCoverageRule(FlowRule):
    """Numpy operator kernels in the parallel layer must be charged.

    The measured-vs-model crosscheck is only as good as the charging
    discipline: every function in ``repro.parallel`` that runs an
    operator kernel (``np.einsum``, ``cmatvec``, spin projection /
    reconstruction) must either charge ``compute(..., kernel=...)``
    itself or be reachable *only* through callers that do.  A helper
    reachable from an uncharging entry point computes real flops the
    telemetry books never see.

    This replaces the per-file REPRO302 heuristic with call-graph
    coverage: helpers like face projection stay charge-free because
    every caller charges for them.
    """

    rule_id = "REPRO503"
    name = "flop-charge-coverage"
    summary = (
        "numpy operator kernels reachable from an uncharged repro."
        "parallel entry path must charge compute(kernel=...) somewhere "
        "on every call chain"
    )

    #: the package this rule audits (fixtures use any 'parallel' dir)
    package = "parallel"

    def analyse(
        self, symbols: SymbolTable, graph: CallGraph
    ) -> Iterable[Finding]:
        in_pkg: Dict[str, FunctionInfo] = {
            info.qualname: info
            for infos in symbols.functions.values()
            for info in infos
            if info.module.package == self.package
        }
        if not in_pkg:
            return ()

        def charges(qualname: str) -> bool:
            info = in_pkg[qualname]
            return any(
                _is_charge_call(node)
                for node in ast.walk(info.node)
                if isinstance(node, ast.Call)
            )

        pkg_callers: Dict[str, Set[str]] = {
            q: {c for c in graph.callers_of(q) if c in in_pkg} for q in in_pkg
        }
        roots = [q for q, callers in pkg_callers.items() if not callers]

        # Propagate "reachable without passing a charge" from the roots.
        unprotected: Set[str] = set()
        work = [q for q in roots if not charges(q)]
        unprotected.update(work)
        while work:
            q = work.pop()
            for callee in graph.callees_of(q):
                if (
                    callee in in_pkg
                    and callee not in unprotected
                    and not charges(callee)
                ):
                    unprotected.add(callee)
                    work.append(callee)

        findings: List[Finding] = []
        for qualname in sorted(unprotected):
            info = in_pkg[qualname]
            kernel_calls = [
                node
                for node in ast.walk(info.node)
                if isinstance(node, ast.Call) and _is_numpy_kernel(node)
            ]
            if not kernel_calls:
                continue
            first = min(kernel_calls, key=lambda c: (c.lineno, c.col_offset))
            chain = attr_chain(first.func)
            findings.append(
                self.finding_at(
                    info,
                    first,
                    f"operator kernel {'.'.join(chain)}() runs in "
                    f"{qualname.split('::')[-1]}() but no call chain "
                    "reaching it charges compute(..., kernel=...); the "
                    "flop books will not see this work",
                )
            )
        return findings


def _class_str_tuple(cls: ast.ClassDef, attr: str) -> Optional[Set[str]]:
    """The string elements of a class-level ``attr = ("a", "b", ...)``."""
    for stmt in cls.body:
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == attr:
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    return {
                        e.value
                        for e in value.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                    }
                return set()
    return None


def _self_attr_stores(fn: ast.AST) -> Dict[str, ast.stmt]:
    """attr name -> first statement assigning ``self.attr`` in ``fn``."""
    stores: Dict[str, ast.stmt] = {}
    for node in ast.walk(fn):
        targets: Sequence[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                stores.setdefault(target.attr, node)
        # tuple-unpack targets: ``a, self.x = ...``
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if (
                            isinstance(elt, ast.Attribute)
                            and isinstance(elt.value, ast.Name)
                            and elt.value.id == "self"
                        ):
                            stores.setdefault(elt.attr, node)
    return stores


def _self_attr_loads(fn: ast.AST) -> Set[str]:
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and isinstance(node.ctx, ast.Load)
    }


@register_rule
class SnapshotCompletenessRule(FlowRule):
    """Fork-snapshot classes must account for every mutable attribute.

    The fork executor ships shard state home through
    ``snapshot_state``/``restore_state``.  An attribute the class
    mutates after ``__init__`` but never snapshots is state the parent
    silently loses on gather — the bug class is *invisible* until a
    counter or protocol register reads back stale.

    Every such attribute must appear in ``_SNAPSHOT_ATTRS``, be read
    inside ``snapshot_state`` itself, or be declared in
    ``_SNAPSHOT_TRANSIENT`` — the audited opt-out for live-heap-only
    state (events, processes, in-flight buffers) that is meaningless
    across the pickle boundary because snapshots only run on quiesced
    shards.
    """

    rule_id = "REPRO504"
    name = "snapshot-completeness"
    summary = (
        "attributes mutated outside __init__ on a snapshot_state class "
        "must be snapshotted or declared _SNAPSHOT_TRANSIENT"
    )

    _EXEMPT_METHODS = {"__init__", "snapshot_state", "restore_state"}

    def analyse(
        self, symbols: SymbolTable, graph: CallGraph
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for infos in symbols.classes.values():
            for cls_info in infos:
                snap = cls_info.methods.get("snapshot_state")
                if snap is None:
                    continue
                findings.extend(self._check_class(cls_info, snap))
        return findings

    def _check_class(self, cls_info, snap) -> Iterable[Finding]:
        cls = cls_info.node
        attrs = _class_str_tuple(cls, "_SNAPSHOT_ATTRS") or set()
        transient = _class_str_tuple(cls, "_SNAPSHOT_TRANSIENT") or set()
        covered = attrs | transient | _self_attr_loads(snap.node)

        findings: List[Finding] = []
        mutated: Dict[str, ast.stmt] = {}
        for name, method in sorted(cls_info.methods.items()):
            if name in self._EXEMPT_METHODS:
                continue
            for attr, stmt in _self_attr_stores(method.node).items():
                prev = mutated.get(attr)
                if prev is None or stmt.lineno < prev.lineno:
                    mutated[attr] = stmt
        for attr in sorted(set(mutated) - covered):
            stmt = mutated[attr]
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=cls_info.module.relpath,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"{cls.name}.{attr} is mutated outside __init__ "
                        "but missing from snapshot_state; add it to "
                        "_SNAPSHOT_ATTRS (or declare it in "
                        "_SNAPSHOT_TRANSIENT if it is live-heap-only "
                        "state a quiesced-shard snapshot never carries)"
                    ),
                )
            )

        # Restore symmetry: a hand-written restore_state must write back
        # every _SNAPSHOT_ATTRS entry (a generic setattr loop covers all).
        restore = cls_info.methods.get("restore_state")
        if restore is not None and attrs:
            uses_setattr = any(
                isinstance(node, ast.Call) and _callee(node) == "setattr"
                for node in ast.walk(restore.node)
            )
            if not uses_setattr:
                written = set(_self_attr_stores(restore.node))
                for attr in sorted(attrs - written):
                    findings.append(
                        Finding(
                            rule=self.rule_id,
                            path=cls_info.module.relpath,
                            line=restore.node.lineno,
                            col=restore.node.col_offset,
                            message=(
                                f"{cls.name}.restore_state never restores "
                                f"'{attr}' from _SNAPSHOT_ATTRS; the "
                                "fork gather would drop it"
                            ),
                        )
                    )
        return findings
