"""Statement-granularity control-flow graphs with exception edges.

One :class:`CFG` node per statement (compound statements contribute a
node for their test/header, plus nodes for each nested statement).  Two
virtual nodes bracket the function: ``ENTRY`` and ``EXIT``.

Exception edges
---------------
A statement that can raise (it contains a call, ``raise``, ``assert``,
``yield`` or ``await``) gets an edge into each handler of the
*innermost* enclosing ``try`` — or into its ``finally`` block when the
``try`` has no handlers.  ``finally`` frontiers additionally edge to
``EXIT``, modelling the re-raise continuation of an exceptional entry.

Soundness bound (DESIGN.md section 14): outside any ``try``, an
implicit raise from a call is *not* given an edge to ``EXIT`` — doing
so would make every statement an exit and drown path-sensitive rules
in noise.  Explicit ``raise`` statements always get their edge.  The
practical consequence for REPRO502: a claim acquired and handed off in
straight-line code is considered safe even though the handoff call
itself could in principle fail.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

ENTRY = 0
EXIT = 1


class CFG:
    """Successor-map control-flow graph over integer node ids."""

    def __init__(self) -> None:
        self.succ: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}
        #: nid -> the statement (None for ENTRY/EXIT/virtual nodes)
        self.stmts: Dict[int, Optional[ast.AST]] = {ENTRY: None, EXIT: None}
        self._nid_by_stmt: Dict[int, int] = {}
        self._next = 2

    def add_node(self, stmt: Optional[ast.AST]) -> int:
        nid = self._next
        self._next += 1
        self.succ[nid] = set()
        self.stmts[nid] = stmt
        if stmt is not None:
            self._nid_by_stmt[id(stmt)] = nid
        return nid

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)

    def nid_of(self, stmt: ast.AST) -> Optional[int]:
        return self._nid_by_stmt.get(id(stmt))

    def reaches_exit_avoiding(self, start: int, avoid: Set[int]) -> bool:
        """True when EXIT is reachable from ``start`` without touching
        any node in ``avoid`` (``start`` itself is exempt)."""
        seen = {start}
        stack = [start]
        while stack:
            for nxt in self.succ[stack.pop()]:
                if nxt == EXIT:
                    return True
                if nxt in seen or nxt in avoid:
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return False


def _expr_can_raise(nodes: Iterable[ast.AST]) -> bool:
    for root in nodes:
        if root is None:
            continue
        for node in ast.walk(root):
            if isinstance(
                node,
                (ast.Call, ast.Raise, ast.Assert, ast.Yield, ast.YieldFrom, ast.Await),
            ):
                return True
    return False


def _raise_parts(stmt: ast.stmt) -> List[ast.AST]:
    """The sub-expressions of ``stmt`` evaluated *at this node* (for a
    compound statement, its header only — nested statements get their
    own nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: innermost-first stack of exception targets (handler entries,
        #: or the finally entry of a handler-less try)
        self.exc_stack: List[List[int]] = []
        #: innermost-first stack of finally entries (for return routing)
        self.fin_stack: List[int] = []
        #: (break collector, continue target) per enclosing loop
        self.loop_stack: List[List[Set[int]]] = []

    # -- plumbing -----------------------------------------------------------
    def _link(self, preds: Set[int], nid: int) -> None:
        for p in preds:
            self.cfg.add_edge(p, nid)

    def _exception_edges(self, nid: int, stmt: ast.stmt) -> None:
        if not self.exc_stack:
            return
        if _expr_can_raise(_raise_parts(stmt)):
            for target in self.exc_stack[-1]:
                self.cfg.add_edge(nid, target)

    # -- statement walkers --------------------------------------------------
    def seq(self, stmts: Sequence[ast.stmt], preds: Set[int]) -> Set[int]:
        for stmt in stmts:
            preds = self.stmt(stmt, preds)
        return preds

    def stmt(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        nid = self.cfg.add_node(stmt)
        self._link(preds, nid)
        self._exception_edges(nid, stmt)

        if isinstance(stmt, ast.Return):
            self.cfg.add_edge(nid, self.fin_stack[-1] if self.fin_stack else EXIT)
            return set()
        if isinstance(stmt, ast.Raise):
            if self.exc_stack:
                for target in self.exc_stack[-1]:
                    self.cfg.add_edge(nid, target)
            else:
                self.cfg.add_edge(nid, EXIT)
            return set()
        if isinstance(stmt, ast.Break):
            self.loop_stack[-1][0].add(nid)
            return set()
        if isinstance(stmt, ast.Continue):
            for target in self.loop_stack[-1][1]:
                self.cfg.add_edge(nid, target)
            return set()
        if isinstance(stmt, ast.If):
            then_frontier = self.seq(stmt.body, {nid})
            else_frontier = self.seq(stmt.orelse, {nid}) if stmt.orelse else {nid}
            return then_frontier | else_frontier
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: Set[int] = set()
            self.loop_stack.append([breaks, {nid}])
            body_frontier = self.seq(stmt.body, {nid})
            self.loop_stack.pop()
            self._link(body_frontier, nid)
            always_loops = (
                isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value)
            )
            normal_exit: Set[int] = set() if always_loops else {nid}
            if stmt.orelse:
                normal_exit = self.seq(stmt.orelse, normal_exit)
            return normal_exit | breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.seq(stmt.body, {nid})
        if isinstance(stmt, ast.Try):
            return self._try(stmt, {nid})
        # simple statement (Expr, Assign, AugAssign, Assert, Pass, ...)
        return {nid}

    def _try(self, stmt: ast.Try, preds: Set[int]) -> Set[int]:
        handler_entries = [self.cfg.add_node(h) for h in stmt.handlers]
        fin_entry = self.cfg.add_node(None) if stmt.finalbody else None

        # body: exceptions go to this try's handlers (or its finally)
        if handler_entries:
            self.exc_stack.append(handler_entries)
        elif fin_entry is not None:
            self.exc_stack.append([fin_entry])
        if fin_entry is not None:
            self.fin_stack.append(fin_entry)
        body_frontier = self.seq(stmt.body, preds)
        if handler_entries or (fin_entry is not None and not handler_entries):
            self.exc_stack.pop()

        if stmt.orelse:
            body_frontier = self.seq(stmt.orelse, body_frontier)

        # handler bodies: exceptions propagate to the *outer* frame, but
        # still run this try's finally first
        handler_frontiers: Set[int] = set()
        if fin_entry is not None:
            self.exc_stack.append([fin_entry])
        for entry, handler in zip(handler_entries, stmt.handlers):
            handler_frontiers |= self.seq(handler.body, {entry})
        if fin_entry is not None:
            self.exc_stack.pop()
            self.fin_stack.pop()

        normal_exits = body_frontier | handler_frontiers
        if fin_entry is None:
            return normal_exits
        self._link(normal_exits, fin_entry)
        fin_frontier = self.seq(stmt.finalbody, {fin_entry})
        # exceptional continuation: after an exceptional entry the
        # finally block re-raises past this function
        for nid in fin_frontier:
            self.cfg.add_edge(nid, EXIT)
        return fin_frontier


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the control-flow graph of one function body."""
    builder = _Builder()
    frontier = builder.seq(fn.body, {ENTRY})
    for nid in frontier:
        builder.cfg.add_edge(nid, EXIT)
    return builder.cfg
