"""Name-resolved call graph over the project symbol table.

Resolution is intentionally simple and *over-approximating* — Python
has no static types here, so a call site binds to every definition its
bare name could mean:

* ``self.m(...)`` binds to ``m`` on the caller's own class when that
  class defines it (the precise, common case), otherwise falls back to
  every definition named ``m``;
* ``obj.m(...)`` and ``m(...)`` bind to every definition named ``m``.

Rules that act on call sites must therefore decide what to do with
ambiguity; the REPRO5xx rules only fire when *every* candidate agrees
(see :mod:`repro.analysis.flow.rules`), trading recall for a zero
false-positive budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.flow.symbols import FunctionInfo, SymbolTable


@dataclass
class CallSite:
    """One call expression inside one function body."""

    caller: FunctionInfo
    call: ast.Call
    callee_name: str
    candidates: Tuple[FunctionInfo, ...]


@dataclass
class CallGraph:
    """Edges between qualified names, plus per-callee call sites."""

    symbols: SymbolTable
    callees: Dict[str, Set[str]] = field(default_factory=dict)
    callers: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)

    def callers_of(self, qualname: str) -> Set[str]:
        return self.callers.get(qualname, set())

    def callees_of(self, qualname: str) -> Set[str]:
        return self.callees.get(qualname, set())


def callee_name(call: ast.Call) -> str:
    """The bare name a call binds through (``a.b.c(...)`` -> ``"c"``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def resolve(
    call: ast.Call, caller: FunctionInfo, symbols: SymbolTable
) -> Tuple[FunctionInfo, ...]:
    """Candidate definitions for one call site (possibly empty)."""
    name = callee_name(call)
    if not name:
        return ()
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
        and caller.cls is not None
    ):
        own = symbols.methods_of(caller.cls, name)
        if own:
            return tuple(own)
    return tuple(symbols.functions.get(name, ()))


def build_call_graph(symbols: SymbolTable) -> CallGraph:
    graph = CallGraph(symbols=symbols)
    for infos in symbols.functions.values():
        for info in infos:
            graph.callees.setdefault(info.qualname, set())
            graph.callers.setdefault(info.qualname, set())
    for infos in symbols.functions.values():
        for info in infos:
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                candidates = resolve(node, info, symbols)
                site = CallSite(
                    caller=info,
                    call=node,
                    callee_name=callee_name(node),
                    candidates=candidates,
                )
                graph.sites.append(site)
                for target in candidates:
                    graph.callees[info.qualname].add(target.qualname)
                    graph.callers[target.qualname].add(info.qualname)
    return graph
