"""Bounded executable model of the SCU automatic-resend protocol.

One sender/receiver pair, one transfer, exhaustively enumerable:

* at most :attr:`ModelConfig.n` <= 4 payload words (default matrix
  uses <= 3 — the paper's ack window);
* at most one transient fault (a corrupted payload frame);
* two in-order wires (data: sender->receiver, control: the reverse),
  matching the HSSL's FIFO delivery;
* every interleaving of transmit / deliver / post / store-complete
  explored by DFS over immutable states.

The model mirrors :mod:`repro.machine.scu` guard-for-guard; each
guard is named by a :class:`~repro.analysis.protocol.spec.SpecToggles`
flag so the verifier can seed a mutation (clear a flag) and prove the
enumeration catches it.  Not every guard is safety-critical within the
model's bounds: ``gap_resend`` and ``dup_reack`` are latency
optimisations made redundant by go-back-N rewind over a reliable
control wire, and ``resend_rewind_floor`` / ``ack_monotonic`` defend
against reorderings the FIFO wires cannot produce — dropping those
four changes no safety verdict (the enumeration confirms it), but the
conformance pass still pins them in the production code.  What the model deliberately does *not* cover
(see DESIGN.md section 14): watchdog timers and the resend-storm trip
(wall-clock behaviour), checksums, multi-transfer back-to-back
overlap, and the event-loop wakeup plumbing — those are exercised by
the runtime fault-injection suites instead.

A ``ProtocolError`` raised by the production code corresponds to a
:class:`Violation` here: correct executions never reach one, so any
reachable violation — or any terminal state short of full quiescence
(``in_flight == 0``, both wires empty, every word stored exactly
once) — fails verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple, Union

from repro.analysis.protocol.spec import DEFAULT_SPEC, SpecToggles

#: sentinel matching :data:`repro.machine.scu.FACE_BATCH`
FACE = "face"

#: receiver phases
UNPOSTED, POSTED, COMPLETE = 0, 1, 2


@dataclass(frozen=True)
class ModelConfig:
    """One cell of the verification matrix."""

    #: transfer length in words (keep <= 4: state space)
    n: int = 3
    #: words per frame: an int or :data:`FACE` (whole transfer)
    batch: Union[int, str] = 1
    #: sender ack window; ``None`` = ``max(3, batch)`` as in the ASIC
    window: Optional[int] = None
    #: receiver idle-hold registers (paper: first three words held)
    idle_hold: int = 3
    #: transient-fault budget (corrupted payload frames)
    faults: int = 0
    #: ``True``: descriptor posted late (idle receive drains on post)
    drain: bool = False
    toggles: SpecToggles = field(default=DEFAULT_SPEC)

    @property
    def resolved_batch(self) -> int:
        return self.n if self.batch == FACE else int(self.batch)

    @property
    def resolved_window(self) -> int:
        if self.window is not None:
            return self.window
        return max(3, self.resolved_batch)

    def describe(self) -> str:
        return (
            f"n={self.n} batch={self.batch} window={self.resolved_window} "
            f"faults={self.faults} drain={self.drain}"
        )


@dataclass(frozen=True)
class Violation:
    """A safety failure on some interleaving (== a lost word, a
    duplicate delivery, a deadlock, or a ``ProtocolError`` in the
    production code)."""

    kind: str
    message: str
    trace: Tuple[str, ...] = ()

    def format(self) -> str:
        path = " -> ".join(self.trace) if self.trace else "(initial)"
        return f"{self.kind}: {self.message}\n    via {path}"


# frames on the data wire: (kind, seq, nwords, corrupt)
DATA, EOT = "data", "eot"
# frames on the control wire: (kind, seq)
ACK, RESEND = "ack", "resend"


@dataclass(frozen=True)
class State:
    """One interleaving point; hashable for the explored-set."""

    s_base: int = 0
    s_next: int = 0
    s_eot_sent: bool = False
    data: Tuple[tuple, ...] = ()
    ctrl: Tuple[tuple, ...] = ()
    r_phase: int = POSTED
    r_expected: int = 0
    r_cursor: int = 0
    r_stored: int = 0
    r_held: Tuple[tuple, ...] = ()
    store_q: Tuple[int, ...] = ()
    eot_due: Tuple[int, ...] = ()
    faults: int = 0


def initial_state(cfg: ModelConfig) -> State:
    return State(
        r_phase=UNPOSTED if cfg.drain else POSTED, faults=cfg.faults
    )


Succ = Union[State, Violation]


def _accept(s: State, cfg: ModelConfig, seq: int, nwords: int) -> Succ:
    """Mirror of ``RecvUnit._accept``: write at the cursor, ACK, rearm."""
    if seq != s.r_cursor:
        return Violation(
            "non-sequential-write",
            f"chunk at seq {seq} written with cursor {s.r_cursor} "
            "(lost or duplicated word)",
        )
    if s.r_cursor + nwords > cfg.n:
        return Violation(
            "overrun", f"{nwords} words but {cfg.n - s.r_cursor} slots left"
        )
    cursor = s.r_cursor + nwords
    # ACK carries the *current* expected (already advanced past this
    # chunk — and past all held chunks when draining at post time)
    ctrl = s.ctrl + ((ACK, s.r_expected),)
    phase, expected, eot_due = s.r_phase, s.r_expected, s.eot_due
    if cursor >= cfg.n:
        # wire side complete: owe one EOT, rearm the sequence space
        eot_due = eot_due + (cfg.n,)
        phase, expected = COMPLETE, 0
    return replace(
        s,
        r_cursor=cursor,
        ctrl=ctrl,
        r_phase=phase,
        r_expected=expected,
        eot_due=eot_due,
        store_q=s.store_q + (nwords,),
    )


def _on_data(s: State, cfg: ModelConfig, frame: tuple) -> Succ:
    """Mirror of ``RecvUnit.on_data`` for one delivered payload frame."""
    t = cfg.toggles
    _, seq, nwords, corrupt = frame
    if t.stale_eot_filter and s.eot_due:
        # FIFO wire: this frame was queued before the owed EOT, so it
        # is a stale resend duplicate of the finished transfer
        return s
    if corrupt:
        if t.corrupt_resend:
            return replace(s, ctrl=s.ctrl + ((RESEND, seq),))
        return s  # mutated: corrupt frame silently dropped
    if seq != s.r_expected:
        if seq > s.r_expected:
            if t.gap_resend:
                return replace(s, ctrl=s.ctrl + ((RESEND, s.r_expected),))
        else:
            if t.idle_dup_silence and s.r_phase != POSTED:
                return s  # held words must not return window credit
            if t.dup_reack:
                return replace(s, ctrl=s.ctrl + ((ACK, s.r_expected),))
        return s
    s = replace(s, r_expected=s.r_expected + nwords)
    if s.r_phase != POSTED:
        # idle receive: hold without acknowledging (first frame of any
        # size is legal; beyond that the holding registers bound it)
        held_words = sum(nw for _sq, nw in s.r_held)
        if (
            t.idle_hold_guard
            and held_words
            and held_words + nwords > cfg.idle_hold
        ):
            return Violation(
                "idle-hold-overflow",
                f"{held_words + nwords} held words > {cfg.idle_hold} "
                "registers (the sender violated the ack window)",
            )
        return replace(s, r_held=s.r_held + ((seq, nwords),))
    return _accept(s, cfg, seq, nwords)


def _on_eot(s: State, cfg: ModelConfig, seq: int) -> Succ:
    """Mirror of ``RecvUnit.on_eot``."""
    if not cfg.toggles.eot_accounting:
        return s  # mutated: EOTs unchecked
    if s.eot_due:
        owed = s.eot_due[0]
        if seq != owed:
            return Violation(
                "eot-mismatch", f"EOT at {seq}, completed transfer owed {owed}"
            )
        return replace(s, eot_due=s.eot_due[1:])
    if s.r_phase == POSTED:
        return Violation(
            "truncated-dma",
            f"EOT at {seq} with {cfg.n - s.r_cursor} descriptor words outstanding",
        )
    return Violation("unexpected-eot", f"EOT at {seq} with no transfer owed")


def successors(s: State, cfg: ModelConfig) -> List[Tuple[str, Succ]]:
    """Every enabled transition from ``s`` (the interleaving fan-out)."""
    t, n = cfg.toggles, cfg.n
    window = cfg.resolved_window
    out: List[Tuple[str, Succ]] = []

    # -- sender: transmit the next frame -------------------------------
    in_flight = s.s_next - s.s_base
    can_tx = s.s_next < n and not s.s_eot_sent
    if t.ack_window_guard:
        can_tx = can_tx and in_flight < window
    if can_tx:
        batch = min(cfg.resolved_batch, n - s.s_next)
        if t.ack_window_guard:
            batch = min(batch, window - in_flight)
        frame = (DATA, s.s_next, batch, False)
        nxt = replace(s, s_next=s.s_next + batch, data=s.data + (frame,))
        out.append((f"tx({s.s_next}+{batch})", nxt))
        if s.faults > 0:
            bad = (DATA, s.s_next, batch, True)
            out.append((
                f"tx({s.s_next}+{batch})!corrupt",
                replace(nxt, data=s.data + (bad,), faults=s.faults - 1),
            ))

    # -- sender: end-of-transfer marker --------------------------------
    drained = s.s_base >= n if t.eot_after_drain else s.s_next >= n
    if drained and not s.s_eot_sent:
        out.append((
            "eot",
            replace(s, s_eot_sent=True, data=s.data + ((EOT, n, 0, False),)),
        ))

    # -- receiver: post the DMA descriptor (drain variant) -------------
    if cfg.drain and s.r_phase == UNPOSTED:
        nxt: Succ = replace(s, r_phase=POSTED, r_held=())
        for seq, nwords in s.r_held:
            nxt = _accept(nxt, cfg, seq, nwords)
            if isinstance(nxt, Violation):
                break
        out.append(("post", nxt))

    # -- wires: in-order delivery --------------------------------------
    if s.data:
        frame, rest = s.data[0], s.data[1:]
        base = replace(s, data=rest)
        if frame[0] == EOT:
            out.append((f"rx-eot({frame[1]})", _on_eot(base, cfg, frame[1])))
        else:
            label = f"rx({frame[1]}+{frame[2]})" + ("!" if frame[3] else "")
            out.append((label, _on_data(base, cfg, frame)))
    if s.ctrl:
        (kind, seq), rest = s.ctrl[0], s.ctrl[1:]
        nxt = replace(s, ctrl=rest)
        if kind == ACK:
            if not t.ack_monotonic or seq > nxt.s_base:
                nxt = replace(nxt, s_base=seq)
        else:  # RESEND: go back and retransmit
            if seq < nxt.s_next:
                floor = max(seq, nxt.s_base) if t.resend_rewind_floor else seq
                nxt = replace(nxt, s_next=floor)
        out.append((f"{kind}({seq})", nxt))

    # -- receiver: DMA store pipeline completes one chunk --------------
    if s.store_q:
        out.append((
            f"stored({s.store_q[0]})",
            replace(
                s,
                store_q=s.store_q[1:],
                r_stored=s.r_stored + s.store_q[0],
            ),
        ))

    return out


def check_invariants(s: State, cfg: ModelConfig) -> Optional[Violation]:
    """Safety properties that must hold in *every* reachable state."""
    in_flight = s.s_next - s.s_base
    window = cfg.resolved_window
    if in_flight > window:
        return Violation(
            "window-exceeded",
            f"{in_flight} unacknowledged words in flight > window {window}",
        )
    # NOTE ``base > next`` (negative in_flight) is deliberately NOT a
    # violation: a stale RESEND can rewind ``next`` to a word whose ACK
    # is still on the control wire, and when that ACK lands ``base``
    # overtakes ``next``.  The production sender then retransmits an
    # already-acknowledged word, which the receiver re-ACKs as a
    # duplicate — wasteful, but safe.  The enumeration found this quirk
    # on its first run (n=2, batch=1, one corrupt frame).
    if s.r_stored > cfg.n:
        return Violation(
            "duplicate-delivery", f"{s.r_stored} words stored of {cfg.n}"
        )
    return None


def is_quiesced(s: State, cfg: ModelConfig) -> bool:
    """Full completion: transfer done AND the partition is reclaimable
    (nothing in flight anywhere — the machine-as-a-service invariant).

    ``next`` is *not* required to equal ``n``: a stale RESEND delivered
    after the last ACK benignly rewinds it below ``base`` with no
    process left to retransmit (per-transfer state the next ``start()``
    resets).  Everything observable must be drained though: both wires
    empty, every word stored exactly once, nothing idle-held, no EOT
    owed."""
    return (
        s.s_eot_sent
        and s.s_base == cfg.n
        and not s.data
        and not s.ctrl
        and s.r_stored == cfg.n
        and s.r_cursor == cfg.n
        and not s.r_held
        and not s.store_q
        and not s.eot_due
        and s.r_phase != POSTED
    )


@dataclass
class ExploreResult:
    config: ModelConfig
    states: int = 0
    completed_runs: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        head = (
            f"[{'ok' if self.ok else 'FAIL'}] {self.config.describe()}: "
            f"{self.states} states, {self.completed_runs} quiesced terminals"
        )
        return "\n".join([head] + ["  " + v.format() for v in self.violations])


#: report at most this many violations per config (they repeat)
_MAX_VIOLATIONS = 4


def explore(cfg: ModelConfig) -> ExploreResult:
    """Enumerate every reachable interleaving; collect all failures.

    A violating successor is recorded and not expanded.  After the
    sweep, zero quiesced terminal states means no execution completes
    at all — a livelock/deadlock of the whole protocol — which is
    reported even if no single state violated a safety property.
    """
    result = ExploreResult(config=cfg)
    init = initial_state(cfg)
    seen = {init}
    stack: List[Tuple[State, Tuple[str, ...]]] = [(init, ())]
    while stack:
        s, trace = stack.pop()
        result.states += 1
        succ = successors(s, cfg)
        if not succ:
            if is_quiesced(s, cfg):
                result.completed_runs += 1
            elif len(result.violations) < _MAX_VIOLATIONS:
                result.violations.append(
                    Violation(
                        "deadlock",
                        f"terminal state short of quiescence: base={s.s_base} "
                        f"next={s.s_next} stored={s.r_stored}/{cfg.n} "
                        f"held={len(s.r_held)} eot_sent={s.s_eot_sent}",
                        trace,
                    )
                )
            continue
        for label, nxt in succ:
            if isinstance(nxt, Violation):
                if len(result.violations) < _MAX_VIOLATIONS:
                    result.violations.append(
                        replace(nxt, trace=trace + (label,))
                    )
                continue
            bad = check_invariants(nxt, cfg)
            if bad is not None:
                if len(result.violations) < _MAX_VIOLATIONS:
                    result.violations.append(
                        replace(bad, trace=trace + (label,))
                    )
                continue
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, trace + (label,)))
    if not result.violations and result.completed_runs == 0:
        result.violations.append(
            Violation("livelock", "no execution reaches quiescence")
        )
    return result
