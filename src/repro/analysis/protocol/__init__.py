"""SCU protocol state-machine verifier (DESIGN.md section 14).

Three pieces:

* :mod:`repro.analysis.protocol.spec` — the declarative transition
  spec of the SendUnit/RecvUnit go-back-N protocol, plus AST matchers
  that check ``repro/machine/scu.py`` actually implements each guard
  the spec declares (so the model and the code cannot silently drift).
* :mod:`repro.analysis.protocol.model` — a bounded executable model of
  one sender/receiver pair (<= 3 words in flight, <= 1 transient
  fault) whose every interleaving can be enumerated.
* :mod:`repro.analysis.protocol.verifier` — exhaustive DFS over the
  model's state graph for a matrix of configurations (word_batch 1 and
  FACE_BATCH, idle-receive drain variants, fault budgets), checking
  no-lost-word, no-duplicate-delivery, no-deadlock and quiescence.
"""

from __future__ import annotations

from repro.analysis.protocol.model import ModelConfig, Violation, explore
from repro.analysis.protocol.spec import (
    DEFAULT_SPEC,
    SpecToggles,
    check_conformance,
)
from repro.analysis.protocol.verifier import ProtocolReport, verify_protocol

__all__ = [
    "DEFAULT_SPEC",
    "ModelConfig",
    "ProtocolReport",
    "SpecToggles",
    "Violation",
    "check_conformance",
    "explore",
    "verify_protocol",
]
