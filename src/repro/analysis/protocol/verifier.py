"""Exhaustive protocol verification: conformance + the config matrix.

``verify_protocol()`` is the single entry point the CLI (``python -m
repro.analysis --protocol``) and ``make verify-flow`` call:

1. **Conformance** — parse the production ``scu.py`` and prove every
   guard the spec enables is still structurally present
   (:func:`repro.analysis.protocol.spec.check_conformance`).
2. **Enumeration** — explore every interleaving of the bounded model
   for the full matrix: word_batch in {1, FACE} x n in {1, 2, 3} x
   fault budget in {0, 1} x {posted, drain} descriptor timing.

Both must pass.  The matrix stays enumerable (each cell is a few
hundred to a few hundred thousand states) because the model bounds
words in flight by the 3-word ack window and the fault budget by 1.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.protocol.model import (
    FACE,
    ExploreResult,
    ModelConfig,
    explore,
)
from repro.analysis.protocol.spec import (
    DEFAULT_SPEC,
    SpecToggles,
    check_conformance,
)


def _production_source() -> str:
    """The scu.py the conformance pass runs against."""
    from repro.machine import scu

    return inspect.getsource(scu)


def default_matrix(spec: SpecToggles = DEFAULT_SPEC) -> List[ModelConfig]:
    """The standard verification matrix (28 cells).

    The main sweep uses the ASIC's window (``max(3, batch)``); the
    trailing ``window=2`` cells make the sender's window *smaller* than
    the idle-hold registers, which is what lets the enumeration catch a
    dropped ack-window guard (with window == idle_hold == 3 and n <= 3
    a flooding sender cannot overflow the hold registers, so that
    mutation would otherwise go unobserved).
    """
    matrix = []
    for batch in (1, FACE):
        for n in (1, 2, 3):
            for faults in (0, 1):
                for drain in (False, True):
                    matrix.append(
                        ModelConfig(
                            n=n,
                            batch=batch,
                            faults=faults,
                            drain=drain,
                            toggles=spec,
                        )
                    )
    for faults in (0, 1):
        for drain in (False, True):
            matrix.append(
                ModelConfig(
                    n=3, batch=1, window=2, faults=faults,
                    drain=drain, toggles=spec,
                )
            )
    return matrix


@dataclass
class ProtocolReport:
    conformance_failures: List[str] = field(default_factory=list)
    results: List[ExploreResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.conformance_failures and all(
            r.ok for r in self.results
        )

    @property
    def states_explored(self) -> int:
        return sum(r.states for r in self.results)

    def format(self, verbose: bool = False) -> str:
        lines = []
        if self.conformance_failures:
            lines.append("spec/code conformance FAILED:")
            lines.extend("  " + f for f in self.conformance_failures)
        else:
            lines.append("spec/code conformance: ok (scu.py matches the spec)")
        bad = [r for r in self.results if not r.ok]
        for r in self.results if verbose else bad:
            lines.append(r.format())
        lines.append(
            f"protocol model: {len(self.results)} configs, "
            f"{self.states_explored} states, "
            f"{sum(r.completed_runs for r in self.results)} quiesced "
            f"terminals, {len(bad)} failing"
        )
        lines.append(f"protocol verification: {'ok' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def verify_protocol(
    source: Optional[str] = None,
    spec: SpecToggles = DEFAULT_SPEC,
    matrix: Optional[List[ModelConfig]] = None,
) -> ProtocolReport:
    """Run conformance + the full enumeration matrix.

    ``source``/``spec``/``matrix`` exist for the mutation tests; the
    CLI calls this with defaults.
    """
    report = ProtocolReport(
        conformance_failures=check_conformance(
            _production_source() if source is None else source, spec
        )
    )
    for cfg in matrix if matrix is not None else default_matrix(spec):
        report.results.append(explore(cfg))
    return report
