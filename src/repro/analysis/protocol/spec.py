"""Declarative spec of the SCU resend protocol + AST conformance.

The protocol the paper describes (section 2.3, "three in the air" /
automatic resend) is implemented twice in this repository: once for
real in :mod:`repro.machine.scu`, and once as the bounded model in
:mod:`repro.analysis.protocol.model`.  The glue that stops the two
from drifting is this module: every guard the model relies on is named
by a :class:`SpecToggles` flag, and for every flag there is an AST
matcher that proves the *production* handler still contains that
guard.  Mutating either side — deleting the ack-window check from
``scu.py``, or clearing the toggle in the model — is caught: the
former by :func:`check_conformance`, the latter by the exhaustive
enumeration finding a violation.

The matchers are structural, not textual: they locate the handler
method in the parsed tree and assert the shape of the guard (the
comparison operands and the guarded action), so refactors that keep
the semantics keep the match.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class SpecToggles:
    """One flag per load-bearing guard of the resend protocol.

    The bounded model consults these when enumerating transitions; the
    conformance pass checks each enabled flag has its guard present in
    ``scu.py``.  Clearing a flag is how the verifier's mutation tests
    seed a spec bug.
    """

    #: sender transmits only while ``next - base < window`` ("three in
    #: the air"): dropping it overruns the receiver's idle-hold registers
    ack_window_guard: bool = True
    #: sender's ``on_ack`` advances ``base`` only for ``seq > base``
    ack_monotonic: bool = True
    #: sender's ``on_resend`` rewinds ``next`` to ``max(seq, base)``,
    #: never behind already-acknowledged words
    resend_rewind_floor: bool = True
    #: receiver requests a resend of a corrupt word (automatic resend)
    corrupt_resend: bool = True
    #: receiver re-requests ``expected`` when a gap frame arrives
    gap_resend: bool = True
    #: receiver re-acknowledges duplicates so the window re-opens
    dup_reack: bool = True
    #: ... but NOT during idle receive: held words must not return
    #: window credit (else the sender EOTs an unaccepted transfer)
    idle_dup_silence: bool = True
    #: receiver bounds idle-receive holding at ``idle_hold_words``
    idle_hold_guard: bool = True
    #: receiver discards data frames while a finished transfer's EOT is
    #: still owed (FIFO wire => they are stale resend duplicates); the
    #: enumeration found the hold-the-stale-duplicate bug this fixes
    stale_eot_filter: bool = True
    #: sender emits EOT only after the window drains (``base == n``),
    #: never merely after the last transmit (``next == n``)
    eot_after_drain: bool = True
    #: receiver validates every EOT against the owed-EOT FIFO
    eot_accounting: bool = True


DEFAULT_SPEC = SpecToggles()


#: transition spec, for documentation and the conformance report:
#: (toggle, class, handler, what the guard does)
TRANSITIONS = (
    ("ack_window_guard", "SendUnit", "_run",
     "transmit only while in_flight < window"),
    ("ack_monotonic", "SendUnit", "on_ack",
     "advance base only for seq > base"),
    ("resend_rewind_floor", "SendUnit", "on_resend",
     "rewind next to max(seq, base)"),
    ("corrupt_resend", "RecvUnit", "on_data",
     "RESEND the seq of a corrupt frame"),
    ("gap_resend", "RecvUnit", "on_data",
     "RESEND expected when a gap frame arrives"),
    ("dup_reack", "RecvUnit", "on_data",
     "re-ACK expected for duplicate frames"),
    ("idle_dup_silence", "RecvUnit", "on_data",
     "drop duplicates without re-ack while unposted"),
    ("idle_hold_guard", "RecvUnit", "on_data",
     "cap idle-receive holding at idle_hold_words"),
    ("stale_eot_filter", "RecvUnit", "on_data",
     "discard stale duplicates while an EOT is owed"),
    ("eot_after_drain", "SendUnit", "_run",
     "loop until base == n before transmitting EOT"),
    ("eot_accounting", "RecvUnit", "on_eot",
     "check every EOT against the owed-EOT FIFO"),
)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _find_method(tree: ast.Module, cls: str, method: str) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == method:
                    return item
    return None


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _control_send(call: ast.AST, ptype: str) -> bool:
    """``self.control.send(PacketType.<ptype>, ...)``"""
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)):
        return False
    if call.func.attr != "send" or not call.args:
        return False
    first = call.args[0]
    return (
        isinstance(first, ast.Attribute)
        and first.attr == ptype
        and isinstance(first.value, ast.Name)
        and first.value.id == "PacketType"
    )


def _branch_sends(branch: List[ast.stmt], ptype: str) -> bool:
    for stmt in branch:
        for node in ast.walk(stmt):
            if _control_send(node, ptype):
                return True
    return False


# ---------------------------------------------------------------------------
# matchers — one per toggle
# ---------------------------------------------------------------------------


def _match_ack_window_guard(tree: ast.Module) -> bool:
    """``_run`` guards transmission on ``in_flight < self.window``."""
    fn = _find_method(tree, "SendUnit", "_run")
    if fn is None:
        return False
    for node in ast.walk(fn):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, op, right = node.left, node.ops[0], node.comparators[0]
            if (
                isinstance(op, ast.Lt)
                and _is_name(left, "in_flight")
                and _is_self_attr(right, "window")
            ):
                return True
    return False


def _match_ack_monotonic(tree: ast.Module) -> bool:
    """``on_ack`` assigns ``base = seq`` only under ``seq > self.base``."""
    fn = _find_method(tree, "SendUnit", "on_ack")
    if fn is None:
        return False
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        guarded = (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Gt)
            and _is_name(test.left, "seq")
            and _is_self_attr(test.comparators[0], "base")
        )
        if not guarded:
            continue
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Assign)
                and any(_is_self_attr(t, "base") for t in stmt.targets)
                and _is_name(stmt.value, "seq")
            ):
                return True
    return False


def _match_resend_rewind_floor(tree: ast.Module) -> bool:
    """``on_resend`` sets ``next = max(seq, self.base)``."""
    fn = _find_method(tree, "SendUnit", "on_resend")
    if fn is None:
        return False
    for node in ast.walk(fn):
        if not (
            isinstance(node, ast.Assign)
            and any(_is_self_attr(t, "next") for t in node.targets)
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and _is_name(value.func, "max")
            and len(value.args) == 2
            and _is_name(value.args[0], "seq")
            and _is_self_attr(value.args[1], "base")
        ):
            return True
    return False


def _corrupt_branch(fn: ast.FunctionDef) -> Optional[List[ast.stmt]]:
    """The ``if frame.is_corrupt():`` body of ``on_data``."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Attribute)
            and test.func.attr == "is_corrupt"
        ):
            return node.body
    return None


def _match_corrupt_resend(tree: ast.Module) -> bool:
    fn = _find_method(tree, "RecvUnit", "on_data")
    if fn is None:
        return False
    branch = _corrupt_branch(fn)
    return branch is not None and _branch_sends(branch, "RESEND")


def _seq_mismatch_if(fn: ast.FunctionDef) -> Optional[ast.If]:
    """The ``if frame.seq != self.expected:`` dispatcher of ``on_data``."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.NotEq)
            and _is_self_attr(test.comparators[0], "expected")
        ):
            return node
    return None


def _match_gap_resend(tree: ast.Module) -> bool:
    fn = _find_method(tree, "RecvUnit", "on_data")
    if fn is None:
        return False
    outer = _seq_mismatch_if(fn)
    if outer is None:
        return False
    for node in ast.walk(outer):
        if (
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and len(node.test.ops) == 1
            and isinstance(node.test.ops[0], ast.Gt)
            and _is_self_attr(node.test.comparators[0], "expected")
        ):
            return _branch_sends(node.body, "RESEND")
    return False


def _match_dup_reack(tree: ast.Module) -> bool:
    fn = _find_method(tree, "RecvUnit", "on_data")
    if fn is None:
        return False
    outer = _seq_mismatch_if(fn)
    if outer is None:
        return False
    for node in ast.walk(outer):
        if (
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and len(node.test.ops) == 1
            and isinstance(node.test.ops[0], ast.Gt)
            and _is_self_attr(node.test.comparators[0], "expected")
        ):
            return _branch_sends(node.orelse, "ACK")
    return False


def _match_idle_dup_silence(tree: ast.Module) -> bool:
    """The duplicate branch returns early when no descriptor is posted."""
    fn = _find_method(tree, "RecvUnit", "on_data")
    if fn is None:
        return False
    outer = _seq_mismatch_if(fn)
    if outer is None:
        return False
    for node in ast.walk(outer):
        if not (
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and len(node.test.ops) == 1
            and isinstance(node.test.ops[0], ast.Gt)
            and _is_self_attr(node.test.comparators[0], "expected")
        ):
            continue
        # inside the duplicate (orelse) branch: an If on the descriptor
        # whose body returns before any ACK is sent
        for sub in node.orelse:
            for inner in ast.walk(sub):
                if not isinstance(inner, ast.If):
                    continue
                tests_descriptor = any(
                    _is_self_attr(piece, "descriptor")
                    for piece in ast.walk(inner.test)
                )
                returns = any(
                    isinstance(piece, ast.Return)
                    for stmt in inner.body
                    for piece in ast.walk(stmt)
                )
                if tests_descriptor and returns:
                    return True
    return False


def _match_idle_hold_guard(tree: ast.Module) -> bool:
    """``on_data`` raises when holding would exceed ``idle_hold_words``."""
    fn = _find_method(tree, "RecvUnit", "on_data")
    if fn is None:
        return False
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        mentions_cap = any(
            isinstance(sub, ast.Attribute) and sub.attr == "idle_hold_words"
            for sub in ast.walk(node.test)
        )
        if not mentions_cap:
            continue
        raises = any(isinstance(sub, ast.Raise) for stmt in node.body
                     for sub in ast.walk(stmt))
        if raises:
            return True
    return False


def _match_stale_eot_filter(tree: ast.Module) -> bool:
    """``on_data`` returns early while ``_eot_due`` is non-empty."""
    fn = _find_method(tree, "RecvUnit", "on_data")
    if fn is None:
        return False
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        guards_fifo = any(
            isinstance(sub, ast.Attribute) and sub.attr == "_eot_due"
            for sub in ast.walk(node.test)
        )
        if not guards_fifo:
            continue
        returns = any(
            isinstance(sub, ast.Return)
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        if returns:
            return True
    return False


def _match_eot_after_drain(tree: ast.Module) -> bool:
    """``_run`` loops on ``self.base < n`` (window drained), then EOT."""
    fn = _find_method(tree, "SendUnit", "_run")
    if fn is None:
        return False
    for i, stmt in enumerate(fn.body):
        if not isinstance(stmt, ast.While):
            continue
        test = stmt.test
        loops_on_base = (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Lt)
            and _is_self_attr(test.left, "base")
        )
        if not loops_on_base:
            continue
        # an EOT transmit must follow the loop
        for later in fn.body[i + 1 :]:
            for node in ast.walk(later):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "EOT"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "PacketType"
                ):
                    return True
    return False


def _match_eot_accounting(tree: ast.Module) -> bool:
    """``on_eot`` consults the owed-EOT FIFO and raises on mismatch."""
    fn = _find_method(tree, "RecvUnit", "on_eot")
    if fn is None:
        return False
    touches_fifo = any(
        isinstance(node, ast.Attribute) and node.attr == "_eot_due"
        for node in ast.walk(fn)
    )
    raises = any(isinstance(node, ast.Raise) for node in ast.walk(fn))
    return touches_fifo and raises


_MATCHERS: Dict[str, Callable[[ast.Module], bool]] = {
    "ack_window_guard": _match_ack_window_guard,
    "ack_monotonic": _match_ack_monotonic,
    "resend_rewind_floor": _match_resend_rewind_floor,
    "corrupt_resend": _match_corrupt_resend,
    "gap_resend": _match_gap_resend,
    "dup_reack": _match_dup_reack,
    "idle_dup_silence": _match_idle_dup_silence,
    "idle_hold_guard": _match_idle_hold_guard,
    "stale_eot_filter": _match_stale_eot_filter,
    "eot_after_drain": _match_eot_after_drain,
    "eot_accounting": _match_eot_accounting,
}

assert {name for name, *_ in TRANSITIONS} == set(_MATCHERS)
assert {f.name for f in fields(SpecToggles)} == set(_MATCHERS)


def check_conformance(
    source: str, spec: SpecToggles = DEFAULT_SPEC
) -> List[str]:
    """Check ``scu.py`` source implements every guard the spec enables.

    Returns a list of human-readable failures (empty = conformant).
    A toggle the spec *disables* is skipped: the model then also runs
    without that guard, so model and code stay in step either way.
    """
    tree = ast.parse(source)
    failures = []
    for name, cls, method, what in TRANSITIONS:
        if not getattr(spec, name):
            continue
        if not _MATCHERS[name](tree):
            failures.append(
                f"{name}: {cls}.{method} no longer implements "
                f"'{what}' (spec/code drift)"
            )
    return failures
