"""repro.analysis — simulator-aware static analysis + runtime sanitizers.

Two correctness layers live here (PR 4):

**reprolint** — a custom AST-based lint engine whose rules encode the
QCDOC software twin's *machine invariants* as static checks:
determinism (no wall-clock, no unseeded RNG, no unordered iteration
where order reaches the wire or the trace), SCU protocol conformance
(every send-family call's completion event must be consumed), counter
and flop accounting hygiene (magic constants single-sourced in
:mod:`repro.fermions.flops`, every distributed compute charge tagged
with a ``kernel=``, every trace tag registered in
:data:`repro.telemetry.schema.TRACE_SCHEMA`), API hygiene (no mutable
default arguments, no bare ``except``), and package layering (imports
flow strictly downward, ``machine`` never up into ``fermions``).

Run it as a CLI (the CI gate)::

    PYTHONPATH=src python -m repro.analysis src/
    PYTHONPATH=src python -m repro.analysis src/ --format json
    PYTHONPATH=src python -m repro.analysis --list-rules

Exit code 0 means zero findings outside the checked-in allowlist
(``.reprolint-allow`` at the repository root; one justified entry per
line).

**HaloRaceSanitizer** — a runtime TSan-analogue for the simulated
machine: shadow ownership state per SCU send/receive buffer, flagging
any CPU read/write that overlaps an in-flight DMA (see
:mod:`repro.analysis.sanitizer`).  Off by default; attaching it costs
the hot paths one ``is not None`` attribute check.
"""

from __future__ import annotations

from repro.analysis.allowlist import AllowEntry, Allowlist
from repro.analysis.engine import (
    Finding,
    LintEngine,
    LintResult,
    ModuleContext,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.sanitizer import HaloRaceError, HaloRaceSanitizer, RaceReport

# Importing the rule modules populates the registry.
from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "AllowEntry",
    "Allowlist",
    "Finding",
    "HaloRaceError",
    "HaloRaceSanitizer",
    "LintEngine",
    "LintResult",
    "ModuleContext",
    "RaceReport",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
]
