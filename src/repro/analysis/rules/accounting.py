"""Accounting-hygiene rules (REPRO3xx).

PR 3's telemetry crosscheck only closes if every flop charged to the
machine and every word on the wire traces back to one cost sheet —
:mod:`repro.fermions.flops` — and one trace-tag registry —
:data:`repro.telemetry.schema.TRACE_SCHEMA`.  These rules keep both
single-sourced.  REPRO303 is the in-framework home of what used to be
a one-off AST scan in ``tests/test_trace_schema.py`` (PR 3); the test
now calls this rule so there is exactly one implementation.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext, Rule, register_rule
from repro.analysis.visitor import attr_chain, int_constants, iter_calls
from repro.telemetry.schema import TRACE_SCHEMA

#: flop/word counts that must be spelled with their named constant from
#: repro.fermions.flops (value -> canonical name, for the fix hint)
MAGIC_FLOP_CONSTANTS: Dict[int, str] = {
    12: "STAGGERED_DIAG_FLOPS (or HALF_SPINOR_WORDS)",
    24: "SPINOR_WORDS",
    48: "DIAG_AXPY_FLOPS",
    66: "MATVEC_SU3",
    96: "DWF_5D_EXTRA_FLOPS",
    264: "the spin project/reconstruct adds of WILSON_DSLASH_FLOPS",
    570: "NAIVE_STAGGERED_DSLASH_FLOPS",
    582: "naive-staggered flops_per_site",
    600: "CLOVER_TERM_FLOPS",
    1146: "ASQTAD_DSLASH_FLOPS",
    1320: "WILSON_DSLASH_FLOPS",
    1368: "wilson flops_per_site",
    1416: "dwf flops_per_site",
}

#: the one module allowed to define these numbers
_COST_SHEET = "repro/fermions/flops.py"


def _name_mentions_flops(target: ast.expr) -> bool:
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    else:
        return False
    lowered = name.lower()
    return "flops" in lowered or "words_per" in lowered


@register_rule
class NoMagicFlopConstantsRule(Rule):
    """Flop/wire constants appear only as named imports from flops.py.

    Scoped to where they are load-bearing: arguments of ``compute(...)``
    charges and right-hand sides of assignments to ``*flops*`` names.
    A literal ``48`` there silently diverges from
    ``DIAG_AXPY_FLOPS`` the moment the cost sheet changes — the class
    of drift the telemetry crosscheck exists to catch late and this
    rule catches early.
    """

    rule_id = "REPRO301"
    name = "no-magic-flop-constants"
    summary = (
        "flop/word counts in compute() charges and *_flops assignments "
        "must use the named constants of repro.fermions.flops"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.is_module(_COST_SHEET):
            return
        seen: Set[int] = set()  # id()s of already-reported Constant nodes
        for call in iter_calls(module.tree):
            if attr_chain(call.func)[-1] != "compute":
                continue
            for arg in call.args:
                yield from self._scan(module, arg, seen, "compute() charge")
        for node in ast.walk(module.tree):
            targets: List[ast.expr] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not any(_name_mentions_flops(t) for t in targets):
                continue
            yield from self._scan(module, value, seen, "flops assignment")

    def _scan(
        self,
        module: ModuleContext,
        expr: ast.expr,
        seen: Set[int],
        where: str,
    ) -> Iterable[Finding]:
        for const in int_constants(expr):
            if const.value in MAGIC_FLOP_CONSTANTS and id(const) not in seen:
                seen.add(id(const))
                yield self.finding(
                    module,
                    const,
                    f"magic constant {const.value} in {where}; use "
                    f"{MAGIC_FLOP_CONSTANTS[const.value]} from "
                    "repro.fermions.flops",
                )


@register_rule
class KernelTagRequiredRule(Rule):
    """Every distributed compute charge names its kernel.

    ``api.compute(flops)`` without ``kernel=`` lands in the anonymous
    bucket of :attr:`repro.machine.node.Node.kernel_flops`, making the
    per-kernel ledger (and the Chrome-trace lanes) lie by omission.
    Scoped to the distributed-physics layer (``repro.parallel``), where
    the telemetry report attributes sustained GFlops by kernel.
    """

    rule_id = "REPRO302"
    name = "kernel-tag-required"
    summary = (
        "api.compute(...) in repro.parallel must pass kernel= so flops "
        "are attributed in the per-kernel ledger"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package != "parallel":
            return
        for call in iter_calls(module.tree):
            chain = attr_chain(call.func)
            if chain[-1] != "compute" or (len(chain) >= 2 and chain[-2] not in ("api",)):
                continue
            if not any(kw.arg == "kernel" for kw in call.keywords):
                yield self.finding(
                    module,
                    call,
                    "compute() charge without kernel= tag; untagged flops "
                    "break per-kernel attribution in telemetry",
                )


def emit_call_sites(
    tree: ast.AST,
) -> Iterable[Tuple[ast.Call, str, FrozenSet[str]]]:
    """Every ``*.emit(<string literal tag>, key=...)`` call in a tree.

    Yields ``(call, tag, field_names)``.  Calls whose tag is not a
    string literal (the :class:`~repro.sim.trace.TraceNamespace`
    forwarder) are skipped — they re-emit somebody else's literal tag.
    """
    for call in iter_calls(tree):
        if not (
            isinstance(call.func, ast.Attribute) and call.func.attr == "emit"
        ):
            continue
        if not call.args:
            continue
        tag_node = call.args[0]
        if not (
            isinstance(tag_node, ast.Constant) and isinstance(tag_node.value, str)
        ):
            continue
        fields = frozenset(kw.arg for kw in call.keywords if kw.arg is not None)
        yield call, tag_node.value, fields


@register_rule
class TraceSchemaRule(Rule):
    """Every ``trace.emit`` tag is registered with exact field names.

    Both directions of the PR 3 contract: an emission whose tag is not
    in :data:`TRACE_SCHEMA` (or whose keyword set drifted from the
    declared fields) is flagged at the call site; registry entries that
    no scanned module emits are flagged as dead — but only when the
    scan actually covers the schema module itself, so fixture scans
    don't false-positive.
    """

    rule_id = "REPRO303"
    name = "trace-schema-registered"
    summary = (
        "every trace.emit tag must be registered in TRACE_SCHEMA with "
        "exactly the declared field names (registry carries no dead entries)"
    )

    _SCHEMA_MODULE = "repro/telemetry/schema.py"

    def __init__(self) -> None:
        self._emitted_tags: Set[str] = set()
        self._schema_module: "ModuleContext | None" = None

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.is_module(self._SCHEMA_MODULE):
            self._schema_module = module
        for call, tag, fields in emit_call_sites(module.tree):
            self._emitted_tags.add(tag)
            expected = TRACE_SCHEMA.get(tag)
            if expected is None:
                yield self.finding(
                    module,
                    call,
                    f"unregistered trace tag {tag!r}; add it to "
                    "repro.telemetry.schema.TRACE_SCHEMA",
                )
            elif fields != expected:
                missing = sorted(expected - fields)
                extra = sorted(fields - expected)
                yield self.finding(
                    module,
                    call,
                    f"trace tag {tag!r} field drift: missing {missing}, "
                    f"extra {extra}",
                )

    def finish(self) -> Iterable[Finding]:
        if self._schema_module is None:
            return  # partial scan: dead-entry audit needs the full tree
        for tag in sorted(set(TRACE_SCHEMA) - self._emitted_tags):
            yield Finding(
                rule=self.rule_id,
                path=self._schema_module.relpath,
                line=1,
                col=0,
                message=(
                    f"TRACE_SCHEMA entry {tag!r} is never emitted by any "
                    "scanned module (dead registry entry)"
                ),
            )
