"""Determinism rules (REPRO1xx).

The QCDOC acceptance story is *bit-exact repeatability*: a five-day
128-node evolution re-run had to produce identical results in all bits
(paper section 4).  The software twin inherits that bar, so anything
that injects wall-clock time, ambient environment, global RNG state, or
hash/set iteration order into simulated or distributed code is a bug by
construction — these rules make it a lint failure instead of a
Hypothesis counterexample three PRs later.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, register_rule
from repro.analysis.visitor import dotted_name, is_set_expression, iter_calls

#: call targets that read the wall clock or the ambient environment
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "os.getenv",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


@register_rule
class NoWallclockRule(Rule):
    """No wall-clock, environment, or entropy reads in simulator code.

    Simulated time is :attr:`repro.sim.core.Simulator.now`; anything a
    node program or machine unit does must be a pure function of the
    event heap and the seeded RNG streams.
    """

    rule_id = "REPRO101"
    name = "no-wallclock"
    summary = (
        "sim/distributed code must not read wall-clock time, os.environ, "
        "or entropy sources (determinism)"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for call in iter_calls(module.tree):
            target = dotted_name(call.func)
            if target in _WALLCLOCK_CALLS:
                yield self.finding(
                    module,
                    call,
                    f"call to {target}() breaks bit-exact repeatability; "
                    "use sim.now / seeded rng_stream instead",
                )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "environ"
                and dotted_name(node) == "os.environ"
            ):
                yield self.finding(
                    module,
                    node,
                    "os.environ read in simulator code: configuration must "
                    "arrive through explicit parameters",
                )


@register_rule
class SeededRngOnlyRule(Rule):
    """All randomness flows through ``repro.util.rng`` named streams.

    Global-state RNG (``random.*``, ``np.random.<sampler>``,
    ``np.random.default_rng()`` / ``np.random.seed``) depends on call
    order and process history; :func:`repro.util.rng.rng_stream`
    derives every stream from ``(seed, name)`` so creation order cannot
    change a single bit.
    """

    rule_id = "REPRO102"
    name = "seeded-rng-only"
    summary = (
        "no random.* or np.random.* entry points outside util/rng.py; "
        "derive streams from rng_stream(seed, name)"
    )

    #: the one module allowed to touch numpy's RNG constructors
    _HOME = "repro/util/rng.py"

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.is_module(self._HOME):
            return
        for stmt in ast.walk(module.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name == "random":
                        yield self.finding(
                            module,
                            stmt,
                            "import of stdlib 'random' (global-state RNG); "
                            "use repro.util.rng streams",
                        )
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "random":
                    yield self.finding(
                        module,
                        stmt,
                        "from-import of stdlib 'random'; use repro.util.rng",
                    )
        for call in iter_calls(module.tree):
            target = dotted_name(call.func)
            if target.startswith(("np.random.", "numpy.random.")):
                yield self.finding(
                    module,
                    call,
                    f"direct {target}() call: construct generators only in "
                    "repro.util.rng (order-independent named streams)",
                )


def _iteration_sites(tree: ast.AST) -> Iterator[ast.expr]:
    """Expressions whose iteration order becomes program behaviour."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter
        elif isinstance(node, ast.Call):
            target = dotted_name(node.func)
            # materialisations that freeze an ordering
            if target in ("list", "tuple", "enumerate") and node.args:
                yield node.args[0]
            elif target.endswith(".join") and node.args:
                yield node.args[0]


@register_rule
class OrderedIterationRule(Rule):
    """No iteration over unordered sets where the order can escape.

    A ``for`` loop (or comprehension / ``list(...)`` / ``"".join(...)``)
    over a set literal, set comprehension, ``set()``/``frozenset()``
    call, or ``Trace.tags()`` result has hash order; on the wire or in a
    trace that is nondeterminism.  Wrap the expression in ``sorted()``.
    """

    rule_id = "REPRO103"
    name = "ordered-iteration"
    summary = (
        "no for-loops/comprehensions/materialisations over set "
        "expressions; wrap in sorted() so order is canonical"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for iter_expr in _iteration_sites(module.tree):
            if is_set_expression(iter_expr):
                yield self.finding(
                    module,
                    iter_expr,
                    "iteration over a set expression has hash order; wrap "
                    "in sorted() before the order can reach the wire or "
                    "the trace",
                )


#: attribute names (underscore-insensitive) that hold cross-shard message
#: buffers; their drain order *is* cross-shard event order
_CROSS_SHARD_BUFFERS = frozenset(
    {
        "outbox",
        "outboxes",
        "mailbox",
        "mailboxes",
        "pending_posts",
        "cross_posts",
        "coordinator_box",
    }
)


@register_rule
class CrossShardIterationRule(Rule):
    """Cross-shard message buffers drain only through ``sorted()``.

    The sharded event engine's determinism contract pins barrier delivery
    to the ``(time, src_shard, src_seq)`` total order
    (:mod:`repro.sim.sync`).  A bare ``for`` loop (or comprehension /
    ``list()`` / ``enumerate()`` materialisation) over an outbox/mailbox
    attribute replays whatever insertion order this particular executor
    produced — which differs between the serial and forked executors and
    across shard counts.  Wrap the buffer in ``sorted(...)`` keyed on the
    post's canonical order before the contents can act.
    """

    rule_id = "REPRO104"
    name = "cross-shard-order"
    summary = (
        "cross-shard outbox/mailbox buffers must be drained in sorted() "
        "order, never raw insertion order"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for iter_expr in _iteration_sites(module.tree):
            if (
                isinstance(iter_expr, ast.Attribute)
                and iter_expr.attr.lstrip("_") in _CROSS_SHARD_BUFFERS
            ):
                yield self.finding(
                    module,
                    iter_expr,
                    f"iteration over cross-shard buffer "
                    f"{iter_expr.attr!r} in raw insertion order; drain "
                    "through sorted(...) on the canonical post order",
                )


#: numpy entry points that allocate a fresh array buffer.  The hot-path
#: contract (see :mod:`repro.util.hotpath`) bans all of these inside
#: ``@hot_path`` bodies — steady-state dslash/CG must run at a flat
#: memory footprint out of context-owned scratch.
_NP_ALLOCATORS = frozenset(
    {
        "zeros",
        "empty",
        "ones",
        "full",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
        "array",
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "copy",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "dstack",
        "column_stack",
        "tile",
        "repeat",
        "arange",
        "linspace",
        "eye",
        "identity",
        "outer",
        "kron",
        "pad",
    }
)


def _is_hot_path_def(node: ast.AST) -> bool:
    """True for a function definition carrying the ``@hot_path`` tag."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if dotted_name(target).split(".")[-1] == "hot_path":
            return True
    return False


@register_rule
class NoAllocationInHotLoopRule(Rule):
    """No numpy allocation calls inside ``@hot_path`` functions.

    The zero-copy contract: every buffer the steady-state dslash/CG
    pipeline touches is preallocated once by the operator context, so a
    solver iterating thousands of times runs allocation-free (the
    software analogue of the SCU's in-place DMA staging).  Any
    ``np.zeros``/``np.empty``/``np.concatenate``/``.copy()``/... call in
    a tagged body defeats that — move the allocation to ``__init__`` and
    use the ``out=`` kernel forms (``np.take(..., out=)``,
    ``np.copyto``, ``np.einsum(..., out=)``).  The same contract is
    enforced at runtime by ``tests/test_hotpath_alloc.py``.
    """

    rule_id = "REPRO105"
    name = "no-allocation-in-hot-loop"
    summary = (
        "@hot_path functions must not call numpy allocators "
        "(np.zeros/np.empty/.copy()/...); preallocate in __init__ and "
        "use out= kernel forms"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not _is_hot_path_def(node):
                continue
            for call in iter_calls(node):
                target = dotted_name(call.func)
                parts = target.split(".")
                if (
                    len(parts) >= 2
                    and parts[0] in ("np", "numpy")
                    and parts[-1] in _NP_ALLOCATORS
                ):
                    yield self.finding(
                        module,
                        call,
                        f"{target}() allocates inside @hot_path "
                        f"{node.name!r}; preallocate context scratch and "
                        "use the out= form",
                    )
                elif len(parts) >= 2 and parts[-1] == "copy" and parts[0] not in (
                    "copy",
                    "copyreg",
                ):
                    yield self.finding(
                        module,
                        call,
                        f"{target}() allocates a fresh array inside "
                        f"@hot_path {node.name!r}; use np.copyto into "
                        "context scratch",
                    )
