"""SCU protocol-conformance rules (REPRO2xx).

The hardware contract (paper section 2.2): DMA sends are acknowledged
within the three-in-the-air window, receives complete only when the
store pipeline drains, and node programs learn both *only* through the
completion :class:`~repro.sim.core.Event` the API hands back.  A
dropped completion event is therefore a latent halo-buffer race — the
static sibling of what :class:`repro.analysis.sanitizer.
HaloRaceSanitizer` catches at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, ModuleContext, Rule, register_rule
from repro.analysis.visitor import (
    attr_chain,
    dropped_expression_calls,
)

#: methods that start SCU traffic and return a completion event,
#: regardless of the receiver expression
_SEND_FAMILY_ALWAYS = frozenset(
    {
        "send_buffer",
        "recv_buffer",
        "start_stored",
        "start_stored_events",
        "send_supervisor",
    }
)

#: ambiguous method names that count only on comms-ish receivers
#: (`api.send(...)`, `scu.recv(...)` — not `_ControlPort.send`, which is
#: the link-level fire-and-forget control path, or arbitrary queues)
_SEND_FAMILY_ON = {
    "send": {"api", "scu"},
    "recv": {"api", "scu"},
    "global_sum": {"api", "globals"},
    "barrier": {"api"},
}


@register_rule
class SendCompletionConsumedRule(Rule):
    """Every send-family call's completion event must be consumed.

    Conservative static approximation of "every send is dominated by a
    matching completion wait on all paths": the returned event must not
    be discarded at the call site.  ``yield api.send(...)``, assigning
    it, returning it, or passing it into ``wait``/``wait_any``/
    ``all_of`` all consume it; a bare expression statement drops it —
    the program then has *no way* to know when the DMA engine is done
    with the buffer.
    """

    rule_id = "REPRO201"
    name = "send-completion-consumed"
    summary = (
        "SCU send/recv/start_stored/supervisor calls return completion "
        "events that must be waited on, not discarded"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for call in dropped_expression_calls(module.tree):
            chain = attr_chain(call.func)
            method = chain[-1]
            base = chain[-2] if len(chain) >= 2 else None
            applies = method in _SEND_FAMILY_ALWAYS or (
                method in _SEND_FAMILY_ON and base in _SEND_FAMILY_ON[method]
            )
            if applies:
                yield self.finding(
                    module,
                    call,
                    f"completion event of {'.'.join(chain)}() is discarded; "
                    "yield it (or hand it to wait/wait_any) so the DMA "
                    "transfer has a completion wait on every path",
                )


#: always-on hardware counters: mutating them anywhere but inside the
#: owning machine/sim units forges telemetry.  The read path is the
#: telemetry CounterBank (pull-mode sampling).
_COUNTER_ATTRS = frozenset(
    {
        "payload_words",
        "wire_words",
        "acks_received",
        "acks_sent",
        "resends",
        "resend_requests",
        "parity_errors",
        "idle_hold_events",
        "idle_held_words_total",
        "transfers_completed",
        "flops_charged",
        "compute_time",
        "kernel_flops",
        "frames_sent",
        "bits_sent",
        "faults_injected",
        "busy_seconds",
        "read_bytes",
        "write_bytes",
    }
)

#: packages that own counters (hardware units + the sim substrate); the
#: telemetry layer itself only *samples* but its test doubles may write
_COUNTER_OWNERS = frozenset({"machine", "sim", "telemetry"})


@register_rule
class CounterBankOnlyRule(Rule):
    """Hardware counters are charged only inside the owning units.

    Node programs and solvers read counters through
    ``CommsAPI.transfer_counters`` / the telemetry ``CounterBank``;
    writing ``node.flops_charged`` (or any SCU/link counter) from the
    physics layer would silently fork the books the
    measured-vs-model crosscheck audits.
    """

    rule_id = "REPRO202"
    name = "counterbank-only"
    summary = (
        "machine counters (payload_words, flops_charged, ...) may be "
        "mutated only inside repro.machine / repro.sim units"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package in _COUNTER_OWNERS:
            return
        for node in ast.walk(module.tree):
            targets: list = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _COUNTER_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"write to hardware counter .{target.attr} outside "
                        "the owning machine unit; charge through the unit "
                        "(compute(), SCU transfers) and read through the "
                        "telemetry CounterBank",
                    )
