"""The reprolint rule catalogue (importing this package registers all).

Numbering scheme
----------------
``REPRO1xx`` determinism, ``REPRO2xx`` SCU protocol conformance,
``REPRO3xx`` accounting hygiene, ``REPRO4xx`` API hygiene and layering.
The full catalogue with rationale lives in DESIGN.md section 9.
"""

from __future__ import annotations

from repro.analysis.rules import accounting, determinism, hygiene, layering, protocol

__all__ = ["accounting", "determinism", "hygiene", "layering", "protocol"]
