"""The reprolint rule catalogue (importing this package registers all).

Numbering scheme
----------------
``REPRO1xx`` determinism, ``REPRO2xx`` SCU protocol conformance,
``REPRO3xx`` accounting hygiene, ``REPRO4xx`` API hygiene and layering,
``REPRO5xx`` whole-program flow analysis (``repro.analysis.flow``).
The full catalogue with rationale lives in DESIGN.md sections 9 and 14.
"""

from __future__ import annotations

from repro.analysis.flow import rules as flow_rules
from repro.analysis.rules import accounting, determinism, hygiene, layering, protocol

__all__ = [
    "accounting",
    "determinism",
    "flow_rules",
    "hygiene",
    "layering",
    "protocol",
]
