"""Package-layering rule (REPRO4xx, part 2).

The repository's import DAG mirrors the hardware stack: utilities and
the event simulator at the bottom, the machine model above them, the
physics (fermions/solvers) above *that*, and orchestration
(parallel/hmc/host) plus observability (telemetry/analysis) on top.
``repro.machine`` importing ``repro.fermions`` would weld the hardware
twin to one physics workload — exactly the coupling the paper's
general-purpose-machine argument (section 3) warns against.

Function-local imports are exempt: they are the sanctioned, visibly
marked escape hatch for facade upcalls (``QCDOCMachine.report`` →
``repro.telemetry``) and cannot create import cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.analysis.engine import Finding, ModuleContext, Rule, register_rule
from repro.analysis.visitor import module_level_imports

#: package -> layer rank; module-level imports must flow downward
#: (importer rank >= importee rank; equal ranks may inter-import, e.g.
#: fermions <-> solvers are one physics layer)
LAYER_RANKS: Dict[str, int] = {
    "util": 0,
    "sim": 1,
    "lattice": 2,
    "machine": 3,
    "comms": 4,
    "fermions": 5,
    "solvers": 5,
    "perfmodel": 6,
    "telemetry": 7,
    "parallel": 8,
    "hmc": 8,
    "host": 8,
    "kernel": 8,
    "analysis": 9,
    # the job-service layer sits on top of everything it orchestrates
    # (host daemon, machine, solvers, telemetry); nothing below may
    # depend back on it
    "service": 10,
}


@register_rule
class LayeringRule(Rule):
    """Module-level imports must respect the package layer ranks."""

    rule_id = "REPRO403"
    name = "layering"
    summary = (
        "module-level imports must flow down the layer DAG (machine "
        "never up into fermions; upcalls go function-local)"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        my_rank = LAYER_RANKS.get(module.package)
        if my_rank is None:
            return
        for stmt, target in module_level_imports(module.tree):
            parts = target.split(".")
            if parts[0] != "repro" or len(parts) < 2:
                continue
            target_pkg = parts[1]
            target_rank = LAYER_RANKS.get(target_pkg)
            if target_rank is None:
                continue
            if target_rank > my_rank:
                yield self.finding(
                    module,
                    stmt,
                    f"cross-layer import: repro.{module.package} (layer "
                    f"{my_rank}) imports repro.{target_pkg} (layer "
                    f"{target_rank}) at module scope; invert the dependency "
                    "or make the upcall function-local",
                )
