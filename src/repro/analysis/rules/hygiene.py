"""API-hygiene rules (REPRO4xx, part 1): mutable defaults, bare except.

Small, classic, and repeatedly rediscovered the hard way: a mutable
default argument aliases state across *every* call (catastrophic in a
library whose objects are reused across simulated ranks), and a bare
``except:`` swallows :class:`KeyboardInterrupt`, simulator
:class:`~repro.util.errors.SimulationError` deadlock reports, and the
sanitizer's race diagnostics alike.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Finding, ModuleContext, Rule, register_rule
from repro.analysis.visitor import dotted_name, iter_functions

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_CALLS
    return False


@register_rule
class NoMutableDefaultRule(Rule):
    """No mutable default arguments (use ``None`` + in-body default)."""

    rule_id = "REPRO401"
    name = "no-mutable-default"
    summary = (
        "default argument values must be immutable; a shared list/dict "
        "default aliases state across every call"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for func in iter_functions(module.tree):
            defaults: List[ast.expr] = list(func.args.defaults)
            defaults += [d for d in func.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {func.name}(); use "
                        "None and construct inside the body",
                    )


@register_rule
class NoBareExceptRule(Rule):
    """No bare ``except:`` clauses (and no silently-passing handlers).

    A bare handler catches ``KeyboardInterrupt``/``SystemExit`` and
    masks simulator deadlock and sanitizer race diagnostics.  Catch the
    narrowest :mod:`repro.util.errors` class that applies.
    """

    rule_id = "REPRO402"
    name = "no-bare-except"
    summary = "except: must name an exception class (narrowest repro error)"

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: catches KeyboardInterrupt and masks "
                    "simulator diagnostics; name the exception class",
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
                and len(node.body) == 1
                and isinstance(node.body[0], ast.Pass)
            ):
                yield self.finding(
                    module,
                    node,
                    f"except {node.type.id}: pass silently swallows every "
                    "error; handle or re-raise",
                )
