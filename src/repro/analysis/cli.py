"""``python -m repro.analysis`` — the reprolint command-line gate.

Usage::

    python -m repro.analysis src/                 # per-file rules, exit 0/1
    python -m repro.analysis src/ --flow          # + whole-program REPRO5xx
    python -m repro.analysis --protocol           # SCU state-machine verifier
    python -m repro.analysis tests/ --hygiene     # REPRO401/402 only
    python -m repro.analysis src/ --format json   # machine-readable
    python -m repro.analysis src/ --format sarif  # SARIF 2.1.0
    python -m repro.analysis --list-rules         # the rule catalogue
    python -m repro.analysis src/ --select REPRO101,REPRO504
    python -m repro.analysis src/ --allowlist path/to/.reprolint-allow

Exit codes: **0** clean (no findings outside the allowlist), **1**
findings present (or files failed to parse, or the allowlist carries a
stale entry, or the protocol verifier failed), **2** usage error.  The
allowlist defaults to the ``.reprolint-allow`` found walking up from
the first scanned path (the repository root's checked-in file).

Rule families and modes:

* default — every per-file rule (REPRO1xx-4xx);
* ``--flow`` — additionally the whole-program REPRO5xx flow family
  (interprocedural, so it wants the whole ``src/`` tree as input);
  an explicit ``--select`` naming a 5xx rule also runs it;
* ``--hygiene`` — only the API-hygiene rules (REPRO401/402), the mode
  ``make lint`` applies to ``tests/`` and ``benchmarks/`` where the
  simulator-semantics rules would misread fixture code;
* ``--protocol`` — no scanning at all: run the bounded SCU
  state-machine verifier (conformance + exhaustive enumeration)
  against the installed ``repro.machine.scu``.

A **stale** allowlist entry — its rule ran, its file was scanned, and
nothing was suppressed — fails the run loudly instead of warning:
silently-rotting suppressions are how allowlists outlive the findings
they excused.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Type

from repro.analysis.allowlist import Allowlist, AllowEntry, find_default_allowlist
from repro.util.errors import ConfigError
from repro.analysis.engine import (
    LintEngine,
    LintResult,
    Rule,
    all_rules,
    iter_python_files,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: the rules ``--hygiene`` keeps (API hygiene / layering only)
HYGIENE_RULES = ("REPRO401", "REPRO402")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: simulator-aware static analysis for repro",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to scan"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help="allowlist file (default: nearest .reprolint-allow above "
        "the first scanned path)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore any allowlist (report raw findings)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all per-file rules)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program REPRO5xx flow rules",
    )
    parser.add_argument(
        "--hygiene",
        action="store_true",
        help="run only the API-hygiene rules (REPRO401/402); for "
        "tests/ and benchmarks/ where fixture code is expected",
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help="run the SCU protocol state-machine verifier and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        tag = "  [whole-program]" if cls.whole_program else ""
        lines.append(f"{cls.rule_id}  {cls.name}{tag}")
        lines.append(f"    {cls.summary}")
    return "\n".join(lines)


def _select_rules(args: argparse.Namespace) -> List[Type[Rule]]:
    """Resolve the rule set from --select/--hygiene/--flow (or raise
    SystemExit-style by returning None upstream)."""
    rules = all_rules()
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {cls.rule_id for cls in rules}
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        # an explicit select runs exactly what it names, including
        # whole-program rules, with no --flow needed
        return [cls for cls in rules if cls.rule_id in wanted]
    if args.hygiene:
        return [cls for cls in rules if cls.rule_id in HYGIENE_RULES]
    return [cls for cls in rules if args.flow or not cls.whole_program]


def _stale_entries(
    result: LintResult,
    allowlist: Allowlist,
    rules: Sequence[Type[Rule]],
    paths: Sequence[Path],
) -> List[AllowEntry]:
    """Entries that provably excuse nothing in *this* run.

    Stale needs all three: the entry's rule ran, its file was among
    the scanned paths, and still nothing was suppressed.  A partial
    scan or a ``--select`` that skipped the rule proves nothing and
    stays a warning.
    """
    ran = {cls.rule_id for cls in rules}
    scanned = {relpath for _path, relpath in iter_python_files(paths)}
    used = {(f.rule, f.path) for f in result.suppressed}
    return [
        e
        for e in allowlist.entries
        if e.rule in ran and e.path in scanned and (e.rule, e.path) not in used
    ]


def _render_text(
    result: LintResult, allowlist: Allowlist, stale: Sequence[AllowEntry]
) -> str:
    lines: List[str] = []
    for finding in result.parse_errors + result.findings:
        lines.append(finding.format())
    stale_keys = {(e.rule, e.path) for e in stale}
    for entry in allowlist.entries:
        used = any(
            (f.rule, f.path) == (entry.rule, entry.path)
            for f in result.suppressed
        )
        if used:
            continue
        if (entry.rule, entry.path) in stale_keys:
            lines.append(
                f"error: stale allowlist entry (rule ran, file scanned, "
                f"nothing suppressed): {entry.format()}"
            )
        else:
            lines.append(f"warning: unused allowlist entry: {entry.format()}")
    verdict = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"reprolint: {result.files_scanned} file(s) scanned, {verdict}, "
        f"{len(result.suppressed)} suppressed by allowlist"
    )
    return "\n".join(lines)


#: SARIF 2.1.0 schema reference (the de-facto static-analysis exchange
#: format: code-review UIs ingest it natively)
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _render_sarif(result: LintResult, rules: Sequence[Type[Rule]]) -> str:
    """Minimal valid SARIF 2.1.0: one run, one driver, one result per
    finding.  Suppressed findings are carried with ``suppressions`` so
    dashboards can distinguish excused from clean."""
    rule_meta = [
        {
            "id": cls.rule_id,
            "name": cls.name,
            "shortDescription": {"text": cls.summary},
        }
        for cls in rules
    ]
    rule_meta.append(
        {
            "id": "REPRO000",
            "name": "parse-error",
            "shortDescription": {"text": "file failed to parse"},
        }
    )

    def sarif_result(finding, suppressed=False):
        entry = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if suppressed:
            entry["suppressions"] = [{"kind": "external"}]
        return entry

    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "https://example.invalid/reprolint",
                        "rules": rule_meta,
                    }
                },
                "results": [
                    sarif_result(f) for f in result.parse_errors + result.findings
                ]
                + [sarif_result(f, suppressed=True) for f in result.suppressed],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if args.hygiene and args.select:
        print(
            "error: --hygiene and --select are mutually exclusive",
            file=sys.stderr,
        )
        return EXIT_USAGE

    if args.protocol:
        from repro.analysis.protocol import verify_protocol

        report = verify_protocol()
        print(report.format())
        if not report.ok:
            return EXIT_FINDINGS
        if not args.paths:
            return EXIT_CLEAN
        # fall through: --protocol plus paths runs both gates

    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: no paths given (or use --list-rules / --protocol)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    for path in args.paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE

    try:
        rules = _select_rules(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    try:
        if args.no_allowlist:
            allowlist = Allowlist.empty()
        elif args.allowlist is not None:
            if not args.allowlist.is_file():
                print(
                    f"error: no such allowlist: {args.allowlist}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            allowlist = Allowlist.load(args.allowlist)
        else:
            found = find_default_allowlist(args.paths[0])
            allowlist = Allowlist.load(found) if found else Allowlist.empty()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    engine = LintEngine(rules=rules, allowlist=allowlist)
    result = engine.run(args.paths)
    stale = _stale_entries(result, allowlist, rules, args.paths)

    if args.format == "json":
        payload = result.to_dict()
        payload["unused_allowlist_entries"] = result.unused_allow_entries(allowlist)
        payload["stale_allowlist_entries"] = [e.format() for e in stale]
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(_render_sarif(result, rules))
        if stale:
            for entry in stale:
                print(
                    f"error: stale allowlist entry: {entry.format()}",
                    file=sys.stderr,
                )
    else:
        print(_render_text(result, allowlist, stale))
    if not result.clean or stale:
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
