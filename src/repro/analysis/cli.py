"""``python -m repro.analysis`` — the reprolint command-line gate.

Usage::

    python -m repro.analysis src/                 # text report, exit 0/1
    python -m repro.analysis src/ --format json   # machine-readable
    python -m repro.analysis --list-rules         # the rule catalogue
    python -m repro.analysis src/ --select REPRO101,REPRO303
    python -m repro.analysis src/ --allowlist path/to/.reprolint-allow

Exit codes: **0** clean (no findings outside the allowlist), **1**
findings present (or files failed to parse), **2** usage error.  The
allowlist defaults to the ``.reprolint-allow`` found walking up from
the first scanned path (the repository root's checked-in file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.allowlist import Allowlist, find_default_allowlist
from repro.analysis.engine import LintEngine, LintResult, all_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: simulator-aware static analysis for repro",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to scan"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help="allowlist file (default: nearest .reprolint-allow above "
        "the first scanned path)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore any allowlist (report raw findings)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.rule_id}  {cls.name}")
        lines.append(f"    {cls.summary}")
    return "\n".join(lines)


def _render_text(result: LintResult, allowlist: Allowlist) -> str:
    lines: List[str] = []
    for finding in result.parse_errors + result.findings:
        lines.append(finding.format())
    unused = result.unused_allow_entries(allowlist)
    for entry in unused:
        lines.append(f"warning: unused allowlist entry: {entry}")
    verdict = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"reprolint: {result.files_scanned} file(s) scanned, {verdict}, "
        f"{len(result.suppressed)} suppressed by allowlist"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return EXIT_USAGE
    for path in args.paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE

    rules = all_rules()
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {cls.rule_id for cls in rules}
        if unknown:
            print(f"error: unknown rule id(s): {sorted(unknown)}", file=sys.stderr)
            return EXIT_USAGE
        rules = [cls for cls in rules if cls.rule_id in wanted]

    if args.no_allowlist:
        allowlist = Allowlist.empty()
    elif args.allowlist is not None:
        if not args.allowlist.is_file():
            print(f"error: no such allowlist: {args.allowlist}", file=sys.stderr)
            return EXIT_USAGE
        allowlist = Allowlist.load(args.allowlist)
    else:
        found = find_default_allowlist(args.paths[0])
        allowlist = Allowlist.load(found) if found else Allowlist.empty()

    engine = LintEngine(rules=rules, allowlist=allowlist)
    result = engine.run(args.paths)

    if args.format == "json":
        payload = result.to_dict()
        payload["unused_allowlist_entries"] = result.unused_allow_entries(allowlist)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(_render_text(result, allowlist))
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
