"""The halo-buffer race sanitizer: a TSan-analogue for the simulated SCU.

Hardware contract (paper section 2.2): a DMA receive's data is usable
only after the eject + store pipeline drains (the completion event the
SCU hands back), and a DMA send reads its source buffer until *its*
completion fires.  The overlapped Dirac pipeline (PR 1) leans on both —
interior compute runs while 24 transfers fly — so a misordered read of
``halo_fwd`` is silent corruption: numpy already holds the final values
the instant the simulated transfer *starts*, so nothing crashes and the
physics is simply wrong in a word_batch-dependent way.

The sanitizer keeps **shadow ownership state per (node, buffer)**:

* ``dma_begin`` / ``dma_end`` bracket every SCU transfer (hooked in
  :meth:`repro.machine.scu.SCU.send` / ``recv``, releasing on the
  completion event — i.e. exactly the interval the hardware owns the
  buffer);
* ``cpu_read`` / ``cpu_write`` are declared by the compute side
  (:class:`~repro.comms.api.CommsAPI` helpers and the guarded
  checkpoints in ``repro.parallel``).

Race matrix (what real silicon would corrupt):

===========  =============  ==============
CPU access   in-flight send  in-flight recv
===========  =============  ==============
read         ok (read/read)  **race** (data not landed)
write        **race**        **race**
===========  =============  ==============

Off by default: every hook site guards with a single
``is not None`` attribute check, so the hot path cost without the
sanitizer is exactly one attribute load (the same discipline as
tracing).  ``mode="raise"`` (default) throws :class:`HaloRaceError`
with the node, buffer, axis/sign, and direction; ``mode="record"``
accumulates :class:`RaceReport` entries for post-run assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.errors import ProtocolError


class HaloRaceError(ProtocolError):
    """A CPU access overlapped an in-flight DMA on the same buffer."""

    def __init__(self, report: "RaceReport"):
        super().__init__(report.describe())
        self.report = report


@dataclass(frozen=True)
class RaceReport:
    """One detected race, with everything needed to find the bad wait."""

    access: str  #: "read" | "write" — the CPU side of the collision
    node: int  #: node id whose CPU touched the buffer
    buffer: str  #: node-memory buffer name (e.g. "halo_fwd0")
    dma_kind: str  #: "send" | "recv" — the in-flight transfer
    direction: int  #: physical SCU link direction of that transfer
    axis: Optional[int]  #: logical lattice axis, when registered
    sign: Optional[int]  #: logical +1/-1 neighbour sign, when registered
    time: float  #: simulation time of the CPU access
    nwords: int  #: words the in-flight descriptor covers

    def describe(self) -> str:
        if self.axis is not None and self.sign is not None:
            logical = f"axis {self.axis} sign {self.sign:+d}"
        else:
            logical = f"direction {self.direction}"
        return (
            f"halo-buffer race: premature CPU {self.access} of buffer "
            f"{self.buffer!r} on node {self.node} while a {self.dma_kind} "
            f"DMA ({logical}, {self.nwords} words) is in flight at "
            f"t={self.time:.3e}s; wait on the transfer's completion event "
            "before touching the buffer"
        )


@dataclass
class _DmaClaim:
    """Shadow ownership of one buffer by one in-flight transfer."""

    node: int
    buffer: str
    kind: str  # "send" | "recv"
    direction: int
    nwords: int
    released: bool = field(default=False)


class HaloRaceSanitizer:
    """Shadow-state tracker for SCU buffer ownership.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) — throw :class:`HaloRaceError` at the
        racing access, failing the offending node program's process;
        ``"record"`` — append to :attr:`reports` and keep running
        (post-run assertion style, used by the clean-run tests).
    """

    def __init__(self, mode: str = "raise"):
        if mode not in ("raise", "record"):
            raise ValueError(f"sanitizer mode must be raise/record, got {mode!r}")
        self.mode = mode
        #: (node, buffer) -> in-flight claims (12 links => small lists)
        self._inflight: Dict[Tuple[int, str], List[_DmaClaim]] = {}
        #: (node, direction) -> (axis, sign), registered by CommsAPI
        self._logical: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: every race seen (also populated in "raise" mode, pre-throw)
        self.reports: List[RaceReport] = []
        #: CPU-side checks performed (0 proves the off-path is untouched)
        self.checks = 0
        #: DMA claims opened over the sanitizer's lifetime
        self.claims_opened = 0
        self._now = 0.0

    # -- wiring ------------------------------------------------------------
    def register_logical(
        self, node: int, direction: int, axis: int, sign: int
    ) -> None:
        """Teach the sanitizer the logical name of a physical link, so
        race reports speak in the (axis, sign) coordinates node programs
        think in."""
        self._logical[(node, direction)] = (axis, sign)

    # -- DMA side (hooked in repro.machine.scu.SCU) -------------------------
    def dma_begin(
        self, node: int, buffer: str, kind: str, direction: int, nwords: int
    ) -> _DmaClaim:
        claim = _DmaClaim(node, buffer, kind, direction, nwords)
        self._inflight.setdefault((node, buffer), []).append(claim)
        self.claims_opened += 1
        return claim

    def dma_end(self, claim: _DmaClaim) -> None:
        claim.released = True
        key = (claim.node, claim.buffer)
        claims = self._inflight.get(key)
        if claims is not None:
            claims[:] = [c for c in claims if not c.released]
            if not claims:
                del self._inflight[key]

    def in_flight(self, node: int, buffer: str) -> List[_DmaClaim]:
        return list(self._inflight.get((node, buffer), ()))

    @property
    def quiesced(self) -> bool:
        """True when no buffer is DMA-owned (end-of-run invariant)."""
        return not self._inflight

    # -- CPU side (guarded checkpoints in comms/parallel) -------------------
    def cpu_read(self, node: int, buffer: str, now: float = 0.0) -> None:
        """Declare a CPU read; races with any in-flight *recv*."""
        self.checks += 1
        self._now = now
        for claim in self._inflight.get((node, buffer), ()):
            if claim.kind == "recv":
                self._flag("read", claim)

    def cpu_write(self, node: int, buffer: str, now: float = 0.0) -> None:
        """Declare a CPU write; races with *any* in-flight DMA."""
        self.checks += 1
        self._now = now
        for claim in self._inflight.get((node, buffer), ()):
            self._flag("write", claim)

    def _flag(self, access: str, claim: _DmaClaim) -> None:
        axis_sign = self._logical.get((claim.node, claim.direction))
        report = RaceReport(
            access=access,
            node=claim.node,
            buffer=claim.buffer,
            dma_kind=claim.kind,
            direction=claim.direction,
            axis=axis_sign[0] if axis_sign else None,
            sign=axis_sign[1] if axis_sign else None,
            time=self._now,
            nwords=claim.nwords,
        )
        self.reports.append(report)
        if self.mode == "raise":
            raise HaloRaceError(report)

    def __repr__(self) -> str:
        return (
            f"HaloRaceSanitizer(mode={self.mode!r}, "
            f"inflight={len(self._inflight)}, races={len(self.reports)})"
        )
