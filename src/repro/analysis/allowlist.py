"""The reprolint allowlist: per-rule, per-file suppressions with reasons.

Policy (DESIGN.md section 9): every entry carries a one-line
justification, the file is checked in at the repository root
(``.reprolint-allow``), and the list is expected to stay *small* —
each entry is a standing debt the next refactor should retire.

Format — one entry per line::

    RULE-ID  path/relative/to/scan/root.py  :: one-line justification

Blank lines and ``#`` comments are ignored.  Paths are posix-style and
match a finding's path exactly (per-file granularity: allowing a rule
for a file acknowledges *every* occurrence in that file, which keeps
entries stable under unrelated edits shifting line numbers).

:func:`parse_allowlist` / :func:`format_allowlist` round-trip exactly
(modulo comments), which the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.util.errors import ConfigError

#: conventional allowlist filename, discovered at the repository root
ALLOWLIST_FILENAME = ".reprolint-allow"

#: hard ceiling on allowlist entries: the list is standing debt, and a
#: list past this size means suppression has replaced fixing — parsing
#: refuses it outright rather than letting it grow quietly
ALLOWLIST_BUDGET = 10


@dataclass(frozen=True)
class AllowEntry:
    """One suppression: (rule, path) plus the mandatory justification."""

    rule: str
    path: str
    justification: str

    def format(self) -> str:
        return f"{self.rule}  {self.path}  :: {self.justification}"


def parse_allowlist(text: str) -> List[AllowEntry]:
    """Parse allowlist text into entries (strict: malformed lines raise)."""
    entries: List[AllowEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "::" not in line:
            raise ConfigError(
                f"allowlist line {lineno}: missing ':: justification' in {raw!r}"
            )
        head, justification = line.split("::", 1)
        justification = justification.strip()
        if not justification:
            raise ConfigError(f"allowlist line {lineno}: empty justification")
        fields = head.split()
        if len(fields) != 2:
            raise ConfigError(
                f"allowlist line {lineno}: expected 'RULE PATH :: reason', "
                f"got {raw!r}"
            )
        entries.append(AllowEntry(fields[0], fields[1], justification))
    if len(entries) > ALLOWLIST_BUDGET:
        raise ConfigError(
            f"allowlist has {len(entries)} entries, over the budget of "
            f"{ALLOWLIST_BUDGET}: fix findings instead of suppressing them"
        )
    return entries


def format_allowlist(entries: List[AllowEntry]) -> str:
    """Render entries back to file text (inverse of :func:`parse_allowlist`)."""
    return "".join(e.format() + "\n" for e in entries)


class Allowlist:
    """A queryable set of :class:`AllowEntry` suppressions."""

    def __init__(self, entries: List[AllowEntry]):
        self.entries = list(entries)
        self._index = {(e.rule, e.path) for e in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Allowlist":
        return cls(parse_allowlist(path.read_text()))

    @classmethod
    def empty(cls) -> "Allowlist":
        return cls([])

    def suppresses(self, rule: str, path: str) -> bool:
        return (rule, path) in self._index

    def __len__(self) -> int:
        return len(self.entries)


def find_default_allowlist(start: Path) -> Optional[Path]:
    """Walk up from ``start`` looking for :data:`ALLOWLIST_FILENAME`.

    Lets ``python -m repro.analysis src/`` pick up the repository's
    checked-in allowlist without a flag, wherever it is invoked from.
    """
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        p = candidate / ALLOWLIST_FILENAME
        if p.is_file():
            return p
    return None
