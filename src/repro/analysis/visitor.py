"""AST visitor helpers shared by the reprolint rules.

Rules work on plain :mod:`ast` trees; these helpers give them the small
vocabulary they all need — dotted attribute chains for call targets,
"is this call a bare expression statement" (a dropped completion
event), module-level-vs-function-local import classification, and a
generic walker that tracks the enclosing function.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple


def attr_chain(node: ast.AST) -> List[str]:
    """Dotted-name parts of an attribute/name expression, outermost last.

    ``self.api.start_stored`` -> ``["self", "api", "start_stored"]``;
    ``np.random.default_rng`` -> ``["np", "random", "default_rng"]``.
    Non-name bases (calls, subscripts) contribute a ``"?"`` placeholder
    so chains stay positional: ``nodes[0].scu.send`` ->
    ``["?", "scu", "send"]``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    parts.reverse()
    return parts


def dotted_name(node: ast.AST) -> str:
    """``attr_chain`` joined with dots (``"np.random.default_rng"``)."""
    return ".".join(attr_chain(node))


def call_method(call: ast.Call) -> str:
    """The method/function name a call targets (last chain element)."""
    return attr_chain(call.func)[-1]


def call_base(call: ast.Call) -> Optional[str]:
    """The name the method is called on (``api`` in ``self.api.send``)."""
    chain = attr_chain(call.func)
    return chain[-2] if len(chain) >= 2 else None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def dropped_expression_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Calls whose value is discarded: ``ast.Expr`` statements wrapping a
    bare :class:`ast.Call` (not a yield/await of one)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            yield node.value


def module_level_imports(
    tree: ast.Module,
) -> Iterator[Tuple[ast.stmt, str]]:
    """``(stmt, dotted_module)`` for every import at module scope.

    Imports inside function bodies are deliberately *excluded*: a
    function-local import is the sanctioned escape hatch for facade
    upcalls (e.g. ``QCDOCMachine.report`` reaching up into
    ``repro.telemetry``), because it cannot create an import cycle and
    is visibly marked at the call site.
    """
    for stmt in _statements_outside_functions(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                yield stmt, alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            yield stmt, stmt.module


def _statements_outside_functions(tree: ast.Module) -> Iterator[ast.stmt]:
    """Every statement not nested inside a function (class bodies count
    as module scope: class-level imports execute at import time)."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # function bodies run later: local imports are exempt
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field_name, []):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)


def int_constants(node: ast.AST) -> Iterator[ast.Constant]:
    """Every integer literal under ``node`` (bools excluded)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, int)
            and not isinstance(sub.value, bool)
        ):
            yield sub


def is_set_expression(node: ast.AST) -> bool:
    """True for expressions that evaluate to an (unordered) set:
    set literals, set comprehensions, and ``set(...)``/``frozenset(...)``
    calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain[-1] in ("set", "frozenset") and len(chain) == 1:
            return True
        # Trace.tags() documents itself as returning a set
        if chain[-1] == "tags" and len(chain) >= 2:
            return True
    return False
