"""The reprolint engine: findings, rule registry, and the lint driver.

A :class:`Rule` sees one parsed module at a time through
:meth:`Rule.check` and may emit cross-module findings from
:meth:`Rule.finish` once every module has been visited (used by the
trace-schema rule to flag registry entries no scanned module emits).

Rules register themselves with :func:`register_rule`; the registry is
populated by importing :mod:`repro.analysis.rules`.  The engine itself
is policy-free — which findings are suppressed is decided by the
:class:`~repro.analysis.allowlist.Allowlist` handed to it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.allowlist import Allowlist


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path relative to the scan root
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleContext:
    """One parsed source module, as seen by every rule.

    Attributes
    ----------
    path:
        Absolute filesystem path.
    relpath:
        Posix-style path relative to the scan root (the stable key used
        by findings and allowlist entries).
    package:
        The ``repro`` subpackage the module belongs to (``"machine"``,
        ``"parallel"``, ...) or ``""`` when the module is outside a
        ``repro`` tree (e.g. a test fixture).
    tree:
        The parsed :class:`ast.Module`.
    """

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.package = self._infer_package(relpath)

    @staticmethod
    def _infer_package(relpath: str) -> str:
        parts = Path(relpath).parts
        if "repro" in parts:
            idx = parts.index("repro")
            if idx + 1 < len(parts) and not parts[idx + 1].endswith(".py"):
                return parts[idx + 1]
        return ""

    def is_module(self, *suffixes: str) -> bool:
        """True when ``relpath`` ends with any of the given suffixes."""
        return any(self.relpath.endswith(s) for s in suffixes)

    def __repr__(self) -> str:
        return f"ModuleContext({self.relpath!r})"


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`rule_id` (stable, e.g. ``"REPRO101"``),
    :attr:`name` (kebab-case slug) and :attr:`summary`, and implement
    :meth:`check`.  One rule *instance* lives for one engine run, so
    rules may accumulate cross-module state and report it in
    :meth:`finish`.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    #: whole-program rules (the REPRO5xx flow family) accumulate every
    #: module in :meth:`check` and analyse in :meth:`finish`; the CLI
    #: runs them only under ``--flow`` or an explicit ``--select``
    whole_program: bool = False

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finish(self) -> Iterable[Finding]:
        """Cross-module findings, after every module was checked."""
        return ()

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule_id -> rule class (populated by @register_rule in repro.analysis.rules)
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, in rule-id order."""
    import repro.analysis.rules  # noqa: F401  (ensure registration ran)

    return [RULE_REGISTRY[k] for k in sorted(RULE_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    import repro.analysis.rules  # noqa: F401

    return RULE_REGISTRY[rule_id]


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def unused_allow_entries(self, allowlist: Allowlist) -> List[str]:
        used = {(f.rule, f.path) for f in self.suppressed}
        return [
            e.format()
            for e in allowlist.entries
            if (e.rule, e.path) not in used
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "parse_errors": [f.to_dict() for f in self.parse_errors],
            "clean": self.clean,
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Tuple[Path, str]]:
    """Yield ``(abs_path, relpath)`` for every ``.py`` under ``paths``.

    ``relpath`` is relative to the given root (or the file's parent for
    a single-file argument), posix-style, in sorted order for
    deterministic output.
    """
    for root in paths:
        root = root.resolve()
        if root.is_file():
            yield root, root.name
            continue
        for p in sorted(root.rglob("*.py")):
            yield p, p.relative_to(root).as_posix()


class LintEngine:
    """Drives a set of rule instances over a source tree."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        allowlist: Optional[Allowlist] = None,
    ):
        self.rule_classes: List[Type[Rule]] = list(
            rules if rules is not None else all_rules()
        )
        self.allowlist = allowlist if allowlist is not None else Allowlist([])

    def run(self, paths: Sequence[Path]) -> LintResult:
        result = LintResult()
        instances = [cls() for cls in self.rule_classes]
        for path, relpath in iter_python_files(paths):
            result.files_scanned += 1
            try:
                module = ModuleContext(path, relpath, path.read_text())
            except SyntaxError as exc:
                result.parse_errors.append(
                    Finding(
                        rule="REPRO000",
                        path=relpath,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            for rule in instances:
                for finding in rule.check(module):
                    self._file(result, finding)
        for rule in instances:
            for finding in rule.finish():
                self._file(result, finding)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result

    def _file(self, result: LintResult, finding: Finding) -> None:
        if self.allowlist.suppresses(finding.rule, finding.path):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
