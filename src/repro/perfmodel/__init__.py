"""The analytic performance, cost and packaging model.

The functional simulator (:mod:`repro.machine`) runs tens of nodes; the
paper's evaluation quotes numbers at 128-12,288 nodes.  This package closes
the gap with a calibrated analytic model built from

* the **published hardware parameters** (:class:`repro.machine.asic.ASICConfig`),
* the **exact per-site flop/word/comm counts** of each Dirac operator
  (:mod:`repro.fermions.flops`), and
* **two calibration constants** (an achieved cycles-per-memory-word and a
  fixed per-site kernel overhead), solved once from the paper's Wilson 40%
  and clover 46.5% CG efficiencies and then held fixed for every other
  prediction (ASQTAD, single precision, DDR spill, local-volume sweeps,
  hard scaling).

It also carries the dollar cost model (paper section 4's bill of
materials), the power/packaging roll-up, and the QCDSP / Ethernet-cluster
baseline machines the paper compares against.
"""

from repro.perfmodel.dirac_perf import Calibration, DiracPerfModel, calibrate
from repro.perfmodel.collectives import global_sum_time
from repro.perfmodel.latency import ClusterNetwork, message_time_table
from repro.perfmodel.scaling import HardScalingModel, ScalingPoint
from repro.perfmodel.cost import (
    QCDOC_4096_BOM,
    BillOfMaterials,
    CostLine,
    price_performance,
)
from repro.perfmodel.power import PackagingModel
from repro.perfmodel.baselines import CLUSTER_2004, QCDSP, BaselineMachine

__all__ = [
    "Calibration",
    "DiracPerfModel",
    "calibrate",
    "global_sum_time",
    "ClusterNetwork",
    "message_time_table",
    "HardScalingModel",
    "ScalingPoint",
    "BillOfMaterials",
    "CostLine",
    "QCDOC_4096_BOM",
    "price_performance",
    "PackagingModel",
    "BaselineMachine",
    "QCDSP",
    "CLUSTER_2004",
]
