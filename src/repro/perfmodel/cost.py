"""The dollar cost model: bill of materials and price/performance (E6, E7).

Every line item below is quoted verbatim from paper section 4 ("they have
all been purchased on Columbia University purchase orders").  Note a
curiosity we preserve faithfully: the paper's printed component lines sum
to $1,608,733.55 but its printed total is $1,610,442 — a $1,708.45 gap
(presumably an unlisted small item); :attr:`BillOfMaterials.paper_total`
records the printed figure and the audit keeps both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.asic import ASICConfig
from repro.util.errors import ConfigError
from repro.util.units import MHZ


@dataclass(frozen=True)
class CostLine:
    item: str
    quantity: int
    total_dollars: float

    @property
    def unit_dollars(self) -> float:
        return self.total_dollars / self.quantity


@dataclass
class BillOfMaterials:
    """A machine's purchased components + development proration."""

    name: str
    lines: List[CostLine]
    #: the total as printed in the paper (may differ from the line sum)
    paper_total: Optional[float] = None
    rnd_dollars: float = 0.0
    rnd_prorated_dollars: float = 0.0

    @property
    def component_total(self) -> float:
        return sum(line.total_dollars for line in self.lines)

    @property
    def machine_total(self) -> float:
        """The machine cost (the paper's printed total when available)."""
        return self.paper_total if self.paper_total is not None else self.component_total

    @property
    def total_with_rnd(self) -> float:
        return self.machine_total + self.rnd_prorated_dollars

    def audit(self) -> Dict[str, float]:
        return {
            "component_sum": self.component_total,
            "paper_total": self.machine_total,
            "discrepancy": self.machine_total - self.component_total,
            "with_rnd": self.total_with_rnd,
        }


#: Paper section 4, verbatim: the 4096-node Columbia machine.
QCDOC_4096_BOM = BillOfMaterials(
    name="columbia-4096",
    lines=[
        # "128 Mbytes of off-chip memory per node for one half of the
        #  nodes and 256 Mbytes for the other half"
        CostLine("daughterboards (2 nodes each)", 2048, 1_105_692.67),
        CostLine("motherboards", 64, 180_404.88),
        CostLine("water-cooled cabinets", 4, 187_296.00),
        CostLine("mesh network cables", 768, 71_040.00),
        CostLine("host computer + Ethernet switches + 6 TB RAID disks", 1, 64_300.00),
    ],
    paper_total=1_610_442.00,
    rnd_dollars=2_166_000.00,
    # "If this cost is prorated over all of the presently funded QCDOC
    #  machines, this represents an additional cost of $99,159"
    rnd_prorated_dollars=99_159.00,
)

#: the paper's grand total for the 4096-node machine
QCDOC_4096_TOTAL_WITH_RND = 1_709_601.00


def sustained_megaflops(
    n_nodes: int, clock_hz: float, efficiency: float = 0.45
) -> float:
    """Sustained Mflops: nodes x 2 flops/cycle x clock x efficiency."""
    if not 0 < efficiency <= 1:
        raise ConfigError(f"bad efficiency {efficiency}")
    return n_nodes * 2.0 * clock_hz * efficiency / 1e6


def price_performance(
    clock_hz: float,
    n_nodes: int = 4096,
    efficiency: float = 0.45,
    total_dollars: float = QCDOC_4096_TOTAL_WITH_RND,
) -> float:
    """Dollars per sustained Megaflops (the paper's headline metric).

    With the paper's own inputs (45% CG efficiency, $1,709,601):
    $1.29 at 360 MHz, $1.10 at 420 MHz, $1.03 at 450 MHz.
    """
    return total_dollars / sustained_megaflops(n_nodes, clock_hz, efficiency)


def price_performance_table(
    clocks=(360 * MHZ, 420 * MHZ, 450 * MHZ),
    **kwargs,
) -> List[Tuple[float, float]]:
    """Rows of ``(clock_hz, dollars_per_sustained_mflops)``."""
    return [(c, price_performance(c, **kwargs)) for c in clocks]


def volume_scaled_bom(n_nodes: int, discount: float = 0.08) -> BillOfMaterials:
    """Scale the 4096-node BOM to a larger machine with a volume discount.

    "For the full size 12,288 machines, the cost per node will be reduced,
    due to the discount from volume ordering" — the paper expects this to
    land "very close to our targeted $1 per sustained Megaflops"; an ~8%
    parts discount does exactly that at 450 MHz.
    """
    scale = n_nodes / 4096.0
    lines = [
        CostLine(l.item, max(1, int(l.quantity * scale)), l.total_dollars * scale * (1 - discount))
        for l in QCDOC_4096_BOM.lines
    ]
    return BillOfMaterials(
        name=f"qcdoc-{n_nodes}",
        lines=lines,
        paper_total=None,
        rnd_dollars=QCDOC_4096_BOM.rnd_dollars,
        rnd_prorated_dollars=QCDOC_4096_BOM.rnd_prorated_dollars * scale,
    )
