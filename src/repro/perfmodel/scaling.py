"""Hard scaling: a fixed problem on ever more nodes (experiment E8).

Paper section 1: "low latency is also vital if a problem of a fixed size is
to be run on a machine with tens of thousands of nodes, since adding more
nodes generally increases the ratio of inter-node communication to local
floating point operations."

The model runs the paper's target problem (a ``32^3 x 64`` lattice — the
8,192-node, 4^4-local-volume configuration of section 4) across a node
sweep on three machines: QCDOC (calibrated model + explicit comm
exposure), QCDSP, and a 2004 commodity cluster.  The headline *shape*:
QCDOC keeps scaling to O(10^4) nodes while the cluster's sustained speed
saturates when communication startup costs eat the shrinking local work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fermions.flops import operator_cost
from repro.machine.asic import ASICConfig
from repro.perfmodel.baselines import CLUSTER_2004, QCDSP, BaselineMachine
from repro.perfmodel.collectives import ethernet_allreduce_time, global_sum_time
from repro.perfmodel.dirac_perf import DiracPerfModel
from repro.util.errors import ConfigError

#: the paper's production problem
TARGET_GLOBAL_SHAPE = (32, 32, 32, 64)


def decompose_shape(
    global_shape: Sequence[int], n_nodes: int
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split a lattice over ``n_nodes``, halving the largest axis first.

    Returns ``(machine_dims, local_shape)``; raises if ``n_nodes`` cannot
    be factored into the axes (it must divide the lattice volume through
    repeated halvings — powers of two for the paper's shapes).
    """
    dims = [1] * len(global_shape)
    local = list(global_shape)
    remaining = n_nodes
    while remaining > 1:
        if remaining % 2 != 0:
            raise ConfigError(
                f"cannot decompose {global_shape} over {n_nodes} nodes "
                "(non power-of-two remainder)"
            )
        axis = int(np.argmax(local))
        if local[axis] < 2:
            raise ConfigError(
                f"{n_nodes} nodes exceed the {global_shape} lattice volume"
            )
        local[axis] //= 2
        dims[axis] *= 2
        remaining //= 2
    return tuple(dims), tuple(local)


@dataclass
class ScalingPoint:
    """One machine size in the hard-scaling sweep."""

    machine: str
    n_nodes: int
    local_volume: int
    seconds_per_iteration: float
    sustained_flops: float
    efficiency: float
    comm_fraction: float


class HardScalingModel:
    """Sustained CG speed vs node count at fixed global volume."""

    def __init__(
        self,
        op: str = "wilson",
        global_shape: Sequence[int] = TARGET_GLOBAL_SHAPE,
        asic: Optional[ASICConfig] = None,
    ):
        self.op = op
        self.cost = operator_cost(op)
        self.global_shape = tuple(global_shape)
        self.global_volume = int(np.prod(global_shape))
        self.qcdoc = DiracPerfModel(asic)

    # -- QCDOC ------------------------------------------------------------
    def _qcdoc_comm_seconds(self, local_shape: Sequence[int]) -> float:
        """Per-application halo time: all 24 links run concurrently, so the
        wall time is the *largest* face, first word costing the 600 ns
        memory-to-memory latency."""
        asic = self.qcdoc.asic
        v = int(np.prod(local_shape))
        t = 0.0
        for axis, L in enumerate(local_shape):
            face_sites = v // L
            nbytes = face_sites * self.cost.comm_bytes_per_face_site
            nwords = max(1, nbytes // 8)
            t = max(
                t,
                asic.neighbour_latency
                + (nwords - 1) * asic.word_serialisation_time,
            )
        return t

    def qcdoc_point(self, n_nodes: int) -> ScalingPoint:
        machine_dims, local_shape = decompose_shape(self.global_shape, n_nodes)
        local_volume = int(np.prod(local_shape))
        asic = self.qcdoc.asic

        compute = (
            self.qcdoc.dirac_cycles_per_site(self.op, local_shape)
            * local_volume
            / asic.clock_hz
        )
        comm = self._qcdoc_comm_seconds(local_shape)
        exposed = max(0.0, comm - compute)  # DMA overlaps the kernel
        lin_cycles = (
            self.qcdoc.cg_cycles_per_site(self.op, local_shape, machine_dims)
            - 2 * self.qcdoc.dirac_cycles_per_site(self.op, local_shape)
        )
        t_iter = 2 * (compute + exposed) + lin_cycles * local_volume / asic.clock_hz
        flops_iter = self.qcdoc.cg_flops_per_site(self.op) * self.global_volume
        sustained = flops_iter / t_iter
        return ScalingPoint(
            "qcdoc",
            n_nodes,
            local_volume,
            t_iter,
            sustained,
            sustained / (n_nodes * asic.peak_flops),
            2 * (comm if exposed > 0 else 0.0) / t_iter if t_iter else 0.0,
        )

    # -- baselines ------------------------------------------------------------
    def baseline_point(self, machine: BaselineMachine, n_nodes: int) -> ScalingPoint:
        _dims, local_shape = decompose_shape(self.global_shape, n_nodes)
        local_volume = int(np.prod(local_shape))
        net = machine.network

        compute = (
            local_volume * self.cost.flops_per_site / machine.node_sustained()
        )
        # per-direction messages; with few NICs they serialise.  Generic
        # MPI codes on commodity clusters exchange *full* spinors — the
        # half-spinor compression is part of QCDOC's hand-tuned kernel
        # contract (sender-side projection fused into the SCU send), so
        # the baseline pays the uncompressed payload.
        msgs = []
        for axis, L in enumerate(local_shape):
            face_bytes = (
                local_volume // L
            ) * self.cost.uncompressed_comm_bytes_per_face_site
            msgs.extend([net.startup_latency + face_bytes / net.bandwidth] * 2)
        if net.concurrent_links >= len(msgs):
            comm = max(msgs)
        else:
            comm = sum(msgs) / net.concurrent_links
        # No DMA engines: communication is not overlapped with compute.
        allreduce = 2 * ethernet_allreduce_time(
            n_nodes, 1, net.startup_latency, net.bandwidth
        )
        t_iter = 2 * (compute + comm) + allreduce
        flops_iter = (
            2 * self.cost.flops_per_site * self.global_volume
        )
        sustained = flops_iter / t_iter
        return ScalingPoint(
            machine.name,
            n_nodes,
            local_volume,
            t_iter,
            sustained,
            sustained / (n_nodes * machine.node_peak_flops),
            2 * comm / t_iter,
        )

    # -- the sweep ------------------------------------------------------------
    def sweep(
        self, node_counts: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
    ) -> List[ScalingPoint]:
        points: List[ScalingPoint] = []
        for n in node_counts:
            points.append(self.qcdoc_point(n))
            points.append(self.baseline_point(CLUSTER_2004, n))
            points.append(self.baseline_point(QCDSP, n))
        return points

    def crossover_nodes(self) -> int:
        """Smallest node count where QCDOC's sustained speed beats the
        cluster's — 'who wins' as machines grow."""
        for n in (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384):
            q = self.qcdoc_point(n).sustained_flops
            c = self.baseline_point(CLUSTER_2004, n).sustained_flops
            if q > c:
                return n
        return -1
