"""Point-to-point latency/bandwidth model and the Ethernet comparison (E3).

Paper section 2.2: "Our 600 ns memory-to-memory latency is to be compared
to times of 5-10 us just to begin a transfer when using standard networks
like Ethernet."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.machine.asic import ASICConfig
from repro.util.units import US


@dataclass(frozen=True)
class ClusterNetwork:
    """A 2004-era commodity cluster interconnect (Ethernet-class)."""

    name: str = "gigabit-ethernet"
    startup_latency: float = 7.5 * US  # the paper's "5-10 us" midpoint
    bandwidth: float = 1e9 / 8  # GigE payload bandwidth
    #: one NIC per node: messages to different neighbours serialise
    concurrent_links: int = 1


def qcdoc_message_time(nwords: int, asic: Optional[ASICConfig] = None) -> float:
    """Memory-to-memory time for an ``nwords`` x 64-bit nearest-neighbour
    transfer: 600 ns first word + streaming at the wire rate."""
    asic = asic if asic is not None else ASICConfig()
    if nwords <= 0:
        return 0.0
    return asic.neighbour_latency + (nwords - 1) * asic.word_serialisation_time


def cluster_message_time(nwords: int, net: Optional[ClusterNetwork] = None) -> float:
    """Same transfer over the commodity network."""
    net = net if net is not None else ClusterNetwork()
    if nwords <= 0:
        return 0.0
    return net.startup_latency + (nwords * 8) / net.bandwidth


def message_time_table(
    sizes_words: Sequence[int] = (1, 3, 24, 96, 384, 1536, 6144),
    asic: Optional[ASICConfig] = None,
    net: Optional[ClusterNetwork] = None,
) -> List[Tuple[int, float, float, float]]:
    """Rows of ``(nwords, qcdoc_time, cluster_time, advantage)``.

    The QCDOC advantage is largest exactly where hard scaling lives: many
    small transfers.  At 24 words (the paper's example) QCDOC has sent and
    *stored* everything before the cluster's kernel has begun transmitting.
    """
    rows = []
    for n in sizes_words:
        tq = qcdoc_message_time(n, asic)
        tc = cluster_message_time(n, net)
        rows.append((n, tq, tc, tc / tq))
    return rows
