"""Power, packaging and floor-space roll-up (experiment E9).

Paper section 2.4: a 2-node daughterboard draws ~20 W including DRAM; 32
daughterboards per motherboard; 8 motherboards per crate; 2 crates per
water-cooled rack (1024 nodes, 1.0 Tflops peak, under 10 kW); racks stack
two high so "10,000 nodes [...] have a footprint of about 60 square feet".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.machine.asic import MachineConfig
from repro.util.errors import ConfigError


@dataclass
class PackagingModel:
    """Counts, watts and floor space for an ``n_nodes`` machine."""

    config: MachineConfig = field(default_factory=MachineConfig)
    #: overhead for DC-DC conversion + hubs + clock distribution per
    #: motherboard, on top of the daughterboard figure
    motherboard_overhead_watts: float = 25.0
    #: floor footprint of one stack of two racks (the stacking that gives
    #: 10,000 nodes ~ 60 sq ft)
    stack_footprint_sqft: float = 12.0

    def breakdown(self, n_nodes: int) -> Dict[str, int]:
        if n_nodes < 1:
            raise ConfigError("need at least one node")
        c = self.config
        dboards = math.ceil(n_nodes / c.nodes_per_daughterboard)
        mboards = math.ceil(dboards / c.daughterboards_per_motherboard)
        crates = math.ceil(mboards / c.motherboards_per_crate)
        racks = math.ceil(crates / c.crates_per_rack)
        stacks = math.ceil(racks / 2)
        return {
            "nodes": n_nodes,
            "daughterboards": dboards,
            "motherboards": mboards,
            "crates": crates,
            "racks": racks,
            "stacks": stacks,
        }

    def power_watts(self, n_nodes: int) -> float:
        b = self.breakdown(n_nodes)
        return (
            b["daughterboards"] * self.config.daughterboard_power_watts
            + b["motherboards"] * self.motherboard_overhead_watts
        )

    def rack_power_watts(self) -> float:
        """One fully-populated 1024-node rack (paper: 'less than 10,000
        watts')."""
        return self.power_watts(self.config.nodes_per_rack)

    def footprint_sqft(self, n_nodes: int) -> float:
        return self.breakdown(n_nodes)["stacks"] * self.stack_footprint_sqft

    def rack_peak_flops(self) -> float:
        """1.0 Tflops peak per rack at 500 MHz."""
        return self.config.nodes_per_rack * self.config.asic.peak_flops

    def megaflops_per_watt(self, n_nodes: int, efficiency: float = 0.45) -> float:
        sustained = n_nodes * self.config.asic.peak_flops * efficiency / 1e6
        return sustained / self.power_watts(n_nodes)
