"""Sustained-efficiency model for CG Dirac solves on one QCDOC node.

Model
-----
A CG iteration on the normal equations costs, per lattice site,

``C_iter = 2 * (F_op/2  +  W_op * cpw_eff  +  c0_eff)  +  C_linalg  +  C_gsum``

cycles, where ``F_op``/``W_op`` are the operator's exact flop and
memory-word counts (:mod:`repro.fermions.flops`), ``C_linalg`` covers the
three axpys and two inner products, ``C_gsum`` the two SCU global sums, and

* ``cpw`` — achieved processor cycles per 8-byte memory word streamed
  through the EDRAM path by the hand-tuned assembly, and
* ``c0`` — fixed per-site kernel overhead (loop control, address
  generation, pipeline refill)

are the **only** free parameters.  :func:`calibrate` solves the 2x2 linear
system pinning the model to the paper's measured Wilson 40% and clover
46.5% (section 4: 128 nodes, 4^4 local volume, double precision); every
other number — ASQTAD, domain wall, single precision, the EDRAM/DDR
crossover — is then a *prediction*, compared against the paper in
EXPERIMENTS.md.

Refinements applied on top of the calibrated core:

* **precision**: single precision halves every word count ("performance
  for single precision is slightly higher due to the decreased bandwidth
  to local memory");
* **DDR spill**: when the working set exceeds the 4 MB EDRAM, the spilled
  fraction of traffic pays the EDRAM/DDR bandwidth ratio
  (:meth:`repro.machine.memory.MemoryModel.spill_fraction`) — the paper's
  "fall to the range of 30% of peak";
* **domain wall**: the gauge field is reused across the ``Ls`` fifth-
  dimension slices (streamed once per blocked pass), and the quarter of
  ``c0`` attributable to 4-dimensional address generation amortises over
  ``Ls`` — the basis of the paper's expectation that the domain-wall
  kernel "will surpass the performance of the clover improved Wilson
  operator";
* **communication overlap** (``comms=`` on :meth:`DiracPerfModel.efficiency`
  / :meth:`DiracPerfModel.dirac_seconds`): the SCU runs all 24 DMA
  transfers concurrently with CPU arithmetic, so the overlapped pipeline
  of :mod:`repro.parallel` pays

  ``T = T_interior + max(T_comm, T_boundary)``

  per application — only communication in *excess* of the boundary-shell
  compute is exposed (``comms="overlap"``, the default; hep-lat/0306023
  and hep-lat/0210034 model efficiency the same way).  ``comms="serial"``
  charges ``T_compute + T_comm`` — the monolithic assembly that waits for
  every halo before touching a single site — and ``comms="none"`` ignores
  communication entirely (single-node kernel efficiency).  At the
  calibration point the overlapped model is compute-bound (the exposed
  comm time is zero), so the published Wilson/clover anchors are
  reproduced exactly; at small local volumes (the paper's 2^4 headline)
  the serialized model falls well below the published 40-50% band while
  the overlapped model stays inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.fermions.flops import (
    DWF_5D_EXTRA_FLOPS,
    HALF_SPINOR_WORDS,
    MATVEC_SU3,
    SPINOR_WORDS,
    STAGGERED_WORDS,
    WILSON_DSLASH_FLOPS,
    WILSON_FORCE_FLOPS_PER_DIRECTION,
    WILSON_FORCE_HALO_PROJ_FLOPS,
    OperatorCost,
    operator_cost,
)
from repro.machine.asic import ASICConfig
from repro.machine.globalops import sum_hops
from repro.machine.memory import MemoryModel
from repro.util.errors import ConfigError

#: CG solver-vector count resident during a solve: x, r, p, Ap, b.
CG_VECTORS = 5

#: the paper's measured CG efficiencies used for calibration (section 4)
CALIBRATION_TARGETS = {"wilson": 0.40, "clover": 0.465}
#: the benchmark configuration those numbers were measured on
CALIBRATION_LOCAL_SHAPE = (4, 4, 4, 4)
CALIBRATION_MACHINE_DIMS = (4, 4, 4, 2)  # 128 nodes as a 4D machine


@dataclass(frozen=True)
class Calibration:
    """The two fitted constants (see module docstring)."""

    cycles_per_word: float
    overhead_cycles_per_site: float


def _linalg_costs(cost: OperatorCost) -> Tuple[float, float]:
    """CG linear-algebra (flops, words) per site per iteration.

    Three axpys (2 flops per real component; read 2 vectors, write 1) and
    two inner products (8 flops per complex pair; read 2 vectors).
    """
    w = cost.site_vector_words  # 64-bit words per vector per site
    reals = 2 * w  # real components per site per vector... w words = w reals
    # NB: one 64-bit word holds one float64, i.e. one real component.
    axpy_flops = 3 * (2 * w)
    dot_flops = 2 * (8 * (w // 2))
    flops = axpy_flops + dot_flops
    words = 3 * (3 * w) + 2 * (2 * w)
    return float(flops), float(words)


class DiracPerfModel:
    """Calibrated single-node + collective performance model."""

    def __init__(self, asic: Optional[ASICConfig] = None, calibration: Optional[Calibration] = None):
        self.asic = asic if asic is not None else ASICConfig()
        self.memory = MemoryModel(self.asic)
        self.calibration = calibration if calibration is not None else calibrate(self.asic)

    # -- working set / residency ------------------------------------------------
    def working_set_bytes(self, op: str, local_volume: int, Ls: int = 1) -> int:
        """Solve-time resident bytes: gauge (+clover) field + CG vectors."""
        cost = operator_cost(op)
        gauge_bytes = cost.gauge_words_per_site * 8
        clover_bytes = 72 * 8 if op == "clover" else 0
        vec_bytes = CG_VECTORS * cost.site_vector_words * 8 * Ls
        return local_volume * (gauge_bytes + clover_bytes + vec_bytes)

    def _cpw_eff(self, op: str, local_volume: int, Ls: int) -> float:
        """cycles/word including the DDR spill penalty."""
        spill = self.memory.spill_fraction(
            self.working_set_bytes(op, local_volume, Ls)
        )
        ratio = self.asic.edram_bandwidth / self.asic.ddr_bandwidth
        return self.calibration.cycles_per_word * (1.0 - spill + spill * ratio)

    # -- per-application costs ----------------------------------------------------
    def dirac_cycles_per_site(
        self,
        op: str,
        local_shape: Sequence[int],
        precision: str = "double",
        Ls: int = 1,
    ) -> float:
        """Cycles per (4-dimensional, or 5-dimensional for dwf) site for one
        operator application."""
        if precision not in ("double", "single"):
            raise ConfigError(f"precision must be double/single, got {precision!r}")
        cost = operator_cost(op)
        local_volume = int(np.prod(local_shape))
        words = float(cost.words_per_site)
        c0 = self.calibration.overhead_cycles_per_site
        if op == "dwf" and Ls > 1:
            # gauge field streamed once per Ls slices; a quarter of the
            # per-site overhead (4D address generation) amortises too.
            words -= cost.gauge_words_per_site * (1.0 - 1.0 / Ls)
            c0 = c0 * (0.75 + 0.25 / Ls)
        if precision == "single":
            words /= 2.0
        fpu = cost.flops_per_site / self.asic.flops_per_cycle
        cpw = self._cpw_eff(op, local_volume, Ls if op == "dwf" else 1)
        return fpu + words * cpw + c0

    # -- communication -----------------------------------------------------------
    def halo_comm_seconds(
        self,
        op: str,
        local_shape: Sequence[int],
        machine_dims: Sequence[int] = CALIBRATION_MACHINE_DIMS,
        precision: str = "double",
        Ls: int = 1,
    ) -> float:
        """Halo-exchange time of one operator application, all links concurrent.

        Each decomposed axis drives an independent pair of unidirectional
        wires (the SCU's 24 links run simultaneously), so the exchange
        time is the **max** over axes, not the sum: per axis, the face
        payload — ``comm_bytes_per_face_site`` per boundary site per unit
        hop depth (the ASQTAD links ship depth-1 fat plus depth-3 Naik
        data, hence ``sum(hop_depths)``) — serialised at one link's
        bandwidth, plus the fixed memory-to-memory neighbour latency.

        ``comm_bytes_per_face_site`` is the **compressed** wire payload:
        Wilson-type operators ship spin-projected half spinors (12 words
        = 96 bytes per face site, exactly what the functional simulator's
        transfer counters measure for :mod:`repro.parallel`); staggered
        colour vectors have no spin structure and go uncompressed.  The
        generic full-spinor payload lives in
        ``uncompressed_comm_bytes_per_face_site`` and is what the
        commodity-cluster baseline of :mod:`repro.perfmodel.scaling` pays.
        """
        cost = operator_cost(op)
        shape = tuple(int(s) for s in local_shape)
        volume = int(np.prod(shape))
        comm_axes = [
            mu
            for mu in range(len(shape))
            if mu < len(machine_dims) and machine_dims[mu] > 1
        ]
        if not comm_axes:
            return 0.0
        depth_factor = sum(cost.hop_depths)
        slices = Ls if op == "dwf" else 1
        per_axis = []
        for mu in comm_axes:
            face_sites = volume // shape[mu]
            nbytes = face_sites * cost.comm_bytes_per_face_site * depth_factor * slices
            if precision == "single":
                nbytes /= 2.0
            per_axis.append(
                nbytes / self.asic.link_bandwidth + self.asic.neighbour_latency
            )
        return max(per_axis)

    def boundary_fraction(
        self,
        op: str,
        local_shape: Sequence[int],
        machine_dims: Sequence[int] = CALIBRATION_MACHINE_DIMS,
    ) -> float:
        """Fraction of local sites in the halo-dependent boundary shell.

        The overlapped pipeline computes interior sites
        (``d <= x_mu < L_mu - d`` on every decomposed axis, ``d`` the
        operator's deepest hop) during communication; only the boundary
        shell's arithmetic can contend with the wires.
        """
        cost = operator_cost(op)
        depth = max(cost.hop_depths)
        shape = tuple(int(s) for s in local_shape)
        interior = 1.0
        for mu in range(len(shape)):
            if mu < len(machine_dims) and machine_dims[mu] > 1:
                interior *= max(0, shape[mu] - 2 * depth) / shape[mu]
        return 1.0 - interior

    def exposed_comm_seconds(
        self,
        op: str,
        local_shape: Sequence[int],
        machine_dims: Sequence[int] = CALIBRATION_MACHINE_DIMS,
        precision: str = "double",
        Ls: int = 1,
        comms: str = "overlap",
    ) -> float:
        """Communication time *not* hidden behind compute, per application.

        ``overlap``: ``max(0, T_comm - T_boundary)`` — the two-phase
        pipeline of :mod:`repro.parallel` exposes only the excess of the
        exchange over the boundary-shell arithmetic.  ``serial``: the
        whole ``T_comm`` (monolithic assembly).  ``none``: zero.
        """
        if comms not in ("overlap", "serial", "none"):
            raise ConfigError(
                f"comms must be overlap/serial/none, got {comms!r}"
            )
        if comms == "none":
            return 0.0
        t_comm = self.halo_comm_seconds(op, local_shape, machine_dims, precision, Ls)
        if comms == "serial":
            return t_comm
        t_compute = self.dirac_seconds(op, local_shape, precision=precision, Ls=Ls)
        t_boundary = t_compute * self.boundary_fraction(op, local_shape, machine_dims)
        return max(0.0, t_comm - t_boundary)

    def cg_cycles_per_site(
        self,
        op: str,
        local_shape: Sequence[int],
        machine_dims: Sequence[int] = CALIBRATION_MACHINE_DIMS,
        precision: str = "double",
        Ls: int = 1,
        comms: str = "overlap",
    ) -> float:
        """Cycles per site for one full CG iteration (2 operator
        applications + exposed halo communication + linear algebra +
        2 global sums)."""
        cost = operator_cost(op)
        local_volume = int(np.prod(local_shape)) * (Ls if op == "dwf" else 1)
        dirac = self.dirac_cycles_per_site(op, local_shape, precision, Ls)
        exposed = (
            self.exposed_comm_seconds(
                op, local_shape, machine_dims, precision, Ls, comms
            )
            * self.asic.clock_hz
            / local_volume
        )
        lin_flops, lin_words = _linalg_costs(cost)
        if precision == "single":
            lin_words /= 2.0
        cpw = self._cpw_eff(op, int(np.prod(local_shape)), Ls if op == "dwf" else 1)
        linalg = lin_flops / self.asic.flops_per_cycle + lin_words * cpw
        gsum_cycles = (
            2.0 * self._global_sum_seconds(machine_dims) * self.asic.clock_hz
        ) / local_volume
        return (
            cost.dirac_applications_per_cg_iteration * (dirac + exposed)
            + linalg
            + gsum_cycles
        )

    def _global_sum_seconds(self, machine_dims: Sequence[int]) -> float:
        t_word = self.asic.word_serialisation_time
        hops = sum_hops(machine_dims, doubled=True)
        return t_word * sum(1 for d in machine_dims if d > 1) + hops * self.asic.passthrough_latency

    # -- headline outputs ------------------------------------------------------
    def cg_flops_per_site(self, op: str) -> float:
        cost = operator_cost(op)
        lin_flops, _ = _linalg_costs(cost)
        return (
            cost.dirac_applications_per_cg_iteration * cost.flops_per_site
            + lin_flops
        )

    def efficiency(
        self,
        op: str,
        local_shape: Sequence[int] = CALIBRATION_LOCAL_SHAPE,
        machine_dims: Sequence[int] = CALIBRATION_MACHINE_DIMS,
        precision: str = "double",
        Ls: int = 1,
        comms: str = "overlap",
    ) -> float:
        """Sustained fraction of peak for the CG solver.

        ``comms="overlap"`` (default) models the two-phase pipeline —
        zero exposed communication whenever the boundary-shell compute
        covers the exchange, which holds at the calibration point, so the
        published anchors are unchanged.  ``comms="serial"`` models the
        monolithic assembly; ``comms="none"`` the isolated kernel.
        """
        cycles = self.cg_cycles_per_site(
            op, local_shape, machine_dims, precision, Ls, comms
        )
        return self.cg_flops_per_site(op) / (
            self.asic.flops_per_cycle * cycles
        )

    def sustained_flops(self, op: str, n_nodes: int, **kwargs) -> float:
        return self.efficiency(op, **kwargs) * n_nodes * self.asic.peak_flops

    def dirac_seconds(
        self,
        op: str,
        local_shape,
        machine_dims: Optional[Sequence[int]] = None,
        comms: str = "none",
        **kwargs,
    ) -> float:
        """Wall time of one operator application on one node.

        With ``machine_dims`` given, ``comms="overlap"`` adds the exposed
        communication ``max(0, T_comm - T_boundary)`` and
        ``comms="serial"`` the full exchange; the default (``None`` /
        ``"none"``) is the pure compute time of the kernel.
        """
        v = int(np.prod(local_shape)) * (kwargs.get("Ls", 1) if op == "dwf" else 1)
        seconds = (
            self.dirac_cycles_per_site(op, local_shape, **kwargs)
            * v
            / self.asic.clock_hz
        )
        if machine_dims is not None and comms != "none":
            seconds += self.exposed_comm_seconds(
                op,
                local_shape,
                machine_dims,
                kwargs.get("precision", "double"),
                kwargs.get("Ls", 1),
                comms,
            )
        return seconds


# -- exact protocol predictions (telemetry crosscheck) ------------------------
#
# Unlike the calibrated timing model above, these two functions are *exact*
# counts of what the functional simulator's distributed operators do —
# derived from the wire format and flop sheets of
# :mod:`repro.fermions.flops`.  ``repro.telemetry.report.MachineReport
# .crosscheck`` compares measured hardware-style counters against them, so
# a drift in either the protocol implementation or these formulas fails
# the telemetry test suite.


def _decomposed_axes(local_shape, machine_dims):
    shape = tuple(int(s) for s in local_shape)
    axes = [
        mu
        for mu in range(len(shape))
        if mu < len(machine_dims) and int(machine_dims[mu]) > 1
    ]
    return shape, axes


def halo_payload_words(
    op: str,
    local_shape: Sequence[int],
    machine_dims: Sequence[int],
    Ls: int = 1,
    compress: bool = True,
) -> int:
    """Exact SCU payload words **sent per node** per operator application.

    Per decomposed axis a Wilson-type rank ships two transfers — the
    forward halo and the staged backward products — of one face each:
    ``2 * nface * (12 | 24)`` words (compressed half spinors vs the full
    spinor wire format), times ``Ls`` slices for domain wall.  ASQTAD
    ships the depth-3 raw face (``3 * nface`` colour vectors) plus the
    packed fat+Naik products (``(1 + 3) * nface``): ``7 * nface * 6``
    words, compression not applicable.  The two-flavor fermion force
    (``"wilson-force"``) ships one packed transfer per axis — the raw
    low faces of both solver fields ``X`` and ``Y = D X`` — so
    ``2 * nface * 24`` words; the ``(r + gamma)`` projection happens on
    the receiver, so compression does not apply.
    """
    if op not in (
        "wilson",
        "clover",
        "dwf",
        "asqtad",
        "naive-staggered",
        "wilson-force",
    ):
        raise ConfigError(f"no distributed wire format for op {op!r}")
    shape, axes = _decomposed_axes(local_shape, machine_dims)
    volume = int(np.prod(shape))
    total = 0
    for mu in axes:
        nface = volume // shape[mu]
        if op in ("wilson", "clover"):
            w = HALF_SPINOR_WORDS if compress else SPINOR_WORDS
            total += 2 * nface * w
        elif op == "dwf":
            w = HALF_SPINOR_WORDS if compress else SPINOR_WORDS
            total += 2 * int(Ls) * nface * w
        elif op == "wilson-force":
            total += 2 * nface * SPINOR_WORDS
        else:  # asqtad / naive-staggered colour vectors
            total += 7 * nface * STAGGERED_WORDS
    return total


def dirac_flops_per_node(
    op: str,
    local_shape: Sequence[int],
    machine_dims: Sequence[int],
    Ls: int = 1,
) -> float:
    """Exact flops charged per node for **one** distributed ``D`` apply.

    ``volume * flops_per_site`` plus the sender-side staging matvecs the
    halo exchange adds on decomposed axes: one ``U^+ (proj) psi`` SU(3)
    matvec per high-face site (per slice for domain wall); ASQTAD stages
    fat products on the depth-1 face and Naik products on the depth-3
    face — four matvecs per face site.  ``"wilson-force"`` counts one
    evaluation of the two-flavor fermion-force kernel (all ``ndim``
    directions over the local volume) plus the receiver-side
    ``(r + gamma_mu)`` projection it recomputes on each received
    forward-face site of a decomposed axis.
    """
    shape, axes = _decomposed_axes(local_shape, machine_dims)
    volume = int(np.prod(shape))
    sum_nface = sum(volume // shape[mu] for mu in axes)
    if op in ("wilson", "clover"):
        cost = operator_cost(op)
        return float(volume * cost.flops_per_site + sum_nface * MATVEC_SU3)
    if op == "dwf":
        per_site5 = WILSON_DSLASH_FLOPS + DWF_5D_EXTRA_FLOPS
        return float(int(Ls) * (volume * per_site5 + sum_nface * MATVEC_SU3))
    if op == "asqtad":
        cost = operator_cost(op)
        return float(volume * cost.flops_per_site + 4 * sum_nface * MATVEC_SU3)
    if op == "wilson-force":
        return float(
            volume * len(shape) * WILSON_FORCE_FLOPS_PER_DIRECTION
            + sum_nface * WILSON_FORCE_HALO_PROJ_FLOPS
        )
    raise ConfigError(f"no distributed flop model for op {op!r}")


def calibrate(asic: Optional[ASICConfig] = None) -> Calibration:
    """Solve (cpw, c0) from the paper's Wilson and clover efficiencies.

    The CG cycle count is linear in both constants, so this is an exact
    2x2 linear solve — no fitting freedom beyond the two published
    anchors.
    """
    asic = asic if asic is not None else ASICConfig()

    def row(op: str) -> Tuple[float, float, float, float]:
        cost = operator_cost(op)
        lin_flops, lin_words = _linalg_costs(cost)
        fixed = (
            2.0 * cost.flops_per_site / asic.flops_per_cycle
            + lin_flops / asic.flops_per_cycle
        )
        coeff_cpw = 2.0 * cost.words_per_site + lin_words
        coeff_c0 = 2.0
        total_flops = 2.0 * cost.flops_per_site + lin_flops
        return fixed, coeff_cpw, coeff_c0, total_flops

    # global-sum cycles per site on the calibration machine
    model = DiracPerfModel.__new__(DiracPerfModel)
    model.asic = asic
    gsum = (
        2.0
        * model._global_sum_seconds(CALIBRATION_MACHINE_DIMS)
        * asic.clock_hz
        / int(np.prod(CALIBRATION_LOCAL_SHAPE))
    )

    a = np.zeros((2, 2))
    b = np.zeros(2)
    for i, (op, target) in enumerate(sorted(CALIBRATION_TARGETS.items())):
        fixed, coeff_cpw, coeff_c0, flops = row(op)
        target_cycles = flops / (asic.flops_per_cycle * target)
        a[i] = [coeff_cpw, coeff_c0]
        b[i] = target_cycles - fixed - gsum
    cpw, c0 = np.linalg.solve(a, b)
    if cpw <= 0 or c0 <= 0:
        raise ConfigError(
            f"calibration produced non-physical constants cpw={cpw}, c0={c0}"
        )
    return Calibration(float(cpw), float(c0))
