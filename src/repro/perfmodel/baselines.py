"""Baseline machines the paper positions QCDOC against.

* **QCDSP** (paper section 1): the predecessor — 4-dimensional mesh of
  DSPs, 1 Teraflops peak from ~20,000 x 50 Mflops nodes, Gordon Bell 1998
  price/performance winner at **$10 per sustained Megaflops**.
* **Commodity cluster** (paper sections 1-2): fast nodes on a commodity
  network; "one cannot achieve the required low-latency communications
  with commodity hardware", so hard scaling stalls when per-node work
  shrinks.  Parameters are 2004-era: ~GHz-class node with GigE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.latency import ClusterNetwork
from repro.util.units import US


@dataclass(frozen=True)
class BaselineMachine:
    """Coarse per-node model of a comparison machine."""

    name: str
    node_peak_flops: float
    #: sustained fraction of peak on the Dirac kernel when compute-bound
    compute_efficiency: float
    network: ClusterNetwork
    dollars_per_node: float

    def node_sustained(self) -> float:
        return self.node_peak_flops * self.compute_efficiency


#: QCDSP node: 50 Mflops DSP; its custom 4D mesh had serial links too, so
#: give it QCDOC-class startup latency but a 4x narrower network and the
#: measured ~$10/sustained-Mflops economics (20k nodes, $5M-class machine).
QCDSP = BaselineMachine(
    name="QCDSP",
    node_peak_flops=50e6,
    compute_efficiency=0.20,  # ~0.2 x 50 MF x 20k nodes = 0.2 TF sustained
    network=ClusterNetwork(
        name="qcdsp-4d-mesh", startup_latency=1.2 * US, bandwidth=12.5e6, concurrent_links=8
    ),
    dollars_per_node=100.0,  # $10/MF x 10 MF sustained per node
)

#: A 2004 commodity cluster node: ~3 GHz P4-class CPU with SSE2 (2 flops
#: per cycle usable on this kernel), GigE NIC, ~$2000 per node with switch
#: amortisation.
CLUSTER_2004 = BaselineMachine(
    name="cluster-2004",
    node_peak_flops=6e9,
    compute_efficiency=0.18,  # memory-bound Dirac kernel on DDR-era PCs
    network=ClusterNetwork(),
    dollars_per_node=2000.0,
)
