"""Analytic global-operation costs (experiment E5).

Wraps the hop formulas of :mod:`repro.machine.globalops` with the
cut-through timing model, for machine sizes the functional simulator cannot
reach (the paper's 8,192-node ``32^3 x 64`` target machine, the 12,288-node
production machines).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.machine.asic import ASICConfig
from repro.machine.globalops import broadcast_hops, sum_hops


def global_sum_time(
    machine_dims: Sequence[int],
    nwords: int = 1,
    doubled: bool = True,
    asic: Optional[ASICConfig] = None,
) -> float:
    """Seconds for a dimension-sequenced global sum.

    Per axis: one word serialisation to enter the ring, one 8-bit
    pass-through per hop, plus pipelined streaming of the remaining words.
    """
    asic = asic if asic is not None else ASICConfig()
    t = 0.0
    t_word = asic.word_serialisation_time
    for d in machine_dims:
        if d <= 1:
            continue
        hops = (d // 2) if doubled else (d - 1)
        t += t_word + hops * asic.passthrough_latency + (nwords - 1) * t_word
    return t


def broadcast_time(
    machine_dims: Sequence[int],
    nwords: int = 1,
    doubled: bool = True,
    asic: Optional[ASICConfig] = None,
) -> float:
    """Seconds for a root broadcast (same wavefront structure as the sum)."""
    return global_sum_time(machine_dims, nwords, doubled, asic)


def ethernet_allreduce_time(
    n_nodes: int,
    nwords: int = 1,
    latency: float = 7.5e-6,
    bandwidth: float = 100e6 / 8,
) -> float:
    """Baseline: a binary-tree allreduce over commodity Ethernet.

    ``2 * log2(N)`` stages (reduce + broadcast), each paying the kernel/NIC
    latency the paper cites as "5-10 us just to begin a transfer".
    """
    import math

    stages = 2 * max(1, math.ceil(math.log2(max(2, n_nodes))))
    per_stage = latency + (nwords * 8) / bandwidth
    return stages * per_stage
