"""The six-dimensional torus and its software partitioning.

Paper section 2.2: "While QCD has four- and five-dimensional formulations,
we chose to make the mesh network six dimensional, so we can make
lower-dimensional partitions of the machine in software, without moving
cables."  This module implements exactly that: a physical 6-torus of nodes,
sub-box allocation, and *axis folding* — embedding a lower-dimensional
logical torus into a group of physical axes with a serpentine (boustrophedon)
walk so that **every logical nearest-neighbour pair is a physical
nearest-neighbour pair**.  That adjacency-preservation is the property the
whole machine concept rests on, and it is asserted by tests and audited by
:meth:`Partition.adjacency_audit`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.lattice.geometry import LatticeGeometry
from repro.util.errors import ConfigError

#: number of mesh dimensions in the physical machine
MACHINE_NDIM = 6


class TorusTopology:
    """A periodic mesh of nodes (six-dimensional for real QCDOC hardware).

    Thin wrapper over :class:`LatticeGeometry` — the machine mesh *is* a
    lattice of nodes — adding link enumeration: direction ``d`` has index
    ``2*axis + (0 if forward else 1)``, 12 directions for a 6-torus.
    """

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in dims):
            raise ConfigError(f"bad machine dims {dims}")
        self.dims = dims
        self.ndim = len(dims)
        self.geometry = LatticeGeometry(dims)
        self.n_nodes = self.geometry.volume
        #: 2 links out + 2 in per axis
        self.n_directions = 2 * self.ndim

    def direction(self, axis: int, sign: int) -> int:
        """Direction code for ``(axis, +-1)``."""
        if not 0 <= axis < self.ndim:
            raise ConfigError(f"axis {axis} out of range")
        return 2 * axis + (0 if sign > 0 else 1)

    def direction_axis_sign(self, direction: int) -> Tuple[int, int]:
        return direction // 2, (+1 if direction % 2 == 0 else -1)

    def opposite(self, direction: int) -> int:
        """The direction a packet arrives on at the receiving node."""
        return direction ^ 1

    def neighbour(self, node: int, axis: int, sign: int) -> int:
        table = (
            self.geometry.neighbour_fwd(axis)
            if sign > 0
            else self.geometry.neighbour_bwd(axis)
        )
        return int(table[node])

    def neighbour_by_direction(self, node: int, direction: int) -> int:
        axis, sign = self.direction_axis_sign(direction)
        return self.neighbour(node, axis, sign)

    def coord(self, node: int) -> Tuple[int, ...]:
        return self.geometry.coord(node)

    def node(self, coord: Sequence[int]) -> int:
        return self.geometry.index(coord)

    def links(self) -> List[Tuple[int, int, int]]:
        """All unidirectional links as ``(src_node, direction, dst_node)``.

        A size-1 axis has no links (a node is not wired to itself).
        """
        out = []
        for node in range(self.n_nodes):
            for axis in range(self.ndim):
                if self.dims[axis] == 1:
                    continue
                for sign in (+1, -1):
                    out.append(
                        (node, self.direction(axis, sign), self.neighbour(node, axis, sign))
                    )
        return out

    def hop_distance(self, a: int, b: int) -> int:
        """Minimal torus (Lee) distance between two nodes."""
        ca, cb = np.asarray(self.coord(a)), np.asarray(self.coord(b))
        delta = np.abs(ca - cb)
        wrap = np.asarray(self.dims) - delta
        return int(np.minimum(delta, wrap).sum())

    def __repr__(self) -> str:
        return f"TorusTopology({'x'.join(map(str, self.dims))}, {self.n_nodes} nodes)"


def snake_cycle(shape: Sequence[int]) -> np.ndarray:
    """A Hamiltonian serpentine walk through a multi-axis box.

    Returns ``(prod(shape), len(shape))`` coordinates such that consecutive
    entries differ by exactly one step in one axis.  If the *first* axis has
    even extent (or the walk is one-dimensional) the walk closes into a
    Hamiltonian **cycle** on the torus — the last entry is one periodic hop
    from the first — so a folded axis keeps torus wraparound.

    QCDOC machine dimensions are powers of two, so the even-extent condition
    always holds in practice; :func:`fold_axes` checks it when the logical
    axis must be periodic.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        raise ConfigError("cannot snake an empty shape")
    if len(shape) == 1:
        return np.arange(shape[0], dtype=np.int64)[:, None]
    tail = snake_cycle(shape[1:])
    n_tail = tail.shape[0]
    rows = []
    for i in range(shape[0]):
        order = tail if i % 2 == 0 else tail[::-1]
        block = np.empty((n_tail, len(shape)), dtype=np.int64)
        block[:, 0] = i
        block[:, 1:] = order
        rows.append(block)
    return np.concatenate(rows, axis=0)


def snake_is_cyclic(shape: Sequence[int]) -> bool:
    """True when :func:`snake_cycle` closes into a torus cycle."""
    shape = tuple(shape)
    return len(shape) == 1 or shape[0] % 2 == 0 or np.prod(shape[1:]) == 1


def fold_axes(
    dims: Sequence[int],
    groups: Sequence[Sequence[int]],
    require_periodic: bool = True,
) -> "AxisFolding":
    """Fold the physical axes listed in each group into one logical axis.

    ``groups`` partitions a subset of ``range(len(dims))``; each group
    becomes one logical axis of extent ``prod(dims[g] for g in group)``.
    Axes not mentioned must have extent 1 (fully collapsed by allocation).
    """
    dims = tuple(int(d) for d in dims)
    used = [a for g in groups for a in g]
    if len(used) != len(set(used)):
        raise ConfigError(f"axis appears in two groups: {groups}")
    for a in used:
        if not 0 <= a < len(dims):
            raise ConfigError(f"group axis {a} out of range for dims {dims}")
    for a in range(len(dims)):
        if a not in used and dims[a] != 1:
            raise ConfigError(
                f"physical axis {a} (extent {dims[a]}) is neither folded nor trivial"
            )
    return AxisFolding(dims, [tuple(g) for g in groups], require_periodic)


class AxisFolding:
    """Mapping logical torus coordinates -> physical mesh coordinates."""

    def __init__(
        self,
        dims: Tuple[int, ...],
        groups: List[Tuple[int, ...]],
        require_periodic: bool,
    ):
        self.dims = dims
        self.groups = groups
        self.logical_dims = tuple(
            int(np.prod([dims[a] for a in g])) for g in groups
        )
        self._walks: List[np.ndarray] = []
        self.periodic: List[bool] = []
        for g, extent in zip(groups, self.logical_dims):
            gshape = tuple(dims[a] for a in g)
            cyclic = snake_is_cyclic(gshape)
            if require_periodic and not cyclic:
                raise ConfigError(
                    f"group {g} with shape {gshape} cannot close a torus cycle "
                    "(leading extent must be even); pass require_periodic=False "
                    "for an open (mesh) logical axis"
                )
            self._walks.append(snake_cycle(gshape))
            self.periodic.append(cyclic)

    @property
    def logical_ndim(self) -> int:
        return len(self.groups)

    def to_physical(self, logical: Sequence[int]) -> Tuple[int, ...]:
        """Physical mesh coordinate of a logical torus coordinate."""
        if len(logical) != self.logical_ndim:
            raise ConfigError(
                f"logical coord {logical} has wrong dimension {self.logical_ndim}"
            )
        phys = [0] * len(self.dims)
        for g, walk, extent, coord in zip(
            self.groups, self._walks, self.logical_dims, logical
        ):
            step = walk[int(coord) % extent]
            for axis, value in zip(g, step):
                phys[axis] = int(value)
        return tuple(phys)

    def table(self) -> np.ndarray:
        """``(n_logical_nodes, physical_ndim)`` coordinate table in logical
        lexicographic order (last logical axis fastest)."""
        logical_geom = LatticeGeometry(self.logical_dims)
        out = np.empty((logical_geom.volume, len(self.dims)), dtype=np.int64)
        for i in range(logical_geom.volume):
            out[i] = self.to_physical(logical_geom.coord(i))
        return out


class Partition:
    """A logical machine carved out of the physical torus in software.

    Combines a sub-box allocation (origin + extents within the physical
    mesh) with an :class:`AxisFolding` of the box's axes down to the
    requested logical dimensionality.  This is what the qdaemon hands a
    user job (paper section 3.1: "a user requests that the qdaemon remap
    their partition to a dimensionality between one and six").
    """

    def __init__(
        self,
        topology: TorusTopology,
        origin: Sequence[int],
        extents: Sequence[int],
        groups: Sequence[Sequence[int]],
        require_periodic: bool = True,
    ):
        origin = tuple(int(o) for o in origin)
        extents = tuple(int(e) for e in extents)
        if len(origin) != topology.ndim or len(extents) != topology.ndim:
            raise ConfigError("origin/extents must match machine dimensionality")
        for o, e, d in zip(origin, extents, topology.dims):
            if e < 1 or o < 0 or o + e > d:
                raise ConfigError(
                    f"allocation origin={origin} extents={extents} exceeds dims "
                    f"{topology.dims}"
                )
        # A truncated axis (0 < extent < full) loses its wrap cable, so a
        # periodic logical axis cannot fold it unless the fold is cyclic
        # within the box... it cannot be: the wrap link is absent.  Treat
        # truncated axes as non-periodic contributors.
        self.topology = topology
        self.origin = origin
        self.extents = extents
        self.full_axis = tuple(
            e == d for e, d in zip(extents, topology.dims)
        )
        for g in groups:
            if require_periodic:
                for a in g:
                    if not self.full_axis[a] and extents[a] > 1:
                        raise ConfigError(
                            f"axis {a} is truncated ({extents[a]} of "
                            f"{topology.dims[a]}): no wrap cable, so a periodic "
                            "logical axis cannot use it; allocate the full axis "
                            "or pass require_periodic=False"
                        )
        self.folding = fold_axes(extents, groups, require_periodic)
        self.logical_dims = self.folding.logical_dims
        self.logical_geometry = LatticeGeometry(self.logical_dims)
        self.n_nodes = self.logical_geometry.volume

        offsets = self.folding.table() + np.asarray(origin)
        self._phys_node = np.array(
            [topology.node(c) for c in offsets], dtype=np.int64
        )

    def physical_node(self, rank: int) -> int:
        """Physical node id of logical rank (lexicographic logical order)."""
        return int(self._phys_node[rank])

    def rank_of_physical(self, node: int) -> int:
        where = np.nonzero(self._phys_node == node)[0]
        if len(where) == 0:
            raise ConfigError(f"physical node {node} not in partition")
        return int(where[0])

    def logical_coord(self, rank: int) -> Tuple[int, ...]:
        return self.logical_geometry.coord(rank)

    def logical_neighbour(self, rank: int, axis: int, sign: int) -> int:
        table = (
            self.logical_geometry.neighbour_fwd(axis)
            if sign > 0
            else self.logical_geometry.neighbour_bwd(axis)
        )
        return int(table[rank])

    def _canonical_step(self, node_a: int, node_b: int) -> int:
        """The canonical physical direction of the one-hop step a -> b.

        On extent-2 axes both cables connect the same node pair, so sender
        and receiver must agree on *which* one a given logical hop uses;
        the canonical choice is the forward cable (delta == +1 mod d).
        """
        ca, cb = self.topology.coord(node_a), self.topology.coord(node_b)
        diffs = []
        for ax, (x, y, d) in enumerate(zip(ca, cb, self.topology.dims)):
            if x == y:
                continue
            delta = (y - x) % d
            if delta == 1:
                diffs.append((ax, +1))
            elif delta == d - 1:
                diffs.append((ax, -1))
            else:
                raise ConfigError(
                    f"nodes {node_a} and {node_b} are "
                    f"{self.topology.hop_distance(node_a, node_b)} physical hops apart"
                )
        if len(diffs) != 1:
            raise ConfigError(
                f"nodes {node_a} and {node_b} differ in {len(diffs)} physical axes"
            )
        ax, s = diffs[0]
        return self.topology.direction(ax, s)

    def physical_direction(self, rank: int, axis: int, sign: int) -> int:
        """The physical link direction serving one logical hop of this rank.

        For ``sign=+1``: the direction this rank *sends on* to reach its
        forward neighbour.  For ``sign=-1``: the direction the backward
        neighbour's traffic *arrives on* (i.e. the port to post receives
        on, and the wire carrying our acks back).  The two are opposite
        ends of the same cable, so sender and receiver always agree —
        including on extent-2 axes where both cables join the same pair.

        Raises :class:`ConfigError` if the pair is not physically adjacent
        (which the folding guarantees against for periodic-valid folds).
        """
        me = self.physical_node(rank)
        if sign > 0:
            fwd = self.physical_node(self.logical_neighbour(rank, axis, +1))
            return self._canonical_step(me, fwd)
        bwd = self.physical_node(self.logical_neighbour(rank, axis, -1))
        return self.topology.opposite(self._canonical_step(bwd, me))

    def adjacency_audit(self) -> int:
        """Verify every logical nearest-neighbour pair is one physical hop.

        Returns the number of pairs checked.  This is the machine-level
        guarantee behind "partitions without moving cables".
        """
        checked = 0
        for rank in range(self.n_nodes):
            for axis in range(len(self.logical_dims)):
                if self.logical_dims[axis] == 1:
                    continue
                for sign in (+1, -1):
                    self.physical_direction(rank, axis, sign)
                    checked += 1
        return checked

    def __repr__(self) -> str:
        return (
            f"Partition(logical {'x'.join(map(str, self.logical_dims))} "
            f"of {self.topology!r})"
        )
