"""Global sums and broadcasts through the SCU pass-through mode.

Paper section 2.2, "Global operations": in global mode an SCU routes words
arriving on one link out of any combination of the other links *and* into
local memory, forwarding after only 8 of the 64 bits have arrived
(cut-through), "markedly reducing the latency".  A d-dimensional global sum
runs one ring phase per machine axis — after the x phase every node with
equal (y,z,t) holds the same x-summed data — costing ``N_x - 1`` hops per
axis, i.e. ``Nx+Ny+Nz+Nt-4`` total, or **half** that when the doubled mode
(two disjoint link sets, both ring directions) is used.

Determinism: every node accumulates contributions in canonical logical-rank
order, so all nodes compute *bitwise identical* sums — the property behind
the paper's bit-exact re-run of a five-day evolution (section 4), and the
reason a parallel CG residual is identical on every node.

The engine below moves real data between node buffers and charges the
cut-through timing model; per-word link occupancy of the underlying
:class:`SerialLink` objects is not simulated in global mode (the SCUs are
switched out of normal send/receive mode on real hardware too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.asic import ASICConfig
from repro.sim.core import Event, Simulator
from repro.sim.trace import Trace
from repro.util.errors import ConfigError, MachineError


def sum_hops(dims: Sequence[int], doubled: bool = False) -> int:
    """Ring hops for a dimension-sequenced global sum.

    Single mode: ``sum(N_a - 1)`` — the paper's ``Nx+Ny+Nz+Nt-4`` for 4
    axes.  Doubled mode (two disjoint link sets): ``sum(N_a // 2)``.
    """
    if doubled:
        return sum(d // 2 for d in dims if d > 1)
    return sum(d - 1 for d in dims if d > 1)


def broadcast_hops(dims: Sequence[int], doubled: bool = False) -> int:
    """Hops for a root broadcast: the wavefront crosses each axis once."""
    if doubled:
        return sum(d // 2 for d in dims if d > 1)
    return sum(d - 1 for d in dims if d > 1)


@dataclass
class CollectiveStats:
    """Timing/count record for one global operation."""

    kind: str
    nwords: int
    hops: int
    duration: float
    doubled: bool


class GlobalOpsEngine:
    """Coordinates global sums/broadcasts for one logical partition.

    Node programs call :meth:`contribute_sum`; once every rank has
    contributed, all waiting events complete simultaneously at
    ``t_start_of_last_contribution + reduction_time`` with the identical
    summed array.
    """

    def __init__(
        self,
        sim: Simulator,
        asic: ASICConfig,
        logical_dims: Sequence[int],
        doubled: bool = True,
        trace: Optional[Trace] = None,
    ):
        self.sim = sim
        self.asic = asic
        self.logical_dims = tuple(int(d) for d in logical_dims)
        self.n_ranks = int(np.prod(self.logical_dims))
        self.doubled = doubled
        self.trace = trace
        self.history: List[CollectiveStats] = []
        self._round: Dict[int, np.ndarray] = {}
        self._waiters: Dict[int, Event] = {}
        self._generation = 0

    # -- timing model -----------------------------------------------------------
    def reduction_time(self, nwords: int, doubled: Optional[bool] = None) -> float:
        """Cut-through dimension-sequenced ring-sum latency for ``nwords``.

        Per axis phase: one full word serialisation to get onto the wire,
        then one pass-through latency per hop (only 8 bits held per node),
        plus pipelined streaming of the remaining words.
        """
        doubled = self.doubled if doubled is None else doubled
        t_word = self.asic.word_serialisation_time
        t = 0.0
        for d in self.logical_dims:
            if d <= 1:
                continue
            hops = (d // 2) if doubled else (d - 1)
            t += t_word + hops * self.asic.passthrough_latency
            t += (nwords - 1) * t_word
        return t

    def broadcast_time(self, nwords: int, doubled: Optional[bool] = None) -> float:
        return self.reduction_time(nwords, doubled)

    @property
    def hops(self) -> int:
        return sum_hops(self.logical_dims, self.doubled)

    # -- functional collectives --------------------------------------------------
    def contribute_sum(self, rank: int, values: np.ndarray) -> Event:
        """Contribute this rank's addend; event yields the global sum."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank {rank} out of range ({self.n_ranks} ranks)")
        if rank in self._round:
            raise MachineError(
                f"rank {rank} contributed twice to global sum generation "
                f"{self._generation}"
            )
        arr = np.ascontiguousarray(values)
        first = next(iter(self._round.values()), None)
        if first is not None and first.shape != arr.shape:
            raise MachineError(
                f"global-sum shape mismatch: {arr.shape} vs {first.shape}"
            )
        if first is not None and first.dtype != arr.dtype:
            # A silent dtype promotion here (e.g. one rank contributing
            # float32 into a float64 reduction) would change the canonical
            # accumulation bit pattern on *every* rank — reject it loudly.
            raise MachineError(
                f"global-sum dtype mismatch: {arr.dtype} vs {first.dtype}"
            )
        self._round[rank] = arr
        ev = self.sim.event()
        self._waiters[rank] = ev
        if len(self._round) == self.n_ranks:
            self._complete()
        return ev

    def _complete(self) -> None:
        # Canonical accumulation order: logical rank 0, 1, 2, ... —
        # identical on every node, hence bitwise-reproducible results.
        ranks = sorted(self._round)
        total = self._round[ranks[0]].copy()
        for r in ranks[1:]:
            total = total + self._round[r]
        nwords = int(np.asarray(total, dtype=np.complex128).view(np.float64).size) \
            if np.iscomplexobj(total) else int(total.size)
        duration = self.reduction_time(max(1, nwords))
        self.history.append(
            CollectiveStats("sum", nwords, self.hops, duration, self.doubled)
        )
        waiters = self._waiters
        self._round = {}
        self._waiters = {}
        self._generation += 1

        trace, hops = self.trace, self.hops

        def finish():
            if trace is not None:
                trace.emit(
                    "gsum.complete", nwords=nwords, hops=hops, dur=duration
                )
            for ev in waiters.values():
                ev.succeed(total.copy())

        self.sim.schedule(duration, finish)

    def broadcast(self, root_value: np.ndarray) -> Tuple[np.ndarray, CollectiveStats]:
        """Broadcast (immediate-value form used by host/boot paths)."""
        arr = np.ascontiguousarray(root_value)
        nwords = int(arr.size)
        stats = CollectiveStats(
            "broadcast",
            nwords,
            broadcast_hops(self.logical_dims, self.doubled),
            self.broadcast_time(max(1, nwords)),
            self.doubled,
        )
        self.history.append(stats)
        return arr.copy(), stats


class ShardedGlobalOps(GlobalOpsEngine):
    """The global-sum engine on a sharded simulator.

    The single-heap engine completes a round inside the *last*
    ``contribute_sum`` call — whose identity depends on cross-node event
    interleaving, which windowed sharding permutes.  Here contributions
    travel as barrier notifications to the window coordinator, which
    completes a round when all ranks are present and schedules every
    waiter at the **absolute** time ``max(contribution times) +
    reduction_time`` — an order-independent rendezvous.  On the
    single-heap engine contributions already execute in global time
    order, so the last call *is* the max: both engines complete rounds
    at bitwise-identical times with bitwise-identical canonical
    rank-order sums.

    Safety under conservative windows: ``reduction_time(1) >=
    word_serialisation_time`` (144 ns at 500 MHz), which exceeds the
    26 ns lookahead — a completion posted at the barrier always lands
    beyond the next window's start.

    The same message protocol serves both executors: under fork, each
    rank's waiter event lives in the contributing worker
    (``router.gsum_waiters``), contributions reach the parent
    coordinator as pipe notifications, and completions return as data
    posts decoded against the pre-fork engine registry.
    """

    def __init__(
        self,
        sim,
        asic: ASICConfig,
        logical_dims: Sequence[int],
        doubled: bool = True,
        trace: Optional[Trace] = None,
    ):
        super().__init__(sim, asic, logical_dims, doubled=doubled, trace=trace)
        self.router = sim.router
        self.engine_id = self.router.register_engine(self)
        self.router.note_handlers.setdefault("gsum", _dispatch_gsum_note(self.router))
        #: per-rank round counter on the contributing side (worker-local
        #: under fork: each rank contributes its rounds in order)
        self._local_gen: Dict[int, int] = {}
        #: coordinator: per-rank arrival counter + open rounds
        self._coord_gen: Dict[int, int] = {}
        self._rounds: Dict[int, Dict[int, Tuple[float, np.ndarray, int]]] = {}
        self._completed_gen = 0

    # -- contributing (lane) side ------------------------------------------
    def contribute_sum(self, rank: int, values: np.ndarray) -> Event:
        """Contribute this rank's addend; event yields the global sum."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank {rank} out of range ({self.n_ranks} ranks)")
        arr = np.ascontiguousarray(values)
        gen = self._local_gen.get(rank, 0)
        self._local_gen[rank] = gen + 1
        ev = self.sim.event()
        self.router.gsum_waiters[(self.engine_id, gen, rank)] = ev
        self.router.notify(
            "gsum", engine=self.engine_id, rank=rank, t=self.sim.now, values=arr
        )
        return ev

    def _finish_rank(self, key: Tuple[int, int, int], value: np.ndarray,
                     emit: Optional[dict]) -> None:
        """Deliver one rank's completed sum (runs on the waiter's lane at
        the rendezvous time; decoded by the router from a barrier post)."""
        ev = self.router.gsum_waiters.pop(key)
        if emit is not None and self.trace is not None:
            self.trace.emit(
                "gsum.complete",
                nwords=emit["nwords"],
                hops=emit["hops"],
                dur=emit["dur"],
            )
        ev.succeed(value)

    # -- coordinator (barrier) side ----------------------------------------
    def _coordinator_note(self, note) -> None:
        data = note.data
        rank = data["rank"]
        gen = self._coord_gen.get(rank, 0)
        self._coord_gen[rank] = gen + 1
        self._rounds.setdefault(gen, {})[rank] = (
            data["t"],
            data["values"],
            note.src_shard,
        )
        self._try_complete()

    def _try_complete(self) -> None:
        while True:
            round_ = self._rounds.get(self._completed_gen)
            if round_ is None or len(round_) < self.n_ranks:
                return
            gen = self._completed_gen
            del self._rounds[gen]
            self._completed_gen += 1
            ranks = sorted(round_)
            _t0, first, _s0 = round_[ranks[0]]
            for r in ranks[1:]:
                arr = round_[r][1]
                if arr.shape != first.shape:
                    raise MachineError(
                        f"global-sum shape mismatch: {arr.shape} vs {first.shape}"
                    )
                if arr.dtype != first.dtype:
                    raise MachineError(
                        f"global-sum dtype mismatch: {arr.dtype} vs {first.dtype}"
                    )
            # Canonical accumulation order: logical rank 0, 1, 2, ... —
            # independent of the shard interleaving the contributions
            # arrived in, hence bitwise identical to the single heap.
            total = first.copy()
            for r in ranks[1:]:
                total = total + round_[r][1]
            nwords = int(
                np.asarray(total, dtype=np.complex128).view(np.float64).size
            ) if np.iscomplexobj(total) else int(total.size)
            duration = self.reduction_time(max(1, nwords))
            t_complete = max(t for t, _v, _s in round_.values()) + duration
            self.history.append(
                CollectiveStats("sum", nwords, self.hops, duration, self.doubled)
            )
            for i, r in enumerate(ranks):
                src_shard = round_[r][2]
                emit = (
                    {"nwords": nwords, "hops": self.hops, "dur": duration}
                    if i == 0
                    else None
                )
                self.router.coordinator_post(
                    "gsum",
                    src_shard,
                    t_complete,
                    (self.engine_id, gen, r),
                    (total.copy(), emit),
                )


def _dispatch_gsum_note(router):
    """The coordinator's ``"gsum"`` handler: route to the engine by id."""

    def handle(note) -> None:
        router.engines[note.data["engine"]]._coordinator_note(note)

    return handle
