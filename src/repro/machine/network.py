"""Wiring the torus: one SerialLink per (node, direction), fault injection,
and the end-of-run checksum audit.

"Only a two-dimensional slice of the SCU network can be easily
represented" (paper figure 2) — here the full six-dimensional wiring is a
dictionary keyed by ``(node, direction)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.asic import ASICConfig
from repro.machine.hssl import TRAINING_BYTES, SerialLink
from repro.machine.node import Node
from repro.machine.packets import Frame
from repro.machine.topology import TorusTopology
from repro.sim.core import Event, Simulator
from repro.sim.trace import Trace
from repro.util.errors import ConfigError


class MeshNetwork:
    """All physical links of the machine, attached to the nodes' SCUs."""

    def __init__(
        self,
        sim: Simulator,
        asic: ASICConfig,
        topology: TorusTopology,
        nodes: Dict[int, Node],
        trace: Optional[Trace] = None,
        error_rng: Optional[np.random.Generator] = None,
        bit_error_rate: float = 0.0,
    ):
        self.sim = sim
        self.asic = asic
        self.topology = topology
        self.nodes = nodes
        self.links: Dict[Tuple[int, int], SerialLink] = {}
        for src, direction, dst in topology.links():
            link = SerialLink(
                sim,
                asic,
                name=f"n{src}.d{direction}->n{dst}",
                trace=trace,
                error_rng=error_rng,
                bit_error_rate=bit_error_rate,
            )
            arrival = topology.opposite(direction)
            link.set_receiver(self._make_receiver(dst, arrival))
            nodes[src].scu.attach_link(direction, link)
            # Replay delivery path: the sender's SCU can hand a compiled
            # hot-epoch payload straight to the neighbour's engine (only
            # ever used when the pair's links are same-shard, so both SCU
            # objects are authoritative in this process).
            nodes[src].scu.attach_peer(direction, nodes[dst].scu, arrival)
            self.links[(src, direction)] = link

    def _make_receiver(self, dst: int, arrival_direction: int):
        scu = self.nodes[dst].scu

        def deliver(frame: Frame) -> None:
            scu.on_frame(arrival_direction, frame)

        return deliver

    # -- sharding ------------------------------------------------------------
    def bind_shards(self, router, shard_of) -> None:
        """Wire the mesh into a sharded simulator's cross-shard router.

        Every link registers under its ``(src, direction)`` key (the
        fork executor resolves posted frames by key on the target side);
        links whose endpoints live on different shards get their
        deliveries routed through the window barrier.  Each
        ``SerialLink`` is written only by its source node's units (ACK/
        RESEND control frames travel on the *receiver's own* out-link),
        so source-shard ownership partitions all link state cleanly.
        """
        for (src, direction), link in sorted(self.links.items()):
            router.register_link((src, direction), link)
            dst = self.topology.neighbour_by_direction(src, direction)
            dst_shard = shard_of(dst)
            if shard_of(src) != dst_shard:
                link.cross_shard = (router, dst_shard, (src, direction))

    # -- bring-up ------------------------------------------------------------
    def train_all(self, batched: bool = False) -> Event:
        """Train every *live* HSSL link; the returned event completes when
        all are usable (they train concurrently, as after power-on).

        Links already known dead are skipped: a dead cable's training event
        never fires, so including one would hang bring-up forever — the
        daemon quarantines bad cables before calling this.

        ``batched=True`` collapses the concurrent per-link training
        events (plus the AllOf callback per link) into a *single* event
        marking every live link trained at the common completion time —
        identical observables (``trained`` flags, ``link.trained`` trace
        records and times), O(1) instead of O(3·links) heap traffic.
        The sharded machine boots this way; a 12,288-node mesh has
        ~147k links.
        """
        if not batched:
            events = [link.train() for link in self.links.values() if link.alive]
            return self.sim.all_of(events)
        done = self.sim.event()
        keys = sorted(k for k, link in self.links.items() if link.alive)
        t_train = TRAINING_BYTES * 8 / self.asic.clock_hz

        def finish_all():
            for key in keys:
                link = self.links[key]
                if not link.alive:
                    continue  # died while training
                link.trained = True
                if link.trace is not None:
                    link.trace.emit("link.trained", link=link.name)
            done.succeed()

        self.sim.schedule(t_train, finish_all)
        return done

    # -- permanent faults ------------------------------------------------------
    def fail_link(self, src: int, direction: int, mode: str = "dead") -> None:
        """Permanently fail the unidirectional cable ``(src, direction)``.

        ``mode`` is ``"dead"`` (nothing delivered) or ``"stuck"`` (every
        payload frame corrupt).  A physical QCDOC cable carries one
        direction of traffic per wire, so a single-wire fault is exactly
        one ``(node, direction)`` entry here; killing both directions of a
        neighbour pair takes two calls (or :meth:`fail_node`).
        """
        key = (src, direction)
        if key not in self.links:
            raise ConfigError(f"no link at node {src} direction {direction}")
        self.links[key].fail(mode=mode)

    def fail_node(self, node: int) -> None:
        """Permanently kill a node: every cable touching it goes dead.

        Both the node's outbound wires and its neighbours' wires *into* it
        are cut — frames in either direction vanish, which is how a powered
        -off daughterboard presents to the rest of the mesh.
        """
        if node not in self.nodes:
            raise ConfigError(f"no node {node} in the mesh")
        for direction in range(self.topology.n_directions):
            if (node, direction) not in self.links:
                continue  # axis of extent 1: no cable on this direction
            # outbound wire from the dead node
            self.links[(node, direction)].fail(mode="dead")
            # the neighbour's wire back into the dead node
            neighbour = self.topology.neighbour_by_direction(node, direction)
            back = self.topology.opposite(direction)
            self.links[(neighbour, back)].fail(mode="dead")

    def link_ok(self, src: int, direction: int) -> bool:
        """True when the cable ``(src, direction)`` is usable for data."""
        return self.links[(src, direction)].healthy

    def dead_links(self) -> List[Tuple[int, int]]:
        """Sorted ``(node, direction)`` keys of unusable cables."""
        return sorted(k for k, l in self.links.items() if not l.healthy)

    def dead_nodes(self) -> List[int]:
        """Nodes with *every* attached cable (in and out) unusable.

        This is the network's-eye view of a dead node; the daemon overlays
        it with boot/RPC health to form the full failed-node registry.
        """
        out = []
        for node in sorted(self.nodes):
            attached = [
                self.links[(node, d)]
                for d in range(self.topology.n_directions)
                if (node, d) in self.links
            ]
            if attached and all(not l.healthy for l in attached):
                out.append(node)
        return out

    @property
    def n_links(self) -> int:
        return len(self.links)

    # -- fault statistics ------------------------------------------------------
    def total_faults_injected(self) -> int:
        return sum(link.faults_injected for link in self.links.values())

    def total_frames_sent(self) -> int:
        return sum(link.frames_sent for link in self.links.values())

    def total_bits_sent(self) -> int:
        return sum(link.bits_sent for link in self.links.values())

    def total_busy_seconds(self) -> float:
        """Sum of per-link wire-busy time (for utilisation metrics)."""
        return sum(link.busy_seconds for link in self.links.values())

    def active_links(self) -> List[Tuple[Tuple[int, int], SerialLink]]:
        """Links that carried at least one frame, with their keys."""
        return [(k, l) for k, l in self.links.items() if l.frames_sent > 0]

    # -- the end-of-run confirmation (paper section 2.2) -------------------------
    def audit_checksums(self) -> List[str]:
        """Compare each link's send-side and receive-side checksums.

        Returns a list of human-readable mismatch descriptions (empty on a
        clean run).  "At the conclusion of a calculation, these checksums
        can be compared.  This offers a final confirmation that no erroneous
        data was exchanged."
        """
        mismatches = []
        for (src, direction), _link in self.links.items():
            dst = self.topology.neighbour_by_direction(src, direction)
            arrival = self.topology.opposite(direction)
            send_cs = self.nodes[src].scu.send_units[direction].checksum
            recv_cs = self.nodes[dst].scu.recv_units[arrival].checksum
            if not send_cs.matches(recv_cs):
                mismatches.append(
                    f"link n{src}.d{direction}->n{dst}: sent {send_cs!r} "
                    f"!= received {recv_cs!r}"
                )
        return mismatches
