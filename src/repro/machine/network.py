"""Wiring the torus: one SerialLink per (node, direction), fault injection,
and the end-of-run checksum audit.

"Only a two-dimensional slice of the SCU network can be easily
represented" (paper figure 2) — here the full six-dimensional wiring is a
dictionary keyed by ``(node, direction)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.asic import ASICConfig
from repro.machine.hssl import SerialLink
from repro.machine.node import Node
from repro.machine.packets import Frame
from repro.machine.topology import TorusTopology
from repro.sim.core import Event, Simulator
from repro.sim.trace import Trace


class MeshNetwork:
    """All physical links of the machine, attached to the nodes' SCUs."""

    def __init__(
        self,
        sim: Simulator,
        asic: ASICConfig,
        topology: TorusTopology,
        nodes: Dict[int, Node],
        trace: Optional[Trace] = None,
        error_rng: Optional[np.random.Generator] = None,
        bit_error_rate: float = 0.0,
    ):
        self.sim = sim
        self.asic = asic
        self.topology = topology
        self.nodes = nodes
        self.links: Dict[Tuple[int, int], SerialLink] = {}
        for src, direction, dst in topology.links():
            link = SerialLink(
                sim,
                asic,
                name=f"n{src}.d{direction}->n{dst}",
                trace=trace,
                error_rng=error_rng,
                bit_error_rate=bit_error_rate,
            )
            arrival = topology.opposite(direction)
            link.set_receiver(self._make_receiver(dst, arrival))
            nodes[src].scu.attach_link(direction, link)
            self.links[(src, direction)] = link

    def _make_receiver(self, dst: int, arrival_direction: int):
        scu = self.nodes[dst].scu

        def deliver(frame: Frame) -> None:
            scu.on_frame(arrival_direction, frame)

        return deliver

    # -- bring-up ------------------------------------------------------------
    def train_all(self) -> Event:
        """Train every HSSL link; the returned event completes when all are
        usable (they train concurrently, as after power-on)."""
        events = [link.train() for link in self.links.values()]
        return self.sim.all_of(events)

    @property
    def n_links(self) -> int:
        return len(self.links)

    # -- fault statistics ------------------------------------------------------
    def total_faults_injected(self) -> int:
        return sum(link.faults_injected for link in self.links.values())

    def total_frames_sent(self) -> int:
        return sum(link.frames_sent for link in self.links.values())

    def total_bits_sent(self) -> int:
        return sum(link.bits_sent for link in self.links.values())

    def total_busy_seconds(self) -> float:
        """Sum of per-link wire-busy time (for utilisation metrics)."""
        return sum(link.busy_seconds for link in self.links.values())

    def active_links(self) -> List[Tuple[Tuple[int, int], SerialLink]]:
        """Links that carried at least one frame, with their keys."""
        return [(k, l) for k, l in self.links.items() if l.frames_sent > 0]

    # -- the end-of-run confirmation (paper section 2.2) -------------------------
    def audit_checksums(self) -> List[str]:
        """Compare each link's send-side and receive-side checksums.

        Returns a list of human-readable mismatch descriptions (empty on a
        clean run).  "At the conclusion of a calculation, these checksums
        can be compared.  This offers a final confirmation that no erroneous
        data was exchanged."
        """
        mismatches = []
        for (src, direction), _link in self.links.items():
            dst = self.topology.neighbour_by_direction(src, direction)
            arrival = self.topology.opposite(direction)
            send_cs = self.nodes[src].scu.send_units[direction].checksum
            recv_cs = self.nodes[dst].scu.recv_units[arrival].checksum
            if not send_cs.matches(recv_cs):
                mismatches.append(
                    f"link n{src}.d{direction}->n{dst}: sent {send_cs!r} "
                    f"!= received {recv_cs!r}"
                )
        return mismatches
