"""Permanent hardware faults: the model, the schedule, the LINK_DOWN word.

The paper's reliability machinery (section 2.2: per-link parity +
automatic resend, end-of-run checksums; section 3.1: qdaemon status
tracking "including hardware problems") handles *transient* single-bit
errors invisibly.  The companion papers (hep-lat/0306023, hep-lat/0309096)
add the other half of the story for a 12,288-node machine: links and nodes
that die *permanently* mid-run, which the host daemon must detect and route
around.  This module provides

* :class:`FaultEvent` / :class:`FaultSchedule` — a seeded, mid-run
  injectable schedule of permanent faults (link-dead, link-stuck,
  node-dead), the hard-fault analogue of the transient
  ``bit_error_rate`` machinery in :mod:`repro.machine.hssl`;
* the **LINK_DOWN supervisor word** encoding: when an SCU watchdog
  declares a direction dead it writes one 64-bit supervisor word into a
  neighbour's SCU (paper section 2.2 item 2), carrying the detecting
  node and the dead direction for the host's diagnosis;
* :data:`FAULT_IRQ_BIT` — the partition-interrupt bit reserved for
  hard-fault escalation (bit 0 remains the application stop bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.util.errors import ConfigError
from repro.util.rng import rng_stream

#: partition-interrupt bit raised when a watchdog declares hardware dead
FAULT_IRQ_BIT = 0b10

#: magic prefix ("LD") marking a supervisor word as a LINK_DOWN report
LINK_DOWN_MAGIC = 0x4C44

#: the permanent fault modes the network can inject
FAULT_KINDS = ("link-dead", "link-stuck", "node-dead")


def encode_link_down(node: int, direction: int) -> int:
    """Pack a LINK_DOWN report into one 64-bit supervisor word."""
    if node < 0 or direction < 0:
        raise ConfigError(f"bad LINK_DOWN report ({node}, {direction})")
    return (LINK_DOWN_MAGIC << 48) | ((node & 0xFFFFFFFF) << 8) | (direction & 0xFF)


def decode_link_down(word: int) -> Optional[Tuple[int, int]]:
    """``(node, direction)`` if ``word`` is a LINK_DOWN report, else None."""
    if (word >> 48) != LINK_DOWN_MAGIC:
        return None
    return (word >> 8) & 0xFFFFFFFF, word & 0xFF


@dataclass(frozen=True)
class FaultEvent:
    """One permanent fault, injected at a simulation time.

    ``direction`` is required for the link kinds and ignored for
    ``node-dead`` (which cuts every cable touching the node).
    """

    time: float
    kind: str
    node: int
    direction: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; options: {FAULT_KINDS}"
            )
        if self.kind != "node-dead" and self.direction is None:
            raise ConfigError(f"{self.kind} fault needs a link direction")
        if self.time < 0:
            raise ConfigError(f"fault time {self.time} is negative")


class FaultSchedule:
    """A deterministic schedule of permanent faults.

    Build explicitly from :class:`FaultEvent` objects, or draw a random
    campaign from a seeded stream with :meth:`random` — either way a
    schedule is pure data until :meth:`arm` registers it with a machine's
    simulator, so the same schedule object can describe a run before it
    happens (and be printed in a campaign report afterwards).
    """

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.time)
        self.injected: List[FaultEvent] = []

    @classmethod
    def random(
        cls,
        seed: int,
        n_faults: int,
        t_window: Tuple[float, float],
        n_nodes: int,
        n_directions: int,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultSchedule":
        """A seeded random fault campaign (reproducible run over run)."""
        rng = rng_stream(seed, "hard-faults")
        t0, t1 = t_window
        events = []
        for _ in range(int(n_faults)):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            events.append(
                FaultEvent(
                    time=float(t0 + (t1 - t0) * rng.random()),
                    kind=kind,
                    node=int(rng.integers(0, n_nodes)),
                    direction=(
                        None
                        if kind == "node-dead"
                        else int(rng.integers(0, n_directions))
                    ),
                )
            )
        return cls(events)

    def arm(self, machine, daemon=None) -> None:
        """Schedule every fault on the machine's simulator.

        ``daemon`` (a :class:`~repro.host.qdaemon.Qdaemon`) is optional:
        when given, a ``node-dead`` fault also silences the node's boot
        agent so host health checks see the death (RPC timeouts), exactly
        as real hardware loss would present.
        """
        for event in self.events:
            delay = event.time - machine.sim.now
            if delay < 0:
                raise ConfigError(
                    f"fault at t={event.time} is in the past (now={machine.sim.now})"
                )
            machine.sim.schedule(delay, self._inject, machine, daemon, event)

    def _inject(self, machine, daemon, event: FaultEvent) -> None:
        if event.kind == "node-dead":
            machine.network.fail_node(event.node)
            if daemon is not None:
                daemon.silence_node(event.node)
        else:
            mode = "dead" if event.kind == "link-dead" else "stuck"
            machine.network.fail_link(event.node, event.direction, mode=mode)
        self.injected.append(event)
        if machine.trace is not None:
            machine.trace.emit(
                "fault.inject",
                kind=event.kind,
                node=event.node,
                direction=event.direction,
            )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.events)} events, {len(self.injected)} injected)"
