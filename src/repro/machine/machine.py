"""The whole-machine facade.

``QCDOCMachine`` assembles topology, nodes, mesh network, global clock and
interrupt controllers, and offers the operations the rest of the library
(and the examples/benchmarks) build on:

* :meth:`bring_up` — concurrent HSSL training of every link;
* :meth:`partition` — software allocation + folding (paper section 2.2);
* :meth:`run_partition` — execute one node program per logical rank and
  drive the event simulation to completion;
* :meth:`audit_checksums` — the end-of-run link-checksum comparison;
* :meth:`raise_partition_interrupt` — the machine-wide stop mechanism.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.asic import MachineConfig
from repro.machine.faults import FAULT_IRQ_BIT
from repro.machine.globalops import GlobalOpsEngine
from repro.machine.interrupts import GlobalClock, InterruptController, safe_period
from repro.machine.network import MeshNetwork
from repro.machine.node import Node
from repro.machine.topology import Partition, TorusTopology
from repro.sim.core import Event, Process, Simulator
from repro.sim.trace import Trace
from repro.util.errors import FaultError, MachineError
from repro.util.rng import rng_stream


class QCDOCMachine:
    """A functional QCDOC machine of ``config.n_nodes`` simulated nodes.

    Parameters
    ----------
    word_batch:
        SCU frame batching (1 = word-exact protocol; larger values
        accelerate big error-free transfers, see :mod:`repro.machine.scu`).
    bit_error_rate:
        Per-wire-bit fault probability for resend-protocol experiments.
    compute_efficiency:
        Fraction of FPU peak that :meth:`Node.compute` charges — lets a
        benchmark model the measured sustained fraction without simulating
        the PPC440 pipeline.
    trace:
        Attach a machine-wide :class:`~repro.sim.trace.Trace`; every unit
        (links, SCUs, CPUs, global-ops engines) emits into it.  Off by
        default so hot paths cost a single ``is not None`` check.
    trace_maxlen:
        When tracing, bound the trace to a ring buffer of this many
        records (long-run telemetry without unbounded memory).
    sanitizer:
        Attach a :class:`repro.analysis.sanitizer.HaloRaceSanitizer`
        that shadow-tracks DMA buffer ownership and flags premature CPU
        reads/writes of in-flight halo buffers.  Off (``None``) by
        default with the same one-attribute-check cost model as tracing.
    watchdog:
        Arm the SCU hard-fault watchdogs (resend-storm / no-progress
        detection, companion papers hep-lat/0306023 and hep-lat/0309096).
        Off by default: the seed protocol stalls *legitimately* while a
        receiver holds the idle-receive window, so watchdogs are only
        meaningful on machines whose host daemon handles LINK_DOWN
        escalation.
    """

    def __init__(
        self,
        config: MachineConfig,
        word_batch: int = 1,
        bit_error_rate: float = 0.0,
        compute_efficiency: float = 1.0,
        seed: int = 0,
        trace: bool = False,
        trace_maxlen: Optional[int] = None,
        sanitizer: Optional["HaloRaceSanitizer"] = None,
        watchdog: bool = False,
    ):
        self.config = config
        self.asic = config.asic
        self.sim = Simulator()
        self.trace = Trace(self.sim, maxlen=trace_maxlen) if trace else None
        #: machine-wide halo-buffer race sanitizer (see
        #: :mod:`repro.analysis.sanitizer`); ``None`` = off, and every hook
        #: site below costs exactly one attribute check — the same
        #: discipline as :attr:`trace`.
        self.sanitizer = sanitizer
        self.topology = TorusTopology(config.dims)
        self.nodes: Dict[int, Node] = {
            i: Node(
                self.sim,
                self.asic,
                i,
                trace=self.trace,
                word_batch=word_batch,
                compute_efficiency=compute_efficiency,
                sanitizer=sanitizer,
            )
            for i in range(self.topology.n_nodes)
        }
        error_rng = (
            rng_stream(seed, "link-faults") if bit_error_rate > 0.0 else None
        )
        self.network = MeshNetwork(
            self.sim,
            self.asic,
            self.topology,
            self.nodes,
            trace=self.trace,
            error_rng=error_rng,
            bit_error_rate=bit_error_rate,
        )
        diameter = sum(d // 2 for d in config.dims)
        self.global_clock = GlobalClock(
            self.sim, safe_period(self.asic, max(diameter, 1))
        )
        all_directions = [
            self.topology.direction(a, s)
            for a in range(self.topology.ndim)
            if config.dims[a] > 1
            for s in (+1, -1)
        ]
        self.interrupts: Dict[int, InterruptController] = {
            i: InterruptController(
                self.sim,
                self.nodes[i].scu,
                self.global_clock,
                all_directions,
                trace=self.trace,
            )
            for i in self.nodes
        }
        self._booted = False
        #: LINK_DOWN reports collected from SCU watchdogs: (node, direction,
        #: reason), in detection order.  The host daemon reads this after a
        #: faulted run to diagnose which cables to quarantine.
        self.link_down_log: List[Tuple[int, int, str]] = []
        self.watchdog = bool(watchdog)
        for node in self.nodes.values():
            node.scu.watchdog_enabled = self.watchdog
            node.scu.on_link_down = self._handle_link_down

    # -- bring-up -----------------------------------------------------------
    def bring_up(self) -> None:
        """Train every HSSL link (run to completion)."""
        done = self.network.train_all()
        self.sim.run(until=done)
        self._booted = True

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    @property
    def peak_flops(self) -> float:
        return self.config.peak_flops

    # -- partitioning ---------------------------------------------------------
    def partition(
        self,
        groups: Sequence[Sequence[int]],
        origin: Optional[Sequence[int]] = None,
        extents: Optional[Sequence[int]] = None,
        require_periodic: bool = True,
    ) -> Partition:
        """Carve a logical machine out of the torus, in software.

        Defaults to the full machine.  ``groups`` lists which physical axes
        fold into each logical axis — e.g. on a 6-torus,
        ``[(0,), (1,), (2,), (3, 4, 5)]`` makes a 4-dimensional machine
        whose last axis serpentines through three physical axes.
        """
        if origin is None:
            origin = (0,) * self.topology.ndim
        if extents is None:
            extents = self.topology.dims
        return Partition(
            self.topology, origin, extents, groups, require_periodic
        )

    def global_ops(self, partition: Partition, doubled: bool = True) -> GlobalOpsEngine:
        """A global-sum/broadcast engine for one partition."""
        return GlobalOpsEngine(
            self.sim,
            self.asic,
            partition.logical_dims,
            doubled=doubled,
            trace=self.trace,
        )

    # -- telemetry ------------------------------------------------------------
    def counter_bank(self):
        """A :class:`repro.telemetry.CounterBank` sampling this machine.

        Providers are registered for every node's SCU units, memory
        regions, CPU kernel flops, and every mesh link — sampling reads
        the always-on plain counters, so attaching a bank costs nothing
        on the simulation hot path.
        """
        from repro.telemetry.counters import bank_for_machine  # local: layering

        return bank_for_machine(self)

    def report(self):
        """A :class:`repro.telemetry.MachineReport` over current counters."""
        from repro.telemetry.report import MachineReport  # local: layering

        return MachineReport.collect(self)

    # -- program execution ------------------------------------------------------
    def run_partition(
        self,
        partition: Partition,
        program: Callable[..., object],
        max_time: float = 100.0,
        **program_kwargs,
    ) -> List[object]:
        """Run ``program(api)`` on every logical rank of a partition.

        ``program`` is a generator function taking a
        :class:`repro.comms.api.CommsAPI`; the call returns the list of
        per-rank return values (rank order).  The machine must be brought
        up first.

        If any rank dies of a hard fault (:class:`FaultError`, e.g. a
        watchdog :class:`~repro.util.errors.LinkDownError`) the whole
        partition is aborted and cleaned — surviving ranks interrupted,
        in-flight SCU transfers cancelled and drained, run-allocated
        buffers freed — and the first fault re-raised.  The machine is
        then reusable: a host daemon can remap the job onto healthy
        hardware and resume from a checkpoint.
        """
        from repro.comms.api import CommsAPI  # local import: layering

        if not self._booted:
            raise MachineError("bring_up() the machine before running programs")
        engine = self.global_ops(partition)
        part_nodes = [
            self.nodes[partition.physical_node(r)] for r in range(partition.n_nodes)
        ]
        # Snapshot node memory so an abort can free what this run allocates
        # (resumed jobs re-allocate the same buffer names on reused nodes).
        pre_buffers = {n.node_id: set(n.memory.buffer_names()) for n in part_nodes}

        abort = self.sim.event()
        first_fault: List[BaseException] = []

        def guarded(api):
            try:
                result = yield from program(api, **program_kwargs)
            except FaultError as exc:
                if not first_fault:
                    first_fault.append(exc)
                if not abort.triggered:
                    abort.succeed(exc)
                return None
            return result

        processes: List[Process] = []
        for rank in range(partition.n_nodes):
            api = CommsAPI(self, partition, engine, rank, part_nodes[rank])
            processes.append(self.sim.process(guarded(api), name=f"rank{rank}"))
        done = self.sim.all_of(processes)
        outcome = self.sim.any_of([done, abort])
        self.sim.run(until=outcome, max_time=max_time)
        if not abort.triggered:
            return done.value
        self._abort_partition(part_nodes, processes, pre_buffers)
        raise first_fault[0]

    def _abort_partition(self, part_nodes, processes, pre_buffers) -> None:
        """Tear a faulted partition down to a reusable machine state.

        Interrupt the surviving rank processes, cancel every active SCU
        transfer on the partition's nodes (units start discarding stale
        in-flight frames), free buffers the dead run allocated, then drain
        the event heap so nothing from the old job fires later.
        """
        for proc in processes:
            if proc.is_alive:
                proc.interrupt("partition abort")
        for node in part_nodes:
            node.scu.cancel_active_transfers()
        self.sim.run()  # drain: cancellations, interrupts, in-flight frames
        for node in part_nodes:
            for name in sorted(
                set(node.memory.buffer_names()) - pre_buffers[node.node_id]
            ):
                node.memory.free(name)
            node.scu.finish_drain()

    # -- machine-wide services ---------------------------------------------------
    def raise_partition_interrupt(self, node_id: int, bits: int) -> None:
        self.interrupts[node_id].raise_irq(bits)

    def _handle_link_down(self, node_id: int, direction: int, reason: str) -> None:
        """An SCU watchdog declared a direction dead (section 2.2 item 2).

        Record the report and raise the hard-fault partition-interrupt bit
        from the detecting node; the torus-redundant interrupt flood
        reaches the host even with one cable gone.  Repeat reports re-raise
        the same bit, which the controllers dedup (``seen_bits``).
        """
        self.link_down_log.append((node_id, direction, reason))
        self.interrupts[node_id].raise_irq(FAULT_IRQ_BIT)

    def audit_checksums(self) -> List[str]:
        """End-of-run link checksum comparison (empty list = clean)."""
        return self.network.audit_checksums()

    def __repr__(self) -> str:
        dims = "x".join(map(str, self.config.dims))
        return f"QCDOCMachine({dims} = {self.n_nodes} nodes)"
