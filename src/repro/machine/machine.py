"""The whole-machine facade.

``QCDOCMachine`` assembles topology, nodes, mesh network, global clock and
interrupt controllers, and offers the operations the rest of the library
(and the examples/benchmarks) build on:

* :meth:`bring_up` — concurrent HSSL training of every link;
* :meth:`partition` — software allocation + folding (paper section 2.2);
* :meth:`run_partition` — execute one node program per logical rank and
  drive the event simulation to completion;
* :meth:`audit_checksums` — the end-of-run link-checksum comparison;
* :meth:`raise_partition_interrupt` — the machine-wide stop mechanism.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.machine.asic import MachineConfig
from repro.machine.globalops import GlobalOpsEngine
from repro.machine.interrupts import GlobalClock, InterruptController, safe_period
from repro.machine.network import MeshNetwork
from repro.machine.node import Node
from repro.machine.topology import Partition, TorusTopology
from repro.sim.core import Event, Process, Simulator
from repro.sim.trace import Trace
from repro.util.errors import MachineError
from repro.util.rng import rng_stream


class QCDOCMachine:
    """A functional QCDOC machine of ``config.n_nodes`` simulated nodes.

    Parameters
    ----------
    word_batch:
        SCU frame batching (1 = word-exact protocol; larger values
        accelerate big error-free transfers, see :mod:`repro.machine.scu`).
    bit_error_rate:
        Per-wire-bit fault probability for resend-protocol experiments.
    compute_efficiency:
        Fraction of FPU peak that :meth:`Node.compute` charges — lets a
        benchmark model the measured sustained fraction without simulating
        the PPC440 pipeline.
    trace:
        Attach a machine-wide :class:`~repro.sim.trace.Trace`; every unit
        (links, SCUs, CPUs, global-ops engines) emits into it.  Off by
        default so hot paths cost a single ``is not None`` check.
    trace_maxlen:
        When tracing, bound the trace to a ring buffer of this many
        records (long-run telemetry without unbounded memory).
    sanitizer:
        Attach a :class:`repro.analysis.sanitizer.HaloRaceSanitizer`
        that shadow-tracks DMA buffer ownership and flags premature CPU
        reads/writes of in-flight halo buffers.  Off (``None``) by
        default with the same one-attribute-check cost model as tracing.
    """

    def __init__(
        self,
        config: MachineConfig,
        word_batch: int = 1,
        bit_error_rate: float = 0.0,
        compute_efficiency: float = 1.0,
        seed: int = 0,
        trace: bool = False,
        trace_maxlen: Optional[int] = None,
        sanitizer: Optional["HaloRaceSanitizer"] = None,
    ):
        self.config = config
        self.asic = config.asic
        self.sim = Simulator()
        self.trace = Trace(self.sim, maxlen=trace_maxlen) if trace else None
        #: machine-wide halo-buffer race sanitizer (see
        #: :mod:`repro.analysis.sanitizer`); ``None`` = off, and every hook
        #: site below costs exactly one attribute check — the same
        #: discipline as :attr:`trace`.
        self.sanitizer = sanitizer
        self.topology = TorusTopology(config.dims)
        self.nodes: Dict[int, Node] = {
            i: Node(
                self.sim,
                self.asic,
                i,
                trace=self.trace,
                word_batch=word_batch,
                compute_efficiency=compute_efficiency,
                sanitizer=sanitizer,
            )
            for i in range(self.topology.n_nodes)
        }
        error_rng = (
            rng_stream(seed, "link-faults") if bit_error_rate > 0.0 else None
        )
        self.network = MeshNetwork(
            self.sim,
            self.asic,
            self.topology,
            self.nodes,
            trace=self.trace,
            error_rng=error_rng,
            bit_error_rate=bit_error_rate,
        )
        diameter = sum(d // 2 for d in config.dims)
        self.global_clock = GlobalClock(
            self.sim, safe_period(self.asic, max(diameter, 1))
        )
        all_directions = [
            self.topology.direction(a, s)
            for a in range(self.topology.ndim)
            if config.dims[a] > 1
            for s in (+1, -1)
        ]
        self.interrupts: Dict[int, InterruptController] = {
            i: InterruptController(
                self.sim,
                self.nodes[i].scu,
                self.global_clock,
                all_directions,
                trace=self.trace,
            )
            for i in self.nodes
        }
        self._booted = False

    # -- bring-up -----------------------------------------------------------
    def bring_up(self) -> None:
        """Train every HSSL link (run to completion)."""
        done = self.network.train_all()
        self.sim.run(until=done)
        self._booted = True

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    @property
    def peak_flops(self) -> float:
        return self.config.peak_flops

    # -- partitioning ---------------------------------------------------------
    def partition(
        self,
        groups: Sequence[Sequence[int]],
        origin: Optional[Sequence[int]] = None,
        extents: Optional[Sequence[int]] = None,
        require_periodic: bool = True,
    ) -> Partition:
        """Carve a logical machine out of the torus, in software.

        Defaults to the full machine.  ``groups`` lists which physical axes
        fold into each logical axis — e.g. on a 6-torus,
        ``[(0,), (1,), (2,), (3, 4, 5)]`` makes a 4-dimensional machine
        whose last axis serpentines through three physical axes.
        """
        if origin is None:
            origin = (0,) * self.topology.ndim
        if extents is None:
            extents = self.topology.dims
        return Partition(
            self.topology, origin, extents, groups, require_periodic
        )

    def global_ops(self, partition: Partition, doubled: bool = True) -> GlobalOpsEngine:
        """A global-sum/broadcast engine for one partition."""
        return GlobalOpsEngine(
            self.sim,
            self.asic,
            partition.logical_dims,
            doubled=doubled,
            trace=self.trace,
        )

    # -- telemetry ------------------------------------------------------------
    def counter_bank(self):
        """A :class:`repro.telemetry.CounterBank` sampling this machine.

        Providers are registered for every node's SCU units, memory
        regions, CPU kernel flops, and every mesh link — sampling reads
        the always-on plain counters, so attaching a bank costs nothing
        on the simulation hot path.
        """
        from repro.telemetry.counters import bank_for_machine  # local: layering

        return bank_for_machine(self)

    def report(self):
        """A :class:`repro.telemetry.MachineReport` over current counters."""
        from repro.telemetry.report import MachineReport  # local: layering

        return MachineReport.collect(self)

    # -- program execution ------------------------------------------------------
    def run_partition(
        self,
        partition: Partition,
        program: Callable[..., object],
        max_time: float = 100.0,
        **program_kwargs,
    ) -> List[object]:
        """Run ``program(api)`` on every logical rank of a partition.

        ``program`` is a generator function taking a
        :class:`repro.comms.api.CommsAPI`; the call returns the list of
        per-rank return values (rank order).  The machine must be brought
        up first.
        """
        from repro.comms.api import CommsAPI  # local import: layering

        if not self._booted:
            raise MachineError("bring_up() the machine before running programs")
        engine = self.global_ops(partition)
        processes: List[Process] = []
        for rank in range(partition.n_nodes):
            node = self.nodes[partition.physical_node(rank)]
            api = CommsAPI(self, partition, engine, rank, node)
            processes.append(
                self.sim.process(program(api, **program_kwargs), name=f"rank{rank}")
            )
        done = self.sim.all_of(processes)
        return self.sim.run(until=done, max_time=max_time)

    # -- machine-wide services ---------------------------------------------------
    def raise_partition_interrupt(self, node_id: int, bits: int) -> None:
        self.interrupts[node_id].raise_irq(bits)

    def audit_checksums(self) -> List[str]:
        """End-of-run link checksum comparison (empty list = clean)."""
        return self.network.audit_checksums()

    def __repr__(self) -> str:
        dims = "x".join(map(str, self.config.dims))
        return f"QCDOCMachine({dims} = {self.n_nodes} nodes)"
