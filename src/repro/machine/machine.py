"""The whole-machine facade.

``QCDOCMachine`` assembles topology, nodes, mesh network, global clock and
interrupt controllers, and offers the operations the rest of the library
(and the examples/benchmarks) build on:

* :meth:`bring_up` — concurrent HSSL training of every link;
* :meth:`partition` — software allocation + folding (paper section 2.2);
* :meth:`run_partition` — execute one node program per logical rank and
  drive the event simulation to completion;
* :meth:`audit_checksums` — the end-of-run link-checksum comparison;
* :meth:`raise_partition_interrupt` — the machine-wide stop mechanism.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.asic import MachineConfig
from repro.machine.faults import FAULT_IRQ_BIT
from repro.machine.globalops import GlobalOpsEngine, ShardedGlobalOps
from repro.machine.interrupts import GlobalClock, InterruptController, safe_period
from repro.machine.network import MeshNetwork
from repro.machine.node import Node
from repro.machine.topology import Partition, TorusTopology
from repro.sim.core import Event, Process, Simulator
from repro.sim.shard import ShardedSimulator
from repro.sim.sync import conservative_lookahead
from repro.sim.trace import Trace, TraceRecord
from repro.util.errors import ConfigError, FaultError, MachineError
from repro.util.rng import rng_stream


class PartitionRun:
    """One partition's rank programs, launched without blocking the sim.

    :meth:`QCDOCMachine.launch_partition` returns one of these instead of
    driving the event loop itself, so several partitions can execute
    concurrently on one machine (the job-service layer) while the
    blocking :meth:`QCDOCMachine.run_partition` stays a thin wrapper.

    Lifecycle: ranks report into :attr:`done` / :attr:`faults` as their
    generators finish; :attr:`settled` flips once every rank returned or
    any rank died of a :class:`FaultError`.  To tear a run down (fault
    recovery, preemption) call :meth:`abort`, advance the simulation
    until :meth:`quiesced` holds, then :meth:`finalize` to free the
    buffers the run allocated and leave the SCUs reusable.
    """

    def __init__(self, machine: "QCDOCMachine", partition: Partition, tag: str = ""):
        self.machine = machine
        self.partition = partition
        self.tag = tag
        self.n_ranks = partition.n_nodes
        self.part_nodes: List[Node] = [
            machine.nodes[partition.physical_node(r)] for r in range(self.n_ranks)
        ]
        # Snapshot node memory so teardown can free what this run allocates
        # (the next job on these nodes re-allocates the same buffer names).
        self.pre_buffers = {
            n.node_id: set(n.memory.buffer_names()) for n in self.part_nodes
        }
        # Every wire touching this run's nodes: quiescence must also see
        # these empty, or frames of a cancelled transfer still in flight
        # would land on (and poison) the next job allocated here.
        ids = {n.node_id for n in self.part_nodes}
        topo = machine.topology
        self._watch_links = [
            link
            for (src, d), link in sorted(machine.network.links.items())
            if src in ids or topo.neighbour_by_direction(src, d) in ids
        ]
        self.processes: List[Process] = []
        #: rank -> return value, filled as rank generators finish
        self.done: Dict[int, Any] = {}
        #: hard faults in detection order (first one is the diagnosis)
        self.faults: List[BaseException] = []
        self.aborted = False
        self.finalized = False
        self.launched_at = machine.sim.now
        #: host-side callback fired (synchronously, from inside the event
        #: that settled the run) the moment :attr:`settled` flips — the
        #: service layer's wake-up signal
        self.on_settled: Optional[Callable[["PartitionRun"], None]] = None

    @property
    def settled(self) -> bool:
        """Every rank returned, or any rank died of a hard fault."""
        return bool(self.faults) or len(self.done) == self.n_ranks

    def results(self) -> List[Any]:
        """Per-rank return values (rank order); only valid once settled
        without faults."""
        if self.faults:
            raise self.faults[0]
        return [self.done[r] for r in range(self.n_ranks)]

    def node_ids(self) -> List[int]:
        return sorted(n.node_id for n in self.part_nodes)

    # -- teardown ------------------------------------------------------------
    def abort(self) -> None:
        """Interrupt surviving ranks and cancel their SCU transfers.

        Purely state-changing (interrupts are scheduled, cancellations
        discard in-flight frames as they arrive): the caller keeps the
        simulation running until :meth:`quiesced` holds.
        """
        self.aborted = True
        for proc in self.processes:
            if proc.is_alive:
                proc.interrupt("partition abort")
        for node in self.part_nodes:
            node.scu.cancel_active_transfers()

    def quiesced(self) -> bool:
        """No rank process alive, no word in an SCU pipeline, and no frame
        still clocking down any wire touching the run's nodes."""
        return (
            all(p.triggered for p in self.processes)
            and all(
                node.scu.in_flight_words() == 0 for node in self.part_nodes
            )
            and all(link.in_transit == 0 for link in self._watch_links)
        )

    def finalize(self) -> None:
        """Free run-allocated buffers; after an abort, end SCU drain mode.

        Idempotent.  Call only once the run settled (or aborted and
        quiesced) — it returns the nodes to the pre-launch buffer
        namespace so the next job can reuse them.
        """
        if self.finalized:
            return
        self.finalized = True
        for node in self.part_nodes:
            for name in sorted(
                set(node.memory.buffer_names()) - self.pre_buffers[node.node_id]
            ):
                node.memory.free(name)
            if self.aborted:
                node.scu.finish_drain()

    # -- rank callbacks (wired by launch_partition) ---------------------------
    def _rank_done(self, rank: int, value: Any) -> None:
        self.done[rank] = value
        if self.settled:
            self._notify()

    def _rank_fault(self, rank: int, exc: BaseException) -> None:
        first = not self.faults
        self.faults.append(exc)
        if first:
            self._notify()

    def _notify(self) -> None:
        if self.on_settled is not None:
            self.on_settled(self)

    def __repr__(self) -> str:
        state = (
            "finalized"
            if self.finalized
            else "aborted"
            if self.aborted
            else "settled"
            if self.settled
            else "running"
        )
        return f"PartitionRun({self.tag or self.n_ranks} ranks, {state})"


class QCDOCMachine:
    """A functional QCDOC machine of ``config.n_nodes`` simulated nodes.

    Parameters
    ----------
    word_batch:
        SCU frame batching (1 = word-exact protocol; larger values
        accelerate big error-free transfers; ``"face"`` ships each whole
        transfer as one frame, see :mod:`repro.machine.scu`).
    bit_error_rate:
        Per-wire-bit fault probability for resend-protocol experiments.
    compute_efficiency:
        Fraction of FPU peak that :meth:`Node.compute` charges — lets a
        benchmark model the measured sustained fraction without simulating
        the PPC440 pipeline.
    trace:
        Attach a machine-wide :class:`~repro.sim.trace.Trace`; every unit
        (links, SCUs, CPUs, global-ops engines) emits into it.  Off by
        default so hot paths cost a single ``is not None`` check.
    trace_maxlen:
        When tracing, bound the trace to a ring buffer of this many
        records (long-run telemetry without unbounded memory).
    sanitizer:
        Attach a :class:`repro.analysis.sanitizer.HaloRaceSanitizer`
        that shadow-tracks DMA buffer ownership and flags premature CPU
        reads/writes of in-flight halo buffers.  Off (``None``) by
        default with the same one-attribute-check cost model as tracing.
    watchdog:
        Arm the SCU hard-fault watchdogs (resend-storm / no-progress
        detection, companion papers hep-lat/0306023 and hep-lat/0309096).
        Off by default: the seed protocol stalls *legitimately* while a
        receiver holds the idle-receive window, so watchdogs are only
        meaningful on machines whose host daemon handles LINK_DOWN
        escalation.
    shards:
        Partition the event simulation into this many window-synchronised
        shards (:mod:`repro.sim.shard`).  ``1`` (default) uses the
        single-heap engine unchanged; ``>= 2`` assigns contiguous node
        ranges to shard lanes and exchanges cross-shard HSSL traffic at
        conservative window barriers.  Observables (counters, residuals,
        trace multisets) are bit-identical across shard counts.
    shard_workers:
        ``"serial"`` (default) runs all shard lanes in this process;
        ``"fork"`` runs each shard in a forked OS worker during
        :meth:`run_partition` (POSIX only), merging per-shard machine
        state back from snapshots at the end of the run.
    replay:
        Enable the hot-epoch compiled event-trace replay engine
        (:mod:`repro.machine.replay`): after the first dslash application
        the per-application SCU schedule is memoized and subsequent
        applications replay it with bit-identical results, counters, and
        trace records.  On by default; it self-gates off wherever its
        validity conditions (error-free, same-shard, watchdogs off) do
        not hold.  ``False`` forces every transfer interpreted.
    """

    def __init__(
        self,
        config: MachineConfig,
        word_batch=1,
        bit_error_rate: float = 0.0,
        compute_efficiency: float = 1.0,
        seed: int = 0,
        trace: bool = False,
        trace_maxlen: Optional[int] = None,
        sanitizer: Optional["HaloRaceSanitizer"] = None,
        watchdog: bool = False,
        shards: int = 1,
        shard_workers: str = "serial",
        replay: bool = True,
    ):
        self.config = config
        self.asic = config.asic
        if shards < 1:
            raise ConfigError(f"need >= 1 shard, got {shards}")
        if shard_workers not in ("serial", "fork"):
            raise ConfigError(
                f"shard_workers must be 'serial' or 'fork', got {shard_workers!r}"
            )
        if shard_workers == "fork" and not hasattr(os, "fork"):
            raise ConfigError("shard_workers='fork' needs POSIX os.fork")
        self.shards = int(shards)
        self.shard_workers = shard_workers
        if self.shards > 1:
            self.sim: Simulator = ShardedSimulator(
                self.shards, conservative_lookahead(self.asic)
            )
        else:
            self.sim = Simulator()
        self.trace = Trace(self.sim, maxlen=trace_maxlen) if trace else None
        #: machine-wide halo-buffer race sanitizer (see
        #: :mod:`repro.analysis.sanitizer`); ``None`` = off, and every hook
        #: site below costs exactly one attribute check — the same
        #: discipline as :attr:`trace`.
        self.sanitizer = sanitizer
        self.topology = TorusTopology(config.dims)
        self.nodes: Dict[int, Node] = {
            i: Node(
                self.sim,
                self.asic,
                i,
                trace=self.trace,
                word_batch=word_batch,
                compute_efficiency=compute_efficiency,
                sanitizer=sanitizer,
                replay=replay,
            )
            for i in range(self.topology.n_nodes)
        }
        error_rng = (
            rng_stream(seed, "link-faults") if bit_error_rate > 0.0 else None
        )
        self.network = MeshNetwork(
            self.sim,
            self.asic,
            self.topology,
            self.nodes,
            trace=self.trace,
            error_rng=error_rng,
            bit_error_rate=bit_error_rate,
        )
        diameter = sum(d // 2 for d in config.dims)
        self.global_clock = GlobalClock(
            self.sim, safe_period(self.asic, max(diameter, 1))
        )
        all_directions = [
            self.topology.direction(a, s)
            for a in range(self.topology.ndim)
            if config.dims[a] > 1
            for s in (+1, -1)
        ]
        self.interrupts: Dict[int, InterruptController] = {
            i: InterruptController(
                self.sim,
                self.nodes[i].scu,
                self.global_clock,
                all_directions,
                trace=self.trace,
            )
            for i in self.nodes
        }
        if self.shards > 1:
            self.network.bind_shards(self.sim.router, self.shard_of)
            self.sim.router.note_handlers["link_down"] = self._link_down_note
        self._booted = False
        #: LINK_DOWN reports collected from SCU watchdogs: (node, direction,
        #: reason), in detection order.  The host daemon reads this after a
        #: faulted run to diagnose which cables to quarantine.
        self.link_down_log: List[Tuple[int, int, str]] = []
        self.watchdog = bool(watchdog)
        for node in self.nodes.values():
            node.scu.watchdog_enabled = self.watchdog
            node.scu.on_link_down = self._handle_link_down

    # -- sharding ------------------------------------------------------------
    def shard_of(self, node_id: int) -> int:
        """The shard lane owning ``node_id``: contiguous node ranges.

        ``shards > n_nodes`` is legal (the surplus lanes own no nodes and
        simply idle at every window), so shard-count sweeps need no
        machine-size guards.
        """
        return node_id * self.shards // self.n_nodes

    def quiesce(self) -> None:
        """Drain every pending event (all shard lanes, all windows).

        The sharded engine commits whole windows, so mid-run state can
        differ from the single-heap engine by events inside one lookahead.
        After a full drain the engines agree bit-for-bit — compare
        counters/traces only after calling this.
        """
        self.sim.run()

    # -- bring-up -----------------------------------------------------------
    def bring_up(self) -> None:
        """Train every HSSL link (run to completion).

        Sharded machines use the batched trainer: one completion event for
        the whole mesh instead of 3 heap operations per link, identical
        observables (see :meth:`MeshNetwork.train_all`).
        """
        done = self.network.train_all(batched=self.shards > 1)
        self.sim.run(until=done)
        self._booted = True

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    @property
    def peak_flops(self) -> float:
        return self.config.peak_flops

    # -- partitioning ---------------------------------------------------------
    def partition(
        self,
        groups: Sequence[Sequence[int]],
        origin: Optional[Sequence[int]] = None,
        extents: Optional[Sequence[int]] = None,
        require_periodic: bool = True,
    ) -> Partition:
        """Carve a logical machine out of the torus, in software.

        Defaults to the full machine.  ``groups`` lists which physical axes
        fold into each logical axis — e.g. on a 6-torus,
        ``[(0,), (1,), (2,), (3, 4, 5)]`` makes a 4-dimensional machine
        whose last axis serpentines through three physical axes.
        """
        if origin is None:
            origin = (0,) * self.topology.ndim
        if extents is None:
            extents = self.topology.dims
        return Partition(
            self.topology, origin, extents, groups, require_periodic
        )

    def global_ops(self, partition: Partition, doubled: bool = True) -> GlobalOpsEngine:
        """A global-sum/broadcast engine for one partition."""
        cls = ShardedGlobalOps if self.shards > 1 else GlobalOpsEngine
        return cls(
            self.sim,
            self.asic,
            partition.logical_dims,
            doubled=doubled,
            trace=self.trace,
        )

    # -- telemetry ------------------------------------------------------------
    def counter_bank(self):
        """A :class:`repro.telemetry.CounterBank` sampling this machine.

        Providers are registered for every node's SCU units, memory
        regions, CPU kernel flops, and every mesh link — sampling reads
        the always-on plain counters, so attaching a bank costs nothing
        on the simulation hot path.
        """
        from repro.telemetry.counters import bank_for_machine  # local: layering

        return bank_for_machine(self)

    def report(self):
        """A :class:`repro.telemetry.MachineReport` over current counters."""
        from repro.telemetry.report import MachineReport  # local: layering

        return MachineReport.collect(self)

    def replay_stats(self):
        """Hot-epoch replay statistics summed over every node's engine.

        ``epochs_replayed > 0`` is the benchmark's proof that the compiled
        dslash event-trace path actually engaged (see
        :mod:`repro.machine.replay`).
        """
        total: Dict[str, int] = {}
        for node_id in sorted(self.nodes):
            for key, value in self.nodes[node_id].scu.replay.stats().items():
                total[key] = total.get(key, 0) + value
        return total

    # -- program execution ------------------------------------------------------
    def launch_partition(
        self,
        partition: Partition,
        program: Callable[..., object],
        tag: str = "",
        **program_kwargs,
    ) -> PartitionRun:
        """Start ``program(api)`` on every rank of a partition, non-blocking.

        Creates the rank processes and returns a :class:`PartitionRun`
        immediately — the caller drives the simulation (``sim.run(stop=
        lambda: run.settled)``, or a service loop multiplexing several
        runs).  Multiple live runs on disjoint partitions share the
        machine; each gets its own per-partition global-ops engine, so
        collectives never cross job boundaries.

        Sharded machines are supported with the **serial** executor only:
        rank completion reports are direct host-side callbacks, which the
        forked executor's worker processes cannot deliver (those runs go
        through :meth:`run_partition`'s window-notification protocol).
        """
        from repro.comms.api import CommsAPI  # local import: layering

        if not self._booted:
            raise MachineError("bring_up() the machine before running programs")
        if self.shards > 1 and self.shard_workers != "serial":
            raise ConfigError(
                "launch_partition needs shard_workers='serial' (rank "
                "completion is reported by direct callback, not over "
                "worker pipes)"
            )
        engine = self.global_ops(partition)
        run = PartitionRun(self, partition, tag=tag)

        def guarded(api):
            try:
                result = yield from program(api, **program_kwargs)
            except FaultError as exc:
                run._rank_fault(api.rank, exc)
                return None
            run._rank_done(api.rank, result)
            return result

        for rank in range(run.n_ranks):
            node = run.part_nodes[rank]
            api = CommsAPI(self, partition, engine, rank, node)
            shard = self.shard_of(node.node_id) if self.shards > 1 else 0
            with self.sim.context(shard):
                run.processes.append(
                    self.sim.process(
                        guarded(api), name=f"{tag or 'rank'}:{rank}"
                    )
                )
        return run

    def run_partition(
        self,
        partition: Partition,
        program: Callable[..., object],
        max_time: float = 100.0,
        **program_kwargs,
    ) -> List[object]:
        """Run ``program(api)`` on every logical rank of a partition.

        ``program`` is a generator function taking a
        :class:`repro.comms.api.CommsAPI`; the call returns the list of
        per-rank return values (rank order).  The machine must be brought
        up first.

        If any rank dies of a hard fault (:class:`FaultError`, e.g. a
        watchdog :class:`~repro.util.errors.LinkDownError`) the whole
        partition is aborted and cleaned — surviving ranks interrupted,
        in-flight SCU transfers cancelled and drained, run-allocated
        buffers freed — and the first fault re-raised.  The machine is
        then reusable: a host daemon can remap the job onto healthy
        hardware and resume from a checkpoint.
        """
        if not self._booted:
            raise MachineError("bring_up() the machine before running programs")
        if self.shards > 1:
            return self._run_partition_sharded(
                partition, program, max_time, program_kwargs
            )
        run = self.launch_partition(partition, program, **program_kwargs)
        self.sim.run(stop=lambda: run.settled, max_time=max_time)
        if not run.faults:
            return run.results()
        run.abort()
        self.sim.run()  # drain: cancellations, interrupts, in-flight frames
        run.finalize()
        raise run.faults[0]

    def _abort_partition(self, part_nodes, processes, pre_buffers) -> None:
        """Tear a faulted partition down to a reusable machine state.

        Interrupt the surviving rank processes, cancel every active SCU
        transfer on the partition's nodes (units start discarding stale
        in-flight frames), free buffers the dead run allocated, then drain
        the event heap so nothing from the old job fires later.
        """
        for proc in processes:
            if proc.is_alive:
                proc.interrupt("partition abort")
        for node in part_nodes:
            node.scu.cancel_active_transfers()
        self.sim.run()  # drain: cancellations, interrupts, in-flight frames
        for node in part_nodes:
            for name in sorted(
                set(node.memory.buffer_names()) - pre_buffers[node.node_id]
            ):
                node.memory.free(name)
            node.scu.finish_drain()

    # -- sharded program execution ------------------------------------------
    def _run_partition_sharded(
        self,
        partition: Partition,
        program: Callable[..., object],
        max_time: float,
        program_kwargs: dict,
    ) -> List[object]:
        """:meth:`run_partition` on the sharded engine.

        No cross-shard ``AllOf``/``AnyOf`` (conditions would couple lanes
        mid-window): ranks announce completion and hard faults as window
        notifications, and the coordinator's stop predicate ends the run
        at the first barrier where every rank has reported or any rank
        faulted.  Under ``shard_workers="fork"`` the same notifications
        travel over the worker pipes; rank return values and
        :class:`FaultError` instances must then be picklable.
        """
        from repro.comms.api import CommsAPI  # local import: layering

        engine = self.global_ops(partition)
        n = partition.n_nodes
        part_nodes = [self.nodes[partition.physical_node(r)] for r in range(n)]
        pre_buffers = {
            nd.node_id: set(nd.memory.buffer_names()) for nd in part_nodes
        }
        router = self.sim.router
        done: Dict[int, Any] = {}
        faults: List[BaseException] = []
        router.note_handlers["rank_done"] = lambda note: done.__setitem__(
            note.data["rank"], note.data["value"]
        )
        router.note_handlers["rank_fault"] = lambda note: faults.append(
            note.data["exc"]
        )

        def guarded(api):
            try:
                result = yield from program(api, **program_kwargs)
            except FaultError as exc:
                router.notify("rank_fault", rank=api.rank, exc=exc)
                return None
            router.notify("rank_done", rank=api.rank, value=result)
            return result

        shard_of_rank = [self.shard_of(nd.node_id) for nd in part_nodes]
        processes: List[Process] = []
        for rank in range(n):
            api = CommsAPI(self, partition, engine, rank, part_nodes[rank])
            with self.sim.context(shard_of_rank[rank]):
                processes.append(
                    self.sim.process(guarded(api), name=f"rank{rank}")
                )

        def stop() -> bool:
            return bool(faults) or len(done) == n

        forked = self.shard_workers == "fork"
        if forked:
            self._install_fork_hooks(processes, part_nodes, shard_of_rank)
            try:
                self.sim.run_forked(
                    stop,
                    max_time=max_time,
                    ctrl_for_stop=lambda: ["abort"] if faults else [],
                )
            finally:
                self.sim.fork_hooks.clear()
        else:
            self.sim.run(stop=stop, max_time=max_time)
        if not faults:
            return [done[r] for r in range(n)]
        if forked:
            # The abort control hook already interrupted surviving ranks
            # and cancelled transfers *inside* the workers, and the run
            # drained before the state merge — only the parent-side
            # buffer/bookkeeping cleanup remains.
            for node in part_nodes:
                for name in sorted(
                    set(node.memory.buffer_names()) - pre_buffers[node.node_id]
                ):
                    node.memory.free(name)
                node.scu.finish_drain()
        else:
            self._abort_partition(part_nodes, processes, pre_buffers)
        raise faults[0]

    def _install_fork_hooks(
        self,
        processes: List[Process],
        part_nodes: List[Node],
        shard_of_rank: List[int],
    ) -> None:
        """Wire this machine's state transfer into ``sim.run_forked``.

        The abort hook runs *worker-side*: each worker interrupts only the
        ranks whose home shard it owns (interrupting a copy-on-write image
        of a foreign rank would double-execute its cleanup) and cancels
        transfers on its own nodes.
        """
        watermark = self.trace.emitted if self.trace is not None else 0

        def snapshot(shard: int) -> dict:
            return self._shard_snapshot(shard, watermark)

        def abort_ctrl(shard: int) -> None:
            for proc, home in zip(processes, shard_of_rank):
                if home == shard and proc.is_alive:
                    proc.interrupt("partition abort")
            for node in part_nodes:
                if self.shard_of(node.node_id) == shard:
                    node.scu.cancel_active_transfers()

        self.sim.fork_hooks.update(
            snapshot=snapshot,
            apply=self._apply_shard_snapshots,
            ctrl={"abort": abort_ctrl},
        )

    def _shard_snapshot(self, shard: int, trace_watermark: int) -> dict:
        """Picklable machine state owned by one shard (runs in the worker).

        Covers exactly what the parent's observables read after a run:
        node memory (buffers, regions, DMA byte counters), CPU accounting,
        SCU unit state/counters, interrupt latches, per-link wire
        counters, and the trace records this worker emitted since the
        pre-fork watermark.  LINK_DOWN reports are *not* snapshotted —
        they reach the parent as window notifications during the run.
        """
        nodes: Dict[int, dict] = {}
        for node_id in sorted(self.nodes):
            if self.shard_of(node_id) != shard:
                continue
            node = self.nodes[node_id]
            ic = self.interrupts[node_id]
            nodes[node_id] = {
                "buffers": dict(node.memory._buffers),
                "regions": dict(node.memory._regions),
                "read_bytes": dict(node.memory.read_bytes),
                "write_bytes": dict(node.memory.write_bytes),
                "flops_charged": node.flops_charged,
                "compute_time": node.compute_time,
                "kernel_flops": dict(node.kernel_flops),
                "supervisor_events": list(node.supervisor_events),
                "scu": node.scu.snapshot_state(),
                "irq": (ic.seen_bits, ic.latched_bits, ic.presented_bits),
            }
        links = {
            key: link.snapshot_state()
            for key, link in sorted(self.network.links.items())
            if self.shard_of(key[0]) == shard
        }
        trace_records: List[TraceRecord] = []
        if self.trace is not None:
            trace_records = [
                r for r in self.trace.records if r.seq >= trace_watermark
            ]
        return {"nodes": nodes, "links": links, "trace": trace_records}

    def _apply_shard_snapshots(self, snaps: List[Tuple[int, dict, float]]) -> None:
        """Merge per-shard worker snapshots back into the parent machine.

        Trace records are re-emitted in the global ``(time, seq, shard)``
        order — the same total order the serial executor produces — so a
        forked run's trace multiset *and* sequence match the serial one.
        """
        merged_trace: List[Tuple[float, int, int, TraceRecord]] = []
        for shard, snap, _lane_now in snaps:
            for node_id, st in sorted(snap["nodes"].items()):
                node = self.nodes[node_id]
                node.memory._buffers = st["buffers"]
                node.memory._regions = st["regions"]
                node.memory.read_bytes = st["read_bytes"]
                node.memory.write_bytes = st["write_bytes"]
                node.flops_charged = st["flops_charged"]
                node.compute_time = st["compute_time"]
                node.kernel_flops = st["kernel_flops"]
                node.supervisor_events = st["supervisor_events"]
                node.scu.restore_state(st["scu"])
                ic = self.interrupts[node_id]
                ic.seen_bits, ic.latched_bits, ic.presented_bits = st["irq"]
                ic._presentation_scheduled = False
            for key, link_state in sorted(snap["links"].items()):
                self.network.links[key].restore_state(link_state)
            for r in snap["trace"]:
                merged_trace.append((r.time, r.seq, shard, r))
        if self.trace is not None:
            merged_trace.sort(key=lambda item: (item[0], item[1], item[2]))
            for _t, _s, _k, r in merged_trace:
                self.trace.records.append(
                    TraceRecord(r.time, r.tag, r.fields, self.trace.emitted)
                )
                self.trace.emitted += 1

    # -- machine-wide services ---------------------------------------------------
    def raise_partition_interrupt(self, node_id: int, bits: int) -> None:
        self.interrupts[node_id].raise_irq(bits)

    def _handle_link_down(self, node_id: int, direction: int, reason: str) -> None:
        """An SCU watchdog declared a direction dead (section 2.2 item 2).

        Record the report and raise the hard-fault partition-interrupt bit
        from the detecting node; the torus-redundant interrupt flood
        reaches the host even with one cable gone.  Repeat reports re-raise
        the same bit, which the controllers dedup (``seen_bits``).

        On a sharded machine the interrupt flood stays in-lane (it rides
        the mesh) but the host-daemon report crosses to the coordinator
        as a window notification — under fork the detecting node's log
        would otherwise die with the worker.
        """
        if self.shards > 1:
            self.sim.router.notify(
                "link_down", node=node_id, direction=direction, reason=reason
            )
        else:
            self.link_down_log.append((node_id, direction, reason))
        self.interrupts[node_id].raise_irq(FAULT_IRQ_BIT)

    def _link_down_note(self, note) -> None:
        """Coordinator side of the sharded LINK_DOWN report path."""
        d = note.data
        self.link_down_log.append((d["node"], d["direction"], d["reason"]))

    def audit_checksums(self) -> List[str]:
        """End-of-run link checksum comparison (empty list = clean)."""
        return self.network.audit_checksums()

    def __repr__(self) -> str:
        dims = "x".join(map(str, self.config.dims))
        return f"QCDOCMachine({dims} = {self.n_nodes} nodes)"
