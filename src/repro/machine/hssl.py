"""HSSL: the bit-serial physical link layer.

Paper section 2.2: "The fundamental physical link ... is a bit-serial
connection between neighboring nodes ... run at the same clock speed as the
processor.  When powered on and released from reset, these HSSL controllers
transmit a known byte sequence between the sender and receiver on the link,
establishing optimal times for sampling the incoming bit stream and
determining where the byte boundaries are.  Once trained, the HSSL
controllers exchange so-called idle bytes when data transmission is not
being done."

A :class:`SerialLink` is **unidirectional**; the mesh instantiates two per
neighbour pair per axis.  It serialises frames one at a time (it is a single
wire), delivers them after serialisation + time-of-flight, and can inject
single-bit faults from a deterministic RNG stream for the resend-protocol
experiments (E14).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.machine.asic import ASICConfig
from repro.machine.packets import Frame, PacketType
from repro.sim.core import Event, Simulator
from repro.sim.trace import Trace
from repro.util.errors import ProtocolError

#: bytes in the training sequence (known pattern scanned for byte boundaries)
TRAINING_BYTES = 256


class SerialLink:
    """One unidirectional bit-serial wire between two SCUs.

    Parameters
    ----------
    bit_error_rate:
        Probability per wire bit of a flip; applied per frame with a
        deterministic RNG so fault-injection runs are reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        asic: ASICConfig,
        name: str = "link",
        trace: Optional[Trace] = None,
        error_rng: Optional[np.random.Generator] = None,
        bit_error_rate: float = 0.0,
    ):
        self.sim = sim
        self.asic = asic
        self.name = name
        self.trace = trace
        self.error_rng = error_rng
        self.bit_error_rate = float(bit_error_rate)
        self.trained = False
        self._receiver: Optional[Callable[[Frame], None]] = None
        self._busy_until = 0.0
        self.frames_sent = 0
        self.bits_sent = 0
        self.faults_injected = 0
        #: seconds the wire spent clocking bits (busy time, for utilisation)
        self.busy_seconds = 0.0
        # -- permanent fault state (vs the transient flips above) ----------
        #: ``False`` once the cable is cut or the far end is dead: frames
        #: clock out of the sender normally but are never delivered.
        self.alive = True
        #: stuck-at fault: every payload frame arrives corrupt, so the
        #: receiver requests a resend of the same word forever.
        self.stuck = False
        #: frames that vanished into a dead cable
        self.frames_dropped = 0
        #: frames clocked out but not yet handed to the receiver — the
        #: wire's contribution to quiescence (a cancelled transfer's
        #: frames are still *on the wire* after the units reset, and a
        #: partition must not be reallocated until they have landed and
        #: been discarded by the drain filter)
        self.in_transit = 0
        #: ``(router, dst_shard, key)`` when this wire crosses a shard
        #: boundary of a sharded simulator (set by
        #: :meth:`repro.machine.network.MeshNetwork.bind_shards`):
        #: deliveries are then posted through the window barrier instead
        #: of scheduled directly.  ``None`` = same-shard (the seed path).
        self.cross_shard = None

    # -- permanent faults --------------------------------------------------
    def fail(self, mode: str = "dead") -> None:
        """Inject a *permanent* fault: ``"dead"`` (no delivery) or
        ``"stuck"`` (every payload frame corrupt).

        Unlike the transient ``bit_error_rate`` flips — which the SCU's
        automatic-resend protocol absorbs — a permanent fault can only be
        cleared by hardware replacement; the simulator never un-fails a
        link.  The SCU watchdog is what turns this condition into a
        :class:`~repro.util.errors.LinkDownError`.
        """
        if mode == "dead":
            self.alive = False
        elif mode == "stuck":
            self.stuck = True
        else:
            raise ProtocolError(f"unknown permanent link-fault mode {mode!r}")
        if self.trace is not None:
            self.trace.emit("link.down", link=self.name, mode=mode)

    @property
    def healthy(self) -> bool:
        """Usable for data: alive, not stuck-at."""
        return self.alive and not self.stuck

    # -- wiring -----------------------------------------------------------
    def set_receiver(self, callback: Callable[[Frame], None]) -> None:
        self._receiver = callback

    # -- training -----------------------------------------------------------
    def train(self) -> Event:
        """Run the training byte exchange; succeeds when the link is usable.

        A dead cable never completes training (the known byte sequence
        never arrives): the returned event stays pending forever, which is
        why bring-up must skip links already known dead.
        """
        done = self.sim.event()
        if not self.alive:
            return done
        t = TRAINING_BYTES * 8 / self.asic.clock_hz

        def finish():
            if not self.alive:
                return  # died while training
            self.trained = True
            if self.trace is not None:
                self.trace.emit("link.trained", link=self.name)
            done.succeed()

        self.sim.schedule(t, finish)
        return done

    @property
    def training_time(self) -> float:
        return TRAINING_BYTES * 8 / self.asic.clock_hz

    # -- transmission ---------------------------------------------------------
    def transmit(self, frame: Frame) -> Event:
        """Serialise a frame onto the wire.

        Returns an event that succeeds when the *sender* has finished
        clocking the frame out (the wire is then free for the next frame).
        Delivery to the receiver happens ``wire_latency`` later.
        """
        if not self.trained:
            raise ProtocolError(f"{self.name}: transmit before HSSL training")
        if self._receiver is None:
            raise ProtocolError(f"{self.name}: no receiver attached")

        bits = frame.wire_bits(
            self.asic.frame_header_bits, self.asic.frame_payload_bits
        )
        start = max(self.sim.now, self._busy_until)
        serialised = start + bits / self.asic.clock_hz
        self._busy_until = serialised
        self.frames_sent += 1
        self.bits_sent += bits
        self.busy_seconds += serialised - start

        if self.stuck and frame.nwords > 0 and frame.corrupt_bit is None:
            # Stuck-at fault: the same wire bit is pinned, so every payload
            # frame fails its header-code/parity check at the receiver.
            frame.corrupt_bit = 0
            self.faults_injected += 1
        elif (
            self.error_rng is not None
            and self.bit_error_rate > 0.0
            and frame.nwords > 0
            and self.error_rng.random() < self.bit_error_rate * bits
        ):
            frame.corrupt_bit = int(self.error_rng.integers(0, bits))
            self.faults_injected += 1
            if self.trace is not None:
                self.trace.emit(
                    "link.fault", link=self.name, bit=frame.corrupt_bit, seq=frame.seq
                )

        done = self.sim.event()
        self.sim.schedule(serialised - self.sim.now, done.succeed)
        if self.alive:
            arrival = serialised - self.sim.now + self.asic.wire_latency
            self.in_transit += 1
            if self.cross_shard is None:
                self.sim.schedule(arrival, self._deliver, frame)
            else:
                # Crossing a shard boundary: batched into the window
                # barrier.  ``arrival >= shard_lookahead`` always (at
                # minimum one bare header + time of flight), so the
                # delivery lands beyond the current window's horizon.
                router, dst_shard, key = self.cross_shard
                router.post_frame(dst_shard, self.sim.now + arrival, key, frame)
        else:
            # Dead cable: the sender clocks the bits out normally (it has
            # no way to know) but nothing arrives at the far end.
            self.frames_dropped += 1
        return done

    def _deliver(self, frame: Frame) -> None:
        self.in_transit -= 1
        if not self.alive:
            # The cable died while this frame was in flight.
            self.frames_dropped += 1
            return
        if self.trace is not None:
            self.trace.emit(
                "link.deliver",
                link=self.name,
                ptype=frame.ptype.name,
                seq=frame.seq,
                nwords=frame.nwords,
            )
        self._receiver(frame)  # type: ignore[misc]

    # -- fork-executor state transfer ---------------------------------------
    #: plain-value attributes a forked shard worker owns and ships home
    _SNAPSHOT_ATTRS = (
        "trained",
        "_busy_until",
        "frames_sent",
        "bits_sent",
        "faults_injected",
        "busy_seconds",
        "alive",
        "stuck",
        "frames_dropped",
        "in_transit",
    )

    #: live-heap-only state (REPRO504): the receiver callback is wired
    #: into the peer SCU's dispatcher at attach time and is re-created
    #: by topology construction, never shipped across the fork boundary
    _SNAPSHOT_TRANSIENT = ("_receiver",)

    def snapshot_state(self) -> dict:
        """Picklable wire state/counters (fork-executor gather)."""
        return {name: getattr(self, name) for name in self._SNAPSHOT_ATTRS}

    def restore_state(self, state: dict) -> None:
        for name, value in sorted(state.items()):
            setattr(self, name, value)

    # -- idle keepalive ---------------------------------------------------------
    def send_idle(self) -> Event:
        """Transmit one idle frame (trained-link keepalive)."""
        return self.transmit(Frame(PacketType.IDLE))

    def __repr__(self) -> str:
        return f"SerialLink({self.name}, trained={self.trained})"
