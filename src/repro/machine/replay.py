"""Compiled event-trace replay for steady-state stored-descriptor exchanges.

The distributed operators apply the same dslash thousands of times per
solve, and every application runs the *identical* SCU event schedule: the
same stored descriptors start in the same groups, every face moves as one
error-free frame (``word_batch="face"``), and the protocol interleaving is
a pure function of the ASIC latency constants.  Interpreting that schedule
through the full per-frame protocol machinery (send process, window
bookkeeping, frame dispatch, ACK/EOT round trips) costs a dozen-plus heap
events per transfer — pure simulator overhead once the schedule is known.

This module memoizes the schedule.  Each operator application is bracketed
as a **hot epoch** (:meth:`repro.comms.api.CommsAPI.begin_hot_epoch` /
``end_hot_epoch``).  The first epoch of a tag runs fully interpreted while
the engine *learns*: it validates that every stored transfer completed as
a single error-free frame and records its descriptor signature.  From the
second epoch on, ``start_stored`` transfers are *replayed*: the engine
moves the payload directly from the sender's memory into the receiver's
descriptor target and schedules the completion callbacks from the closed
-form protocol timeline — the exact times the interpreted protocol would
produce:

* data frame clocked out after ``dma_fetch + scu_inject``, serialising
  ``header + 64 n`` bits (queueing behind any busy wire, as
  ``SerialLink.transmit`` would);
* delivery ``wire_latency`` later; if no descriptor is posted yet the
  payload parks in the engine's idle-hold slot (idle-receive counters
  tick exactly as ``RecvUnit.on_data`` would);
* on acceptance the receiver's ACK serialises on the reverse wire, data
  becomes usable after ``scu_eject + dma_store``, and the sender clocks
  its EOT out once the ACK lands.

Everything observable is preserved bit-for-bit against the interpreted
path: result buffers, per-unit transfer counters, link frame/bit/busy
accounting, per-end checksums, sanitizer DMA claims, and the trace
records — ``scu.send`` / ``scu.recv`` / ``scu.start_stored`` with their
times and durations, plus the per-frame ``link.deliver`` records for the
data, ACK and EOT frames (emitted only when tracing is on).  Six heap
callbacks replace the interpreted protocol's process machinery, frame
objects, and per-frame dispatch.

Validity gate (one verdict per wire pair per epoch):

* both wires of the pair alive, trained, not stuck, ``bit_error_rate == 0``
  and not ``cross_shard`` (cross-shard pairs always interpret — sharded
  runs stay bit-identical because replay only ever engages where the
  interpreted schedule is deterministic and both SCUs are in-process);
* hard-fault watchdogs disabled on both nodes (fault-tolerance machinery
  must observe real protocol stalls, so watchdog-armed machines never
  compile);
* both engines hold a compiled record for the epoch tag.

Because the two nodes of a pair reach the same logical epoch at
*different simulation times* (the ranks skew by wire latencies), the gate
is never evaluated twice: the first endpoint to touch a pair in its k-th
epoch of a tag evaluates the gate once and writes the verdict into
**both** engines' ledgers, keyed by (direction, tag, k); the other
endpoint reads the stored verdict back.  A transfer's matched send and
receive therefore always agree on replay-vs-interpret, even when one
node is still learning epoch k while its neighbour has already compiled
— the failure mode that otherwise deadlocks (a replayed send delivering
into the engine while an interpreted receiver starves on the wire).
Epoch indices line up across nodes because every rank runs the same
program, and a node cannot finish epoch k before its neighbour has begun
it (the epoch's receives rendezvous with the neighbour's sends).

The compiled record is invalidated whenever its assumptions can have
changed: a descriptor is (re)stored, active transfers are cancelled
(partition abort), or a link goes down.  The next epoch then relearns.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.util.errors import ProtocolError


class _TransferSig:
    """Learned identity of one stored transfer within an epoch."""

    __slots__ = ("desc_id", "buffer", "nwords", "group", "batch", "indices")

    def __init__(self, descriptor, group, batch):
        self.desc_id = id(descriptor)
        self.buffer = descriptor.buffer
        self.nwords = descriptor.total_words
        self.group = group
        self.batch = batch
        self.indices = descriptor.indices()


class EpochRecord:
    """What one learning epoch established about a tag's schedule."""

    __slots__ = ("tag", "compiled", "uncompilable", "transfers", "pending")

    def __init__(self, tag: str):
        self.tag = tag
        self.compiled = False
        #: reason this tag can never replay (``None`` = still eligible)
        self.uncompilable: Optional[str] = None
        self.transfers: Dict[Tuple[str, int], _TransferSig] = {}
        #: learn-time transfers started but not yet completed
        self.pending = 0


class _SendCtx:
    """Sender-side state threaded through a replayed transfer's callbacks."""

    __slots__ = ("engine", "direction", "unit", "done", "t0", "nwords")

    def __init__(self, engine, direction, unit, done, t0, nwords):
        self.engine = engine
        self.direction = direction
        self.unit = unit
        self.done = done
        self.t0 = t0
        self.nwords = nwords


class _PendingRecv:
    """A replayed receive posted and waiting for its payload."""

    __slots__ = ("direction", "sig", "done", "t_post")

    def __init__(self, direction, sig, done, t_post):
        self.direction = direction
        self.sig = sig
        self.done = done
        self.t_post = t_post


class ReplayEngine:
    """Per-SCU learn/replay state machine for hot-epoch transfers."""

    def __init__(self, scu, enabled: bool = True):
        self.scu = scu
        self.enabled = enabled
        self.records: Dict[str, EpochRecord] = {}
        self.active_tag: Optional[str] = None
        #: ``None`` (interpreted), ``"learn"`` or ``"replay"``
        self.mode: Optional[str] = None
        #: how many epochs of each tag this node has begun (the epoch
        #: index k that lines up across nodes — see the verdict ledger)
        self.epoch_seq: Dict[str, int] = {}
        self.active_seq: int = 0
        #: pair verdict ledger: (direction, tag, k) -> replay this pair's
        #: epoch-k transfers?  Written by whichever endpoint of the pair
        #: evaluates the gate first (into both engines), read by the other.
        self._verdicts: Dict[Tuple[int, str, int], bool] = {}
        #: replayed receives posted this epoch, awaiting delivery
        self._pending: Dict[int, _PendingRecv] = {}
        #: payload delivered before the receive was posted (idle hold)
        self._held: Dict[int, Tuple[np.ndarray, _SendCtx]] = {}
        # -- statistics (read by tests and benchmarks) ---------------------
        self.epochs_learned = 0
        self.epochs_replayed = 0
        self.replayed_transfers = 0
        self.interpreted_fallbacks = 0
        self.invalidations = 0

    # -- epoch bracketing ---------------------------------------------------
    def begin_epoch(self, tag: str) -> None:
        if not self.enabled:
            return
        if self.active_tag is not None:
            raise ProtocolError(
                f"node {self.scu.node_id}: hot epoch {self.active_tag!r} "
                f"still active when {tag!r} begins"
            )
        self.active_tag = tag
        self.active_seq = self.epoch_seq.get(tag, 0) + 1
        self.epoch_seq[tag] = self.active_seq
        if self._verdicts:
            # Prune stale verdicts: anything older than the previous epoch
            # of this tag can no longer be consulted by either endpoint
            # (the neighbour is at most one epoch behind — rendezvous).
            keep = self.active_seq - 1
            self._verdicts = {
                key: v
                for key, v in self._verdicts.items()
                if key[1] != tag or key[2] >= keep
            }
        rec = self.records.get(tag)
        if rec is not None and rec.uncompilable is not None:
            self.mode = None
        elif rec is not None and rec.compiled:
            self.mode = "replay"
        else:
            # no record, or a half-learned one from an aborted epoch
            self.records[tag] = EpochRecord(tag)
            self.mode = "learn"

    def end_epoch(self, tag: str) -> None:
        if not self.enabled:
            return
        if self.active_tag != tag:
            raise ProtocolError(
                f"node {self.scu.node_id}: end of hot epoch {tag!r} but "
                f"{self.active_tag!r} is active"
            )
        if self.mode == "learn":
            rec = self.records.get(tag)
            if rec is not None:
                if rec.pending:
                    rec.uncompilable = "transfer outlived its learning epoch"
                elif rec.uncompilable is None:
                    rec.compiled = True
                    self.epochs_learned += 1
        elif self.mode == "replay":
            if self._pending:
                raise ProtocolError(
                    f"node {self.scu.node_id}: replayed receives on "
                    f"directions {sorted(self._pending)} never got their "
                    "payload (replay causality violation)"
                )
            self.epochs_replayed += 1
        self.active_tag = None
        self.mode = None

    def invalidate(self, reason: str) -> None:
        """Drop every compiled record; the next epoch per tag relearns."""
        if not self.enabled or (not self.records and self.active_tag is None):
            return
        self.records.clear()
        self.invalidations += 1
        # Mid-epoch invalidation: stop learning/replaying further transfers
        # this epoch (already-scheduled replay completions still land).
        self.mode = None
        # Retract standing pair verdicts on both ends of every wire pair so
        # neighbours re-evaluate against the cleared records (same-shard
        # peers only — cross-shard pairs never hold verdicts).
        self._verdicts.clear()
        for direction, (peer_scu, arrival) in self.scu.peers.items():
            link = self.scu.out_links.get(direction)
            if link is None or link.cross_shard is not None:
                continue  # never touch a cross-shard twin's state
            eng = peer_scu.replay
            if eng is not None and eng._verdicts:
                eng._verdicts = {
                    key: v
                    for key, v in eng._verdicts.items()
                    if key[0] != arrival
                }

    # -- learning -----------------------------------------------------------
    def observe(self, kind, direction, descriptor, group, batch, event) -> None:
        """Record one interpreted stored transfer of a learning epoch."""
        if self.mode != "learn":
            return
        rec = self.records.get(self.active_tag)
        if rec is None or rec.uncompilable is not None:
            return
        if kind == "send":
            unit = self.scu.send_units[direction]
            snap = (unit.payload_words, unit.acks_received, unit.resends)
        else:
            unit = self.scu.recv_units[direction]
            snap = (
                unit.payload_words,
                unit.acks_sent,
                unit.parity_errors + unit.resend_requests,
            )
        rec.pending += 1
        event.add_callback(
            lambda ev: self._learn_done(
                rec, kind, direction, descriptor, group, batch, unit, snap, ev
            )
        )

    def _learn_done(
        self, rec, kind, direction, descriptor, group, batch, unit, snap, event
    ) -> None:
        rec.pending -= 1
        if rec.uncompilable is not None:
            return
        if not event.ok:
            rec.uncompilable = "transfer failed during learning epoch"
            return
        dp = unit.payload_words - snap[0]
        da = (unit.acks_received if kind == "send" else unit.acks_sent) - snap[1]
        if kind == "send":
            derr = unit.resends - snap[2]
        else:
            derr = unit.parity_errors + unit.resend_requests - snap[2]
        if derr != 0:
            rec.uncompilable = "resends/parity errors during learning epoch"
        elif da != 1:
            rec.uncompilable = "multi-frame transfer (batch below face size)"
        elif dp != descriptor.total_words:
            rec.uncompilable = "partial transfer during learning epoch"
        else:
            rec.transfers[(kind, direction)] = _TransferSig(
                descriptor, group, batch
            )

    # -- replay -------------------------------------------------------------
    def try_transfer(self, kind, direction, descriptor, group, batch):
        """Replay one stored transfer, or return ``None`` to interpret it."""
        if self.mode != "replay":
            return None
        rec = self.records[self.active_tag]
        sig = rec.transfers.get((kind, direction))
        if sig is None:
            # the learning epoch never saw this transfer: schedule changed
            # without an invalidation — engine invariant broken
            raise ProtocolError(
                f"node {self.scu.node_id}: compiled epoch "
                f"{self.active_tag!r} has no ({kind}, {direction}) transfer"
            )
        if (
            sig.desc_id != id(descriptor)
            or sig.group != group
            or sig.batch != batch
        ):
            raise ProtocolError(
                f"node {self.scu.node_id}: stored ({kind}, {direction}) "
                "descriptor changed without invalidating the compiled epoch"
            )
        peer = self._pair_verdict(direction)
        if peer is None:
            self.interpreted_fallbacks += 1
            return None
        if kind == "send":
            return self._replay_send(direction, sig, peer)
        return self._replay_recv(direction, sig)

    def _pair_verdict(self, direction):
        """One replay-vs-interpret verdict per wire pair per epoch index.

        The two nodes of a pair reach the same logical epoch at different
        simulation times, so any gate evaluated independently at each end
        can disagree (one neighbour may still be learning when the other
        starts replaying — an asymmetry that deadlocks).  Instead, the
        first endpoint to touch the pair in its k-th epoch evaluates the
        gate once and stores the verdict in *both* engines' ledgers; the
        other endpoint reads it back.  A transfer's matched send and
        receive therefore always agree.
        """
        scu = self.scu
        pair = scu.peers.get(direction)
        if pair is None:
            return None
        peer_scu, arrival = pair
        # Structural screen before touching any ledger: cross-shard pairs
        # never replay and their peer objects are stale fork twins whose
        # state must not be written.
        my_link = scu.out_links.get(direction)
        peer_link = peer_scu.out_links.get(arrival)
        if (
            my_link is None
            or my_link.cross_shard is not None
            or peer_link is None
            or peer_link.cross_shard is not None
        ):
            return None
        peer_engine = peer_scu.replay
        if peer_engine is None:
            return None
        key = (direction, self.active_tag, self.active_seq)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = self._evaluate_pair(
                peer_scu, peer_engine, my_link, peer_link
            )
            self._verdicts[key] = verdict
            peer_engine._verdicts[
                (arrival, self.active_tag, self.active_seq)
            ] = verdict
        if not verdict:
            return None
        return peer_engine, arrival

    def _evaluate_pair(self, peer_scu, peer_engine, my_link, peer_link) -> bool:
        """The gate proper, evaluated once per (pair, tag, epoch index)."""
        if self.scu.watchdog_enabled or peer_scu.watchdog_enabled:
            return False
        if not peer_engine.enabled:
            return False
        peer_rec = peer_engine.records.get(self.active_tag)
        if peer_rec is None or not peer_rec.compiled or peer_rec.uncompilable:
            return False
        for link in (my_link, peer_link):
            if (
                not link.healthy
                or not link.trained
                or link.bit_error_rate > 0.0
            ):
                return False
        return True

    def _replay_send(self, direction, sig, peer):
        scu, sim, asic = self.scu, self.scu.sim, self.scu.asic
        unit = scu.send_units[direction]
        if unit.active:
            return None  # interpreted path reports the protocol error
        peer_engine, arrival = peer
        # Exactly what SendUnit.start captures (a view when already
        # contiguous uint64 — identical aliasing semantics to interpreted).
        words = np.ascontiguousarray(
            scu.memory_read(sig.buffer, sig.indices), dtype=np.uint64
        )
        n = len(words)
        unit.checksum.update(words)
        unit.wire_words += n
        done = sim.event()
        ctx = _SendCtx(self, direction, unit, done, sim.now, n)
        san = scu.sanitizer
        if san is not None:
            claim = san.dma_begin(scu.node_id, sig.buffer, "send", direction, n)
            done.add_callback(lambda _e, c=claim, s=san: s.dma_end(c))
        sim.schedule(
            asic.dma_fetch_latency + asic.scu_inject_latency,
            self._tx_data,
            ctx,
            words,
            peer_engine,
            arrival,
        )
        self.replayed_transfers += 1
        return done

    def _replay_recv(self, direction, sig):
        scu, sim = self.scu, self.scu.sim
        unit = scu.recv_units[direction]
        if unit.descriptor is not None or unit.done is not None:
            return None  # interpreted path reports the protocol error
        done = sim.event()
        san = scu.sanitizer
        if san is not None:
            claim = san.dma_begin(
                scu.node_id, sig.buffer, "recv", direction, sig.nwords
            )
            done.add_callback(lambda _e, c=claim, s=san: s.dma_end(c))
        pending = _PendingRecv(direction, sig, done, sim.now)
        held = self._held.pop(direction, None)
        if held is not None:
            words, ctx = held
            self._replay_accept(pending, words, ctx)
        else:
            self._pending[direction] = pending
        self.replayed_transfers += 1
        return done

    # -- the closed-form protocol timeline ----------------------------------
    def _clock_out(self, direction: int, bits: int) -> float:
        """Serialise ``bits`` on this node's out-wire; return finish time.

        Mirrors :meth:`SerialLink.transmit` accounting exactly: queue
        behind ``_busy_until``, charge ``bits / clock_hz`` of busy time.
        """
        link = self.scu.out_links[direction]
        start = max(self.scu.sim.now, link._busy_until)
        end = start + bits / self.scu.asic.clock_hz
        link._busy_until = end
        link.frames_sent += 1
        link.bits_sent += bits
        link.busy_seconds += end - start
        return end

    def _emit_deliver(self, link, ptype: str, seq: int, nwords: int) -> None:
        """Emit the per-frame ``link.deliver`` record at delivery time.

        Matches :meth:`SerialLink._deliver` field-for-field so traced
        replayed runs produce the same trace multiset as interpreted ones.
        """
        link.trace.emit(
            "link.deliver", link=link.name, ptype=ptype, seq=seq, nwords=nwords
        )

    def _tx_data(self, ctx, words, peer_engine, arrival) -> None:
        """Clock the single data frame out; deliver it to the peer engine."""
        asic = self.scu.asic
        bits = asic.frame_header_bits + ctx.nwords * asic.frame_payload_bits
        end = self._clock_out(ctx.direction, bits)
        self.scu.sim.schedule(
            end + asic.wire_latency - self.scu.sim.now,
            peer_engine._replay_deliver,
            arrival,
            words,
            ctx,
        )

    def _replay_deliver(self, direction, words, ctx) -> None:
        """Payload lands on this node (receiver side of the pair)."""
        data_link = ctx.engine.scu.out_links[ctx.direction]
        if data_link.trace is not None:
            self._emit_deliver(data_link, "NORMAL", 0, len(words))
        unit = self.scu.recv_units[direction]
        unit.checksum.update(words)
        pending = self._pending.pop(direction, None)
        if pending is not None:
            self._replay_accept(pending, words, ctx)
            return
        if direction in self._held:
            raise ProtocolError(
                f"node {self.scu.node_id}: replay idle-hold collision on "
                f"direction {direction}"
            )
        # Idle receive: no descriptor posted yet — park the payload, tick
        # the idle-hold counters as RecvUnit.on_data would.
        unit.idle_hold_events += 1
        unit.idle_held_words_total += len(words)
        self._held[direction] = (words, ctx)

    def _replay_accept(self, pending, words, ctx) -> None:
        """Accept the payload: store it, ACK it, schedule completions."""
        scu, sim, asic = self.scu, self.scu.sim, self.scu.asic
        sig = pending.sig
        unit = scu.recv_units[pending.direction]
        scu.memory_write(sig.buffer, sig.indices, words)
        unit.payload_words += len(words)
        unit.acks_sent += 1
        # The ACK serialises on this node's out-wire toward the sender.
        ack_end = self._clock_out(pending.direction, asic.frame_header_bits)
        ack_link = scu.out_links[pending.direction]
        if ack_link.trace is not None:
            sim.schedule(
                ack_end + asic.wire_latency - sim.now,
                self._emit_deliver,
                ack_link,
                "ACK",
                sig.nwords,
                0,
            )
        # Data usable after the eject + DMA-store pipeline.
        sim.schedule(
            asic.scu_eject_latency + asic.dma_store_latency,
            self._finish_recv,
            pending,
        )
        # The sender clocks its EOT out once the ACK lands there.
        sim.schedule(
            ack_end + asic.wire_latency - sim.now, ctx.engine._tx_eot, ctx
        )

    def _finish_recv(self, pending) -> None:
        unit = self.scu.recv_units[pending.direction]
        unit.transfers_completed += 1
        if self.scu.trace is not None:
            self.scu.trace.emit(
                "scu.recv",
                node=self.scu.node_id,
                direction=pending.direction,
                words=pending.sig.nwords,
                dur=self.scu.sim.now - pending.t_post,
            )
        pending.done.succeed(pending.sig.nwords)

    def _tx_eot(self, ctx) -> None:
        """ACK landed back at the sender: clock out the trailing EOT."""
        ctx.unit.acks_received += 1
        end = self._clock_out(ctx.direction, self.scu.asic.frame_header_bits)
        eot_link = self.scu.out_links[ctx.direction]
        if eot_link.trace is not None:
            self.scu.sim.schedule(
                end + self.scu.asic.wire_latency - self.scu.sim.now,
                self._emit_deliver,
                eot_link,
                "EOT",
                ctx.nwords,
                0,
            )
        self.scu.sim.schedule(
            end - self.scu.sim.now, ctx.engine._finish_send, ctx
        )

    def _finish_send(self, ctx) -> None:
        unit = ctx.unit
        unit.payload_words += ctx.nwords
        unit.transfers_completed += 1
        if self.scu.trace is not None:
            self.scu.trace.emit(
                "scu.send",
                node=self.scu.node_id,
                direction=ctx.direction,
                words=ctx.nwords,
                resends=0,
                dur=self.scu.sim.now - ctx.t0,
            )
        ctx.done.succeed(ctx.nwords)

    # -- statistics ----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "epochs_learned": self.epochs_learned,
            "epochs_replayed": self.epochs_replayed,
            "replayed_transfers": self.replayed_transfers,
            "interpreted_fallbacks": self.interpreted_fallbacks,
            "invalidations": self.invalidations,
            "compiled_tags": sum(
                1 for r in self.records.values() if r.compiled
            ),
        }
