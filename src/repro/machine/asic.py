"""Published QCDOC ASIC and machine parameters (paper sections 2.1-2.4).

Every number here is taken from the paper:

* PPC 440 core, 32-bit, with a 64-bit IEEE FPU doing one multiply and one
  add per cycle -> **2 flops/cycle**, 1 Gflops peak at 500 MHz;
* 32 kB instruction and data caches;
* 4 MB on-chip EDRAM behind a prefetching controller with **two** streams,
  1024-bit internal rows, a 128-bit processor connection at full clock
  speed -> **8 GB/s** at 500 MHz;
* external DDR SDRAM controller at **2.6 GB/s**, up to **2 GB**/node;
* 12 nearest neighbours in the 6-torus, concurrent sends and receives ->
  **24** independent unidirectional bit-serial links at the processor
  clock; 64-bit payload framed with an 8-bit header (including two parity
  bits) -> 72 bits/word, 1.3 GB/s aggregate at 500 MHz;
* memory-to-memory nearest-neighbour latency ~**600 ns**;
* packaging: 2 nodes/daughterboard (~20 W), 32 daughterboards/motherboard
  (64 nodes as a 2^6 hypercube), 8 motherboards/crate, 2 crates/rack
  (1024 nodes, <10 kW, 1 Tflops peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.util.errors import ConfigError
from repro.util.units import GB, KB, MB, MHZ, NS


@dataclass(frozen=True)
class ASICConfig:
    """Per-node hardware parameters."""

    clock_hz: float = 500 * MHZ
    flops_per_cycle: int = 2  # fused multiply + add units
    icache_bytes: int = int(32 * KB)
    dcache_bytes: int = int(32 * KB)

    # -- memory system ------------------------------------------------------
    edram_bytes: int = int(4 * MB)
    edram_row_bits: int = 1024
    edram_port_bits: int = 128  # processor connection, full clock speed
    edram_prefetch_streams: int = 2
    edram_latency: float = 80 * NS  # first-word access through the controller
    ddr_bandwidth: float = 2.6 * GB
    ddr_bytes: int = int(2 * GB)
    ddr_latency: float = 120 * NS

    # -- serial communications ---------------------------------------------
    n_link_directions: int = 12  # nearest neighbours in the 6-torus
    frame_header_bits: int = 8  # includes the two data-parity bits
    frame_payload_bits: int = 64
    ack_window_words: int = 3  # "three in the air"
    idle_hold_words: int = 3  # idle-receive holding registers
    #: fixed (non-serialisation) components of the first-word latency,
    #: calibrated so the total nearest-neighbour memory-to-memory latency
    #: is the paper's 600 ns at 500 MHz: DMA fetch 120 + SCU inject 96 +
    #: wire 10 + SCU eject 110 + DMA store 120 = 456 ns; + 144 ns to
    #: serialise one 72-bit frame = 600 ns.
    dma_fetch_latency: float = 120 * NS
    scu_inject_latency: float = 96 * NS
    wire_latency: float = 10 * NS
    scu_eject_latency: float = 110 * NS
    dma_store_latency: float = 120 * NS
    #: pass-through cut-through granularity for global operations: only
    #: 8 bits are received before forwarding begins (paper section 2.2)
    passthrough_bits: int = 8

    # -- SCU hard-fault watchdog (companion papers hep-lat/0306023 / 0309096)
    #: consecutive RESEND requests (without intervening ack progress) a
    #: send unit tolerates before declaring the link dead.  One injected
    #: transient costs at most ``ack_window_words`` RESENDs, so a storm of
    #: this length means the same words are failing over and over — a
    #: stuck-at fault, not a bit flip.
    watchdog_resend_limit: int = 24
    #: base no-progress timeout: a send unit with unacknowledged words in
    #: flight (or a recv unit with a posted descriptor) that sees no
    #: progress for this long starts the backoff ladder.
    watchdog_timeout: float = 40e-6
    #: exponential backoff multiplier between successive no-progress probes
    watchdog_backoff_factor: float = 2.0
    #: probes on the backoff ladder before the watchdog trips; bounds
    #: total detection latency (see :attr:`watchdog_detection_budget`)
    watchdog_max_backoffs: int = 5

    # -- derived ------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        return self.clock_hz * self.flops_per_cycle

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def edram_bandwidth(self) -> float:
        """Port width x clock: 8 GB/s at 500 MHz."""
        return (self.edram_port_bits / 8.0) * self.clock_hz

    @property
    def frame_bits(self) -> int:
        return self.frame_header_bits + self.frame_payload_bits

    @property
    def word_serialisation_time(self) -> float:
        """Time to clock one 72-bit frame onto the bit-serial wire."""
        return self.frame_bits / self.clock_hz

    @property
    def link_bandwidth(self) -> float:
        """Payload bytes/s of one unidirectional link."""
        return (self.frame_payload_bits / 8.0) / self.word_serialisation_time

    @property
    def total_link_bandwidth(self) -> float:
        """All 24 concurrent unidirectional links: 1.3 GB/s at 500 MHz."""
        return 2 * self.n_link_directions * self.link_bandwidth

    @property
    def neighbour_latency(self) -> float:
        """First-word memory-to-memory latency: 600 ns at 500 MHz."""
        return (
            self.dma_fetch_latency
            + self.scu_inject_latency
            + self.word_serialisation_time
            + self.wire_latency
            + self.scu_eject_latency
            + self.dma_store_latency
        )

    @property
    def passthrough_latency(self) -> float:
        """Per-node forwarding latency in global (cut-through) mode."""
        return self.passthrough_bits / self.clock_hz + self.wire_latency

    @property
    def shard_lookahead(self) -> float:
        """Conservative lookahead bound for the sharded event engine.

        The shortest cross-node influence the mesh can carry is a
        bare-header HSSL frame (an ACK/RESEND/EOT control frame has no
        payload words): header serialisation plus time of flight,
        ``frame_header_bits / clock_hz + wire_latency`` — 26 ns at the
        500 MHz design point.  Any frame transmitted at time ``t``
        arrives at ``>= t + shard_lookahead``, so shards synchronised at
        windows of this width never see traffic from their own window
        (:mod:`repro.sim.sync`).  Global-sum completions clear the same
        bound with margin: one reduction costs at least a full 72-bit
        word serialisation (144 ns).
        """
        return self.frame_header_bits / self.clock_hz + self.wire_latency

    @property
    def watchdog_detection_budget(self) -> float:
        """Worst-case no-progress detection latency of the SCU watchdog.

        The sum of the full backoff ladder: base timeout + every probe up
        to ``watchdog_max_backoffs`` (geometric in
        ``watchdog_backoff_factor``).  A permanently dead link is declared
        down within this budget of the last forward progress.
        """
        t = self.watchdog_timeout
        total = t
        for k in range(self.watchdog_max_backoffs):
            t *= self.watchdog_backoff_factor
            total += t
        return total

    def at_clock(self, clock_hz: float) -> "ASICConfig":
        """The same ASIC run at a different clock (360/420/450 MHz tests)."""
        if clock_hz <= 0:
            raise ConfigError(f"bad clock {clock_hz}")
        return replace(self, clock_hz=clock_hz)


@dataclass(frozen=True)
class MachineConfig:
    """Whole-machine packaging and composition parameters."""

    asic: ASICConfig = field(default_factory=ASICConfig)
    dims: Tuple[int, ...] = (2, 2, 2, 2, 2, 2)  # one motherboard

    nodes_per_daughterboard: int = 2
    daughterboards_per_motherboard: int = 32
    motherboards_per_crate: int = 8
    crates_per_rack: int = 2
    #: "about 20 Watts for both nodes, including the DRAMs" (section 2.4);
    #: the rack-level figure ("less than 10,000 watts" for 512 boards plus
    #: motherboard overheads) pins the average slightly below 20.
    daughterboard_power_watts: float = 18.5
    rack_power_budget_watts: float = 10_000.0
    rack_footprint_sqft: float = 6.0  # stacked water-cooled racks, ~60 sqft
    # for 10k+ nodes (paper section 2.4)

    @property
    def n_nodes(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def nodes_per_motherboard(self) -> int:
        return self.nodes_per_daughterboard * self.daughterboards_per_motherboard

    @property
    def nodes_per_rack(self) -> int:
        return (
            self.nodes_per_motherboard
            * self.motherboards_per_crate
            * self.crates_per_rack
        )

    @property
    def peak_flops(self) -> float:
        return self.n_nodes * self.asic.peak_flops

    def power_watts(self) -> float:
        """Machine power from the per-daughterboard figure."""
        return (self.n_nodes / self.nodes_per_daughterboard) * (
            self.daughterboard_power_watts
        )


#: Named configurations used throughout tests and benchmarks.
PRESETS: Dict[str, MachineConfig] = {
    # one motherboard: 64 nodes as a 2^6 hypercube (paper figure 4)
    "motherboard-64": MachineConfig(dims=(2, 2, 2, 2, 2, 2)),
    # the running 128-node benchmark machine (section 4) at 450 MHz
    "benchmark-128": MachineConfig(
        asic=ASICConfig().at_clock(450 * MHZ), dims=(2, 2, 2, 2, 2, 4)
    ),
    # the 512-node machine, validated at 360 MHz (section 4)
    "columbia-512": MachineConfig(
        asic=ASICConfig().at_clock(360 * MHZ), dims=(8, 4, 4, 2, 2, 1)
    ),
    # one water-cooled rack: 1024 nodes as 8x4x4x2x2x2 (section 4)
    "rack-1024": MachineConfig(dims=(8, 4, 4, 2, 2, 2)),
    # the $1.6M 4-rack machine under construction at Columbia
    "columbia-4096": MachineConfig(dims=(8, 8, 4, 4, 2, 2)),
    # the three 12,288-node 10+ Tflops machines (RBRC, UKQCD, US lattice)
    "production-12288": MachineConfig(dims=(8, 8, 8, 6, 2, 2)),
}
