"""The Serial Communications Unit (SCU).

Paper section 2.2.  Per node, the SCU manages 24 independent unidirectional
connections (12 send + 12 receive), each with:

* a **DMA engine** with block-strided access to local memory (zero copy:
  "data is not copied to a different memory location before it is sent");
* the **"three in the air"** protocol: up to three 64-bit words may be
  outstanding before an acknowledgement arrives, amortising the round trip
  while bounding receiver buffering;
* **idle receive**: if data arrives before the receiving node has posted a
  descriptor, the first three words are held in SCU registers *without*
  acknowledgement, blocking the sender — so sends and receives need no
  temporal ordering ("self-synchronizing on the individual link level");
* **automatic resend** on any single-bit error (detected by the header
  code / parity bits of :mod:`repro.machine.packets`), go-back-N within
  the window;
* **supervisor packets**: a single 64-bit word written into a register of
  the neighbour's SCU, raising a CPU interrupt there;
* per-end **checksums** compared at the end of a calculation;
* **stored-descriptor groups + per-direction completion**: persistent
  descriptors may be tagged with a group name, and ``start_stored`` starts
  one group per register write while returning *one completion event per
  (kind, direction)* rather than a single aggregate.  This is what lets
  the distributed Dirac pipeline overlap interior arithmetic with the 24
  concurrent DMA transfers and begin boundary work for an axis the moment
  that axis's halos land (paper section 4's sustained-efficiency story);
* **transfer counters**: per-unit payload/wire word counts (resends make
  wire > payload) so node programs and tests can audit traffic volumes.

Simulation granularity: protocol-exact behaviour is per 64-bit word.  For
large error-free transfers the unit can batch ``word_batch`` words per
frame; the handshake then operates at batch granularity with the window
scaled to one batch — semantics identical for error-free runs (used by the
distributed-physics layer for speed; protocol tests run with
``word_batch=1``).  ``word_batch="face"`` resolves the batch per transfer
to the full descriptor length, so a whole lattice face moves as one frame
event with vectorised checksum/parity bookkeeping — the hot-path
configuration for the distributed operators, which inherit the machine's
setting by default.  The batch is a property of the *sender's
transfer*: the receive unit is batch-agnostic (it accepts whatever frame
granularity arrives, holding at most one in-flight batch while idle), so a
mismatched send/recv batch is impossible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.machine.asic import ASICConfig
from repro.machine.faults import encode_link_down
from repro.machine.hssl import SerialLink
from repro.machine.packets import Frame, LinkChecksum, PacketType, decode_header, encode_header
from repro.machine.replay import ReplayEngine
from repro.sim.core import Event, Simulator
from repro.sim.trace import Trace
from repro.util.errors import FaultError, LinkDownError, ProtocolError

#: sentinel ``word_batch`` value: resolve the batch per transfer to the
#: whole descriptor length (one frame per face)
FACE_BATCH = "face"


def normalise_word_batch(word_batch) -> "int | str":
    """Validate a ``word_batch`` config value (positive int or ``"face"``)."""
    if word_batch == FACE_BATCH:
        return FACE_BATCH
    batch = int(word_batch)
    if batch < 1:
        raise ProtocolError(f"word_batch must be >= 1 or 'face', got {word_batch!r}")
    return batch


def resolve_word_batch(word_batch, nwords: int) -> int:
    """Concrete frame batch for one transfer of ``nwords`` words."""
    if word_batch == FACE_BATCH:
        return max(1, nwords)
    return max(1, int(word_batch))


@dataclass(frozen=True)
class DmaDescriptor:
    """Block-strided access pattern into a named local-memory buffer.

    Words ``offset + b*stride + i`` for ``b in range(nblocks)``,
    ``i in range(block_len)`` — the SCU hardware's native addressing, which
    is exactly what lattice face extraction needs (contiguous runs of sites
    separated by a fixed pitch).
    """

    buffer: str
    block_len: int
    nblocks: int = 1
    stride: int = 0
    offset: int = 0

    def __post_init__(self):
        if self.block_len < 1 or self.nblocks < 1 or self.offset < 0:
            raise ProtocolError(f"bad DMA descriptor {self}")
        if self.nblocks > 1 and self.stride < self.block_len:
            raise ProtocolError(
                f"overlapping DMA blocks: stride {self.stride} < block {self.block_len}"
            )

    @property
    def total_words(self) -> int:
        return self.block_len * self.nblocks

    def indices(self) -> np.ndarray:
        base = np.arange(self.block_len)
        starts = self.offset + self.stride * np.arange(self.nblocks)
        return (starts[:, None] + base[None, :]).reshape(-1)


class _ControlPort:
    """How send/recv units emit link-level control frames (ACK/RESEND).

    Control frames travel on the reverse wire of the pair — i.e. this
    node's *outgoing* link toward the same neighbour — sharing it with any
    data flowing that way (the `SerialLink` busy-time serialises them).
    """

    def __init__(self, link_getter: Callable[[], Optional[SerialLink]]):
        self._get = link_getter

    def send(self, ptype: PacketType, seq: int) -> None:
        link = self._get()
        if link is None:
            raise ProtocolError("control port has no reverse link attached")
        link.transmit(Frame(ptype, seq=seq))


class SendUnit:
    """One direction's transmit DMA engine."""

    def __init__(self, sim: Simulator, asic: ASICConfig, scu: "SCU", direction: int):
        self.sim = sim
        self.asic = asic
        self.scu = scu
        self.direction = direction
        self.checksum = LinkChecksum()
        #: resolved frame batch of the *active* transfer (words per frame)
        self._batch = 1
        self.active = False
        self.words: Optional[np.ndarray] = None
        self.base = 0  # oldest unacknowledged word
        self.next = 0  # next word to transmit
        self.done: Optional[Event] = None
        self._wake: Optional[Event] = None
        self.resends = 0
        #: unique payload words completed (sum over finished transfers)
        self.payload_words = 0
        #: words actually clocked onto the wire (>= payload under resends)
        self.wire_words = 0
        #: ACK control frames seen from the neighbour's receive unit
        self.acks_received = 0
        #: DMA transfers run to completion by this unit
        self.transfers_completed = 0
        self._t_start = 0.0
        #: hard-fault watchdog: trips declared by this unit
        self.watchdog_trips = 0
        #: no-progress probes taken on the backoff ladder
        self.backoff_waits = 0
        self._consec_resends = 0
        #: generation counter invalidating in-flight watchdog callbacks
        self._wd_gen = 0
        self._proc: Optional["Process"] = None

    @property
    def link(self) -> SerialLink:
        link = self.scu.out_links.get(self.direction)
        if link is None:
            raise ProtocolError(
                f"node {self.scu.node_id}: no link in direction {self.direction}"
            )
        return link

    @property
    def word_batch(self):
        """The unit's configured batch — always the owning SCU's setting.

        A read-only delegate (no setter): every send and receive unit of a
        node reports the same configured ``word_batch``, so a mismatched
        per-unit batch cannot be created by any code path.
        """
        return self.scu.word_batch

    @property
    def window(self) -> int:
        return max(self.asic.ack_window_words, self._batch)

    def start(
        self,
        words: np.ndarray,
        region: str = "edram",
        word_batch=None,
    ) -> Event:
        """Begin a DMA transfer of ``words`` (uint64) to the neighbour.

        ``word_batch`` overrides the SCU-wide batch for this one transfer
        (``"face"`` resolves to the whole transfer in a single frame).
        """
        if self.active:
            raise ProtocolError(
                f"send unit {self.direction} already has an active transfer"
            )
        self.active = True
        self.words = np.ascontiguousarray(words, dtype=np.uint64)
        self._batch = resolve_word_batch(
            self.scu.word_batch if word_batch is None else word_batch,
            len(self.words),
        )
        self.base = 0
        self.next = 0
        self.resends = 0
        self._consec_resends = 0
        self.done = self.sim.event()
        self._region = region
        self._proc = self.sim.process(
            self._run(), name=f"send[{self.scu.node_id}:{self.direction}]"
        )
        if self.scu.watchdog_enabled:
            self._arm_watchdog()
        return self.done

    def _run(self):
        self._t_start = self.sim.now
        # First-word path: DMA fetch from local memory + SCU injection.
        yield self.sim.timeout(
            self.asic.dma_fetch_latency + self.asic.scu_inject_latency
        )
        n = len(self.words)
        sent_for_checksum = 0
        while self.base < n:
            in_flight = self.next - self.base
            if self.next < n and in_flight < self.window:
                batch = min(self._batch, n - self.next, self.window - in_flight)
                chunk = self.words[self.next : self.next + batch]
                frame = Frame(PacketType.NORMAL, chunk, seq=self.next)
                self.next += batch
                self.wire_words += batch
                if self.next > sent_for_checksum:
                    self.checksum.update(
                        self.words[sent_for_checksum : self.next]
                    )
                    sent_for_checksum = self.next
                yield self.link.transmit(frame)
            else:
                self._wake = self.sim.event()
                yield self._wake
        yield self.link.transmit(Frame(PacketType.EOT, seq=n))
        self.active = False
        self._wd_gen += 1  # disarm the watchdog: transfer complete
        self._proc = None
        self.payload_words += n
        self.transfers_completed += 1
        if self.scu.trace is not None:
            self.scu.trace.emit(
                "scu.send",
                node=self.scu.node_id,
                direction=self.direction,
                words=n,
                resends=self.resends,
                dur=self.sim.now - self._t_start,
            )
        self.done.succeed(n)

    # -- control-frame handlers (called by the SCU dispatcher) -------------
    def on_ack(self, seq: int) -> None:
        self.acks_received += 1
        if seq > self.base:
            self.base = seq
            self._consec_resends = 0  # forward progress: not a storm
            self._wakeup()

    def on_resend(self, seq: int) -> None:
        """Receiver saw a corrupt word at ``seq``: go back and retransmit."""
        if seq < self.next:
            self.next = max(seq, self.base)
            self.resends += 1
            if self.scu.trace is not None:
                self.scu.trace.emit(
                    "scu.resend",
                    node=self.scu.node_id,
                    direction=self.direction,
                    seq=seq,
                )
            if self.scu.watchdog_enabled and self.active:
                self._consec_resends += 1
                if self._consec_resends > self.asic.watchdog_resend_limit:
                    # A transient flip costs at most a window's worth of
                    # RESENDs before the retransmission clears it; this
                    # many in a row without ack progress is a stuck link.
                    self._trip("resend-storm")
                    return
            self._wakeup()

    def _wakeup(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            wake, self._wake = self._wake, None
            wake.succeed()

    # -- hard-fault watchdog ------------------------------------------------
    def _arm_watchdog(self) -> None:
        self._wd_gen += 1
        self.sim.schedule(
            self.asic.watchdog_timeout, self._wd_check, self._wd_gen, self.base, 0
        )

    def _wd_check(self, gen: int, snapshot: int, backoffs: int) -> None:
        """No-ack-progress probe (bounded exponential backoff ladder)."""
        if gen != self._wd_gen or not self.active:
            return  # transfer finished, tripped, or cancelled
        if self.base > snapshot:
            # Acked progress since the last probe: reset the ladder.
            self.sim.schedule(
                self.asic.watchdog_timeout, self._wd_check, gen, self.base, 0
            )
            return
        if backoffs < self.asic.watchdog_max_backoffs:
            self.backoff_waits += 1
            wait = self.asic.watchdog_timeout * (
                self.asic.watchdog_backoff_factor ** (backoffs + 1)
            )
            if self.scu.trace is not None:
                self.scu.trace.emit(
                    "scu.backoff",
                    node=self.scu.node_id,
                    direction=self.direction,
                    wait=wait,
                )
            self.sim.schedule(wait, self._wd_check, gen, snapshot, backoffs + 1)
            return
        self._trip("no-ack-progress")

    def _trip(self, reason: str) -> None:
        """Declare this direction dead: stop spinning, escalate."""
        self.watchdog_trips += 1
        self._wd_gen += 1
        self.active = False
        self._wake = None
        proc, self._proc = self._proc, None
        if proc is not None and proc.is_alive:
            proc.interrupt(reason)
        done, self.done = self.done, None
        self.scu._escalate_link_down(self.direction, reason)
        if done is not None and not done.triggered:
            done.fail(LinkDownError(self.scu.node_id, self.direction, reason))

    def cancel(self, reason: str = "partition abort") -> None:
        """Abandon any active transfer without declaring the link dead."""
        if not self.active and self.done is None:
            return
        self._wd_gen += 1
        self.active = False
        self._wake = None
        proc, self._proc = self._proc, None
        if proc is not None and proc.is_alive:
            proc.interrupt(reason)
        done, self.done = self.done, None
        if done is not None and not done.triggered:
            done.fail(FaultError(f"send transfer cancelled: {reason}"))

    # -- fork-executor state transfer --------------------------------------
    #: plain-value attributes a forked shard worker owns and ships home
    #: (transfer-transient state — ``words``/``done``/``_proc`` — is not
    #: carried: the fork coordinator only snapshots quiesced shards)
    _SNAPSHOT_ATTRS = (
        "checksum",
        "resends",
        "payload_words",
        "wire_words",
        "acks_received",
        "transfers_completed",
        "watchdog_trips",
        "backoff_waits",
        "base",
        "next",
        "active",
        "_consec_resends",
    )

    #: live-heap-only state (REPRO504 audit): events, the generator
    #: process, the in-flight payload view and watchdog scheduling all
    #: reference the worker's event heap and are rebuilt per transfer —
    #: the fork coordinator only snapshots quiesced shards
    _SNAPSHOT_TRANSIENT = (
        "words",
        "_batch",
        "done",
        "_region",
        "_proc",
        "_t_start",
        "_wake",
        "_wd_gen",
    )

    def snapshot_state(self) -> dict:
        return {name: getattr(self, name) for name in self._SNAPSHOT_ATTRS}

    def restore_state(self, state: dict) -> None:
        for name, value in sorted(state.items()):
            setattr(self, name, value)


class RecvUnit:
    """One direction's receive DMA engine, with idle-receive holding."""

    def __init__(self, sim: Simulator, asic: ASICConfig, scu: "SCU", direction: int):
        self.sim = sim
        self.asic = asic
        self.scu = scu
        self.direction = direction
        self.checksum = LinkChecksum()
        self.control = _ControlPort(lambda: scu.out_links.get(direction))
        self.expected = 0  # next word sequence number we will accept
        self.held: List[np.ndarray] = []  # idle-receive holding registers
        self.held_words = 0
        self.descriptor: Optional[DmaDescriptor] = None
        self.total = 0
        self.stored = 0
        self.write_cursor = 0
        self.done: Optional[Event] = None
        #: payload words accepted into local memory (sum over transfers)
        self.payload_words = 0
        #: corrupt data frames detected (header code / parity bits)
        self.parity_errors = 0
        #: RESEND control frames emitted (parity failures + window gaps)
        self.resend_requests = 0
        #: ACK control frames emitted (window credit returns)
        self.acks_sent = 0
        #: cumulative words parked in the idle-receive holding registers
        self.idle_held_words_total = 0
        #: frames that arrived before a descriptor was posted
        self.idle_hold_events = 0
        #: stale resend duplicates of a finished transfer, discarded
        #: because its trailing EOT had not yet arrived (FIFO wire)
        self.stale_frames_discarded = 0
        #: duplicates seen during idle receive, dropped without re-ack
        #: (held words must not return window credit)
        self.idle_dups_discarded = 0
        #: DMA receives run to completion by this unit
        self.transfers_completed = 0
        self._t_post = 0.0
        #: expected EOT sequence numbers of transfers whose wire side has
        #: completed (FIFO: the EOT frame trails the final data word)
        self._eot_due: List[int] = []
        #: hard-fault watchdog: trips declared by this unit
        self.watchdog_trips = 0
        #: no-progress probes taken on the backoff ladder
        self.backoff_waits = 0
        self._wd_gen = 0

    @property
    def word_batch(self):
        """See :attr:`SendUnit.word_batch` — a read-only SCU delegate.

        The receive protocol itself is batch-agnostic (frame granularity
        is the sender's choice); this exists only so introspection always
        agrees with the paired send unit.
        """
        return self.scu.word_batch

    def post(self, descriptor: DmaDescriptor) -> Event:
        """Give the unit a destination; drains any idle-held words."""
        if self.descriptor is not None or self.done is not None:
            raise ProtocolError(
                f"recv unit {self.direction} already has an active descriptor"
            )
        self.descriptor = descriptor
        self._buffer_name = descriptor.buffer
        self._indices = descriptor.indices()
        self.total = descriptor.total_words
        self.stored = 0
        self.write_cursor = 0
        self.done = self.sim.event()
        self._t_post = self.sim.now
        if self.scu.watchdog_enabled:
            self._arm_watchdog()
        if self.held:
            held, self.held = self.held, []
            self.held_words = 0
            for chunk in held:
                self._accept(chunk)
        return self.done

    def on_data(self, frame: Frame) -> None:
        if self._eot_due:
            # A finished transfer's trailing EOT is still in flight, and
            # the wire is FIFO: this frame was queued *before* that EOT,
            # so it is a stale resend duplicate of the finished transfer
            # (a late RESEND can rewind the sender past words whose ACKs
            # were still on the control wire, making it retransmit words
            # the receiver already accepted).  Without this filter the
            # duplicate matches the rearmed ``expected == 0`` sequence
            # space and is idle-held — to be drained into the *next*
            # transfer's buffer by a later post().  Found by exhaustive
            # enumeration of the protocol model (DESIGN.md section 14).
            self.stale_frames_discarded += 1
            return
        if frame.is_corrupt():
            # Hardware detects the flip via header code or parity and
            # requests a resend of the failed word ("automatic resend").
            # No dedup: a duplicate RESEND only rewinds the sender within
            # its (3-word) window, and suppression could deadlock when the
            # same word is corrupted twice in a row.
            self.parity_errors += 1
            self.resend_requests += 1
            if self.scu.trace is not None:
                self.scu.trace.emit(
                    "scu.parity_error",
                    node=self.scu.node_id,
                    direction=self.direction,
                    seq=frame.seq,
                )
            self.control.send(PacketType.RESEND, frame.seq)
            return
        if frame.seq != self.expected:
            if frame.seq > self.expected:
                # Gap: an earlier word was rejected; re-request it.
                self.resend_requests += 1
                self.control.send(PacketType.RESEND, self.expected)
            else:
                if self.descriptor is None:
                    # Idle receive holds *without acknowledging*: here
                    # ``expected`` counts words that are only held, so a
                    # re-ack would return window credit for them — the
                    # sender could then finish and EOT a transfer the
                    # receiver never began accepting, tripping on_eot.
                    # Stay silent; post() drains the held words and acks
                    # then.  Found by the protocol-model enumeration.
                    self.idle_dups_discarded += 1
                    return
                # Duplicate: re-ack so the sender's window advances.
                self.acks_sent += 1
                self.control.send(PacketType.ACK, self.expected)
            return
        self.expected += frame.nwords
        self.checksum.update(frame.words)
        if self.descriptor is None:
            # Idle receive: hold without acknowledging; the sender's
            # unacknowledged window stalls it until a descriptor is
            # posted.  Batch-agnostic invariant: the first held frame of
            # any size is legal (the sender's window is exactly one batch,
            # so at most one unacked batch can be in flight); beyond that,
            # holding is capped at the idle_hold_words registers — which
            # for single-word frames reproduces the paper's "first three
            # words held" rule exactly.
            if (
                self.held_words
                and self.held_words + frame.nwords > self.asic.idle_hold_words
            ):
                raise ProtocolError(
                    f"idle-receive overflow on direction {self.direction}: "
                    f"{self.held_words + frame.nwords} > "
                    f"{self.asic.idle_hold_words} words; "
                    "the sender violated the ack window"
                )
            self.held.append(frame.words)
            self.held_words += frame.nwords
            self.idle_hold_events += 1
            self.idle_held_words_total += frame.nwords
        else:
            self._accept(frame.words)

    def on_eot(self, seq: int) -> None:
        """End-of-transfer marker from the sender.

        A transfer *owes* exactly one EOT once its wire side has completed
        (tracked in :attr:`_eot_due` — a FIFO, since a back-to-back next
        transfer can overlap the previous transfer's trailing EOT).  Any
        EOT that is not owed is a protocol violation: either the sender
        truncated a DMA (descriptor still has outstanding words — caught
        here *regardless* of whether ``seq`` happens to equal the posted
        total, the escape hatch of the old ``seq != total`` check), or it
        sent an EOT with no transfer in progress at all (idle receive /
        after completion).
        """
        if self._eot_due:
            expected = self._eot_due.pop(0)
            if seq != expected:
                raise ProtocolError(
                    f"EOT at {seq} but completed transfer carried {expected} words"
                )
            return
        if self.descriptor is not None:
            raise ProtocolError(
                f"truncated DMA: EOT at {seq} with "
                f"{self.total - self.write_cursor} of {self.total} descriptor "
                "words outstanding"
            )
        raise ProtocolError(
            f"unexpected EOT at {seq}: no transfer in progress on direction "
            f"{self.direction} (idle receive or already-completed descriptor)"
        )

    def _accept(self, words: np.ndarray) -> None:
        idx = self._indices[self.write_cursor : self.write_cursor + len(words)]
        if len(idx) < len(words):
            raise ProtocolError(
                f"recv overrun: {len(words)} words but descriptor has "
                f"{self.total - self.write_cursor} slots left"
            )
        self.scu.memory_write(self._buffer_name, idx, words)
        self.write_cursor += len(words)
        self.payload_words += len(words)
        # Acknowledge acceptance (returns window credit to the sender).
        self.acks_sent += 1
        self.control.send(PacketType.ACK, self.expected)
        if self.write_cursor >= self.total:
            # Wire-protocol side of this transfer is finished: rearm the
            # sequence space so a back-to-back next transfer idle-receives
            # correctly while the last words drain through the store pipe.
            # The sender still owes this transfer its trailing EOT frame.
            self._eot_due.append(self.total)
            self._wd_gen += 1  # disarm the watchdog: wire side complete
            self.descriptor = None
            self.expected = 0
        # Eject + DMA store pipeline latency before the data is usable.
        self.sim.schedule(
            self.asic.scu_eject_latency + self.asic.dma_store_latency,
            self._mark_stored,
            len(words),
        )

    def _mark_stored(self, nwords: int) -> None:
        self.stored += nwords
        if self.stored >= self.total and self.done is not None:
            done, self.done = self.done, None
            self.transfers_completed += 1
            if self.scu.trace is not None:
                self.scu.trace.emit(
                    "scu.recv",
                    node=self.scu.node_id,
                    direction=self.direction,
                    words=self.total,
                    dur=self.sim.now - self._t_post,
                )
            done.succeed(self.total)

    # -- hard-fault watchdog ------------------------------------------------
    def _arm_watchdog(self) -> None:
        self._wd_gen += 1
        self.sim.schedule(
            self.asic.watchdog_timeout,
            self._wd_check,
            self._wd_gen,
            self.write_cursor,
            0,
        )

    def _wd_check(self, gen: int, snapshot: int, backoffs: int) -> None:
        """Posted-descriptor-to-progress probe (same ladder as the sender)."""
        if gen != self._wd_gen or self.descriptor is None:
            return  # wire side finished, tripped, or cancelled
        if self.write_cursor > snapshot:
            self.sim.schedule(
                self.asic.watchdog_timeout,
                self._wd_check,
                gen,
                self.write_cursor,
                0,
            )
            return
        if backoffs < self.asic.watchdog_max_backoffs:
            self.backoff_waits += 1
            wait = self.asic.watchdog_timeout * (
                self.asic.watchdog_backoff_factor ** (backoffs + 1)
            )
            if self.scu.trace is not None:
                self.scu.trace.emit(
                    "scu.backoff",
                    node=self.scu.node_id,
                    direction=self.direction,
                    wait=wait,
                )
            self.sim.schedule(wait, self._wd_check, gen, snapshot, backoffs + 1)
            return
        self._trip("recv-stall")

    def _trip(self, reason: str) -> None:
        self.watchdog_trips += 1
        self._reset(LinkDownError(self.scu.node_id, self.direction, reason))
        self.scu._escalate_link_down(self.direction, reason)

    def cancel(self, reason: str = "partition abort") -> None:
        """Abandon any posted receive without declaring the link dead."""
        if self.descriptor is None and self.done is None and not self.held:
            self.expected = 0
            self._eot_due = []
            return
        self._reset(FaultError(f"recv transfer cancelled: {reason}"))

    def _reset(self, exc: BaseException) -> None:
        self._wd_gen += 1
        self.descriptor = None
        self.expected = 0
        self.total = 0
        self.stored = 0
        self.write_cursor = 0
        self.held = []
        self.held_words = 0
        self._eot_due = []
        done, self.done = self.done, None
        if done is not None and not done.triggered:
            done.fail(exc)

    # -- fork-executor state transfer --------------------------------------
    #: see :attr:`SendUnit._SNAPSHOT_ATTRS`
    _SNAPSHOT_ATTRS = (
        "checksum",
        "expected",
        "held_words",
        "payload_words",
        "parity_errors",
        "resend_requests",
        "acks_sent",
        "idle_held_words_total",
        "idle_hold_events",
        "stale_frames_discarded",
        "idle_dups_discarded",
        "transfers_completed",
        "watchdog_trips",
        "backoff_waits",
        "total",
        "stored",
        "write_cursor",
    )

    #: live-heap-only state (REPRO504 audit): the active descriptor,
    #: its resolved destination view, the completion event, idle-held
    #: frames and the EOT FIFO exist only while a transfer is in
    #: flight on the worker's heap; quiesced-shard snapshots never
    #: carry them
    _SNAPSHOT_TRANSIENT = (
        "descriptor",
        "_buffer_name",
        "_indices",
        "done",
        "_t_post",
        "held",
        "_eot_due",
        "_wd_gen",
    )

    def snapshot_state(self) -> dict:
        return {name: getattr(self, name) for name in self._SNAPSHOT_ATTRS}

    def restore_state(self, state: dict) -> None:
        for name, value in sorted(state.items()):
            setattr(self, name, value)


class SCU:
    """A node's full Serial Communications Unit."""

    def __init__(
        self,
        sim: Simulator,
        asic: ASICConfig,
        node_id: int,
        memory_read: Callable[[str, np.ndarray], np.ndarray],
        memory_write: Callable[[str, np.ndarray, np.ndarray], None],
        trace: Optional[Trace] = None,
        word_batch=1,
        sanitizer: Optional["HaloRaceSanitizer"] = None,
        replay_enabled: bool = True,
    ):
        self.sim = sim
        self.asic = asic
        self.node_id = node_id
        self.memory_read = memory_read
        self.memory_write = memory_write
        self.trace = trace
        #: optional :class:`repro.analysis.sanitizer.HaloRaceSanitizer`;
        #: ``None`` keeps the hot path to a single attribute check.
        self.sanitizer = sanitizer
        self.out_links: Dict[int, SerialLink] = {}
        self.send_units: Dict[int, SendUnit] = {}
        self.recv_units: Dict[int, RecvUnit] = {}
        #: node-wide frame batch: positive int, or ``"face"`` to resolve
        #: per transfer to the whole descriptor (one frame per face)
        self.word_batch = normalise_word_batch(word_batch)
        self.supervisor_reg: Dict[int, int] = {}
        self.on_supervisor: Optional[Callable[[int, int], None]] = None
        self.on_partition_irq: Optional[Callable[[int, int], None]] = None
        #: hard-fault watchdog master enable (off: protocol identical to
        #: the seed — idle receive may legitimately stall a sender forever)
        self.watchdog_enabled = False
        #: direction -> watchdog reason, for every link declared dead here
        self.links_down: Dict[int, str] = {}
        #: machine hook called as ``on_link_down(node, direction, reason)``
        self.on_link_down: Optional[Callable[[int, int, str], None]] = None
        #: abort-drain mode: stale protocol frames of a cancelled run are
        #: discarded instead of dispatched (counted here)
        self.drained_frames = 0
        self._draining = False
        #: global-operation pass-through routing:
        #: in_direction -> (out_directions, store_callback or None)
        self._global_routes: Dict[int, Tuple[Tuple[int, ...], Optional[Callable]]] = {}
        #: stored ("persistent") descriptors:
        #: (kind, direction) -> (descriptor, start-group, word_batch or None)
        self._stored: Dict[Tuple[str, int], Tuple] = {}
        #: direction -> (neighbour SCU, arrival direction there), wired by
        #: :class:`repro.machine.network.MeshNetwork` for replay delivery
        self.peers: Dict[int, Tuple["SCU", int]] = {}
        #: hot-epoch learn/replay engine (see :mod:`repro.machine.replay`)
        self.replay = ReplayEngine(self, enabled=replay_enabled)

    # -- wiring ---------------------------------------------------------------
    def attach_link(self, direction: int, link: SerialLink) -> None:
        self.out_links[direction] = link
        # Units read ``word_batch`` through a read-only property on the
        # SCU, so there is no per-unit copy to fall out of sync.
        if direction not in self.send_units:
            self.send_units[direction] = SendUnit(self.sim, self.asic, self, direction)
        if direction not in self.recv_units:
            self.recv_units[direction] = RecvUnit(self.sim, self.asic, self, direction)

    def attach_peer(self, direction: int, peer: "SCU", arrival: int) -> None:
        """Register the neighbour SCU behind ``direction`` (replay wiring)."""
        self.peers[direction] = (peer, arrival)

    def on_frame(self, direction: int, frame: Frame) -> None:
        """Dispatch a frame arriving from the neighbour in ``direction``."""
        route = self._global_routes.get(direction)
        if route is not None and frame.ptype == PacketType.NORMAL:
            self._passthrough(direction, frame, route)
            return
        if self._draining and frame.ptype in (
            PacketType.NORMAL,
            PacketType.EOT,
            PacketType.ACK,
            PacketType.RESEND,
        ):
            # Partition-abort drain: in-flight frames of cancelled
            # transfers are discarded so they cannot poison reset units.
            self.drained_frames += 1
            return
        if frame.ptype == PacketType.NORMAL:
            self._recv(direction).on_data(frame)
        elif frame.ptype == PacketType.EOT:
            self._recv(direction).on_eot(frame.seq)
        elif frame.ptype == PacketType.ACK:
            self._send(direction).on_ack(frame.seq)
        elif frame.ptype == PacketType.RESEND:
            self._send(direction).on_resend(frame.seq)
        elif frame.ptype == PacketType.SUPERVISOR:
            self._on_supervisor(direction, frame)
        elif frame.ptype == PacketType.PARTITION_IRQ:
            if self.on_partition_irq is not None:
                self.on_partition_irq(direction, int(frame.words[0]) & 0xFF)
        elif frame.ptype == PacketType.IDLE:
            pass
        else:
            raise ProtocolError(f"unhandled frame type {frame.ptype}")

    def _send(self, direction: int) -> SendUnit:
        unit = self.send_units.get(direction)
        if unit is None:
            raise ProtocolError(f"no send unit for direction {direction}")
        return unit

    def _recv(self, direction: int) -> RecvUnit:
        unit = self.recv_units.get(direction)
        if unit is None:
            raise ProtocolError(f"no recv unit for direction {direction}")
        return unit

    # -- data transfers -----------------------------------------------------
    def send(self, direction: int, descriptor: DmaDescriptor, word_batch=None) -> Event:
        """Start a zero-copy DMA send of the described local memory.

        ``word_batch`` overrides the SCU-wide batch for this transfer
        (``"face"`` ships the whole descriptor as one frame).
        """
        words = self.memory_read(descriptor.buffer, descriptor.indices())
        done = self._send(direction).start(words, word_batch=word_batch)
        san = self.sanitizer
        if san is not None:
            claim = san.dma_begin(
                self.node_id, descriptor.buffer, "send", direction, len(words)
            )
            # registered at start time, so the release runs before any
            # process that later waits on ``done`` resumes (FIFO callbacks)
            done.add_callback(lambda _e, c=claim, s=san: s.dma_end(c))
        return done

    def recv(self, direction: int, descriptor: DmaDescriptor) -> Event:
        """Post a receive destination (may be before or after the send)."""
        done = self._recv(direction).post(descriptor)
        san = self.sanitizer
        if san is not None:
            claim = san.dma_begin(
                self.node_id,
                descriptor.buffer,
                "recv",
                direction,
                descriptor.total_words,
            )
            done.add_callback(lambda _e, c=claim, s=san: s.dma_end(c))
        return done

    # -- persistent descriptors (paper section 3.3) ---------------------------
    def store_descriptor(
        self,
        kind: str,
        direction: int,
        descriptor: DmaDescriptor,
        group: str = "default",
        word_batch=None,
    ) -> None:
        """Store a DMA instruction in the SCU for repeated reuse.

        ``group`` tags the descriptor with a start-group: ``start_stored``
        can launch one group at a time (still a single register write per
        group — the start register has per-unit enable bits), which the
        overlapped Dirac pipeline uses to fire its raw-face transfers
        before the sender-side products are staged.

        ``word_batch`` (send descriptors only) overrides the SCU-wide
        batch every time this descriptor starts — the distributed
        operators store their halo sends with ``word_batch="face"``.
        """
        if kind not in ("send", "recv"):
            raise ProtocolError(f"descriptor kind must be send/recv, got {kind!r}")
        if word_batch is not None:
            word_batch = normalise_word_batch(word_batch)
        self._stored[(kind, direction)] = (descriptor, group, word_batch)
        # A (re)stored descriptor changes the hot-epoch schedule: any
        # compiled replay trace is stale, so the next epoch relearns.
        self.replay.invalidate("descriptor stored")

    def start_stored(self, group: Optional[str] = None) -> Dict[Tuple[str, int], Event]:
        """One write starts every stored transfer ("start up to 24
        communications" with a single register write).

        Returns **one completion event per (kind, direction)** so callers
        can overlap work with individual transfers instead of blocking on
        the aggregate.  With ``group`` given, only descriptors stored under
        that group start (one register write per group).
        """
        events = {}
        replay = self.replay
        for (kind, direction), (desc, g, batch) in self._stored.items():
            if group is not None and g != group:
                continue
            # Inside a compiled hot epoch the transfer replays from the
            # memoized schedule; otherwise it runs interpreted (and a
            # learning epoch records it for compilation).
            ev = replay.try_transfer(kind, direction, desc, g, batch)
            if ev is None:
                if kind == "send":
                    ev = self.send(direction, desc, word_batch=batch)
                else:
                    ev = self.recv(direction, desc)
                replay.observe(kind, direction, desc, g, batch, ev)
            events[(kind, direction)] = ev
        if self.trace is not None:
            self.trace.emit(
                "scu.start_stored",
                node=self.node_id,
                group=group,
                n_transfers=len(events),
            )
        return events

    # -- hard-fault escalation --------------------------------------------------
    def _escalate_link_down(self, direction: int, reason: str) -> None:
        """A watchdog tripped: record, notify the host path, raise the IRQ.

        Escalation is once per direction (send- and recv-unit trips on the
        same dead cable collapse to one LINK_DOWN event).  A LINK_DOWN
        supervisor packet goes to the first alive neighbour — the paper's
        single-word CPU-interrupt mechanism — and the machine-level hook
        (wired by :class:`~repro.machine.machine.QCDOCMachine`) raises a
        partition interrupt so every node, and the host daemon, learns a
        hard fault occurred.
        """
        if direction in self.links_down:
            return
        self.links_down[direction] = reason
        self.replay.invalidate("link down")
        if self.trace is not None:
            self.trace.emit(
                "scu.link_down",
                node=self.node_id,
                direction=direction,
                reason=reason,
            )
        word = encode_link_down(self.node_id, direction)
        for d in sorted(self.out_links):
            link = self.out_links[d]
            if d != direction and link.alive and link.trained:
                self.send_supervisor(d, word)
                break
        if self.on_link_down is not None:
            self.on_link_down(self.node_id, direction, reason)

    def cancel_active_transfers(self, reason: str = "partition abort") -> None:
        """Abandon every in-progress DMA and enter frame-drain mode.

        Part of the machine's partition-abort path: after a watchdog
        trip fails one rank, the surviving ranks' half-finished transfers
        are cancelled (their events fail), and any frames still on the
        wire are discarded on arrival until :meth:`finish_drain`.
        """
        self._draining = True
        for unit in self.send_units.values():
            unit.cancel(reason)
        for unit in self.recv_units.values():
            unit.cancel(reason)
        self._stored.clear()
        self.replay.invalidate("transfers cancelled")

    def finish_drain(self) -> None:
        """Leave abort-drain mode (call once the event heap has drained)."""
        self._draining = False

    # -- transfer accounting ---------------------------------------------------
    def transfer_counters(self) -> Dict[str, int]:
        """Aggregate payload/wire word counters over every unit.

        ``wire_words_sent`` exceeds ``payload_words_sent`` exactly when the
        go-back-N protocol retransmitted after an injected fault.
        """
        sends = list(self.send_units.values())
        recvs = list(self.recv_units.values())
        return {
            "payload_words_sent": sum(u.payload_words for u in sends),
            "wire_words_sent": sum(u.wire_words for u in sends),
            "payload_words_received": sum(u.payload_words for u in recvs),
            "resends": sum(u.resends for u in sends),
            "acks_received": sum(u.acks_received for u in sends),
            "sends_completed": sum(u.transfers_completed for u in sends),
            "parity_errors": sum(u.parity_errors for u in recvs),
            "resend_requests": sum(u.resend_requests for u in recvs),
            "acks_sent": sum(u.acks_sent for u in recvs),
            "idle_held_words": sum(u.idle_held_words_total for u in recvs),
            "idle_hold_events": sum(u.idle_hold_events for u in recvs),
            "recvs_completed": sum(u.transfers_completed for u in recvs),
            "watchdog_trips": sum(u.watchdog_trips for u in sends)
            + sum(u.watchdog_trips for u in recvs),
            "backoff_waits": sum(u.backoff_waits for u in sends)
            + sum(u.backoff_waits for u in recvs),
            "link_down": len(self.links_down),
        }

    def in_flight_words(self) -> int:
        """Words currently on the wire or awaiting DMA store.

        Sender side counts ``next - base`` (transmitted but unacknowledged)
        for active transfers; receiver side counts idle-held words plus
        words accepted but still in the eject/store pipeline.  At quiesce
        (heap drained, all transfers complete) this is zero — the
        conservation invariant the telemetry test suite asserts.
        """
        sender = sum(
            (u.next - u.base) for u in self.send_units.values() if u.active
        )
        receiver = sum(u.held_words for u in self.recv_units.values())
        receiver += sum(
            (u.write_cursor - u.stored)
            for u in self.recv_units.values()
            if u.done is not None
        )
        return sender + receiver

    # -- fork-executor state transfer -------------------------------------
    def snapshot_state(self) -> dict:
        """Picklable unit/protocol state for the fork-executor gather."""
        return {
            "send_units": {
                d: u.snapshot_state() for d, u in sorted(self.send_units.items())
            },
            "recv_units": {
                d: u.snapshot_state() for d, u in sorted(self.recv_units.items())
            },
            "links_down": dict(self.links_down),
            "drained_frames": self.drained_frames,
            "draining": self._draining,
            "supervisor_reg": dict(self.supervisor_reg),
        }

    def restore_state(self, state: dict) -> None:
        for d, unit_state in sorted(state["send_units"].items()):
            self.send_units[d].restore_state(unit_state)
        for d, unit_state in sorted(state["recv_units"].items()):
            self.recv_units[d].restore_state(unit_state)
        self.links_down = dict(state["links_down"])
        self.drained_frames = state["drained_frames"]
        self._draining = state["draining"]
        self.supervisor_reg = dict(state["supervisor_reg"])

    # -- supervisor packets ---------------------------------------------------
    def send_supervisor(self, direction: int, word: int) -> Event:
        """Send one 64-bit word into the neighbour's SCU register + IRQ."""
        frame = Frame(
            PacketType.SUPERVISOR,
            np.array([word], dtype=np.uint64),
            seq=-1,
        )
        link = self.out_links.get(direction)
        if link is None:
            raise ProtocolError(f"no link in direction {direction}")
        return link.transmit(frame)

    def _on_supervisor(self, direction: int, frame: Frame) -> None:
        word = int(frame.words[0])
        self.supervisor_reg[direction] = word
        if self.trace is not None:
            self.trace.emit(
                "scu.supervisor", node=self.node_id, direction=direction, word=word
            )
        if self.on_supervisor is not None:
            self.on_supervisor(direction, word)

    # -- partition interrupts --------------------------------------------------
    def broadcast_partition_irq(self, bits: int, directions) -> None:
        frame_word = np.array([bits & 0xFF], dtype=np.uint64)
        for d in directions:
            link = self.out_links.get(d)
            # Skip cables that are dead or never trained (a quarantined
            # neighbour): the flood still reaches every live node through
            # the torus's redundant paths.
            if link is not None and link.alive and link.trained:
                link.transmit(Frame(PacketType.PARTITION_IRQ, frame_word.copy()))

    # -- global (pass-through) mode ----------------------------------------------
    def set_global_route(
        self,
        in_direction: int,
        out_directions: Tuple[int, ...],
        store: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        """Route words arriving on one link out of others, cut-through.

        Only ``passthrough_bits`` (8) are received before forwarding starts,
        "markedly reducing the latency" of global operations.
        """
        self._global_routes[in_direction] = (tuple(out_directions), store)

    def clear_global_routes(self) -> None:
        self._global_routes.clear()

    def _passthrough(self, direction: int, frame: Frame, route) -> None:
        out_dirs, store = route
        delay = self.asic.passthrough_latency

        def forward():
            for d in out_dirs:
                link = self.out_links.get(d)
                if link is not None:
                    link.transmit(Frame(PacketType.NORMAL, frame.words.copy(), seq=frame.seq))
            if store is not None:
                store(frame.words)

        self.sim.schedule(delay, forward)

    # -- audit ------------------------------------------------------------------
    def checksum_pair(self, direction: int) -> Tuple[LinkChecksum, LinkChecksum]:
        return (
            self.send_units[direction].checksum,
            self.recv_units[direction].checksum,
        )
