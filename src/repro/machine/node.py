"""One QCDOC processing node: CPU + memory + SCU.

A node is "a single custom ASIC ... plus DDR SDRAM" (abstract).  Here it
bundles:

* :class:`NodeMemory` — named buffers with a 64-bit-word view (the SCU DMA
  engines address memory in 64-bit words) and EDRAM/DDR placement
  accounting;
* a CPU represented by whatever node *program* (generator) the kernel
  runs, with :meth:`Node.compute` charging floating-point time at the
  ASIC's peak rate scaled by an efficiency;
* the node's :class:`~repro.machine.scu.SCU`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.machine.asic import ASICConfig
from repro.machine.memory import MemoryModel
from repro.machine.scu import SCU
from repro.sim.core import Event, Process, Simulator
from repro.sim.trace import Trace
from repro.util.errors import ConfigError, MachineError

#: dtypes the word view supports (8-byte items, or complex = 2 x 8 bytes)
_WORD_DTYPES = (np.float64, np.uint64, np.int64, np.complex128)


class NodeMemory:
    """Named buffers with SCU-addressable 64-bit word views."""

    def __init__(self, asic: ASICConfig):
        self.asic = asic
        self.model = MemoryModel(asic)
        self._buffers: Dict[str, np.ndarray] = {}
        self._regions: Dict[str, str] = {}
        #: SCU-DMA traffic by memory region, in bytes (always-on plain
        #: dict counters; the telemetry CounterBank samples them on demand)
        self.read_bytes: Dict[str, int] = {"edram": 0, "ddr": 0}
        self.write_bytes: Dict[str, int] = {"edram": 0, "ddr": 0}

    def alloc(
        self, name: str, array: np.ndarray, region: Optional[str] = None
    ) -> np.ndarray:
        """Register (a copy of) an array as a named buffer.

        ``region`` defaults to automatic placement: EDRAM while it fits,
        DDR otherwise (the run kernel's policy).
        """
        if name in self._buffers:
            raise MachineError(f"buffer {name!r} already allocated")
        arr = np.ascontiguousarray(array)
        if arr.dtype not in _WORD_DTYPES:
            raise ConfigError(
                f"buffer dtype {arr.dtype} is not 64-bit-word addressable"
            )
        if region is None:
            region = (
                "edram"
                if self.edram_used + arr.nbytes <= self.asic.edram_bytes
                else "ddr"
            )
        if region == "ddr" and self.ddr_used + arr.nbytes > self.asic.ddr_bytes:
            raise MachineError("node DDR exhausted")
        self._buffers[name] = arr
        self._regions[name] = region
        return arr

    def zeros(
        self, name: str, shape: Tuple[int, ...], dtype=np.complex128, region=None
    ) -> np.ndarray:
        return self.alloc(name, np.zeros(shape, dtype=dtype), region)

    def free(self, name: str) -> None:
        self._buffers.pop(name)
        self._regions.pop(name)

    def buffer_names(self) -> List[str]:
        """Sorted names of every live buffer (abort/cleanup bookkeeping)."""
        return sorted(self._buffers)

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def get(self, name: str) -> np.ndarray:
        try:
            return self._buffers[name]
        except KeyError:
            raise MachineError(f"no buffer named {name!r}") from None

    def region(self, name: str) -> str:
        return self._regions[name]

    @property
    def edram_used(self) -> int:
        return sum(
            b.nbytes for n, b in self._buffers.items() if self._regions[n] == "edram"
        )

    @property
    def ddr_used(self) -> int:
        return sum(
            b.nbytes for n, b in self._buffers.items() if self._regions[n] == "ddr"
        )

    # -- the SCU's word-granular window -------------------------------------
    def words(self, name: str) -> np.ndarray:
        """The buffer as a flat uint64 word array (a view, zero copy)."""
        buf = self.get(name)
        if buf.dtype == np.complex128:
            return buf.reshape(-1).view(np.float64).view(np.uint64)
        return buf.reshape(-1).view(np.uint64)

    def read_words(self, name: str, indices: np.ndarray) -> np.ndarray:
        self.read_bytes[self._regions[name]] += 8 * len(indices)
        return self.words(name)[indices]

    def write_words(self, name: str, indices: np.ndarray, values: np.ndarray) -> None:
        self.write_bytes[self._regions[name]] += 8 * len(indices)
        self.words(name)[indices] = values

    def word_count(self, name: str) -> int:
        return self.words(name).size


class Node:
    """A processing node of the machine."""

    def __init__(
        self,
        sim: Simulator,
        asic: ASICConfig,
        node_id: int,
        trace: Optional[Trace] = None,
        word_batch=1,
        compute_efficiency: float = 1.0,
        sanitizer: Optional["HaloRaceSanitizer"] = None,
        replay: bool = True,
    ):
        self.sim = sim
        self.asic = asic
        self.node_id = node_id
        self.memory = NodeMemory(asic)
        self.scu = SCU(
            sim,
            asic,
            node_id,
            memory_read=self.memory.read_words,
            memory_write=self.memory.write_words,
            trace=trace,
            word_batch=word_batch,
            sanitizer=sanitizer,
            replay_enabled=replay,
        )
        self.trace = trace
        #: the halo-buffer race sanitizer shared with :attr:`scu` (``None``
        #: when off — hook sites guard with a single attribute check)
        self.sanitizer = sanitizer
        self.compute_efficiency = compute_efficiency
        self.flops_charged = 0.0
        self.compute_time = 0.0
        #: flops charged per kernel tag (untagged work under ``None``)
        self.kernel_flops: Dict[Optional[str], float] = {}
        self.supervisor_events: list = []
        self.scu.on_supervisor = self._on_supervisor
        self._supervisor_waiters: list = []

    # -- CPU time accounting -----------------------------------------------
    def compute(self, flops: float, kernel: Optional[str] = None) -> Event:
        """Charge floating-point work at ``efficiency x peak`` rate.

        Returns a timeout event the node program yields on; this is how
        numpy-computed physics (instantaneous in wall-clock terms) is
        given its simulated duration.  ``kernel`` optionally attributes the
        flops to a named kernel (``"dslash"``, ``"clover_term"`` ...) in
        :attr:`kernel_flops` and in the emitted ``cpu.compute`` trace span.
        """
        if flops < 0:
            raise ConfigError("negative flop count")
        duration = flops / (self.asic.peak_flops * self.compute_efficiency)
        self.flops_charged += flops
        self.compute_time += duration
        self.kernel_flops[kernel] = self.kernel_flops.get(kernel, 0.0) + flops
        if self.trace is not None:
            # A span record: emitted at the *end* time of the charged
            # interval so ``time - dur`` is the start.
            trace, node_id = self.trace, self.node_id

            def _emit_span():
                trace.emit(
                    "cpu.compute",
                    node=node_id,
                    flops=flops,
                    kernel=kernel,
                    dur=duration,
                )

            self.sim.schedule(duration, _emit_span)
        return self.sim.timeout(duration)

    @property
    def sustained_flops(self) -> float:
        """Average rate over elapsed simulation time (post-run query)."""
        if self.sim.now == 0:
            return 0.0
        return self.flops_charged / self.sim.now

    # -- supervisor interrupts ------------------------------------------------
    def _on_supervisor(self, direction: int, word: int) -> None:
        self.supervisor_events.append((self.sim.now, direction, word))
        waiters, self._supervisor_waiters = self._supervisor_waiters, []
        for ev in waiters:
            ev.succeed((direction, word))

    def wait_supervisor(self) -> Event:
        """Event that fires on the next incoming supervisor packet."""
        ev = self.sim.event()
        self._supervisor_waiters.append(ev)
        return ev

    def __repr__(self) -> str:
        return f"Node({self.node_id})"
