"""Partition interrupts: flood-forwarded 8-bit interrupts under a slow
global clock.

Paper section 2.2, item 3: "If a node receives a partition interrupt packet
its SCU forwards this packet on to all of its neighbors if the packet
contains an interrupt which had not been previously sent.  This forwarding
is done during a time interval controlled by a relatively slow global
clock, which also controls when interrupts are presented to the processor
from the SCU.  This global clock period is set so that during the transmit
window, any node that sets an interrupt will know it has been received by
all other nodes before the sampling of the partition interrupt status is
done."

The guarantee this buys: **every node in a partition observes the same
interrupt bits at the same sample instant** — which is how a single node
can stop a 12,288-node calculation cleanly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.machine.asic import ASICConfig
from repro.machine.scu import SCU
from repro.sim.core import Simulator
from repro.sim.trace import Trace
from repro.util.errors import ConfigError


class GlobalClock:
    """The machine-wide slow clock defining transmit/sample windows.

    ``period`` must exceed the worst-case flood time (diameter x per-hop
    forwarding latency); :func:`safe_period` computes it from the topology.
    """

    def __init__(self, sim: Simulator, period: float):
        if period <= 0:
            raise ConfigError(f"global clock period must be positive: {period}")
        self.sim = sim
        self.period = period

    def next_sample_time(self) -> float:
        """The next window boundary strictly after 'now'."""
        k = int(self.sim.now / self.period) + 1
        return k * self.period

    def delay_to_sample(self) -> float:
        return self.next_sample_time() - self.sim.now


def safe_period(asic: ASICConfig, diameter_hops: int, margin: float = 4.0) -> float:
    """A transmit-window period long enough for any flood to complete.

    Per hop: an 8-bit payload + 8-bit header on the wire, plus the wire
    flight and the SCU forwarding decision (~ one pass-through).
    """
    per_hop = (16 / asic.clock_hz) + asic.wire_latency + asic.passthrough_latency
    return margin * max(1, diameter_hops) * per_hop


class InterruptController:
    """Per-node partition-interrupt logic riding on the SCU."""

    def __init__(
        self,
        sim: Simulator,
        scu: SCU,
        clock: GlobalClock,
        partition_directions: Sequence[int],
        trace: Optional[Trace] = None,
    ):
        self.sim = sim
        self.scu = scu
        self.clock = clock
        #: the physical link directions belonging to this node's partition
        self.partition_directions = list(partition_directions)
        self.trace = trace
        self.seen_bits = 0  # bits already forwarded (dedup)
        self.latched_bits = 0  # bits waiting for the sample instant
        self.presented_bits = 0  # bits the CPU has been shown
        self._presentation_scheduled = False
        #: CPU hook: called as ``callback(bits)`` at the sample instant
        self.on_present: Optional[Callable[[int], None]] = None
        scu.on_partition_irq = self._on_packet

    # -- raising ------------------------------------------------------------
    def raise_irq(self, bits: int) -> None:
        """Set interrupt bits locally; they flood the partition."""
        bits &= 0xFF
        if bits == 0:
            raise ConfigError("raising an empty interrupt")
        self._absorb(bits)

    # -- flood forwarding ---------------------------------------------------
    def _on_packet(self, direction: int, bits: int) -> None:
        self._absorb(bits)

    def _absorb(self, bits: int) -> None:
        new = bits & ~self.seen_bits
        if not new:
            return  # already forwarded: the flood terminates
        self.seen_bits |= new
        self.latched_bits |= new
        self.scu.broadcast_partition_irq(new, self.partition_directions)
        if self.trace is not None:
            self.trace.emit("irq.forward", node=self.scu.node_id, bits=new)
        if not self._presentation_scheduled:
            self._presentation_scheduled = True
            self.sim.schedule(self.clock.delay_to_sample(), self._present)

    # -- presentation ------------------------------------------------------
    def _present(self) -> None:
        self._presentation_scheduled = False
        bits, self.latched_bits = self.latched_bits, 0
        self.presented_bits |= bits
        if self.trace is not None:
            self.trace.emit("irq.present", node=self.scu.node_id, bits=bits)
        if self.on_present is not None:
            self.on_present(bits)

    def clear(self) -> None:
        """Software acknowledgement: allow the same bits to be raised again."""
        self.seen_bits = 0
        self.presented_bits = 0
