"""The QCDOC machine model.

A functional, timed simulation of the hardware described in paper section 2:

* :mod:`~repro.machine.topology` — the six-dimensional torus and its
  software partitioning/folding into 1-6 dimensional logical machines;
* :mod:`~repro.machine.asic` — node parameters (PPC 440 + FPU, EDRAM,
  DDR, link counts and framing) with the paper's published numbers;
* :mod:`~repro.machine.memory` — prefetching EDRAM controller and DDR
  controller timing;
* :mod:`~repro.machine.packets` / :mod:`~repro.machine.hssl` — frame
  formats (error-robust headers, parity) and the bit-serial link layer
  (training, serialisation timing, fault injection);
* :mod:`~repro.machine.scu` — the Serial Communications Unit: 12 send +
  12 receive DMA engines, the three-in-the-air ack window, idle receive,
  supervisor packets, link checksums;
* :mod:`~repro.machine.interrupts` — partition interrupts flooding the
  mesh under the slow global clock;
* :mod:`~repro.machine.globalops` — pass-through global sums and
  broadcasts (single and doubled mode);
* :mod:`~repro.machine.node` / :mod:`~repro.machine.machine` — the node
  (CPU + memory + SCU) and the whole-machine facade.
"""

from repro.machine.asic import ASICConfig, MachineConfig, PRESETS
from repro.machine.topology import Partition, TorusTopology, fold_axes, snake_cycle
from repro.machine.machine import QCDOCMachine

__all__ = [
    "ASICConfig",
    "MachineConfig",
    "PRESETS",
    "TorusTopology",
    "Partition",
    "fold_axes",
    "snake_cycle",
    "QCDOCMachine",
]
