"""Frame formats for the bit-serial mesh links.

Paper section 2.2: "The type of packet that is being sent is encoded into
an 8 bit packet header, with codes determined so that a single bit error
will not cause a packet to be misinterpreted.  The packet header also
contains two parity bits for the data sent and a single bit error causes an
automatic resend in hardware.  In addition, checksums at each end of the
link are kept."

We realise that with a [6,3,3] linear code for the 6 type bits (minimum
Hamming distance 3: any single-bit flip lands outside the codebook and is
*detected*, never decoded as a different valid type) plus two payload parity
bits (even-position and odd-position bit parity of the 64-bit word).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.util.errors import ProtocolError


class PacketType(Enum):
    """Link-level frame types (values are [6,3,3] codewords)."""

    IDLE = 0b000000  # exchanged when no data flows (trained-link keepalive)
    NORMAL = 0b001011  # 64-bit data word of a DMA transfer
    SUPERVISOR = 0b010101  # 64-bit word to a neighbour SCU register + IRQ
    PARTITION_IRQ = 0b011110  # 8-bit flood-forwarded partition interrupt
    ACK = 0b100110  # acknowledgement (window credit return)
    TRAIN = 0b101101  # HSSL training sequence byte
    RESEND = 0b110011  # parity/header failure: resend last window
    EOT = 0b111000  # end of DMA transfer marker


_VALID_CODES = {t.value: t for t in PacketType}


def hamming(a: int, b: int) -> int:
    """Bit-difference count of two ints."""
    return bin(a ^ b).count("1")


def min_code_distance() -> int:
    """Minimum pairwise Hamming distance of the type codebook (3)."""
    codes = [t.value for t in PacketType]
    return min(
        hamming(a, b) for i, a in enumerate(codes) for b in codes[i + 1 :]
    )


def parity_bits(word: int) -> int:
    """Two parity bits over a 64-bit payload: even-position and odd-position.

    Covering the two bit phases separately means the common failure mode of
    a serdes sampling-point drift (errors clustered on one phase) is still
    caught by one of the two bits.
    """
    word &= (1 << 64) - 1
    even = word & 0x5555_5555_5555_5555
    odd = word & 0xAAAA_AAAA_AAAA_AAAA
    p_even = bin(even).count("1") & 1
    p_odd = bin(odd).count("1") & 1
    return (p_odd << 1) | p_even


def encode_header(ptype: PacketType, payload_word: int = 0) -> int:
    """8-bit header: 6 type-code bits then 2 payload-parity bits."""
    return (ptype.value << 2) | parity_bits(payload_word)


def decode_header(header: int, payload_word: int = 0):
    """Return ``(PacketType, parity_ok)``.

    Raises :class:`ProtocolError` when the 6 type bits are not a valid
    codeword — the "never misinterpreted" guarantee: a corrupted type is
    *rejected*, not mistaken for another type.
    """
    code = (header >> 2) & 0x3F
    ptype = _VALID_CODES.get(code)
    if ptype is None:
        raise ProtocolError(f"corrupt header type code {code:06b}")
    parity_ok = (header & 0x3) == parity_bits(payload_word)
    return ptype, parity_ok


#: shared zero-length payload for control frames (ACK/RESEND/IDLE/EOT) —
#: read-only, so every control frame can alias it instead of allocating
#: a fresh empty array per frame on the steady-state wire path.
_NO_WORDS = np.empty(0, dtype=np.uint64)
_NO_WORDS.setflags(write=False)


@dataclass
class Frame:
    """One link-level frame: a typed header plus payload words.

    The wire serialises ``header + 64-bit word`` pairs; for simulation
    efficiency a frame may batch several payload words of the *same* DMA
    transfer (the SCU protocol then operates at batch granularity —
    semantics are unchanged for error-free runs, and protocol-level tests
    use single-word frames).
    """

    ptype: PacketType
    words: np.ndarray = field(default_factory=lambda: _NO_WORDS)
    seq: int = 0  # transfer-local sequence number of the first word
    #: corruption injected by the fault model: index of flipped bit, or None
    corrupt_bit: Optional[int] = None

    def __post_init__(self):
        self.words = np.ascontiguousarray(self.words, dtype=np.uint64)

    @property
    def nwords(self) -> int:
        return int(self.words.size)

    def wire_bits(self, header_bits: int = 8, payload_bits: int = 64) -> int:
        """Bits on the wire: one header per frame plus its payload words.

        Partition-interrupt packets carry only 8 payload bits (paper
        section 2.2 item 3); control frames (ACK/RESEND/IDLE/EOT) are a
        bare header.  A multi-word data frame amortises the header over
        the batch — ``header + n*payload`` bits — which is the face-batch
        wire accounting: ``bits(n, batch) = ceil(n/batch)*header +
        n*payload`` for an error-free n-word transfer.  Single-word frames
        (``word_batch=1``) cost exactly ``header + payload`` bits, so the
        protocol suite's per-word timing closed forms are unchanged.
        """
        if self.ptype == PacketType.PARTITION_IRQ:
            return header_bits + 8
        if self.nwords == 0:
            return header_bits
        return header_bits + self.nwords * payload_bits

    def is_corrupt(self) -> bool:
        return self.corrupt_bit is not None


class LinkChecksum:
    """Running checksum of every payload word that crossed one link end.

    Paper section 2.2: "checksums at each end of the link are kept, so at
    the conclusion of a calculation, these checksums can be compared.  This
    offers a final confirmation that no erroneous data was exchanged."
    """

    def __init__(self):
        self.value = np.uint64(0)
        self.words = 0

    def update(self, words: np.ndarray) -> None:
        w = np.ascontiguousarray(words, dtype=np.uint64)
        with np.errstate(over="ignore"):
            self.value = np.uint64(self.value + w.sum(dtype=np.uint64))
        self.words += int(w.size)

    def matches(self, other: "LinkChecksum") -> bool:
        return self.value == other.value and self.words == other.words

    def __repr__(self) -> str:
        return f"LinkChecksum(words={self.words}, value={int(self.value):#018x})"


def float_to_words(a: np.ndarray) -> np.ndarray:
    """Bit-cast a float64/complex128 array to the uint64 wire format."""
    arr = np.ascontiguousarray(a)
    if arr.dtype == np.complex128:
        arr = arr.view(np.float64)
    if arr.dtype != np.float64 and arr.dtype != np.uint64:
        arr = arr.astype(np.float64)
    return arr.reshape(-1).view(np.uint64)


def words_to_float(words: np.ndarray, complex_: bool = False) -> np.ndarray:
    """Inverse of :func:`float_to_words`."""
    f = np.ascontiguousarray(words, dtype=np.uint64).view(np.float64)
    return f.view(np.complex128) if complex_ else f
