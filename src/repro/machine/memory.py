"""The ASIC memory system: prefetching EDRAM controller + DDR controller.

Paper section 2.1: the PPC 440 data-cache connection goes first to a
prefetching EDRAM controller and only then to the PLB.  The controller reads
1024-bit EDRAM rows and feeds the processor 128-bit words at full clock
speed (8 GB/s at 500 MHz), sustaining that bandwidth for up to **two**
concurrent sequential streams ("for an operation a(x) x b(x) ... without
suffering excessive page miss overheads").  More streams than that thrash
rows and degrade toward the page-miss-dominated rate.  Off-chip DDR delivers
2.6 GB/s.

This module gives both an analytic timing model (used by
:mod:`repro.perfmodel`) and event-simulation hooks (used by the SCU DMA
engines through :class:`MemorySystem`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.machine.asic import ASICConfig
from repro.sim.channel import Resource
from repro.sim.core import Simulator
from repro.util.errors import ConfigError

Region = Literal["edram", "ddr"]


@dataclass
class AccessStats:
    """Running totals kept by a :class:`MemorySystem`."""

    edram_bytes: int = 0
    ddr_bytes: int = 0
    accesses: int = 0


class MemoryModel:
    """Pure timing model of the two memory regions (no simulator needed)."""

    def __init__(self, asic: ASICConfig):
        self.asic = asic

    def bandwidth(self, region: Region, streams: int = 1) -> float:
        """Sustained bytes/s for ``streams`` concurrent sequential streams.

        EDRAM holds peak for <= ``edram_prefetch_streams`` streams; beyond
        that each extra stream forces a row re-open per row's worth of
        data, modelled as a proportional derating.  DDR is modelled flat
        (its controller pipelines transactions; the 2.6 GB/s figure is the
        sustained one the paper quotes).
        """
        if streams < 1:
            raise ConfigError(f"streams must be >= 1, got {streams}")
        if region == "edram":
            peak = self.asic.edram_bandwidth
            extra = max(0, streams - self.asic.edram_prefetch_streams)
            # each excess stream costs a row-activate per row fetched:
            # derate by row-transfer/(row-transfer + activate) per excess.
            if extra == 0:
                return peak
            activate_penalty = 1.0 + 0.5 * extra
            return peak / activate_penalty
        if region == "ddr":
            return self.asic.ddr_bandwidth
        raise ConfigError(f"unknown memory region {region!r}")

    def latency(self, region: Region) -> float:
        if region == "edram":
            return self.asic.edram_latency
        if region == "ddr":
            return self.asic.ddr_latency
        raise ConfigError(f"unknown memory region {region!r}")

    def access_time(self, nbytes: int, region: Region, streams: int = 1) -> float:
        """First-word latency + streaming transfer time."""
        if nbytes < 0:
            raise ConfigError("negative byte count")
        if nbytes == 0:
            return 0.0
        return self.latency(region) + nbytes / self.bandwidth(region, streams)

    def residency(self, working_set_bytes: int) -> Region:
        """Where a working set of the given size lives.

        Paper section 4: "for most of the fermion formulations, a 6^4 local
        volume still fits in our 4 Megabytes of imbedded memory.  For still
        larger volumes ... performance figures fall to the range of 30%".
        """
        return "edram" if working_set_bytes <= self.asic.edram_bytes else "ddr"

    def spill_fraction(self, working_set_bytes: int) -> float:
        """Fraction of traffic served from DDR once EDRAM overflows.

        The kernel keeps the hottest data (solver vectors) resident and
        streams the overflow (typically the gauge field) from DDR.
        """
        if working_set_bytes <= self.asic.edram_bytes:
            return 0.0
        return 1.0 - self.asic.edram_bytes / working_set_bytes


class MemorySystem:
    """Event-simulation wrapper: a shared port with arbitration.

    The SCU DMA engines and the CPU contend for the memory port (on real
    silicon, for the PLB and the EDRAM controller).  ``transfer`` is a
    process-style generator: ``yield from mem.transfer(...)``.
    """

    def __init__(self, sim: Simulator, asic: ASICConfig, ports: int = 2):
        self.sim = sim
        self.model = MemoryModel(asic)
        self.port = Resource(sim, slots=ports)
        self.stats = AccessStats()

    def transfer(self, nbytes: int, region: Region = "edram", streams: int = 1):
        """Occupy a memory port for the duration of an access (generator)."""
        yield self.port.acquire()
        try:
            yield self.sim.timeout(self.model.access_time(nbytes, region, streams))
            self.stats.accesses += 1
            if region == "edram":
                self.stats.edram_bytes += nbytes
            else:
                self.stats.ddr_bytes += nbytes
        finally:
            self.port.release()
