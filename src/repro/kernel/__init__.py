"""The node run kernel (paper section 3.2)."""

from repro.kernel.kernel import RunKernel, Syscall, ThreadState

__all__ = ["RunKernel", "Syscall", "ThreadState"]
