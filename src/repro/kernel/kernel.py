"""The lean, home-grown node run kernel.

Paper section 3.2: "Our node run kernels provide essentially two threads —
a kernel thread and an application thread.  For QCD, we have no reason to
multitask on the node level, so the run kernels do not do any scheduling.
... Once a user application is started, the thread switches to the
application, until a system call is made by the application.  The kernel
services this request and then returns control to the application thread.
Upon program termination, the kernel thread is reinvoked and it checks on
hardware status and reports back to the qdaemon and user."

Also modelled: the custom UDP sockets interface, NFS-mounted host files
(applications "write directly to the host disk system"), and the PPC 440
memory protection used "to protect memory from unintended access, but not
to translate addresses" — which is what lets the SCU DMA run zero-copy
without page-table-walk hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, Dict, List, Optional, Tuple

from repro.machine.node import Node
from repro.sim.core import Event, Simulator
from repro.util.errors import MachineError
from repro.util.units import US

#: fixed syscall entry/exit cost (thread switch + dispatch)
SYSCALL_OVERHEAD = 2 * US


class ThreadState(Enum):
    KERNEL = auto()
    APPLICATION = auto()


@dataclass
class Syscall:
    """A serviced system-call record (for accounting/tests)."""

    name: str
    time: float
    detail: str = ""


class RunKernel:
    """Per-node kernel instance.

    Parameters
    ----------
    host_files:
        The NFS-mounted host directory: ``path -> list of lines`` (shared
        with the host side, typically a :class:`~repro.host.qcsh.Qcsh`
        file area).
    on_report:
        Called with ``(node_id, status_text)`` when the kernel thread
        reports after application termination.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        host_files: Optional[Dict[str, List[str]]] = None,
        on_report: Optional[Callable[[int, str], None]] = None,
    ):
        self.sim = sim
        self.node = node
        self.thread = ThreadState.KERNEL
        self.host_files = host_files if host_files is not None else {}
        self.on_report = on_report
        self.syscalls: List[Syscall] = []
        self.thread_switches = 0
        self.stdout: List[str] = []
        self._protected: set = set()
        self.app_running = False

    # -- thread model ----------------------------------------------------------
    def _enter_kernel(self) -> None:
        if self.thread != ThreadState.KERNEL:
            self.thread = ThreadState.KERNEL
            self.thread_switches += 1

    def _enter_application(self) -> None:
        if self.thread != ThreadState.APPLICATION:
            self.thread = ThreadState.APPLICATION
            self.thread_switches += 1

    def run_application(self, app_gen) -> Event:
        """Run an application generator under the two-thread discipline.

        The application yields ordinary simulation events (comms, compute,
        syscalls); on termination the kernel thread is re-entered, checks
        hardware status and reports to the qdaemon.
        """
        if self.app_running:
            raise MachineError("run kernels do not multitask: app already running")
        self.app_running = True

        def wrapper():
            self._enter_application()
            try:
                result = yield from app_gen
            finally:
                # "Upon program termination, the kernel thread is
                # reinvoked and it checks on hardware status and reports."
                self._enter_kernel()
                self.app_running = False
                status = self.hardware_status()
                if self.on_report is not None:
                    self.on_report(self.node.node_id, status)
            return result

        return self.sim.process(wrapper(), name=f"app@{self.node.node_id}")

    # -- system calls -----------------------------------------------------------
    def syscall(self, name: str, *args) -> Event:
        """Service a system call: kernel thread runs, then control returns.

        Returns an event yielding the syscall's result.
        """
        self._enter_kernel()
        done = self.sim.event()

        def service():
            try:
                result = self._dispatch(name, *args)
            except MachineError as exc:
                # The error is delivered to the application at its yield
                # point, not crashed into the kernel.
                self.syscalls.append(Syscall(name, self.sim.now, "error"))
                self._enter_application()
                done.fail(exc)
                return
            self.syscalls.append(Syscall(name, self.sim.now))
            self._enter_application()
            done.succeed(result)

        self.sim.schedule(SYSCALL_OVERHEAD, service)
        return done

    def _dispatch(self, name: str, *args):
        if name == "write_stdout":
            (line,) = args
            self.stdout.append(str(line))
            return len(self.stdout)
        if name == "nfs_open":
            (path,) = args
            return self.host_files.setdefault(path, [])
        if name == "nfs_write":
            path, line = args
            self.host_files.setdefault(path, []).append(str(line))
            return True
        if name == "nfs_read":
            (path,) = args
            if path not in self.host_files:
                raise MachineError(f"NFS: no such file {path!r}")
            return list(self.host_files[path])
        if name == "time":
            return self.sim.now
        if name == "hw_status":
            return self.hardware_status()
        raise MachineError(f"unknown system call {name!r}")

    # -- memory protection ------------------------------------------------------
    def protect(self, buffer_name: str) -> None:
        """Mark a buffer kernel-only (no address translation involved)."""
        self._protected.add(buffer_name)

    def check_access(self, buffer_name: str) -> None:
        """Application-side access check; raises on protected buffers."""
        if self.thread == ThreadState.APPLICATION and buffer_name in self._protected:
            raise MachineError(
                f"memory protection violation: {buffer_name!r} is kernel-only"
            )

    # -- status ------------------------------------------------------------
    def hardware_status(self) -> str:
        """The kernel's end-of-run hardware report (SCU resend counters)."""
        resends = sum(
            u.resends for u in self.node.scu.send_units.values()
        )
        return f"ok resends={resends}" if resends == 0 else f"resends={resends}"
