"""Node-program communications API over the simulated SCU hardware.

A node program is a generator ``def program(api): ... yield api.send(...)``
running on one logical rank of a partition.  The API mirrors the paper's
user-level software (section 3.3):

* zero-copy block-strided DMA sends/receives addressed by *logical* axis
  and sign (the partition translates to a physical link direction);
* persistent ("stored") descriptors started by a single call;
* supervisor packets;
* SCU global sums (with the deterministic accumulation order that makes
  runs bit-exactly repeatable);
* ``compute(flops)`` to charge simulated CPU time for numpy-evaluated
  physics.

Per-axis completion events
--------------------------
``start_stored()`` still returns one aggregate event (all transfers
done), but the overlapped Dirac pipeline needs to know *which* halo has
landed: boundary work for axis ``mu`` can start as soon as that axis's
receive completes, concurrently with the remaining transfers.  For that,

* ``store_send`` / ``store_recv`` accept a ``group=`` tag so logically
  distinct waves of transfers (e.g. raw-field halos vs staged
  ``U^+ psi`` products) can be started independently;
* ``start_stored_events(group=...)`` returns a dict of per-direction
  completion events keyed ``(kind, axis, sign)`` with
  ``kind in {"send", "recv"}``;
* ``wait_any(events)`` yields when the *first* of a set fires (and tells
  you which), enabling the completion-order drain loop of the two-phase
  hopping term;
* ``wait([])`` on an empty iterable is defined to resolve immediately at
  ``sim.now`` — an interior phase may legitimately wait on zero halo
  axes in a 0-dimensional decomposition;
* ``transfer_counters()`` exposes the SCU's payload/wire word counters
  for protocol and efficiency accounting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.machine.globalops import GlobalOpsEngine
from repro.machine.node import Node
from repro.machine.scu import DmaDescriptor
from repro.machine.topology import Partition
from repro.sim.core import Event
from repro.util.errors import ConfigError


def full_descriptor(node: Node, buffer: str) -> DmaDescriptor:
    """A descriptor covering an entire named buffer."""
    return DmaDescriptor(buffer=buffer, block_len=node.memory.word_count(buffer))


def face_descriptor(
    buffer: str,
    local_shape: Sequence[int],
    axis: int,
    side: int,
    words_per_site: int,
    depth: int = 1,
) -> DmaDescriptor:
    """Block-strided descriptor selecting one boundary face of a field.

    For a field stored site-major over ``local_shape`` (last axis fastest)
    with ``words_per_site`` 64-bit words per site, the face
    ``x_axis < depth`` (``side=-1``) or ``x_axis >= L-depth`` (``side=+1``)
    is exactly ``head`` contiguous blocks of ``depth*tail`` sites separated
    by ``L*tail`` sites — which is why the SCU's block-strided DMA (paper
    section 2.2) moves lattice halos with *zero* copying or packing.

    The word order produced equals the site order of
    :func:`repro.lattice.halos.face_indices`, so sender and receiver agree
    element-by-element.
    """
    shape = tuple(int(s) for s in local_shape)
    if not 0 <= axis < len(shape):
        raise ConfigError(f"axis {axis} out of range for shape {shape}")
    L = shape[axis]
    if not 1 <= depth <= L:
        raise ConfigError(f"bad face depth {depth} for axis extent {L}")
    head = int(np.prod(shape[:axis])) if axis > 0 else 1
    tail = int(np.prod(shape[axis + 1 :])) if axis + 1 < len(shape) else 1
    block_sites = depth * tail
    period_sites = L * tail
    offset_sites = 0 if side < 0 else (L - depth) * tail
    return DmaDescriptor(
        buffer=buffer,
        block_len=block_sites * words_per_site,
        nblocks=head,
        stride=period_sites * words_per_site,
        offset=offset_sites * words_per_site,
    )


class CommsAPI:
    """Per-rank handle given to node programs by
    :meth:`repro.machine.machine.QCDOCMachine.run_partition`."""

    def __init__(
        self,
        machine,
        partition: Partition,
        global_engine: GlobalOpsEngine,
        rank: int,
        node: Node,
    ):
        self.machine = machine
        self.partition = partition
        self.globals = global_engine
        self.rank = rank
        self.node = node
        self.sim = node.sim
        #: the machine's halo-buffer race sanitizer, or ``None`` (off).
        #: Hook sites below guard with one attribute check, like tracing.
        self.sanitizer = node.sanitizer
        #: physical (kind, direction) -> logical (axis, sign) for stored
        #: descriptors, so per-direction completion events can be re-keyed
        #: in the coordinates node programs think in.
        self._stored_logical: Dict[Tuple[str, int], Tuple[int, int]] = {}

    # -- identity ------------------------------------------------------------
    @property
    def dims(self) -> Tuple[int, ...]:
        """Logical machine dimensions of this partition."""
        return self.partition.logical_dims

    @property
    def coord(self) -> Tuple[int, ...]:
        return self.partition.logical_coord(self.rank)

    @property
    def memory(self):
        return self.node.memory

    def _direction(self, axis: int, sign: int) -> int:
        return self.partition.physical_direction(self.rank, axis, sign)

    # -- memory ------------------------------------------------------------
    def alloc(self, name: str, array: np.ndarray, region: Optional[str] = None):
        return self.node.memory.alloc(name, array, region)

    def buffer(self, name: str) -> np.ndarray:
        return self.node.memory.get(name)

    # -- sanitizer checkpoints ------------------------------------------------
    def cpu_read(self, buffer: str) -> None:
        """Declare a CPU read of a node-memory buffer.

        A no-op (one attribute check) unless a
        :class:`~repro.analysis.sanitizer.HaloRaceSanitizer` is attached,
        in which case reading a buffer with an in-flight *receive* is
        flagged as a race (the data has not landed on real silicon).
        """
        san = self.sanitizer
        if san is not None:
            san.cpu_read(self.node.node_id, buffer, now=self.sim.now)

    def cpu_write(self, buffer: str) -> None:
        """Declare a CPU write of a node-memory buffer.

        Races with *any* in-flight DMA on the buffer (a send is still
        reading it; a receive is still storing into it).
        """
        san = self.sanitizer
        if san is not None:
            san.cpu_write(self.node.node_id, buffer, now=self.sim.now)

    def _register_logical(self, direction: int, axis: int, sign: int) -> None:
        san = self.sanitizer
        if san is not None:
            san.register_logical(self.node.node_id, direction, axis, sign)

    # -- point-to-point ---------------------------------------------------------
    def send(
        self, axis: int, sign: int, descriptor: DmaDescriptor, word_batch=None
    ) -> Event:
        """Start a DMA send toward the logical ``(axis, sign)`` neighbour.

        ``word_batch`` overrides the machine-wide frame batch for this one
        transfer; ``"face"`` ships the whole descriptor as a single frame
        (the hot-path default used by the distributed operators).
        """
        direction = self._direction(axis, sign)
        self._register_logical(direction, axis, sign)
        return self.node.scu.send(direction, descriptor, word_batch=word_batch)

    def recv(self, axis: int, sign: int, descriptor: DmaDescriptor) -> Event:
        """Post a DMA receive from the logical ``(axis, sign)`` neighbour."""
        direction = self._direction(axis, sign)
        self._register_logical(direction, axis, sign)
        return self.node.scu.recv(direction, descriptor)

    def send_buffer(self, axis: int, sign: int, name: str) -> Event:
        return self.send(axis, sign, full_descriptor(self.node, name))

    def recv_buffer(self, axis: int, sign: int, name: str) -> Event:
        return self.recv(axis, sign, full_descriptor(self.node, name))

    # -- persistent descriptors ---------------------------------------------------
    def store_send(
        self,
        axis: int,
        sign: int,
        descriptor: DmaDescriptor,
        group: str = "default",
        word_batch=None,
    ) -> None:
        """Store a persistent send descriptor.

        ``word_batch`` pins the frame batch used every time this
        descriptor starts (``"face"`` = whole face per frame).  The batch
        is a property of the *send* side only — the receive protocol is
        batch-agnostic, so there is no matching knob on
        :meth:`store_recv` and no way to configure a mismatched pair.
        """
        direction = self._direction(axis, sign)
        self._stored_logical[("send", direction)] = (axis, sign)
        self._register_logical(direction, axis, sign)
        self.node.scu.store_descriptor(
            "send", direction, descriptor, group=group, word_batch=word_batch
        )

    def store_recv(
        self, axis: int, sign: int, descriptor: DmaDescriptor, group: str = "default"
    ) -> None:
        direction = self._direction(axis, sign)
        self._stored_logical[("recv", direction)] = (axis, sign)
        self._register_logical(direction, axis, sign)
        self.node.scu.store_descriptor("recv", direction, descriptor, group=group)

    def start_stored(self, group: Optional[str] = None) -> Event:
        """One write starts every stored transfer; yields when all done.

        With ``group=`` only descriptors stored under that tag are
        started.  For per-direction completion use
        :meth:`start_stored_events` instead.
        """
        events = self.node.scu.start_stored(group=group)
        return self.sim.all_of(list(events.values()))

    def start_stored_events(
        self, group: Optional[str] = None
    ) -> Dict[Tuple[str, int, int], Event]:
        """Start stored transfers, returning per-direction completion events.

        Keys are ``(kind, axis, sign)`` with ``kind in {"send", "recv"}``
        and ``(axis, sign)`` the *logical* neighbour coordinates used when
        the descriptor was stored.  Boundary compute for axis ``mu`` may
        begin as soon as ``events[("recv", mu, s)]`` fires, while other
        transfers are still in flight — the overlap the paper's
        sustained-efficiency model assumes.
        """
        raw = self.node.scu.start_stored(group=group)
        events: Dict[Tuple[str, int, int], Event] = {}
        for (kind, direction), event in raw.items():
            axis, sign = self._stored_logical[(kind, direction)]
            events[(kind, axis, sign)] = event
        return events

    def transfer_counters(self) -> Dict[str, int]:
        """This node's cumulative SCU payload/wire word counters."""
        return self.node.scu.transfer_counters()

    # -- hot-epoch replay (see repro.machine.replay) ---------------------------
    def begin_hot_epoch(self, tag: str) -> None:
        """Bracket the start of one steady-state operator application.

        The first epoch of a ``tag`` runs interpreted while the SCU's
        :class:`~repro.machine.replay.ReplayEngine` learns the stored
        -descriptor schedule; subsequent epochs replay the compiled trace
        (bit-identical results, counters, and trace records).  A no-op
        when the engine is disabled.
        """
        self.node.scu.replay.begin_epoch(tag)

    def end_hot_epoch(self, tag: str) -> None:
        """Close the epoch opened by :meth:`begin_hot_epoch` (same tag)."""
        self.node.scu.replay.end_epoch(tag)

    # -- supervisor ------------------------------------------------------------
    def send_supervisor(self, axis: int, sign: int, word: int) -> Event:
        return self.node.scu.send_supervisor(self._direction(axis, sign), word)

    def wait_supervisor(self) -> Event:
        return self.node.wait_supervisor()

    # -- collectives ------------------------------------------------------------
    def global_sum(self, values: np.ndarray) -> Event:
        """Contribute to a partition-wide sum; yields the summed array.

        All ranks receive bitwise-identical results (canonical accumulation
        order in the SCU global mode).
        """
        return self.globals.contribute_sum(self.rank, values)

    def barrier(self) -> Event:
        """Synchronise all ranks (a 1-word global sum)."""
        return self.globals.contribute_sum(self.rank, np.zeros(1))

    # -- compute ------------------------------------------------------------
    def compute(self, flops: float, kernel: Optional[str] = None) -> Event:
        """Charge simulated CPU time for ``flops`` floating-point ops.

        ``kernel`` optionally attributes the work to a named kernel in the
        node's :attr:`~repro.machine.node.Node.kernel_flops` ledger (and
        the ``cpu.compute`` trace span when tracing is on).
        """
        return self.node.compute(flops, kernel=kernel)

    @property
    def trace(self):
        """The machine-wide trace, or ``None`` when tracing is off."""
        return self.node.trace

    def wait(self, events: Iterable[Event]) -> Event:
        """Yieldable event that fires once *all* of ``events`` have fired.

        An **empty** iterable is explicitly legal and resolves immediately
        at ``sim.now`` (zero simulated delay): the interior phase of the
        overlapped hopping term waits on the halo axes of the current
        decomposition, and a 0-dimensional decomposition has none.
        """
        return self.sim.all_of(list(events))

    def wait_any(self, events: Iterable[Event]) -> Event:
        """Yieldable event that fires when the *first* of ``events`` fires.

        The yielded value is the triggered child :class:`Event` itself, so
        a drain loop can identify which transfer completed (compare by
        identity against the events from :meth:`start_stored_events`).
        """
        return self.sim.any_of(list(events))

    def __repr__(self) -> str:
        return f"CommsAPI(rank={self.rank}, coord={self.coord}, dims={self.dims})"
