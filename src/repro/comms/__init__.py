"""The user-visible communications API (paper section 3.3).

"The communications API allows the user to control the settings of the DMA
units in the SCUs ... the SCU's can store DMA instructions internally, so
that only a single write (start transfer) is needed to start up to 24
communications ... We also have API interfaces to the global sum and
broadcast features of the SCU hardware."

:class:`~repro.comms.api.CommsAPI` is what node programs receive: axis/sign
addressed sends and receives over the partition's logical topology,
persistent descriptors, supervisor packets, global sums, and compute-time
charging.
"""

from repro.comms.api import CommsAPI, face_descriptor, full_descriptor

__all__ = ["CommsAPI", "face_descriptor", "full_descriptor"]
