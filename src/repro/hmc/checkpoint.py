"""Checkpoint/restart for HMC evolutions, pure-gauge and dynamical.

Because every random draw in the HMC drivers comes from a named stream
keyed by the trajectory index (``(seed, "momenta/<k>")``,
``(seed, "eta/<k>")``, ``(seed, "metropolis/<k>")``), the full evolution
is a pure function of ``(initial configuration, seed)``: an evolution
killed after trajectory ``k`` and restarted from a snapshot of
``(links, k, history)`` replays trajectories ``k, k+1, ...`` with
*exactly* the random numbers the uninterrupted run would have drawn —
the resumed chain is identical in all bits (the paper's section-4
verification criterion, extended to the companion papers'
fail/remap/resume operating mode).

The same snapshot serves all three drivers — the pure-gauge
:class:`repro.hmc.hmc.HMC`, the serial
:class:`repro.hmc.pseudofermion.TwoFlavorWilsonHMC` and the
machine-distributed :class:`repro.parallel.phmc.DistributedTwoFlavorHMC` —
the dynamical ones additionally carrying the ``cg_iterations`` audit
trail, so a resumed dynamical chain reports the same solver history as
the uninterrupted run.

The snapshot deliberately excludes the integrator/step parameters: those
belong to the job script, and restoring onto a differently-configured
driver is a *user* error the restore guards against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.hmc.hmc import HMC, TrajectoryResult
from repro.hmc.pseudofermion import TwoFlavorWilsonHMC
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.phmc import DistributedTwoFlavorHMC

#: Any driver with the (gauge, seed, trajectory_index, history) state
#: contract; dynamical drivers additionally expose ``cg_iterations``.
AnyHMC = Union[HMC, TwoFlavorWilsonHMC, "DistributedTwoFlavorHMC"]


@dataclass(frozen=True)
class HMCCheckpoint:
    """One host-side snapshot of an HMC evolution.

    Frozen and deep-copied on both save and restore, so later evolution
    (or a crashing run mutating its gauge field mid-trajectory) can never
    corrupt a snapshot already taken.
    """

    links: np.ndarray
    trajectory_index: int
    seed: int
    history: List[TrajectoryResult] = field(default_factory=list)
    #: per-solve CG iteration counts (``None`` for pure-gauge drivers)
    cg_iterations: Optional[List[int]] = None

    @classmethod
    def save(cls, hmc: AnyHMC) -> "HMCCheckpoint":
        """Snapshot the driver between trajectories."""
        cg_iterations = getattr(hmc, "cg_iterations", None)
        return cls(
            links=np.array(hmc.gauge.links, copy=True),
            trajectory_index=int(hmc.trajectory_index),
            seed=int(hmc.seed),
            history=list(hmc.history),
            cg_iterations=None if cg_iterations is None else list(cg_iterations),
        )

    def restore(self, hmc: AnyHMC) -> AnyHMC:
        """Load this snapshot into a (fresh or reused) driver in place.

        The driver must use the same root seed — restoring a seed-``a``
        snapshot into a seed-``b`` evolution would silently splice two
        different Markov chains.  Likewise pure-gauge and dynamical
        snapshots cannot cross drivers: the actions differ, so the
        "resumed" chain would not be a continuation of anything.
        """
        if int(hmc.seed) != self.seed:
            raise ConfigError(
                f"checkpoint was taken at seed {self.seed}, driver has "
                f"seed {hmc.seed}; refusing to splice chains"
            )
        dynamical_driver = hasattr(hmc, "cg_iterations")
        if (self.cg_iterations is not None) != dynamical_driver:
            kind = "dynamical" if self.cg_iterations is not None else "pure-gauge"
            raise ConfigError(
                f"checkpoint is {kind} but the driver is not; "
                "refusing to splice chains across actions"
            )
        hmc.gauge.links = np.array(self.links, copy=True)
        hmc.trajectory_index = self.trajectory_index
        hmc.history = list(self.history)
        if self.cg_iterations is not None:
            hmc.cg_iterations = list(self.cg_iterations)
        return hmc

    def __repr__(self) -> str:
        return (
            f"HMCCheckpoint(trajectory={self.trajectory_index}, "
            f"seed={self.seed}, {len(self.history)} results)"
        )


def run_with_checkpoints(
    hmc: AnyHMC,
    n_trajectories: int,
    every: int = 5,
    reunitarise_every: int = 10,
) -> tuple:
    """Run ``n_trajectories``, snapshotting every ``every`` trajectories.

    Returns ``(results, checkpoints)`` where ``checkpoints[-1]`` is the
    final state — the caller (e.g. the resilience harness or a fault
    campaign) can restart from any element and replay the tail
    bit-identically.
    """
    if every < 1:
        raise ConfigError(f"checkpoint cadence must be >= 1, got {every}")
    checkpoints: List[HMCCheckpoint] = [HMCCheckpoint.save(hmc)]
    results: List[TrajectoryResult] = []
    for _ in range(n_trajectories):
        results.append(hmc.trajectory())
        # Phase-align on the *absolute* trajectory index (not the loop
        # counter): a run resumed from a checkpoint then reunitarises and
        # snapshots at exactly the same points as the uninterrupted run,
        # which is what makes the resumed chain bit-identical.
        done = hmc.trajectory_index
        if reunitarise_every and done % reunitarise_every == 0:
            hmc.gauge.reunitarise()
        if done % every == 0 or len(results) == n_trajectories:
            checkpoints.append(HMCCheckpoint.save(hmc))
    return results, checkpoints
