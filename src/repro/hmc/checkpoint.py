"""Checkpoint/restart for the pure-gauge HMC evolution.

Because every random draw in :class:`repro.hmc.hmc.HMC` comes from a
named stream keyed by the trajectory index (``(seed, "momenta/<k>")``,
``(seed, "metropolis/<k>")``), the full evolution is a pure function of
``(initial configuration, seed)``: an evolution killed after trajectory
``k`` and restarted from a snapshot of ``(links, k, history)`` replays
trajectories ``k, k+1, ...`` with *exactly* the random numbers the
uninterrupted run would have drawn — the resumed chain is identical in
all bits (the paper's section-4 verification criterion, extended to the
companion papers' fail/remap/resume operating mode).

The snapshot deliberately excludes the integrator/step parameters: those
belong to the job script, and restoring onto a differently-configured
driver is a *user* error the restore guards against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hmc.hmc import HMC, TrajectoryResult
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class HMCCheckpoint:
    """One host-side snapshot of an HMC evolution.

    Frozen and deep-copied on both save and restore, so later evolution
    (or a crashing run mutating its gauge field mid-trajectory) can never
    corrupt a snapshot already taken.
    """

    links: np.ndarray
    trajectory_index: int
    seed: int
    history: List[TrajectoryResult] = field(default_factory=list)

    @classmethod
    def save(cls, hmc: HMC) -> "HMCCheckpoint":
        """Snapshot the driver between trajectories."""
        return cls(
            links=np.array(hmc.gauge.links, copy=True),
            trajectory_index=int(hmc.trajectory_index),
            seed=int(hmc.seed),
            history=list(hmc.history),
        )

    def restore(self, hmc: HMC) -> HMC:
        """Load this snapshot into a (fresh or reused) driver in place.

        The driver must use the same root seed — restoring a seed-``a``
        snapshot into a seed-``b`` evolution would silently splice two
        different Markov chains.
        """
        if int(hmc.seed) != self.seed:
            raise ConfigError(
                f"checkpoint was taken at seed {self.seed}, driver has "
                f"seed {hmc.seed}; refusing to splice chains"
            )
        hmc.gauge.links = np.array(self.links, copy=True)
        hmc.trajectory_index = self.trajectory_index
        hmc.history = list(self.history)
        return hmc

    def __repr__(self) -> str:
        return (
            f"HMCCheckpoint(trajectory={self.trajectory_index}, "
            f"seed={self.seed}, {len(self.history)} results)"
        )


def run_with_checkpoints(
    hmc: HMC,
    n_trajectories: int,
    every: int = 5,
    reunitarise_every: int = 10,
) -> tuple:
    """Run ``n_trajectories``, snapshotting every ``every`` trajectories.

    Returns ``(results, checkpoints)`` where ``checkpoints[-1]`` is the
    final state — the caller (e.g. the resilience harness or a fault
    campaign) can restart from any element and replay the tail
    bit-identically.
    """
    if every < 1:
        raise ConfigError(f"checkpoint cadence must be >= 1, got {every}")
    checkpoints: List[HMCCheckpoint] = [HMCCheckpoint.save(hmc)]
    results: List[TrajectoryResult] = []
    for _ in range(n_trajectories):
        results.append(hmc.trajectory())
        # Phase-align on the *absolute* trajectory index (not the loop
        # counter): a run resumed from a checkpoint then reunitarises and
        # snapshots at exactly the same points as the uninterrupted run,
        # which is what makes the resumed chain bit-identical.
        done = hmc.trajectory_index
        if reunitarise_every and done % reunitarise_every == 0:
            hmc.gauge.reunitarise()
        if done % every == 0 or len(results) == n_trajectories:
            checkpoints.append(HMCCheckpoint.save(hmc))
    return results, checkpoints
