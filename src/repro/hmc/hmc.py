"""The HMC driver: momenta refresh, MD trajectory, Metropolis test.

Every random draw comes from a stream named ``(seed, "momenta/<k>")`` or
``(seed, "metropolis/<k>")`` for trajectory index ``k``, so an evolution is
a pure function of ``(initial gauge field, seed)`` — re-running it must
produce configurations *identical in all bits*, which is the software
analogue of the paper's five-day 128-node verification (section 4) and is
asserted by tests and benchmark E10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hmc.actions import WilsonGaugeAction
from repro.hmc.integrators import INTEGRATORS
from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import random_algebra
from repro.util.errors import ConfigError
from repro.util.rng import rng_stream


@dataclass
class TrajectoryResult:
    """One HMC trajectory's bookkeeping."""

    index: int
    delta_h: float
    accepted: bool
    plaquette: float
    action: float


def kinetic_energy(momenta: np.ndarray) -> float:
    """``K = -sum tr(P^2)`` — equals ``(1/2) sum_a c_a^2`` for Gaussian
    algebra coefficients, the canonical Gaussian kinetic term."""
    return float(-np.einsum("dxab,dxba->", momenta, momenta).real)


class HMC:
    """Pure-gauge hybrid Monte Carlo.

    Parameters
    ----------
    gauge:
        The state to evolve (mutated in place by accepted trajectories).
    beta:
        Wilson gauge coupling.
    seed:
        Root seed for the named RNG streams.
    integrator:
        ``"leapfrog"`` or ``"omelyan"``.
    """

    def __init__(
        self,
        gauge: GaugeField,
        beta: float,
        seed: int = 0,
        n_steps: int = 10,
        dt: float = 0.05,
        integrator: str = "omelyan",
    ):
        if integrator not in INTEGRATORS:
            raise ConfigError(
                f"unknown integrator {integrator!r}; options: {sorted(INTEGRATORS)}"
            )
        self.gauge = gauge
        self.action = WilsonGaugeAction(beta)
        self.seed = int(seed)
        self.n_steps = int(n_steps)
        self.dt = float(dt)
        self.integrator = integrator
        self.trajectory_index = 0
        self.history: List[TrajectoryResult] = []

    # -- single trajectory ------------------------------------------------------
    def draw_momenta(self) -> np.ndarray:
        rng = rng_stream(self.seed, f"momenta/{self.trajectory_index}")
        g = self.gauge.geometry
        return random_algebra(rng, g.ndim * g.volume).reshape(
            g.ndim, g.volume, 3, 3
        )

    def trajectory(self) -> TrajectoryResult:
        """One refresh-integrate-accept/reject cycle."""
        momenta = self.draw_momenta()
        h_old = kinetic_energy(momenta) + self.action(self.gauge)

        proposal = self.gauge.copy()
        INTEGRATORS[self.integrator](
            proposal, momenta, self.action.force, self.n_steps, self.dt
        )
        h_new = kinetic_energy(momenta) + self.action(proposal)
        delta_h = h_new - h_old

        rng = rng_stream(self.seed, f"metropolis/{self.trajectory_index}")
        accepted = bool(rng.random() < np.exp(min(0.0, -delta_h)))
        if accepted:
            self.gauge.links = proposal.links
        result = TrajectoryResult(
            index=self.trajectory_index,
            delta_h=float(delta_h),
            accepted=accepted,
            plaquette=self.gauge.plaquette(),
            action=self.action(self.gauge),
        )
        self.history.append(result)
        self.trajectory_index += 1
        return result

    def run(self, n_trajectories: int, reunitarise_every: int = 10) -> List[TrajectoryResult]:
        """Run several trajectories, reprojecting links periodically."""
        out = []
        for k in range(n_trajectories):
            out.append(self.trajectory())
            if reunitarise_every and (k + 1) % reunitarise_every == 0:
                self.gauge.reunitarise()
        return out

    # -- diagnostics ------------------------------------------------------------
    @property
    def acceptance_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(t.accepted for t in self.history) / len(self.history)

    def fingerprint(self) -> bytes:
        """Bit-level digest of the current configuration (the paper's
        "identical in all bits" comparison object)."""
        return self.gauge.links.tobytes()
