"""Quenched SU(3) heatbath: Cabibbo-Marinari + overrelaxation.

The second workhorse for evolving "a QCD system through the phase space of
the Feynman path integral" (paper section 4) alongside HMC: each link is
updated in place by sweeping its three SU(2) subgroups, drawing the new
subgroup element from the exact local Boltzmann weight
(Kennedy-Pendleton sampling), interleaved with microcanonical
overrelaxation sweeps that move through phase space at constant action.

Sweeps run in the checkerboard order (parity x direction) required for
detailed balance: all links updated within one half-sweep have disjoint
staples.  All randomness flows through named streams, so evolutions are
bit-reproducible like everything else in this package.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.hmc.actions import WilsonGaugeAction
from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError
from repro.util.rng import rng_stream

#: the three SU(2) subgroups of SU(3): (row/col index pairs)
SU2_SUBGROUPS: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 2))


def _su2_project(m: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Project batched 2x2 complex matrices onto ``k * SU(2)``.

    Any 2x2 ``M`` has a unique decomposition with
    ``V = [[a, b], [-b*, a*]] / k``; returns ``(k, V)`` with ``k >= 0``.
    """
    a = (m[..., 0, 0] + np.conj(m[..., 1, 1])) / 2.0
    b = (m[..., 0, 1] - np.conj(m[..., 1, 0])) / 2.0
    k = np.sqrt(np.abs(a) ** 2 + np.abs(b) ** 2)
    safe = np.where(k > 0, k, 1.0)
    v = np.empty(m.shape[:-2] + (2, 2), dtype=np.complex128)
    v[..., 0, 0] = a / safe
    v[..., 0, 1] = b / safe
    v[..., 1, 0] = -np.conj(b) / safe
    v[..., 1, 1] = np.conj(a) / safe
    eye = np.zeros_like(v)
    eye[..., 0, 0] = eye[..., 1, 1] = 1.0
    v = np.where((k > 0)[..., None, None], v, eye)
    return k, v


def _kennedy_pendleton(alpha: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample ``x0 in [-1, 1]`` with density ``sqrt(1-x0^2) exp(alpha x0)``.

    Vectorised rejection sampling (Kennedy-Pendleton 1985); ``alpha > 0``.
    """
    n = alpha.shape[0]
    x0 = np.empty(n)
    todo = np.arange(n)
    while todo.size:
        a = alpha[todo]
        r1 = rng.random(todo.size)
        r2 = rng.random(todo.size)
        r3 = rng.random(todo.size)
        r4 = rng.random(todo.size)
        # avoid log(0)
        r1 = np.clip(r1, 1e-300, 1.0)
        r3 = np.clip(r3, 1e-300, 1.0)
        x = -(np.log(r1) + np.cos(2 * np.pi * r2) ** 2 * np.log(r3)) / a
        accept = r4**2 <= 1.0 - x / 2.0
        sel = todo[accept]
        x0[sel] = 1.0 - x[accept]
        todo = todo[~accept]
    return x0


def _random_su2_from_x0(x0: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Batched SU(2) matrices with given ``x0`` and isotropic (x1,x2,x3)."""
    n = x0.shape[0]
    r = np.sqrt(np.maximum(0.0, 1.0 - x0**2))
    cos_t = 2.0 * rng.random(n) - 1.0
    sin_t = np.sqrt(np.maximum(0.0, 1.0 - cos_t**2))
    phi = 2 * np.pi * rng.random(n)
    x1 = r * sin_t * np.cos(phi)
    x2 = r * sin_t * np.sin(phi)
    x3 = r * cos_t
    out = np.empty((n, 2, 2), dtype=np.complex128)
    out[:, 0, 0] = x0 + 1j * x3
    out[:, 0, 1] = x2 + 1j * x1
    out[:, 1, 0] = -x2 + 1j * x1
    out[:, 1, 1] = x0 - 1j * x3
    return out


def _embed_su2(g2: np.ndarray, sub: Tuple[int, int]) -> np.ndarray:
    """Embed batched SU(2) matrices into SU(3) at the given subgroup."""
    n = g2.shape[0]
    g3 = np.broadcast_to(np.eye(3, dtype=np.complex128), (n, 3, 3)).copy()
    i, j = sub
    g3[:, i, i] = g2[:, 0, 0]
    g3[:, i, j] = g2[:, 0, 1]
    g3[:, j, i] = g2[:, 1, 0]
    g3[:, j, j] = g2[:, 1, 1]
    return g3


class Heatbath:
    """Quenched gauge-field updater.

    Parameters
    ----------
    beta:
        Wilson gauge coupling.
    seed:
        Root seed; each (sweep, parity, direction, subgroup) consumes from
        one deterministic stream.
    """

    def __init__(self, gauge: GaugeField, beta: float, seed: int = 0):
        if beta <= 0:
            raise ConfigError(f"beta must be positive, got {beta}")
        self.gauge = gauge
        self.beta = float(beta)
        self.seed = int(seed)
        self.sweep_index = 0
        self.action = WilsonGaugeAction(beta)
        self.plaquette_history: List[float] = []

    # -- one checkerboard half-update ---------------------------------------
    def _update_links(self, mu: int, sites: np.ndarray, rng, overrelax: bool):
        g = self.gauge
        u = g.links[mu][sites]
        staple = g.staple(mu)[sites]
        w = u @ staple  # Re tr(w) is the local action contribution
        for sub in SU2_SUBGROUPS:
            i, j = sub
            m2 = np.empty((len(sites), 2, 2), dtype=np.complex128)
            m2[:, 0, 0] = w[:, i, i]
            m2[:, 0, 1] = w[:, i, j]
            m2[:, 1, 0] = w[:, j, i]
            m2[:, 1, 1] = w[:, j, j]
            k, v = _su2_project(m2)
            if overrelax:
                # microcanonical reflection: new subgroup element V+ V+
                # keeps Re tr unchanged while moving the link.
                g2 = dagger(v) @ dagger(v)
            else:
                # heatbath: X ~ exp((beta/3) k Re tr X), new element X V+.
                alpha = np.maximum(2.0 * self.beta * k / 3.0, 1e-12)
                x0 = _kennedy_pendleton(alpha, rng)
                x = _random_su2_from_x0(x0, rng)
                g2 = x @ dagger(v)
            rot = _embed_su2(g2, sub)
            u = rot @ u
            w = rot @ w
        g.links[mu][sites] = u

    def sweep(self, overrelax: bool = False) -> float:
        """One full sweep (both parities, all directions); returns the
        plaquette afterwards."""
        g = self.gauge
        geom = g.geometry
        kind = "or" if overrelax else "hb"
        rng = rng_stream(self.seed, f"{kind}/{self.sweep_index}")
        for parity_sites in (geom.even_sites, geom.odd_sites):
            for mu in range(geom.ndim):
                self._update_links(mu, parity_sites, rng, overrelax)
        self.sweep_index += 1
        p = g.plaquette()
        self.plaquette_history.append(p)
        return p

    def run(
        self,
        n_sweeps: int,
        or_per_hb: int = 0,
        reunitarise_every: int = 10,
    ) -> List[float]:
        """``n_sweeps`` heatbath sweeps, each followed by ``or_per_hb``
        overrelaxation sweeps."""
        out = []
        for k in range(n_sweeps):
            out.append(self.sweep(overrelax=False))
            for _ in range(or_per_hb):
                out.append(self.sweep(overrelax=True))
            if reunitarise_every and (k + 1) % reunitarise_every == 0:
                self.gauge.reunitarise()
        return out

    def fingerprint(self) -> bytes:
        return self.gauge.links.tobytes()
