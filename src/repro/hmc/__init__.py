"""Hybrid Monte Carlo: evolving QCD "through the phase space of the
Feynman path integral" (paper sections 1 and 4).

The paper's final ASIC verification was physics-grade: a five-day HMC
evolution on 128 nodes, re-run and required to produce a configuration
"identical in all bits".  This package provides the pure-gauge HMC that
plays that role in the reproduction: Wilson gauge action and force,
reversible symplectic integrators (leapfrog and Omelyan), Metropolis
accept/reject with named deterministic RNG streams — so an evolution is a
pure function of its seed, and bit-identical re-runs are a testable
property, not an accident.
"""

from repro.hmc.actions import WilsonGaugeAction
from repro.hmc.integrators import INTEGRATORS, leapfrog, omelyan
from repro.hmc.hmc import HMC, TrajectoryResult
from repro.hmc.heatbath import Heatbath
from repro.hmc.pseudofermion import TwoFlavorWilsonHMC

__all__ = [
    "TwoFlavorWilsonHMC",
    "WilsonGaugeAction",
    "leapfrog",
    "omelyan",
    "INTEGRATORS",
    "HMC",
    "TrajectoryResult",
    "Heatbath",
]
