"""Dynamical (two-flavor) Wilson HMC with pseudofermions.

The paper's production workload was *dynamical* QCD — the five-day
128-node verification run "evolve[d] a QCD system through the phase space
of the Feynman path integral" with the Dirac solves inside the force.
This module implements the standard two-flavor algorithm:

* at the start of each trajectory draw ``eta ~ exp(-eta^+ eta)`` and set
  the pseudofermion field ``phi = D^+ eta``, so that
  ``S_pf = phi^+ (D^+ D)^{-1} phi`` starts at exactly ``eta^+ eta``;
* the molecular-dynamics force needs ``X = (D^+ D)^{-1} phi`` (a CG
  solve — the paper's "dominant calculational time" inside every MD
  step) and ``Y = D X``; the link derivative of the hopping term gives

  ``F_mu(x) = -(1/2) TA[ U_mu(x) B1 - D2 U_mu(x)^+ ]``, with colour
  matrices built from ``(r -+ gamma_mu)``-projected outer products of
  ``X`` and ``Y`` (derivation in the docstring of
  :meth:`TwoFlavorWilsonHMC.fermion_force`; validated against a numerical
  derivative of ``S_pf`` in the tests);
* leapfrog/Omelyan MD on ``S_gauge + S_pf``, then a Metropolis test on
  the exact Hamiltonian.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.fermions.gamma import GAMMA, apply_spin_matrix
from repro.fermions.wilson import WilsonDirac
from repro.hmc.actions import WilsonGaugeAction, traceless_antihermitian
from repro.hmc.hmc import TrajectoryResult, kinetic_energy
from repro.hmc.integrators import omelyan
from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import dagger, expm_su3, random_algebra
from repro.solvers.cg import cg, mixed_precision_cg
from repro.solvers.sitedot import canonical_dot
from repro.util.errors import ConfigError
from repro.util.rng import rng_stream

#: force-solver choices: plain double-precision CG, or mixed-precision CG
#: with reliable updates (:func:`repro.solvers.cg.mixed_precision_cg`)
SOLVERS = ("cg", "mixed")


class TwoFlavorWilsonHMC:
    """HMC for two degenerate Wilson flavors (quenched + ``det(D^+D)``)."""

    def __init__(
        self,
        gauge: GaugeField,
        beta: float,
        mass: float,
        seed: int = 0,
        n_steps: int = 10,
        dt: float = 0.05,
        cg_tol: float = 1e-10,
        cg_maxiter: int = 4000,
        solver: str = "cg",
    ):
        if solver not in SOLVERS:
            raise ConfigError(
                f"unknown force solver {solver!r}; options: {list(SOLVERS)}"
            )
        self.gauge = gauge
        self.gauge_action = WilsonGaugeAction(beta)
        self.mass = float(mass)
        self.seed = int(seed)
        self.n_steps = int(n_steps)
        self.dt = float(dt)
        self.cg_tol = float(cg_tol)
        self.cg_maxiter = int(cg_maxiter)
        self.solver = solver
        self.trajectory_index = 0
        self.history: List[TrajectoryResult] = []
        self.cg_iterations: List[int] = []

    # -- pseudofermion machinery ------------------------------------------------
    def _dirac(self, gauge: GaugeField) -> WilsonDirac:
        return WilsonDirac(gauge, mass=self.mass)

    def _solve_x(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        """``X = (D^+ D)^{-1} phi`` by CG on the normal operator.

        Every inner product is the decomposition-independent
        :func:`~repro.solvers.sitedot.canonical_dot`, so the machine-
        distributed driver reproduces this solve bit for bit at any node
        count.
        """
        d = self._dirac(gauge)
        if self.solver == "mixed":
            res = mixed_precision_cg(
                d.normal, phi, tol=self.cg_tol, maxiter=self.cg_maxiter
            )
        else:
            res = cg(
                d.normal,
                phi,
                tol=self.cg_tol,
                maxiter=self.cg_maxiter,
                dot=canonical_dot,
            )
        if not res.converged:
            raise ConfigError(
                f"fermion-force CG failed to converge in {self.cg_maxiter}"
            )
        self.cg_iterations.append(res.iterations)
        return res.x

    def pseudofermion_action(self, gauge: GaugeField, phi: np.ndarray) -> float:
        x = self._solve_x(gauge, phi)
        return float(canonical_dot(phi, x).real)

    def fermion_force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        """``P_dot`` contribution of ``S_pf`` (traceless anti-hermitian).

        Derivation: under ``U_mu(x) -> exp(eps Q) U_mu(x)``,

        ``dS_pf = -2 Re[ Y^+ dD X ]``
        ``      = Re tr[ Q ( U_mu(x) B1(x) - D2(x) U_mu(x)^+ ) ]``

        with colour matrices

        ``B1_{ca} = sum_t X(x+mu)_{tc} conj[((r - gamma_mu) Y(x))_{ta}]``
        ``D2_{bc} = sum_t X(x)_{tb} conj[((r + gamma_mu) Y(x+mu))_{tc}]``

        With ``dS/d eps = Re tr[Q G]`` and the kinetic normalisation
        ``K = -tr P^2``, energy conservation fixes
        ``P_dot = +(1/2) TA(G)`` — the same convention under which the
        gauge force is ``-(beta/6) TA(U S)`` (its ``G`` carries the
        ``-beta/3``).  Both signs are pinned by the numerical-gradient
        tests.
        """
        d = self._dirac(gauge)
        x_field = self._solve_x(gauge, phi)
        y_field = d.apply(x_field)
        g = gauge.geometry
        out = np.empty_like(gauge.links)
        r = d.r
        for mu in range(g.ndim):
            fwd = g.neighbour_fwd(mu)
            proj_minus_y = r * y_field - apply_spin_matrix(GAMMA[mu], y_field)
            proj_plus_y = r * y_field + apply_spin_matrix(GAMMA[mu], y_field)
            b1 = np.einsum(
                "xtc,xta->xca", x_field[fwd], np.conj(proj_minus_y)
            )
            d2 = np.einsum(
                "xtb,xtc->xbc", x_field, np.conj(proj_plus_y[fwd])
            )
            grad = gauge.links[mu] @ b1 - d2 @ dagger(gauge.links[mu])
            out[mu] = 0.5 * traceless_antihermitian(grad)
        return out

    def total_force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        return self.gauge_action.force(gauge) + self.fermion_force(gauge, phi)

    def pseudofermion_gradient_check(
        self, gauge: GaugeField, phi: np.ndarray, mu: int, site: int,
        direction: np.ndarray, eps: float = 1e-5,
    ) -> float:
        """Numerical ``dS_pf/d eps`` for one link (force validation)."""

        def perturbed(sign: float) -> float:
            g2 = gauge.copy()
            rot = expm_su3((sign * eps * direction)[None])[0]
            g2.links[mu][site] = rot @ gauge.links[mu][site]
            return self.pseudofermion_action(g2, phi)

        return (perturbed(+1.0) - perturbed(-1.0)) / (2 * eps)

    # -- trajectories ------------------------------------------------------------
    def draw_fields(self):
        g = self.gauge.geometry
        rng_p = rng_stream(self.seed, f"momenta/{self.trajectory_index}")
        momenta = random_algebra(rng_p, g.ndim * g.volume).reshape(
            g.ndim, g.volume, 3, 3
        )
        rng_e = rng_stream(self.seed, f"eta/{self.trajectory_index}")
        eta = (
            rng_e.standard_normal((g.volume, 4, 3))
            + 1j * rng_e.standard_normal((g.volume, 4, 3))
        ) / np.sqrt(2.0)
        phi = self._dirac(self.gauge).apply_dagger(eta)
        return momenta, eta, phi

    def trajectory(self) -> TrajectoryResult:
        momenta, eta, phi = self.draw_fields()
        # S_pf(start) = eta^+ eta exactly, by construction of phi.
        h_old = (
            kinetic_energy(momenta)
            + self.gauge_action(self.gauge)
            + float(canonical_dot(eta, eta).real)
        )
        proposal = self.gauge.copy()
        # the shared Omelyan loop, closed over the pseudofermion field
        omelyan(
            proposal,
            momenta,
            lambda g: self.total_force(g, phi),
            self.n_steps,
            self.dt,
        )
        h_new = (
            kinetic_energy(momenta)
            + self.gauge_action(proposal)
            + self.pseudofermion_action(proposal, phi)
        )
        delta_h = h_new - h_old

        rng = rng_stream(self.seed, f"metropolis/{self.trajectory_index}")
        accepted = bool(rng.random() < np.exp(min(0.0, -delta_h)))
        if accepted:
            self.gauge.links = proposal.links
        result = TrajectoryResult(
            index=self.trajectory_index,
            delta_h=float(delta_h),
            accepted=accepted,
            plaquette=self.gauge.plaquette(),
            action=self.gauge_action(self.gauge),
        )
        self.history.append(result)
        self.trajectory_index += 1
        return result

    def run(self, n_trajectories: int) -> List[TrajectoryResult]:
        return [self.trajectory() for _ in range(n_trajectories)]

    @property
    def acceptance_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(t.accepted for t in self.history) / len(self.history)

    def fingerprint(self) -> bytes:
        return self.gauge.links.tobytes()
