"""The Wilson gauge action and its molecular-dynamics force.

``S[U] = beta * sum_{x, mu<nu} (1 - Re tr P_{mu nu}(x) / 3)``

With conjugate momenta ``P`` (traceless anti-hermitian, one per link),
Hamilton's equations are ``U_dot = P U`` and
``P_dot = -(beta/6) TA(U_mu(x) S_mu(x))`` where ``S_mu`` is the staple sum
of :meth:`repro.lattice.gauge.GaugeField.staple` and ``TA`` projects onto
the traceless anti-hermitian algebra.  The normalisation is fixed by
``dH/dt = 0`` and verified against a numerical derivative in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError


def traceless_antihermitian(m: np.ndarray) -> np.ndarray:
    """Project matrices onto the su(3) algebra: ``(M - M^+)/2 - trace/3``."""
    a = (m - dagger(m)) / 2.0
    tr = np.einsum("...aa->...", a) / 3.0
    out = a.copy()
    for i in range(3):
        out[..., i, i] -= tr
    return out


class WilsonGaugeAction:
    """Plaquette action with coupling ``beta``."""

    def __init__(self, beta: float):
        if beta <= 0:
            raise ConfigError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def __call__(self, gauge: GaugeField) -> float:
        """``S[U]`` (the Metropolis energy)."""
        g = gauge.geometry
        nplanes = g.ndim * (g.ndim - 1) // 2
        return self.beta * g.volume * nplanes * (1.0 - gauge.plaquette())

    def force(self, gauge: GaugeField) -> np.ndarray:
        """``P_dot``: shape ``(ndim, V, 3, 3)``, traceless anti-hermitian."""
        g = gauge.geometry
        out = np.empty_like(gauge.links)
        for mu in range(g.ndim):
            out[mu] = traceless_antihermitian(
                gauge.links[mu] @ gauge.staple(mu)
            )
        out *= -self.beta / 6.0
        return out

    def gradient_check(
        self, gauge: GaugeField, mu: int, site: int, direction: np.ndarray, eps: float = 1e-6
    ) -> float:
        """Numerical ``dS/d eps`` for ``U -> exp(eps Q) U`` on one link.

        The analytic counterpart (used by the force) is
        ``-(beta/3) Re tr[Q U_mu(x) S_mu(x)]``; the test suite compares the
        two.  ``direction`` is an anti-hermitian 3x3 matrix ``Q``.
        """
        from repro.lattice.su3 import expm_su3

        def perturbed(sign: float) -> float:
            g2 = gauge.copy()
            rot = expm_su3((sign * eps * direction)[None])[0]
            g2.links[mu][site] = rot @ gauge.links[mu][site]
            return self(g2)

        return (perturbed(+1.0) - perturbed(-1.0)) / (2 * eps)
