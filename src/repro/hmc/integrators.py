"""Reversible symplectic integrators for HMC molecular dynamics.

Both integrators update ``(U, P)`` in place:

* :func:`leapfrog` — the classic second-order scheme
  (half-kick, drift, half-kick);
* :func:`omelyan` — the position-version minimum-norm second-order scheme
  (Omelyan/Mryglod/Folk), ~1.5-2x smaller energy violations at equal cost,
  the workhorse of production lattice programs.

The force is a plain callable ``force(gauge) -> (ndim, V, 3, 3)`` so the
same MD loop drives the pure-gauge action, the combined gauge +
pseudofermion force of :class:`repro.hmc.pseudofermion.TwoFlavorWilsonHMC`,
and the machine-distributed force of
:class:`repro.parallel.phmc.DistributedTwoFlavorHMC` — there is exactly
one Omelyan loop in the tree.

Reversibility (integrate, negate momenta, integrate back, recover the
start) and O(dt^2) energy conservation are asserted by the test suite —
they are what make Metropolis exact.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import expm_su3

#: Omelyan lambda: minimises the norm of the second-order error operator.
OMELYAN_LAMBDA = 0.1931833275037836

#: ``force(gauge) -> P_dot`` — any molecular-dynamics force, pure-gauge or
#: gauge + fermion (the HMC drivers close over their pseudofermion field).
ForceFn = Callable[[GaugeField], np.ndarray]


def _drift(gauge: GaugeField, momenta: np.ndarray, dt: float) -> None:
    """``U <- exp(dt P) U`` for every link."""
    ndim, v = momenta.shape[:2]
    rot = expm_su3((dt * momenta).reshape(ndim * v, 3, 3)).reshape(
        ndim, v, 3, 3
    )
    gauge.links = rot @ gauge.links


def leapfrog(
    gauge: GaugeField,
    momenta: np.ndarray,
    force: ForceFn,
    n_steps: int,
    dt: float,
) -> None:
    """Standard leapfrog: P(dt/2) [U(dt) P(dt)]^(n-1) U(dt) P(dt/2)."""
    momenta += (dt / 2.0) * force(gauge)
    for step in range(n_steps):
        _drift(gauge, momenta, dt)
        if step < n_steps - 1:
            momenta += dt * force(gauge)
    momenta += (dt / 2.0) * force(gauge)


def omelyan(
    gauge: GaugeField,
    momenta: np.ndarray,
    force: ForceFn,
    n_steps: int,
    dt: float,
    lam: float = OMELYAN_LAMBDA,
) -> None:
    """Position-version Omelyan (2MN) integrator."""
    for _ in range(n_steps):
        _drift(gauge, momenta, lam * dt)
        momenta += (dt / 2.0) * force(gauge)
        _drift(gauge, momenta, (1.0 - 2.0 * lam) * dt)
        momenta += (dt / 2.0) * force(gauge)
        _drift(gauge, momenta, lam * dt)


IntegratorFn = Callable[[GaugeField, np.ndarray, ForceFn, int, float], None]

INTEGRATORS: Dict[str, IntegratorFn] = {
    "leapfrog": leapfrog,
    "omelyan": omelyan,
}
