"""Reversible symplectic integrators for HMC molecular dynamics.

Both integrators update ``(U, P)`` in place:

* :func:`leapfrog` — the classic second-order scheme
  (half-kick, drift, half-kick);
* :func:`omelyan` — the position-version minimum-norm second-order scheme
  (Omelyan/Mryglod/Folk), ~1.5-2x smaller energy violations at equal cost,
  the workhorse of production lattice programs.

Reversibility (integrate, negate momenta, integrate back, recover the
start) and O(dt^2) energy conservation are asserted by the test suite —
they are what make Metropolis exact.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.hmc.actions import WilsonGaugeAction
from repro.lattice.gauge import GaugeField
from repro.lattice.su3 import expm_su3

#: Omelyan lambda: minimises the norm of the second-order error operator.
OMELYAN_LAMBDA = 0.1931833275037836


def _drift(gauge: GaugeField, momenta: np.ndarray, dt: float) -> None:
    """``U <- exp(dt P) U`` for every link."""
    ndim, v = momenta.shape[:2]
    rot = expm_su3((dt * momenta).reshape(ndim * v, 3, 3)).reshape(
        ndim, v, 3, 3
    )
    gauge.links = rot @ gauge.links


def leapfrog(
    gauge: GaugeField,
    momenta: np.ndarray,
    action: WilsonGaugeAction,
    n_steps: int,
    dt: float,
) -> None:
    """Standard leapfrog: P(dt/2) [U(dt) P(dt)]^(n-1) U(dt) P(dt/2)."""
    momenta += (dt / 2.0) * action.force(gauge)
    for step in range(n_steps):
        _drift(gauge, momenta, dt)
        if step < n_steps - 1:
            momenta += dt * action.force(gauge)
    momenta += (dt / 2.0) * action.force(gauge)


def omelyan(
    gauge: GaugeField,
    momenta: np.ndarray,
    action: WilsonGaugeAction,
    n_steps: int,
    dt: float,
    lam: float = OMELYAN_LAMBDA,
) -> None:
    """Position-version Omelyan (2MN) integrator."""
    for _ in range(n_steps):
        _drift(gauge, momenta, lam * dt)
        momenta += (dt / 2.0) * action.force(gauge)
        _drift(gauge, momenta, (1.0 - 2.0 * lam) * dt)
        momenta += (dt / 2.0) * action.force(gauge)
        _drift(gauge, momenta, lam * dt)


IntegratorFn = Callable[[GaugeField, np.ndarray, WilsonGaugeAction, int, float], None]

INTEGRATORS: Dict[str, IntegratorFn] = {
    "leapfrog": leapfrog,
    "omelyan": omelyan,
}
