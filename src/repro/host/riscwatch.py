"""A RISCWatch-style debug session over the Ethernet/JTAG path.

Paper section 2.3: "We can use the Ethernet/JTAG controller to provide the
physical transport mechanism required for IBM's standard RISCWatch
debugger.  Thus a user can debug and single step code on a given node.
For hardware debugging, this same mechanism offers us an I/O path to
monitor and probe a failing node."

The session drives a node's :class:`~repro.host.jtag.EthernetJtagController`
through the same UDP fabric the boot uses — working even on a node whose
run kernel is dead, which is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.host.ethernet import EthernetFabric, UdpDatagram
from repro.host.jtag import JTAG_UDP_PORT, EthernetJtagController, JtagCommand, JtagOp
from repro.util.errors import MachineError


@dataclass
class DebugEvent:
    """One entry of the session transcript."""

    time: float
    action: str
    detail: str = ""


class RiscWatchSession:
    """An interactive-style debug session bound to one node.

    Commands mirror the debugger's verbs: ``halt``, ``step``, ``resume``,
    ``read_reg``/``write_reg``, breakpoints (implemented host-side: step
    until the program counter register hits the breakpoint address).
    """

    PC_REGISTER = 0  # convention: register 0 models the program counter

    def __init__(self, sim, node_id: int, jtag: EthernetJtagController):
        self.sim = sim
        self.node_id = node_id
        self.jtag = jtag
        self.breakpoints: Set[int] = set()
        self.transcript: List[DebugEvent] = []
        self.halted = False

    def _log(self, action: str, detail: str = "") -> None:
        self.transcript.append(DebugEvent(self.sim.now, action, detail))

    # -- control ------------------------------------------------------------
    def halt(self) -> None:
        if not self.jtag.running:
            raise MachineError(f"node {self.node_id}: core is not running")
        self.halted = True
        self._log("halt")

    def resume(self) -> None:
        if not self.halted:
            raise MachineError("resume without halt")
        self.halted = False
        self._log("resume")

    def step(self, n: int = 1) -> int:
        """Single-step ``n`` instructions; returns the new step count."""
        if not self.halted:
            raise MachineError("step requires a halted core")
        count = 0
        for _ in range(n):
            count = self.jtag.execute(JtagCommand(JtagOp.SINGLE_STEP))
            # model: the PC register advances with each step
            pc = self.jtag.registers.get(self.PC_REGISTER, 0) + 4
            self.jtag.registers[self.PC_REGISTER] = pc
        self._log("step", f"x{n} -> pc={self.read_register(self.PC_REGISTER):#x}")
        return count

    # -- state access ------------------------------------------------------
    def read_register(self, address: int) -> int:
        return self.jtag.execute(JtagCommand(JtagOp.READ_REGISTER, address=address))

    def write_register(self, address: int, value: int) -> None:
        self.jtag.execute(
            JtagCommand(JtagOp.WRITE_REGISTER, address=address, data=value)
        )
        self._log("write_reg", f"r{address} = {value:#x}")

    def hardware_status(self) -> int:
        """Probe a (possibly failing) node: always answered, the JTAG path
        needs no software on the node."""
        status = self.jtag.execute(JtagCommand(JtagOp.READ_STATUS))
        self._log("status", f"{status:#x}")
        return status

    # -- breakpoints ---------------------------------------------------------
    def set_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address)
        self._log("breakpoint", f"{address:#x}")

    def clear_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    def run_to_breakpoint(self, max_steps: int = 10_000) -> Optional[int]:
        """Step until the PC lands on a breakpoint; returns it (or None)."""
        if not self.breakpoints:
            raise MachineError("no breakpoints set")
        for _ in range(max_steps):
            self.step(1)
            pc = self.read_register(self.PC_REGISTER)
            if pc in self.breakpoints:
                self._log("break", f"hit {pc:#x}")
                return pc
        return None
