"""The two-stage, PROM-less boot (paper section 3.1).

"During the initial boot of QCDOC, each node receives about 100 UDP packets
that are handled by the Ethernet/JTAG controller.  These packets contain
code that is written directly into the instruction cache of the PPC 440.
When executed, this code does basic hardware tests of the ASIC and attached
DRAM and initializes the standard Ethernet controller.  Then the run kernel
is loaded down, also taking about 100 UDP packets.  The run kernel
initializes the SCU controllers and the mesh network, checks the
functionality of the partition interrupts and determines the
six-dimensional size of the machine."

Node-side logic lives in :class:`NodeBootAgent`; the host-side orchestration
is :class:`repro.host.qdaemon.Qdaemon`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable, Dict, List, Optional, Tuple

from repro.host.ethernet import EthernetFabric, UdpDatagram
from repro.host.jtag import JTAG_UDP_PORT, EthernetJtagController, JtagCommand, JtagOp
from repro.sim.core import Event, Simulator
from repro.util.errors import MachineError
from repro.util.units import US

#: boot kernel: RESET + 97 icache blocks + START + READ_STATUS ~ 100 packets
BOOT_KERNEL_BLOCKS = 97
#: run kernel: 98 code blocks + load-complete + status ~ 100 packets
RUN_KERNEL_BLOCKS = 98
#: UDP port of the run-kernel loader (served by boot-kernel software)
LOADER_UDP_PORT = 5001
#: UDP port for node->host status/RPC traffic
STATUS_UDP_PORT = 5002
#: UDP port of the run kernel's RPC endpoint (health pings, job control)
RPC_UDP_PORT = 5003

#: time the boot kernel spends on "basic hardware tests of the ASIC and
#: attached DRAM" (memory march over a test region)
HW_TEST_TIME = 200 * US


class BootState(Enum):
    POWERED_OFF = auto()
    RESET = auto()  # JTAG alive, core held in reset
    BOOT_KERNEL = auto()  # boot kernel running, ethernet controller up
    RUN_KERNEL = auto()  # run kernel running, RPC available
    FAILED = auto()


@dataclass
class BootReport:
    """Per-node boot accounting (experiment E12)."""

    node_id: int
    jtag_packets: int = 0
    run_kernel_packets: int = 0
    hw_test_ok: bool = False
    boot_time: float = 0.0
    state: BootState = BootState.POWERED_OFF


class NodeBootAgent:
    """Node-side boot behaviour: the JTAG endpoint plus the two kernels."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        fabric: EthernetFabric,
        hw_ok: bool = True,
        silent: bool = False,
    ):
        self.sim = sim
        self.node_id = node_id
        self.fabric = fabric
        self.hw_ok = hw_ok  # injectable hardware fault for status tests
        #: a *silent* node is electrically absent (dead daughterboard or a
        #: mid-run power loss): it drops every datagram — even JTAG, which
        #: otherwise works from power-on — and never replies.  The host can
        #: only detect it by timeout, exactly as on the real service network.
        self.silent = silent
        self.jtag = EthernetJtagController(node_id)
        self.jtag.on_start = self._boot_kernel_entry
        self.state = BootState.RESET
        self.report = BootReport(node_id)
        self._run_blocks: Dict[int, object] = {}
        self._boot_done: Optional[Event] = None
        fabric.attach(node_id, self._on_datagram)

    # -- datagram dispatch -----------------------------------------------------
    def _on_datagram(self, dgram: UdpDatagram) -> None:
        if self.silent:
            return  # dead hardware: nothing listens on any port
        if dgram.port == JTAG_UDP_PORT:
            # Hardware path: works from power-on, no software involved.
            self.report.jtag_packets += 1
            self.jtag.handle_datagram(dgram)
        elif dgram.port == LOADER_UDP_PORT:
            self._on_loader_packet(dgram)
        elif dgram.port == RPC_UDP_PORT:
            self._on_rpc(dgram)

    # -- stage 1: boot kernel -----------------------------------------------------
    def _boot_kernel_entry(self, icache: Dict[int, object]) -> None:
        """Executed when JTAG START releases the core: run the boot kernel."""
        self.state = BootState.BOOT_KERNEL

        def finish_hw_test():
            self.report.hw_test_ok = self.hw_ok
            if not self.hw_ok:
                self.state = BootState.FAILED
            self._send_status("boot-kernel-up" if self.hw_ok else "hw-fail")

        self.sim.schedule(HW_TEST_TIME, finish_hw_test)

    # -- stage 2: run kernel ---------------------------------------------------
    def _on_loader_packet(self, dgram: UdpDatagram) -> None:
        if self.state not in (BootState.BOOT_KERNEL, BootState.RUN_KERNEL):
            return  # loader only exists once the boot kernel runs
        self.report.run_kernel_packets += 1
        kind, block_id, data = dgram.payload
        if kind == "block":
            self._run_blocks[block_id] = data
        elif kind == "complete":
            if len(self._run_blocks) == RUN_KERNEL_BLOCKS:
                self.state = BootState.RUN_KERNEL
                self._send_status("run-kernel-up")
            else:
                self._send_status(
                    f"run-kernel-incomplete:{len(self._run_blocks)}"
                )

    # -- run-kernel RPC ---------------------------------------------------------
    def _on_rpc(self, dgram: UdpDatagram) -> None:
        """Health-check RPC: only the run kernel answers (section 3.1 —
        "all communication ... is done via remote procedure calls")."""
        if self.state != BootState.RUN_KERNEL:
            return  # no run kernel, no RPC server
        kind, nonce = dgram.payload
        if kind == "ping":
            self._send_status(f"rpc-ok:{nonce}")

    def _send_status(self, text: str) -> None:
        if self.silent:
            return  # dead hardware transmits nothing
        self.fabric.send(
            UdpDatagram(
                src=self.node_id,
                dst="host",
                port=STATUS_UDP_PORT,
                payload=(self.node_id, text),
                nbytes=64,
            )
        )

    @property
    def rpc_available(self) -> bool:
        """All post-boot host<->node traffic uses RPC (paper section 3.1)."""
        return self.state == BootState.RUN_KERNEL


def boot_node_program(agent: NodeBootAgent):
    """Generator form of the node's boot wait (for program-style tests)."""
    while agent.state not in (BootState.RUN_KERNEL, BootState.FAILED):
        yield agent.sim.timeout(10 * US)
    return agent.state
