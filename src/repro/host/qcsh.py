"""qcsh: the user command interface (paper section 3.1).

"The command line interface to QCDOC is a modified UNIX tcsh, which we call
the qcsh.  The qcsh runs with the UID of the application programmer,
gathers commands to send to the qdaemon and manages the returning data
stream.  A subprocess of the qcsh is also available to the qdaemon, so the
qdaemon can request files on the host to be opened and they will have the
permissions and protections of the application programmer."

This is the programmatic analogue: a per-user session holding the user's
allocations and a host-side file area opened *with the user's identity*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.host.qdaemon import Allocation, Qdaemon
from repro.util.errors import MachineError


class Qcsh:
    """One user's shell session against a qdaemon."""

    def __init__(self, qdaemon: Qdaemon, user: str):
        self.qdaemon = qdaemon
        self.user = user
        self.history: List[str] = []
        self.output: List[str] = []
        #: host files opened on the user's behalf, with the user's identity
        self.files: Dict[str, List[str]] = {}
        self._current: Optional[Allocation] = None

    # -- commands ------------------------------------------------------------
    def alloc(self, groups, origin=None, extents=None, require_periodic=True) -> Allocation:
        """``qalloc``: request a partition remapped to the given shape."""
        self.history.append(f"alloc {groups}")
        self._current = self.qdaemon.allocate(
            self.user, groups, origin=origin, extents=extents,
            require_periodic=require_periodic,
        )
        dims = "x".join(map(str, self._current.partition.logical_dims))
        self.output.append(f"allocated job {self._current.job_id}: {dims}")
        return self._current

    def run(self, program: Callable, max_time: float = 100.0, **kwargs) -> List[object]:
        """``qrun``: start an application on the current allocation."""
        self.history.append("run")
        if self._current is None:
            raise MachineError("no allocation; run alloc first")
        results = self.qdaemon.run_job(
            self._current, program, max_time=max_time, **kwargs
        )
        self.output.append(f"job {self._current.job_id} finished")
        return results

    def free(self) -> None:
        """``qfree``: release the current allocation."""
        self.history.append("free")
        if self._current is not None:
            self.qdaemon.release(self._current)
            self.output.append(f"released job {self._current.job_id}")
            self._current = None

    def status(self) -> Dict[str, object]:
        """``qstat``: machine health as the daemon sees it."""
        self.history.append("status")
        return {
            "machine_size": self.qdaemon.machine_size,
            "healthy": len(self.qdaemon.healthy_nodes()),
            "failed": self.qdaemon.failed_nodes(),
            "active_jobs": sum(a.active for a in self.qdaemon.allocations),
        }

    # -- the tcsh-style text interface ---------------------------------------
    def execute(self, line: str) -> str:
        """Parse and run one shell command line.

        Supported commands (the tcsh-modification's vocabulary):

        * ``qalloc <groups>`` — groups are space-separated, axes within a
          group comma-separated, e.g. ``qalloc 0 1 2,3 4,5`` for a
          4-dimensional machine folding axes (2,3) and (4,5);
        * ``qstat`` — machine status;
        * ``qfree`` — release the current allocation;
        * ``qhist`` — command history.
        """
        parts = line.strip().split()
        if not parts:
            return ""
        cmd, args = parts[0], parts[1:]
        if cmd == "qalloc":
            if not args:
                raise MachineError("qalloc needs group specs, e.g. 'qalloc 0 1 2,3'")
            groups = [tuple(int(a) for a in g.split(",")) for g in args]
            alloc = self.alloc(groups)
            dims = "x".join(map(str, alloc.partition.logical_dims))
            return f"job {alloc.job_id}: {dims}"
        if cmd == "qstat":
            st = self.status()
            return (
                f"machine {'x'.join(map(str, st['machine_size']))}: "
                f"{st['healthy']} healthy, {len(st['failed'])} failed, "
                f"{st['active_jobs']} active jobs"
            )
        if cmd == "qfree":
            self.free()
            return "freed"
        if cmd == "qhist":
            return "\n".join(self.history)
        raise MachineError(f"qcsh: unknown command {cmd!r}")

    # -- the host-file subprocess -------------------------------------------------
    def open_file(self, path: str) -> List[str]:
        """Open (create) a host file with this user's permissions.

        Node kernels write application output here via the daemon — the
        mechanism behind "returning application output to the user".
        """
        key = f"{self.user}:{path}"
        return self.files.setdefault(key, [])

    def append_output(self, path: str, line: str) -> None:
        self.open_file(path).append(line)
