"""The Ethernet service network: host, switches, hubs, node ports.

Topology (paper sections 2.3-2.4, figure 2): each daughterboard carries a
5-port Ethernet hub serving its two nodes; motherboards hub those up; the
host connects "via multiple Gigabit Ethernet links".  We model the tree as
store-and-forward segments: a datagram pays serialisation on the 100 Mbit
node segment, a per-hop switch latency for each level of the tree, and
serialisation on the host's Gigabit segment; segments are half-duplex
resources so concurrent boot traffic contends realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.sim.core import Event, Simulator
from repro.util.errors import ConfigError
from repro.util.units import MB, US

Address = Union[str, int]  # "host" or a node id

#: standard UDP-over-Ethernet overhead: 14 (eth) + 20 (IP) + 8 (UDP) bytes
UDP_OVERHEAD_BYTES = 42
#: conventional MTU payload
MAX_PAYLOAD_BYTES = 1458


@dataclass
class UdpDatagram:
    """One UDP packet on the service network."""

    src: Address
    dst: Address
    port: int
    payload: object  # opaque to the network (commands, code blocks, ...)
    nbytes: int = 256

    def wire_bytes(self) -> int:
        return self.nbytes + UDP_OVERHEAD_BYTES


class _Segment:
    """A half-duplex link with serialisation and store-and-forward."""

    def __init__(self, sim: Simulator, bandwidth: float, latency: float):
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self._busy_until = 0.0
        self.bytes_carried = 0

    def occupy(self, nbytes: int) -> float:
        """Reserve the segment; returns the absolute delivery time."""
        start = max(self.sim.now, self._busy_until)
        end = start + nbytes / self.bandwidth
        self._busy_until = end
        self.bytes_carried += nbytes
        return end + self.latency


class EthernetFabric:
    """The whole service tree: one node segment per node, shared host links.

    Parameters
    ----------
    n_nodes:
        Number of node ports.
    host_links:
        Number of Gigabit links from the host into the switch layer —
        "the physical connection to QCDOC is via multiple Gigabit Ethernet
        links"; node traffic is spread across them round-robin.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        host_links: int = 4,
        node_bandwidth: float = 100e6 / 8,  # 100 Mbit
        host_bandwidth: float = 1e9 / 8,  # Gigabit
        hop_latency: float = 5 * US,
        tree_depth: int = 3,  # daughterboard hub, motherboard hub, switch
    ):
        if n_nodes < 1 or host_links < 1:
            raise ConfigError("need at least one node and one host link")
        self.sim = sim
        self.n_nodes = n_nodes
        self.tree_depth = tree_depth
        self.hop_latency = hop_latency
        self.node_segments = [
            _Segment(sim, node_bandwidth, 0.0) for _ in range(n_nodes)
        ]
        self.host_segments = [
            _Segment(sim, host_bandwidth, 0.0) for _ in range(host_links)
        ]
        self._receivers: Dict[Address, Callable[[UdpDatagram], None]] = {}
        self.packets_delivered = 0
        self.packets_dropped = 0

    # -- wiring ------------------------------------------------------------
    def attach(self, address: Address, receiver: Callable[[UdpDatagram], None]):
        self._receivers[address] = receiver

    def _host_segment_for(self, node: int) -> _Segment:
        return self.host_segments[node % len(self.host_segments)]

    # -- transport ------------------------------------------------------------
    def send(self, dgram: UdpDatagram) -> Event:
        """Route a datagram; the event succeeds at delivery time.

        Unknown destinations count as drops (UDP semantics: no error to
        the sender) — the returned event still completes, with ``False``.
        """
        if dgram.nbytes > MAX_PAYLOAD_BYTES:
            raise ConfigError(
                f"payload {dgram.nbytes} exceeds MTU {MAX_PAYLOAD_BYTES}"
            )
        done = self.sim.event()
        wire = dgram.wire_bytes()

        # Path: src segment -> tree hops -> dst segment.
        t = self.sim.now
        segs: List[_Segment] = []
        if isinstance(dgram.src, int):
            segs.append(self.node_segments[dgram.src])
        else:
            node = dgram.dst if isinstance(dgram.dst, int) else 0
            segs.append(self._host_segment_for(node))
        if isinstance(dgram.dst, int):
            segs.append(self.node_segments[dgram.dst])
        else:
            node = dgram.src if isinstance(dgram.src, int) else 0
            segs.append(self._host_segment_for(node))

        delivery = self.sim.now
        for seg in segs:
            delivery = max(delivery, seg.occupy(wire))
        delivery += self.tree_depth * self.hop_latency

        def arrive():
            receiver = self._receivers.get(dgram.dst)
            if receiver is None:
                self.packets_dropped += 1
                done.succeed(False)
                return
            self.packets_delivered += 1
            receiver(dgram)
            done.succeed(True)

        self.sim.schedule(delivery - self.sim.now, arrive)
        return done

    def broadcast_to_nodes(self, make_dgram: Callable[[int], UdpDatagram]) -> List[Event]:
        """Send one datagram per node (boot fan-out)."""
        return [self.send(make_dgram(n)) for n in range(self.n_nodes)]
