"""Fail / diagnose / remap / resume: the host-side recovery loop.

This ties the PR's pieces into the operating mode the companion papers
(hep-lat/0306023, hep-lat/0309096) describe for 12,288-node machines:

1. a job runs with host-side checkpointing
   (:class:`~repro.solvers.checkpoint.CGCheckpointStore`);
2. a cable or node dies; the SCU watchdog detects it within
   :attr:`~repro.machine.asic.ASICConfig.watchdog_detection_budget`,
   escalates a LINK_DOWN supervisor word and the hard-fault partition
   interrupt, and the machine aborts the partition cleanly
   (:class:`~repro.util.errors.LinkDownError` surfaces to the host);
3. the qdaemon diagnoses (:meth:`~repro.host.qdaemon.Qdaemon
   .handle_fault`: quarantine cables, RPC-sweep for dead nodes);
4. the job is re-allocated on a healthy sub-torus of the same logical
   shape and resumed from the newest complete checkpoint — continuing
   the residual history **bit-identically**, because the distributed CG's
   global sums accumulate in canonical logical-rank order regardless of
   which physical nodes host the ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.host.qdaemon import Allocation, Qdaemon
from repro.lattice.gauge import GaugeField
from repro.parallel.pcg import DistributedSolveResult, solve_on_machine
from repro.solvers.checkpoint import CGCheckpointStore
from repro.util.errors import FaultError, MachineError


@dataclass
class RecoveryEvent:
    """One fault-and-restart cycle in a resilient run."""

    time: float
    error: str
    diagnosis: dict
    resumed_from: Optional[int]  # checkpoint iteration, None = cold restart
    partition_nodes: List[int] = field(default_factory=list)


@dataclass
class ResilientSolveReport:
    """Outcome of :func:`solve_resilient`."""

    result: DistributedSolveResult
    recoveries: List[RecoveryEvent] = field(default_factory=list)

    @property
    def n_restarts(self) -> int:
        return len(self.recoveries)


def solve_resilient(
    daemon: Qdaemon,
    gauge: GaugeField,
    b: np.ndarray,
    mass: float,
    groups: Sequence[Sequence[int]],
    extents: Optional[Sequence[int]] = None,
    r: float = 1.0,
    c_sw: Optional[float] = None,
    tol: float = 1e-8,
    maxiter: int = 2000,
    max_time: float = 10_000.0,
    checkpoint_every: int = 10,
    max_restarts: int = 3,
    user: str = "resilient",
) -> ResilientSolveReport:
    """A Wilson/clover CGNE solve that survives permanent hardware faults.

    Runs on a partition from ``daemon.allocate`` with checkpointing; on a
    :class:`~repro.util.errors.FaultError` it diagnoses, re-allocates
    (remapping around the dead hardware) and resumes from the newest
    complete checkpoint, up to ``max_restarts`` times.  Raises
    :class:`~repro.util.errors.MachineError` when the restart budget is
    exhausted, or :class:`~repro.util.errors.DegradedMachineError` when
    no healthy placement of the job's shape remains.
    """
    store = CGCheckpointStore(every=checkpoint_every)
    recoveries: List[RecoveryEvent] = []
    alloc: Allocation = daemon.allocate(user, groups, extents=extents)
    resume = False
    while True:
        try:
            result = solve_on_machine(
                daemon.machine,
                alloc.partition,
                gauge,
                b,
                mass,
                r=r,
                c_sw=c_sw,
                tol=tol,
                maxiter=maxiter,
                max_time=max_time,
                checkpoint=store,
                resume=resume,
            )
        except FaultError as exc:
            daemon.release(alloc)
            diagnosis = daemon.handle_fault()
            if len(recoveries) >= max_restarts:
                raise MachineError(
                    f"job failed {len(recoveries) + 1} times "
                    f"(restart budget {max_restarts}); last: {exc}"
                ) from exc
            alloc = daemon.allocate(user, groups, extents=extents)
            states = store.latest_complete_states(alloc.partition.n_nodes)
            recoveries.append(
                RecoveryEvent(
                    time=daemon.sim.now,
                    error=str(exc),
                    diagnosis=diagnosis,
                    resumed_from=(
                        None if states is None else next(iter(states.values()))["it"]
                    ),
                    partition_nodes=[
                        alloc.partition.physical_node(i)
                        for i in range(alloc.partition.n_nodes)
                    ],
                )
            )
            resume = states is not None
            continue
        daemon.release(alloc)
        daemon.output_log.append(
            (
                daemon.sim.now,
                f"resilient job ({user}): converged={result.converged} "
                f"after {len(recoveries)} restart(s)",
            )
        )
        return ResilientSolveReport(result=result, recoveries=recoveries)
