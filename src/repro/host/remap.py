"""Remapping user partitions around dead hardware (host side).

Paper section 3.1 gives the qdaemon responsibility for "keeping track of
the status of the nodes (including hardware problems)" and for
"allocating user partitions"; the companion papers' operating experience
on 12,288-node machines joins the two: when a cable or daughterboard
dies, the daemon must find a *healthy* sub-torus of the same logical
shape and restart the job there — without moving cables, exactly the
software-partitioning flexibility the 6-torus was designed for.

The search is deliberately exhaustive and deterministic: machine
dimensions are tiny powers of two, so enumerating candidate origins
(axes the allocation does not span) is cheap, and a deterministic scan
order makes fault-campaign runs reproducible.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, List, Sequence, Set, Tuple

from repro.machine.machine import QCDOCMachine
from repro.machine.topology import Partition
from repro.util.errors import ConfigError, DegradedMachineError


def partition_nodes(partition: Partition) -> List[int]:
    """Sorted physical node ids a partition occupies."""
    return sorted(
        partition.physical_node(r) for r in range(partition.n_nodes)
    )


def partition_cables(partition: Partition) -> List[Tuple[int, int]]:
    """Every ``(node, direction)`` wire a partition's traffic touches.

    For each logical forward hop this is the send cable plus the ack wire
    at the far end; iterating every rank covers backward hops too (a
    rank's backward cable is its backward neighbour's forward ack wire).
    """
    cables: Set[Tuple[int, int]] = set()
    topo = partition.topology
    for rank in range(partition.n_nodes):
        me = partition.physical_node(rank)
        for axis, extent in enumerate(partition.logical_dims):
            if extent == 1:
                continue
            d = partition.physical_direction(rank, axis, +1)
            fwd = partition.physical_node(
                partition.logical_neighbour(rank, axis, +1)
            )
            cables.add((me, d))
            cables.add((fwd, topo.opposite(d)))
    return sorted(cables)


def partition_is_healthy(
    machine: QCDOCMachine,
    partition: Partition,
    exclude_nodes: Iterable[int] = (),
) -> bool:
    """No excluded/dead node, and every wire the partition uses is usable."""
    excluded = set(exclude_nodes)
    if any(n in excluded for n in partition_nodes(partition)):
        return False
    return all(
        machine.network.link_ok(src, d)
        for src, d in partition_cables(partition)
    )


def candidate_origins(
    dims: Sequence[int], extents: Sequence[int]
) -> List[Tuple[int, ...]]:
    """Deterministic (lexicographic) origins where the box can sit.

    A full axis pins its origin at 0 (shifting a full periodic axis only
    relabels nodes); a partial axis slides over every in-range offset.
    """
    ranges = [
        range(1) if e == d else range(d - e + 1)
        for e, d in zip(extents, dims)
    ]
    return [tuple(c) for c in product(*ranges)]


def find_healthy_partition(
    machine: QCDOCMachine,
    groups: Sequence[Sequence[int]],
    extents: Sequence[int],
    exclude_nodes: Iterable[int] = (),
    require_periodic: bool = True,
) -> Partition:
    """The first healthy placement of a logical shape, scan order fixed.

    ``exclude_nodes`` carries both the daemon's failed-node registry and
    nodes held by other active allocations.  Raises
    :class:`~repro.util.errors.DegradedMachineError` when no placement of
    this shape avoids the dead hardware.
    """
    extents = tuple(int(e) for e in extents)
    excluded = sorted(set(exclude_nodes))
    tried = 0
    for origin in candidate_origins(machine.topology.dims, extents):
        try:
            candidate = machine.partition(
                groups,
                origin=origin,
                extents=extents,
                require_periodic=require_periodic,
            )
        except ConfigError:
            continue  # shape illegal at this origin (e.g. periodicity)
        tried += 1
        if partition_is_healthy(machine, candidate, excluded):
            return candidate
    raise DegradedMachineError(
        requested=extents,
        failed_nodes=excluded,
        dead_links=machine.network.dead_links(),
        detail=f"tried {tried} placements",
    )
