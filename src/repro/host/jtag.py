"""The Ethernet/JTAG controller: hardware UDP decoding, no software.

Paper section 2.3: "The second connection receives only UDP Ethernet
packets and, in particular, only responds to Ethernet packets which carry
Joint Test Action Group (JTAG) commands as their payload.  This ...
circuitry ... requires no software to do the UDP packet decoding and
manipulate the JTAG controller on the ASIC according to the instructions in
the UDP packet."

That hardware path is what makes a PROM-less machine bootable: code is
written *directly into the PPC 440's instruction cache* over the network,
and the core released from reset.  The same path carries single-step /
register-peek debugging (RISCWatch) and failure probing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional

from repro.host.ethernet import UdpDatagram
from repro.util.errors import ProtocolError

#: the UDP port the hardware decoder answers on
JTAG_UDP_PORT = 7777


class JtagOp(Enum):
    RESET = auto()  # hold the core in reset
    WRITE_ICACHE = auto()  # write a code block into the instruction cache
    START = auto()  # release from reset, begin executing the icache
    READ_REGISTER = auto()  # debug: peek a register
    WRITE_REGISTER = auto()  # debug: poke a register
    READ_STATUS = auto()  # hardware status word
    SINGLE_STEP = auto()  # RISCWatch-style stepping


@dataclass
class JtagCommand:
    op: JtagOp
    address: int = 0
    data: object = None


class EthernetJtagController:
    """Per-node hardware JTAG endpoint.

    Ready from power-on (it is pure circuitry): it never needs booting
    itself.  State mutated here models the visible CPU-side effects.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.in_reset = True
        self.running = False
        self.icache: Dict[int, object] = {}  # address -> code block
        self.registers: Dict[int, int] = {}
        self.status_word = 0x1  # bit 0: alive
        self.commands_processed = 0
        self.step_count = 0
        #: callback fired on START with the loaded icache contents
        self.on_start = None

    def handle_datagram(self, dgram: UdpDatagram):
        """Decode and execute a UDP-carried JTAG command (no software)."""
        if dgram.port != JTAG_UDP_PORT:
            return None  # hardware ignores other ports entirely
        cmd = dgram.payload
        if not isinstance(cmd, JtagCommand):
            raise ProtocolError(
                f"node {self.node_id}: non-JTAG payload on the JTAG port"
            )
        return self.execute(cmd)

    def execute(self, cmd: JtagCommand):
        self.commands_processed += 1
        if cmd.op == JtagOp.RESET:
            self.in_reset = True
            self.running = False
            self.icache.clear()
            return None
        if cmd.op == JtagOp.WRITE_ICACHE:
            if not self.in_reset:
                raise ProtocolError(
                    f"node {self.node_id}: icache write while core running"
                )
            self.icache[cmd.address] = cmd.data
            return None
        if cmd.op == JtagOp.START:
            if not self.icache:
                raise ProtocolError(f"node {self.node_id}: START with empty icache")
            self.in_reset = False
            self.running = True
            if self.on_start is not None:
                self.on_start(dict(self.icache))
            return None
        if cmd.op == JtagOp.READ_REGISTER:
            return self.registers.get(cmd.address, 0)
        if cmd.op == JtagOp.WRITE_REGISTER:
            self.registers[cmd.address] = int(cmd.data)
            return None
        if cmd.op == JtagOp.READ_STATUS:
            return self.status_word
        if cmd.op == JtagOp.SINGLE_STEP:
            if self.in_reset:
                raise ProtocolError(f"node {self.node_id}: step while in reset")
            self.step_count += 1
            return self.step_count
        raise ProtocolError(f"unknown JTAG op {cmd.op}")
