"""The qdaemon: host-side machine management (paper section 3.1).

"Our primary host software is called the qdaemon.  This software is
responsible for booting QCDOC, coordinating the initialization of the
various networks, keeping track of the status of the nodes (including
hardware problems), allocating user partitions of QCDOC, loading and
starting execution of applications, and returning application output to the
user."

The daemon is "heavily threaded"; here each node's boot conversation is an
independent simulation process, so boots overlap exactly the way threads
over UDP sockets would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.host.boot import (
    BOOT_KERNEL_BLOCKS,
    LOADER_UDP_PORT,
    RPC_UDP_PORT,
    RUN_KERNEL_BLOCKS,
    STATUS_UDP_PORT,
    BootState,
    NodeBootAgent,
)
from repro.host.ethernet import EthernetFabric, UdpDatagram
from repro.host.jtag import JTAG_UDP_PORT, JtagCommand, JtagOp
from repro.host.remap import find_healthy_partition, partition_is_healthy
from repro.machine.machine import QCDOCMachine
from repro.machine.topology import Partition
from repro.sim.core import Event
from repro.util.errors import DegradedMachineError, MachineError


@dataclass
class Allocation:
    """One user partition handed out by the daemon."""

    job_id: int
    user: str
    partition: Partition
    active: bool = True


class Qdaemon:
    """Host daemon bound to one simulated machine.

    Parameters
    ----------
    machine:
        The :class:`QCDOCMachine` being managed.
    faulty_nodes:
        Node ids whose hardware self-test fails (status-tracking tests).
    silent_nodes:
        Node ids that are electrically dead from power-on: they answer
        nothing, not even JTAG, so the daemon only learns of them when
        their boot conversation times out.
    boot_timeout:
        Host-side deadline on each node's boot conversation.  Without it
        a single silent node would hang :meth:`boot` forever — the seed
        bug this parameter fixes.
    """

    def __init__(
        self,
        machine: QCDOCMachine,
        host_links: int = 4,
        faulty_nodes: Sequence[int] = (),
        silent_nodes: Sequence[int] = (),
        boot_timeout: float = 50e-3,
        rpc_timeout: float = 5e-3,
    ):
        self.machine = machine
        self.sim = machine.sim
        self.boot_timeout = float(boot_timeout)
        #: host-side deadline on a bounded (non-draining) RPC ping sweep
        self.rpc_timeout = float(rpc_timeout)
        self.fabric = EthernetFabric(
            self.sim, machine.n_nodes, host_links=host_links
        )
        silent = set(silent_nodes)
        self.agents: Dict[int, NodeBootAgent] = {
            i: NodeBootAgent(
                self.sim,
                i,
                self.fabric,
                hw_ok=(i not in set(faulty_nodes)),
                silent=(i in silent),
            )
            for i in range(machine.n_nodes)
        }
        self.node_status: Dict[int, str] = {}
        self.allocations: List[Allocation] = []
        self._job_counter = 0
        self.output_log: List[Tuple[float, str]] = []
        self.booted = False
        #: hardware-problem registry (section 3.1 "status of the nodes,
        #: including hardware problems"): node id -> first failure reason
        self.failed: Dict[int, str] = {}
        #: cables the daemon has quarantined: sorted-unique (node, direction)
        self.quarantined_cables: List[Tuple[int, int]] = []
        #: how much of ``machine.link_down_log`` has been ingested — the
        #: cursor that makes quarantine atomic with allocation (see
        #: :meth:`ingest_link_down`)
        self._link_down_seen = 0
        self._ping_nonce = 0
        self.fabric.attach("host", self._on_datagram)

    # -- host-side receive -----------------------------------------------------
    def _on_datagram(self, dgram: UdpDatagram) -> None:
        if dgram.port == STATUS_UDP_PORT:
            node_id, text = dgram.payload
            self.node_status[node_id] = text

    # -- hardware-problem tracking ----------------------------------------------
    def mark_failed(self, node_id: int, reason: str) -> None:
        """Record a node as hardware-dead (first reason wins)."""
        self.failed.setdefault(node_id, reason)
        self.agents[node_id].state = BootState.FAILED

    def silence_node(self, node_id: int) -> None:
        """A node lost power mid-run: its boot agent stops answering.

        Called by :meth:`repro.machine.faults.FaultSchedule._inject` for
        ``node-dead`` events.  Deliberately does *not* mark the node
        failed — the host has not observed anything yet.  Detection
        happens the honest way: the next :meth:`health_check` ping sweep
        times out and records ``"rpc-timeout"``.
        """
        self.agents[node_id].silent = True

    # -- booting ---------------------------------------------------------------
    def _boot_one(self, node_id: int):
        send = self.fabric.send
        deadline = self.sim.now + self.boot_timeout

        def jtag(cmd: JtagCommand, nbytes: int = 256) -> Event:
            return send(
                UdpDatagram("host", node_id, JTAG_UDP_PORT, cmd, nbytes)
            )

        # Stage 1 over Ethernet/JTAG: reset, ~100 packets of boot kernel
        # written straight into the instruction cache, then start.
        yield jtag(JtagCommand(JtagOp.RESET))
        for block in range(BOOT_KERNEL_BLOCKS):
            yield jtag(
                JtagCommand(JtagOp.WRITE_ICACHE, address=block, data=f"bk{block}"),
                nbytes=1024,
            )
        yield jtag(JtagCommand(JtagOp.START))

        # Wait for the boot kernel's hardware self-test verdict — bounded:
        # a silent node never reports, and one hung poll must not wedge
        # the whole machine's bring-up.
        while self.node_status.get(node_id) not in ("boot-kernel-up", "hw-fail"):
            if self.sim.now >= deadline:
                self.mark_failed(node_id, "boot-timeout:boot-kernel")
                return False
            yield self.sim.timeout(50e-6)
        if self.node_status[node_id] == "hw-fail":
            self.mark_failed(node_id, "hw-fail")
            return False

        # Stage 2 over the standard 100 Mbit port: the run kernel.
        for block in range(RUN_KERNEL_BLOCKS):
            yield send(
                UdpDatagram(
                    "host",
                    node_id,
                    LOADER_UDP_PORT,
                    ("block", block, f"rk{block}"),
                    nbytes=1400,
                )
            )
        yield send(
            UdpDatagram("host", node_id, LOADER_UDP_PORT, ("complete", -1, None), nbytes=64)
        )
        while self.node_status.get(node_id) != "run-kernel-up":
            if self.sim.now >= deadline:
                self.mark_failed(node_id, "boot-timeout:run-kernel")
                return False
            yield self.sim.timeout(50e-6)
        return True

    def boot(self) -> Dict[int, bool]:
        """Boot every node (concurrently), then bring up the mesh.

        Returns per-node success.  After this, surviving nodes talk RPC
        and the SCU network is trained ("the run kernel initializes the
        SCU controllers and the mesh network"), the partition-interrupt
        path is checked, and the 6-dimensional machine size known.
        """
        procs = {
            i: self.sim.process(self._boot_one(i), name=f"boot{i}")
            for i in self.agents
        }
        done = self.sim.all_of(list(procs.values()))
        self.sim.run(until=done)
        results = {i: bool(p.value) for i, p in procs.items()}

        # Quarantine the mesh around electrically-dead nodes *before*
        # training: a dead node's cables never complete the HSSL training
        # byte exchange, and waiting on them would hang bring-up.
        for i, agent in sorted(self.agents.items()):
            if agent.silent:
                self.machine.network.fail_node(i)
        # Run kernels collectively train the (live) mesh links...
        self.sim.run(until=self.machine.network.train_all())
        self.machine._booted = True
        # ...and check the partition-interrupt functionality end to end.
        healthy = self.healthy_nodes()
        if not healthy:
            raise DegradedMachineError(
                requested=self.machine.topology.dims,
                failed_nodes=self.failed_nodes(),
                dead_links=self.machine.network.dead_links(),
                detail="no node survived boot",
            )
        self.machine.raise_partition_interrupt(healthy[0], 0b1)
        self.sim.run()
        # Only surviving nodes can present the interrupt: a node that
        # failed boot (or is electrically dead) never will, and counting
        # it would fail bring-up of an otherwise usable machine.
        irq_ok = all(
            self.machine.interrupts[i].presented_bits & 0b1 for i in healthy
        )
        if not irq_ok:
            raise MachineError("partition interrupt check failed during boot")
        for ctrl in self.machine.interrupts.values():
            ctrl.clear()
        self.booted = True
        return results

    @property
    def machine_size(self) -> Tuple[int, ...]:
        """The six-dimensional size the run kernel determines."""
        return self.machine.topology.dims

    # -- health monitoring -------------------------------------------------------
    def ingest_link_down(self) -> List[Tuple[int, int]]:
        """Quarantine cables implicated by new LINK_DOWN reports.

        The SCU watchdogs append to ``machine.link_down_log`` whenever
        they escalate; the daemon keeps a cursor and folds every report it
        has not yet seen into :attr:`quarantined_cables` — both ends of
        each implicated cable, including links the network layer still
        thinks healthy (a resend-storm trip on a flaky wire).  Called at
        the top of :meth:`allocate` / :meth:`adopt_partition` /
        :meth:`health_check`, so a report that arrives between a sweep
        and a placement can never leak a bad cable into an allocation —
        quarantine is atomic with allocation.  Returns the newly
        quarantined cables (sorted).
        """
        new = self.machine.link_down_log[self._link_down_seen:]
        self._link_down_seen = len(self.machine.link_down_log)
        if not new:
            return []
        known = set(self.quarantined_cables)
        topo = self.machine.topology
        fresh = set()
        for node, direction, _reason in new:
            # the other end of the same neighbour pair carries the acks
            neighbour = topo.neighbour_by_direction(node, direction)
            for cable in ((node, direction), (neighbour, topo.opposite(direction))):
                if cable not in known:
                    fresh.add(cable)
                    known.add(cable)
        for src, direction in sorted(fresh):
            if self.machine.network.link_ok(src, direction):
                self.machine.network.fail_link(src, direction, mode="dead")
        self.quarantined_cables = sorted(known)
        return sorted(fresh)

    def health_check(self, drain: bool = True) -> Dict[int, bool]:
        """RPC-ping every non-failed node; mark the non-responders failed.

        Post-boot, "all communication between the host and QCDOC is done
        via remote procedure calls" (section 3.1) — a node that stops
        answering its RPC port is dead as far as the host can observe.
        With ``drain=True`` (the default) the sweep drains the whole
        event heap, so a missing reply is a genuine timeout, not an
        in-flight race.  ``drain=False`` bounds the sweep at
        :attr:`rpc_timeout` of simulated time instead — the mode a job
        service uses while *other* partitions are mid-solve (a full
        drain would run them to completion).  LINK_DOWN reports are
        ingested both before and after the sweep, so anything that
        arrives while the pings are in flight is quarantined before the
        verdict returns.
        """
        self.ingest_link_down()
        self._ping_nonce += 1
        nonce = self._ping_nonce
        candidates = [i for i in sorted(self.agents) if i not in self.failed]
        for i in candidates:
            self.node_status[i] = "pinged"
            self.fabric.send(
                UdpDatagram("host", i, RPC_UDP_PORT, ("ping", nonce), nbytes=64)
            )
        if drain:
            self.sim.run()  # drain the fabric: every reply that will come, came
        else:
            self.sim.run(until=self.sim.timeout(self.rpc_timeout))
        verdict: Dict[int, bool] = {}
        expect = f"rpc-ok:{nonce}"
        for i in candidates:
            ok = self.node_status.get(i) == expect
            verdict[i] = ok
            if not ok:
                self.mark_failed(i, "rpc-timeout")
        self.ingest_link_down()
        return verdict

    def handle_fault(self, drain: bool = True) -> Dict[str, list]:
        """Diagnose and contain hardware loss after a FAULT interrupt.

        Reads the LINK_DOWN reports the SCU watchdogs escalated,
        quarantines both ends of each implicated cable (a stuck-at wire
        must not be retrained into the next allocation), RPC-sweeps for
        dead nodes, and acknowledges the partition interrupt.  Returns a
        diagnosis summary for the job log.  ``drain=False`` uses the
        bounded sweep (see :meth:`health_check`) so concurrent healthy
        partitions keep their in-flight state.
        """
        self.ingest_link_down()
        verdict = self.health_check(drain=drain)
        newly_dead = sorted(i for i, ok in verdict.items() if not ok)
        for i in newly_dead:
            self.machine.network.fail_node(i)
        for ctrl in self.machine.interrupts.values():
            ctrl.clear()
        return {
            "link_down": list(self.machine.link_down_log),
            "quarantined_cables": list(self.quarantined_cables),
            "dead_nodes": newly_dead,
            "failed_nodes": self.failed_nodes(),
        }

    # -- partition allocation ---------------------------------------------------
    def held_nodes(self) -> List[int]:
        """Sorted physical nodes held by active allocations."""
        held = set()
        for alloc in self.allocations:
            if alloc.active:
                held.update(
                    alloc.partition.physical_node(r)
                    for r in range(alloc.partition.n_nodes)
                )
        return sorted(held)

    def allocate(
        self,
        user: str,
        groups: Sequence[Sequence[int]],
        origin: Optional[Sequence[int]] = None,
        extents: Optional[Sequence[int]] = None,
        require_periodic: bool = True,
        remap: bool = True,
    ) -> Allocation:
        """Carve out a user partition on *healthy* hardware.

        Refuses overlap with active jobs.  If the requested placement
        touches failed nodes or dead cables and ``remap=True`` (the
        default), the daemon searches every placement of the same logical
        shape for a healthy one — the companion papers' route-around-dead
        -hardware operating mode — and raises
        :class:`~repro.util.errors.DegradedMachineError` only when none
        exists.  ``remap=False`` restores strict placement semantics.
        """
        if not self.booted:
            raise MachineError("machine not booted")
        self.ingest_link_down()  # quarantine atomically with placement
        partition = self.machine.partition(
            groups, origin=origin, extents=extents, require_periodic=require_periodic
        )
        new_nodes = {
            partition.physical_node(r) for r in range(partition.n_nodes)
        }
        self._check_no_overlap(new_nodes)
        unusable = set(self.failed_nodes()) | set(self.failed)
        if not partition_is_healthy(self.machine, partition, unusable):
            if not remap:
                raise DegradedMachineError(
                    requested=partition.extents,
                    failed_nodes=sorted(unusable),
                    dead_links=self.machine.network.dead_links(),
                    detail="requested placement touches dead hardware "
                    "and remap=False",
                )
            partition = find_healthy_partition(
                self.machine,
                groups,
                partition.extents,
                exclude_nodes=sorted(unusable | set(self.held_nodes())),
                require_periodic=require_periodic,
            )
        self._job_counter += 1
        alloc = Allocation(self._job_counter, user, partition)
        self.allocations.append(alloc)
        return alloc

    def adopt_partition(self, user: str, partition: Partition) -> Allocation:
        """Register an externally-computed placement as an allocation.

        The job-service scheduler picks placements itself (it packs many
        concurrent partitions and must control the exclusion set); the
        daemon still owns the books, so adoption re-checks what
        :meth:`allocate` would have: fresh LINK_DOWN ingestion, no
        overlap with active jobs, and no dead hardware under the
        placement.
        """
        if not self.booted:
            raise MachineError("machine not booted")
        self.ingest_link_down()  # quarantine atomically with placement
        new_nodes = {
            partition.physical_node(r) for r in range(partition.n_nodes)
        }
        self._check_no_overlap(new_nodes)
        unusable = set(self.failed_nodes()) | set(self.failed)
        if not partition_is_healthy(self.machine, partition, unusable):
            raise DegradedMachineError(
                requested=partition.extents,
                failed_nodes=sorted(unusable),
                dead_links=self.machine.network.dead_links(),
                detail="adopted placement touches dead hardware",
            )
        self._job_counter += 1
        alloc = Allocation(self._job_counter, user, partition)
        self.allocations.append(alloc)
        return alloc

    def _check_no_overlap(self, new_nodes: set) -> None:
        for alloc in self.allocations:
            if not alloc.active:
                continue
            held = {
                alloc.partition.physical_node(r)
                for r in range(alloc.partition.n_nodes)
            }
            if held & new_nodes:
                raise MachineError(
                    f"allocation overlaps active job {alloc.job_id} "
                    f"({len(held & new_nodes)} shared nodes)"
                )

    def release(self, alloc: Allocation) -> None:
        alloc.active = False

    # -- job execution --------------------------------------------------------
    def run_job(
        self,
        alloc: Allocation,
        program: Callable[..., object],
        max_time: float = 100.0,
        **kwargs,
    ) -> List[object]:
        """Load and start an application on a user partition.

        Returns the per-rank results; the application's summary line is
        appended to the output stream returned to the user (via qcsh).
        """
        if not alloc.active:
            raise MachineError(f"job {alloc.job_id} was released")
        results = m_results = self.machine.run_partition(
            alloc.partition, program, max_time=max_time, **kwargs
        )
        self.output_log.append(
            (self.sim.now, f"job {alloc.job_id} ({alloc.user}): completed "
             f"{alloc.partition.n_nodes} ranks")
        )
        return results

    # -- status ------------------------------------------------------------
    def healthy_nodes(self) -> List[int]:
        return [
            i
            for i, agent in self.agents.items()
            if agent.state == BootState.RUN_KERNEL
        ]

    def failed_nodes(self) -> List[int]:
        return [
            i for i, agent in self.agents.items() if agent.state == BootState.FAILED
        ]
