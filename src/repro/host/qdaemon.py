"""The qdaemon: host-side machine management (paper section 3.1).

"Our primary host software is called the qdaemon.  This software is
responsible for booting QCDOC, coordinating the initialization of the
various networks, keeping track of the status of the nodes (including
hardware problems), allocating user partitions of QCDOC, loading and
starting execution of applications, and returning application output to the
user."

The daemon is "heavily threaded"; here each node's boot conversation is an
independent simulation process, so boots overlap exactly the way threads
over UDP sockets would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.host.boot import (
    BOOT_KERNEL_BLOCKS,
    LOADER_UDP_PORT,
    RUN_KERNEL_BLOCKS,
    STATUS_UDP_PORT,
    BootState,
    NodeBootAgent,
)
from repro.host.ethernet import EthernetFabric, UdpDatagram
from repro.host.jtag import JTAG_UDP_PORT, JtagCommand, JtagOp
from repro.machine.machine import QCDOCMachine
from repro.machine.topology import Partition
from repro.sim.core import Event
from repro.util.errors import MachineError


@dataclass
class Allocation:
    """One user partition handed out by the daemon."""

    job_id: int
    user: str
    partition: Partition
    active: bool = True


class Qdaemon:
    """Host daemon bound to one simulated machine.

    Parameters
    ----------
    machine:
        The :class:`QCDOCMachine` being managed.
    faulty_nodes:
        Node ids whose hardware self-test fails (status-tracking tests).
    """

    def __init__(
        self,
        machine: QCDOCMachine,
        host_links: int = 4,
        faulty_nodes: Sequence[int] = (),
    ):
        self.machine = machine
        self.sim = machine.sim
        self.fabric = EthernetFabric(
            self.sim, machine.n_nodes, host_links=host_links
        )
        self.agents: Dict[int, NodeBootAgent] = {
            i: NodeBootAgent(
                self.sim, i, self.fabric, hw_ok=(i not in set(faulty_nodes))
            )
            for i in range(machine.n_nodes)
        }
        self.node_status: Dict[int, str] = {}
        self.allocations: List[Allocation] = []
        self._job_counter = 0
        self.output_log: List[Tuple[float, str]] = []
        self.booted = False
        self.fabric.attach("host", self._on_datagram)

    # -- host-side receive -----------------------------------------------------
    def _on_datagram(self, dgram: UdpDatagram) -> None:
        if dgram.port == STATUS_UDP_PORT:
            node_id, text = dgram.payload
            self.node_status[node_id] = text

    # -- booting ---------------------------------------------------------------
    def _boot_one(self, node_id: int):
        send = self.fabric.send

        def jtag(cmd: JtagCommand, nbytes: int = 256) -> Event:
            return send(
                UdpDatagram("host", node_id, JTAG_UDP_PORT, cmd, nbytes)
            )

        # Stage 1 over Ethernet/JTAG: reset, ~100 packets of boot kernel
        # written straight into the instruction cache, then start.
        yield jtag(JtagCommand(JtagOp.RESET))
        for block in range(BOOT_KERNEL_BLOCKS):
            yield jtag(
                JtagCommand(JtagOp.WRITE_ICACHE, address=block, data=f"bk{block}"),
                nbytes=1024,
            )
        yield jtag(JtagCommand(JtagOp.START))

        # Wait for the boot kernel's hardware self-test verdict.
        while self.node_status.get(node_id) not in ("boot-kernel-up", "hw-fail"):
            yield self.sim.timeout(50e-6)
        if self.node_status[node_id] == "hw-fail":
            return False

        # Stage 2 over the standard 100 Mbit port: the run kernel.
        for block in range(RUN_KERNEL_BLOCKS):
            yield send(
                UdpDatagram(
                    "host",
                    node_id,
                    LOADER_UDP_PORT,
                    ("block", block, f"rk{block}"),
                    nbytes=1400,
                )
            )
        yield send(
            UdpDatagram("host", node_id, LOADER_UDP_PORT, ("complete", -1, None), nbytes=64)
        )
        while self.node_status.get(node_id) != "run-kernel-up":
            yield self.sim.timeout(50e-6)
        return True

    def boot(self) -> Dict[int, bool]:
        """Boot every node (concurrently), then bring up the mesh.

        Returns per-node success.  After this, surviving nodes talk RPC
        and the SCU network is trained ("the run kernel initializes the
        SCU controllers and the mesh network"), the partition-interrupt
        path is checked, and the 6-dimensional machine size known.
        """
        procs = {
            i: self.sim.process(self._boot_one(i), name=f"boot{i}")
            for i in self.agents
        }
        done = self.sim.all_of(list(procs.values()))
        self.sim.run(until=done)
        results = {i: bool(p.value) for i, p in procs.items()}

        # Run kernels collectively train the mesh links...
        self.sim.run(until=self.machine.network.train_all())
        self.machine._booted = True
        # ...and check the partition-interrupt functionality end to end.
        self.machine.raise_partition_interrupt(0, 0b1)
        self.sim.run()
        irq_ok = all(
            ctrl.presented_bits & 0b1 for ctrl in self.machine.interrupts.values()
        )
        if not irq_ok:
            raise MachineError("partition interrupt check failed during boot")
        for ctrl in self.machine.interrupts.values():
            ctrl.clear()
        self.booted = True
        return results

    @property
    def machine_size(self) -> Tuple[int, ...]:
        """The six-dimensional size the run kernel determines."""
        return self.machine.topology.dims

    # -- partition allocation ---------------------------------------------------
    def allocate(
        self,
        user: str,
        groups: Sequence[Sequence[int]],
        origin: Optional[Sequence[int]] = None,
        extents: Optional[Sequence[int]] = None,
        require_periodic: bool = True,
    ) -> Allocation:
        """Carve out a user partition; refuses overlap with active jobs."""
        if not self.booted:
            raise MachineError("machine not booted")
        partition = self.machine.partition(
            groups, origin=origin, extents=extents, require_periodic=require_periodic
        )
        new_nodes = {
            partition.physical_node(r) for r in range(partition.n_nodes)
        }
        for alloc in self.allocations:
            if not alloc.active:
                continue
            held = {
                alloc.partition.physical_node(r)
                for r in range(alloc.partition.n_nodes)
            }
            if held & new_nodes:
                raise MachineError(
                    f"allocation overlaps active job {alloc.job_id} "
                    f"({len(held & new_nodes)} shared nodes)"
                )
        self._job_counter += 1
        alloc = Allocation(self._job_counter, user, partition)
        self.allocations.append(alloc)
        return alloc

    def release(self, alloc: Allocation) -> None:
        alloc.active = False

    # -- job execution --------------------------------------------------------
    def run_job(
        self,
        alloc: Allocation,
        program: Callable[..., object],
        max_time: float = 100.0,
        **kwargs,
    ) -> List[object]:
        """Load and start an application on a user partition.

        Returns the per-rank results; the application's summary line is
        appended to the output stream returned to the user (via qcsh).
        """
        if not alloc.active:
            raise MachineError(f"job {alloc.job_id} was released")
        results = m_results = self.machine.run_partition(
            alloc.partition, program, max_time=max_time, **kwargs
        )
        self.output_log.append(
            (self.sim.now, f"job {alloc.job_id} ({alloc.user}): completed "
             f"{alloc.partition.n_nodes} ranks")
        )
        return results

    # -- status ------------------------------------------------------------
    def healthy_nodes(self) -> List[int]:
        return [
            i
            for i, agent in self.agents.items()
            if agent.state == BootState.RUN_KERNEL
        ]

    def failed_nodes(self) -> List[int]:
        return [
            i for i, agent in self.agents.items() if agent.state == BootState.FAILED
        ]
