"""Host-side software and the Ethernet service network.

Paper sections 2.3 and 3.1: physics runs on the red (SCU) network; booting,
diagnostics and I/O run on a parallel **Ethernet** tree (green in figure 2)
connecting every node to an SMP host.  Each ASIC has two Ethernet-facing
controllers: a conventional 100 Mbit port (driven by the run kernel) and an
**Ethernet/JTAG** port that decodes UDP packets entirely in hardware — so a
machine with *no PROMs* can be bootstrapped over the network from power-on.

* :mod:`~repro.host.ethernet` — the switched/hubbed service network;
* :mod:`~repro.host.jtag` — the software-free UDP -> JTAG controller;
* :mod:`~repro.host.boot` — the two-stage (boot kernel, run kernel) boot;
* :mod:`~repro.host.qdaemon` — the host daemon: boot orchestration, node
  status, partition allocation, job execution, RPC;
* :mod:`~repro.host.qcsh` — the user-facing command shell.
"""

from repro.host.ethernet import EthernetFabric, UdpDatagram
from repro.host.jtag import EthernetJtagController, JtagCommand, JtagOp
from repro.host.boot import BootReport, boot_node_program
from repro.host.qdaemon import Qdaemon
from repro.host.qcsh import Qcsh
from repro.host.riscwatch import RiscWatchSession

__all__ = [
    "RiscWatchSession",
    "EthernetFabric",
    "UdpDatagram",
    "EthernetJtagController",
    "JtagCommand",
    "JtagOp",
    "BootReport",
    "boot_node_program",
    "Qdaemon",
    "Qcsh",
]
