"""Quark propagators and meson correlators.

The physics deliverable of every QCD machine: propagators are columns of
``D^{-1}`` from point sources (12 solves: 4 spins x 3 colours), and the
pion two-point function is their spin-colour-summed modulus squared
projected onto time slices,

``C_pi(t) = sum_{x, s, c, s', c'} |S(x, t; 0)_{s c, s' c'}|^2``

(gamma5-hermiticity turns the naive ``tr[S gamma5 S^+ gamma5]`` into this
positive form).  On a free (unit-gauge) lattice ``C_pi`` falls off as a
``cosh`` around the midpoint, and the effective mass plateaus at twice the
free-quark energy — both asserted in the tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.lattice.geometry import LatticeGeometry
from repro.solvers.cg import cgne
from repro.util.errors import ConfigError


def point_source(
    geometry: LatticeGeometry, spin: int, colour: int, site: int = 0
) -> np.ndarray:
    """A delta-function Wilson source at one (site, spin, colour)."""
    if not 0 <= spin < 4 or not 0 <= colour < 3:
        raise ConfigError(f"bad spin/colour ({spin}, {colour})")
    b = np.zeros((geometry.volume, 4, 3), dtype=np.complex128)
    b[site, spin, colour] = 1.0
    return b


def point_propagator(
    dirac,
    site: int = 0,
    tol: float = 1e-8,
    maxiter: int = 4000,
    callback: Optional[Callable[[int, int], None]] = None,
) -> np.ndarray:
    """All 12 columns of ``D^{-1}`` from a point source.

    Returns ``(V, 4, 3, 4, 3)``: sink (spin, colour) x source (spin,
    colour).  ``callback(column_index, iterations)`` reports per-solve
    progress (12 CG solves, the workload that "dominates the calculational
    time for QCD simulations").
    """
    g = dirac.geometry
    prop = np.empty((g.volume, 4, 3, 4, 3), dtype=np.complex128)
    col = 0
    for spin in range(4):
        for colour in range(3):
            b = point_source(g, spin, colour, site)
            res = cgne(dirac.apply, dirac.apply_dagger, b, tol=tol, maxiter=maxiter)
            if not res.converged:
                raise ConfigError(
                    f"propagator column (s={spin}, c={colour}) did not converge"
                )
            prop[:, :, :, spin, colour] = res.x
            if callback is not None:
                callback(col, res.iterations)
            col += 1
    return prop


def pion_correlator(
    prop: np.ndarray, geometry: LatticeGeometry, time_axis: int = -1
) -> np.ndarray:
    """``C_pi(t)``: time-slice-projected pseudoscalar two-point function."""
    axis = geometry.ndim - 1 if time_axis < 0 else time_axis
    nt = geometry.shape[axis]
    tcoord = geometry.coords[:, axis]
    dens = np.abs(prop.reshape(geometry.volume, -1)) ** 2
    per_site = dens.sum(axis=1)
    corr = np.zeros(nt)
    np.add.at(corr, tcoord, per_site)
    return corr


def effective_mass(corr: np.ndarray) -> np.ndarray:
    """``m_eff(t) = ln[C(t) / C(t+1)]`` (forward log ratio)."""
    c = np.asarray(corr, dtype=float)
    if np.any(c <= 0):
        raise ConfigError("correlator must be positive for an effective mass")
    return np.log(c[:-1] / c[1:])


def free_pion_prediction(nt: int, m_pi: float, amplitude: float) -> np.ndarray:
    """``A [e^{-m t} + e^{-m (T-t)}]`` — the periodic-lattice cosh form."""
    t = np.arange(nt)
    return amplitude * (np.exp(-m_pi * t) + np.exp(-m_pi * (nt - t)))
