"""The (naive) Wilson-Dirac operator.

``D psi(x) = (m + 4r) psi(x)
  - (1/2) sum_mu [ (r - gamma_mu) U_mu(x) psi(x+mu)
                 + (r + gamma_mu) U_mu(x-mu)^+ psi(x-mu) ]``

with Wilson parameter ``r`` (default 1).  The operator satisfies
``D^+ = gamma_5 D gamma_5`` (gamma5-hermiticity), which the test suite and
the CG normal-equation solver both rely on.
"""

from __future__ import annotations

import numpy as np

from repro.fermions.gamma import (
    GAMMA,
    apply_spin_matrix,
    gamma5_sandwich,
    spin_project,
    spin_reconstruct,
)
from repro.lattice.gauge import GaugeField, cmatvec
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError


class WilsonDirac:
    """Wilson fermion matrix on a 4-dimensional gauge field.

    Parameters
    ----------
    gauge:
        Background gauge field (any dimension is accepted; QCD uses 4).
    mass:
        Bare quark mass ``m``.
    r:
        Wilson parameter; ``r=1`` is the universal production choice.
    """

    #: field shape suffix this operator acts on
    spin_dof = (4, 3)

    def __init__(self, gauge: GaugeField, mass: float, r: float = 1.0):
        self.gauge = gauge
        self.geometry = gauge.geometry
        self.mass = float(mass)
        self.r = float(r)
        # Preallocated hopping-term workspaces (lazily built on first use):
        # the projected half spinor, the SU(3) x half-spinor product, and
        # the reconstructed full spinor.  The hand-tuned assembly the paper
        # describes runs allocation-free; reusing these buffers is the
        # numpy equivalent.
        self._half: "np.ndarray | None" = None
        self._prod: "np.ndarray | None" = None
        self._rec: "np.ndarray | None" = None

    def _workspaces(self):
        if self._half is None:
            v = self.geometry.volume
            self._half = np.empty((v, 2, 3), dtype=np.complex128)
            self._prod = np.empty((v, 2, 3), dtype=np.complex128)
            self._rec = np.empty((v, 4, 3), dtype=np.complex128)
        return self._half, self._prod, self._rec

    @property
    def diag(self) -> float:
        """The site-diagonal coefficient ``m + ndim * r``."""
        return self.mass + self.geometry.ndim * self.r

    def _check(self, psi: np.ndarray) -> None:
        expected = (self.geometry.volume,) + self.spin_dof
        if psi.shape != expected:
            raise ConfigError(f"field shape {psi.shape}, expected {expected}")

    def hopping(self, psi: np.ndarray) -> np.ndarray:
        """The nearest-neighbour ("dslash") part, without the diagonal.

        Returns ``sum_mu [(r - gamma_mu) U psi_fwd + (r + gamma_mu) U^+ psi_bwd]``
        (the caller supplies the -1/2).  This is the routine the paper's
        hand-tuned assembly implements and the SCU halo exchange feeds.
        """
        self._check(psi)
        g = self.gauge
        out = np.zeros_like(psi)
        if self.r != 1.0:
            # General-r fallback: the projector (r -+ gamma_mu) has full
            # rank, so no half-spinor shortcut exists.  Seed formulation.
            for mu in range(self.geometry.ndim):
                fwd = g.transport_fwd(mu, psi)
                bwd = g.transport_bwd(mu, psi)
                # (r - gamma) fwd + (r + gamma) bwd
                #   = r (fwd+bwd) - gamma (fwd-bwd)
                out += self.r * (fwd + bwd)
                out -= apply_spin_matrix(GAMMA[mu], fwd - bwd)
            return out
        # r == 1 (the production choice): (1 -+ gamma_mu) is rank 2, so
        # project to a half spinor *before* the SU(3) multiply — half the
        # colour arithmetic of the naive path and exactly the compressed
        # form QCDOC's SCU puts on the wire (paper section 2.2).  The
        # statement sequence below is shared verbatim with the distributed
        # operators in repro.parallel, which keeps serial and distributed
        # results bitwise identical.
        geom = self.geometry
        half, prod, rec = self._workspaces()
        for mu in range(geom.ndim):
            # forward hop: U_mu(x) (1 - gamma_mu) psi(x + mu)
            gathered = psi[geom.neighbour_fwd(mu)]
            cmatvec(g.links[mu], spin_project(mu, +1, gathered, out=half), out=prod)
            out += spin_reconstruct(mu, +1, prod, out=rec)
            # backward hop: U_mu(x - mu)^+ (1 + gamma_mu) psi(x - mu)
            bwd_idx = geom.neighbour_bwd(mu)
            gathered = psi[bwd_idx]
            cmatvec(
                dagger(g.links[mu][bwd_idx]),
                spin_project(mu, -1, gathered, out=half),
                out=prod,
            )
            out += spin_reconstruct(mu, -1, prod, out=rec)
        return out

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """``D psi``."""
        return self.diag * psi - 0.5 * self.hopping(psi)

    def apply_dagger(self, psi: np.ndarray) -> np.ndarray:
        """``D^+ psi = gamma_5 D gamma_5 psi``."""
        return gamma5_sandwich(self.apply(gamma5_sandwich(psi)))

    def normal(self, psi: np.ndarray) -> np.ndarray:
        """``D^+ D psi`` — the hermitian positive operator CG inverts."""
        return self.apply_dagger(self.apply(psi))

    def dense_matrix(self) -> np.ndarray:
        """Explicit ``(12V, 12V)`` matrix — tiny lattices only (tests)."""
        v = self.geometry.volume
        n = v * 12
        if n > 4096:
            raise ConfigError(f"dense matrix with {n} rows would be too large")
        m = np.zeros((n, n), dtype=np.complex128)
        basis = np.zeros((v, 4, 3), dtype=np.complex128)
        for col in range(n):
            basis.reshape(-1)[col] = 1.0
            m[:, col] = self.apply(basis).reshape(-1)
            basis.reshape(-1)[col] = 0.0
        return m

    def __repr__(self) -> str:
        return f"WilsonDirac(shape={self.geometry.shape}, m={self.mass}, r={self.r})"
