"""Domain-wall fermions: the five-dimensional Shamir operator.

Paper section 4: "A newer discretization of the Dirac operator, domain wall
fermions, has been heavily used in our QCD simulations on QCDSP.  This is a
prime target for much of our work with QCDOC.  This discretization is
naturally five-dimensional" — and is the reason the machine's software
supports five-dimensional physics partitions.

Fields live on ``(Ls, V, 4, 3)``: ``Ls`` slices of a 4-dimensional Wilson
spinor field, with the gauge field identical on every slice (no links in
the 5th direction).  The operator is

``D psi_s = [D_w(-M5) + 1] psi_s - P_- psi_{s+1} - P_+ psi_{s-1}``

with chiral projectors ``P_pm = (1 pm gamma_5)/2`` and boundary conditions
``psi_{Ls} -> -m_f psi_0``, ``psi_{-1} -> -m_f psi_{Ls-1}`` that couple the
two walls through the physical quark mass ``m_f``.  ``M5`` is the
domain-wall height (0 < M5 < 2 for one physical mode).
"""

from __future__ import annotations

import numpy as np

from repro.fermions.gamma import P_MINUS, P_PLUS, apply_spin_matrix, gamma5_sandwich
from repro.fermions.wilson import WilsonDirac
from repro.lattice.gauge import GaugeField
from repro.util.errors import ConfigError


class DomainWallDirac:
    """Shamir domain-wall operator on a 4-dimensional gauge background.

    Parameters
    ----------
    gauge:
        4-dimensional gauge field (shared by all ``Ls`` slices).
    Ls:
        Extent of the fifth dimension.
    M5:
        Domain-wall height; the 4-dimensional kernel is ``D_w(-M5)``.
    mf:
        Physical (wall-coupling) quark mass.
    """

    def __init__(self, gauge: GaugeField, Ls: int, M5: float = 1.8, mf: float = 0.1):
        if Ls < 1:
            raise ConfigError(f"Ls must be >= 1, got {Ls}")
        if gauge.geometry.ndim != 4:
            raise ConfigError("domain-wall fermions need a 4-dimensional gauge field")
        self.gauge = gauge
        self.geometry = gauge.geometry
        self.Ls = int(Ls)
        self.M5 = float(M5)
        self.mf = float(mf)
        self.kernel = WilsonDirac(gauge, mass=-self.M5)

    @property
    def field_shape(self):
        return (self.Ls, self.geometry.volume, 4, 3)

    def _check(self, psi: np.ndarray) -> None:
        if psi.shape != self.field_shape:
            raise ConfigError(
                f"field shape {psi.shape}, expected {self.field_shape}"
            )

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """``D_dwf psi``."""
        self._check(psi)
        out = np.empty_like(psi)
        # 4-dimensional part, slice by slice (same gauge field each slice).
        for s in range(self.Ls):
            out[s] = self.kernel.apply(psi[s]) + psi[s]
        # 5th-dimension hopping with mass-coupled walls.
        for s in range(self.Ls):
            up = psi[s + 1] if s + 1 < self.Ls else -self.mf * psi[0]
            dn = psi[s - 1] if s - 1 >= 0 else -self.mf * psi[self.Ls - 1]
            out[s] -= apply_spin_matrix(P_MINUS, up)
            out[s] -= apply_spin_matrix(P_PLUS, dn)
        return out

    def apply_dagger(self, psi: np.ndarray) -> np.ndarray:
        """``D^+ = (Gamma_5 R) D (R Gamma_5)``.

        Domain-wall gamma5-hermiticity involves the reflection ``R`` of the
        fifth dimension (``s -> Ls-1-s``) composed with 4-dimensional
        ``gamma_5``.
        """
        self._check(psi)
        flipped = gamma5_sandwich(psi[::-1])
        return gamma5_sandwich(self.apply(flipped)[::-1])

    def normal(self, psi: np.ndarray) -> np.ndarray:
        """``D^+ D psi`` — hermitian positive, the CG target."""
        return self.apply_dagger(self.apply(psi))

    def __repr__(self) -> str:
        return (
            f"DomainWallDirac(shape={self.geometry.shape}, Ls={self.Ls}, "
            f"M5={self.M5}, mf={self.mf})"
        )
