"""Even-odd (red-black) preconditioned Wilson solves.

The Wilson hopping term only connects opposite-parity sites, so in the
even/odd ordering the operator is

``D = [[A, D_eo], [D_oe, A]]``,  ``A = (m + 4r) * 1``,
``D_eo = D_oe-type = -(1/2) H`` (the hopping restricted to one parity),

and the odd sites can be eliminated exactly (Schur complement):

``M psi_e = b_e - D_eo A^{-1} b_o``,   ``M = A - D_eo A^{-1} D_oe``,
``psi_o = A^{-1} (b_o - D_oe psi_e)``.

``M`` acts on half the sites and is markedly better conditioned, so CG on
its normal equations converges in notably fewer (and cheaper) iterations —
the standard production trick on QCDOC-era machines and a natural
"optional feature" extension of the paper's solver benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fermions.gamma import gamma5_sandwich
from repro.fermions.wilson import WilsonDirac
from repro.solvers.cg import SolveResult, cg
from repro.util.errors import ConfigError


class EvenOddWilson:
    """Schur-preconditioned interface to a :class:`WilsonDirac`."""

    def __init__(self, dirac: WilsonDirac):
        if not isinstance(dirac, WilsonDirac) or type(dirac) is not WilsonDirac:
            # The clover term makes A site-dependent (a 12x12 block); this
            # implementation assumes the scalar-diagonal Wilson case.
            if getattr(dirac, "clover_tensor", None) is not None:
                raise ConfigError(
                    "even-odd preconditioning here supports plain Wilson only"
                )
        self.dirac = dirac
        g = dirac.geometry
        self.even = g.even_sites
        self.odd = g.odd_sites
        self.a = dirac.diag  # the scalar site-diagonal (m + 4r)
        if self.a == 0:
            raise ConfigError("even-odd elimination needs a nonzero diagonal")
        #: reused full-lattice embed buffer: every Schur application needs
        #: two parity embeddings, and their lifetimes never overlap (the
        #: hopping result is materialised before the next embed), so one
        #: preallocated buffer serves them all — no per-call allocation.
        self._full = np.zeros(
            (dirac.geometry.volume, 4, 3), dtype=np.complex128
        )

    # -- parity-restricted hopping -----------------------------------------
    def _hop(self, psi_full: np.ndarray) -> np.ndarray:
        """Full-lattice hopping of a field that lives on one parity."""
        return self.dirac.hopping(psi_full)

    def _embed(self, half: np.ndarray, sites: np.ndarray) -> np.ndarray:
        """Scatter a parity-restricted field into the shared full-lattice
        buffer (zero elsewhere).  The returned array is only valid until
        the next ``_embed`` call — exactly the Schur pipeline's usage."""
        full = self._full
        full.fill(0.0)
        full[sites] = half
        return full

    def schur_apply(self, psi_e: np.ndarray) -> np.ndarray:
        """``M psi_e = A psi_e - (1/(4A)) [H [H psi_e]_odd]_even``.

        ``psi_e`` is ``(V/2, 4, 3)`` over the even sites.
        """
        full = self._embed(psi_e, self.even)
        h1 = self._hop(full)  # lives on odd sites
        odd_part = self._embed(h1[self.odd], self.odd)
        h2 = self._hop(odd_part)  # back on even sites
        return self.a * psi_e - (0.25 / self.a) * h2[self.even]

    def schur_apply_dagger(self, psi_e: np.ndarray) -> np.ndarray:
        """``M^+ = gamma_5 M gamma_5`` (inherited from the Wilson operator)."""
        return gamma5_sandwich(self.schur_apply(gamma5_sandwich(psi_e)))

    # -- the full solve ---------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-8,
        maxiter: int = 2000,
    ) -> SolveResult:
        """Solve ``D psi = b`` by even-odd elimination + CGNE on ``M``.

        Returns a :class:`SolveResult` whose ``x`` is the *full-lattice*
        solution and whose ``true_residual`` is measured against the
        original unpreconditioned system.
        """
        g = self.dirac.geometry
        if b.shape != (g.volume, 4, 3):
            raise ConfigError(f"bad source shape {b.shape}")
        b_e, b_o = b[self.even], b[self.odd]

        # b'_e = b_e - D_eo A^{-1} b_o ; D_eo acts as -(1/2) H from odd.
        odd_src = self._embed(b_o / self.a, self.odd)
        b_eff = b_e + 0.5 * self._hop(odd_src)[self.even]

        def normal(v):
            return self.schur_apply_dagger(self.schur_apply(v))

        inner = cg(
            normal,
            self.schur_apply_dagger(b_eff),
            tol=tol,
            maxiter=maxiter,
        )
        psi_e = inner.x

        # back-substitute the odd sites: psi_o = (b_o + (1/2)[H psi_e]_o)/A
        even_full = self._embed(psi_e, self.even)
        psi_o = (b_o + 0.5 * self._hop(even_full)[self.odd]) / self.a

        x = np.zeros_like(b)
        x[self.even] = psi_e
        x[self.odd] = psi_o

        true_res = float(
            np.linalg.norm(self.dirac.apply(x) - b) / np.linalg.norm(b)
        )
        return SolveResult(
            x=x,
            converged=inner.converged,
            iterations=inner.iterations,
            residuals=inner.residuals,
            true_residual=true_res,
        )
