"""Exact per-site work accounting for every Dirac discretisation.

These counts feed the performance model (:mod:`repro.perfmodel`) that
regenerates the paper's sustained-efficiency numbers (experiment E1).  They
are *derived*, not tuned: complex multiply = 6 flops, complex add = 2, an
SU(3) matrix-vector product = 9 cmul + 6 cadd = 66 flops, and the totals
below follow from the operator definitions in this package.

Memory traffic is counted in 8-byte words per site per operator
application, assuming the streaming access pattern of the hand-tuned
assembly the paper describes (every operand read once, output written
once; no speculative reuse beyond registers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

CMUL = 6  #: flops in one complex multiply
CADD = 2  #: flops in one complex add
MATVEC_SU3 = 9 * CMUL + 6 * CADD  #: = 66, one SU(3) matrix x colour vector

# -- wire-format constants (single source of truth) --------------------------
# Every words-per-site number used by the parallel operators, the SCU
# descriptors, and the performance model imports from here; the
# functional simulator's transfer counters are cross-checked against
# these in tests (no silently divergent copies).
WORD_BYTES = 8  #: one 64-bit machine word
SPINOR_WORDS = 24  #: Wilson spinor, 12 complex doubles per site
HALF_SPINOR_WORDS = SPINOR_WORDS // 2  #: = 12, spin-projected two rows
STAGGERED_WORDS = 6  #: one colour vector, 3 complex doubles per site

#: canonical community count for the Wilson hopping term (8 directions,
#: two half-spinor SU(3) matvecs each, plus spin project/reconstruct adds)
WILSON_DSLASH_FLOPS = 8 * (2 * MATVEC_SU3) + 264  # = 1320

#: axpy of the diagonal (m + 4r) psi over 24 real components
DIAG_AXPY_FLOPS = 48

#: clover term: two hermitian 6x6 blocks applied to the upper/lower
#: chirality halves (36 cmul + 30 cadd each) plus accumulation
CLOVER_TERM_FLOPS = 2 * (36 * CMUL + 30 * CADD) + 24 * CADD  # = 600

#: staggered: one SU(3) matvec per direction per hop family; ASQTAD has
#: fat (1-hop) + long (3-hop) = 16 matvecs and 15 colour-vector adds
ASQTAD_DSLASH_FLOPS = 16 * MATVEC_SU3 + 15 * 3 * CADD  # = 1146
NAIVE_STAGGERED_DSLASH_FLOPS = 8 * MATVEC_SU3 + 7 * 3 * CADD  # = 570
STAGGERED_DIAG_FLOPS = 12  # m * chi over 6 real components

#: domain wall, per 5-dimensional site: the Wilson kernel plus the
#: diagonal and the two chiral-projector hops in the 5th dimension
DWF_5D_EXTRA_FLOPS = DIAG_AXPY_FLOPS + 2 * (12 * CADD)  # = 96

# -- two-flavor Wilson fermion force (dynamical HMC) -------------------------
# F_mu(x) = (1/2) TA[U_mu(x) B1(x) - D2(x) U_mu(x)^+] with B1/D2 colour
# outer products of X and the (r -+ gamma_mu)-projected Y (derivation in
# repro.hmc.pseudofermion.TwoFlavorWilsonHMC.fermion_force).

#: one (r -+ gamma_mu) projection of a spinor site: gamma_mu is a signed
#: spin permutation (12 complex adds against r*psi) after the 24-real-
#: component scaling of psi by r
WILSON_FORCE_PROJ_FLOPS = SPINOR_WORDS + 12 * CADD  # = 48

#: the two 3x3 colour outer products (B1 and D2): 9 entries each, spin
#: contraction of length 4 = 4 cmul + 3 cadd per entry
WILSON_FORCE_OUTER_FLOPS = 2 * 9 * (4 * CMUL + 3 * CADD)  # = 540

#: U B1 and D2 U^+ — two 3x3 complex matrix products
WILSON_FORCE_MATMUL_FLOPS = 2 * (27 * CMUL + 18 * CADD)  # = 396

#: grad = U B1 - D2 U^+ (9 cadds), then TA(grad): the anti-hermitian
#: part (9 cadds + 18 real halvings), trace removal (2 cadds + 3
#: diagonal subtractions = 6 flops + the /3) and the final 0.5 scaling
#: over 18 real components
WILSON_FORCE_TA_FLOPS = 9 * CADD + (9 * CADD + 18) + (2 * CADD + 8) + 18  # = 84

#: per site, per direction mu — both projections of Y, the outer
#: products, the link sandwiches and the TA projection
WILSON_FORCE_FLOPS_PER_DIRECTION = (
    2 * WILSON_FORCE_PROJ_FLOPS
    + WILSON_FORCE_OUTER_FLOPS
    + WILSON_FORCE_MATMUL_FLOPS
    + WILSON_FORCE_TA_FLOPS
)  # = 1116

#: per received forward-face site on a decomposed axis the receiver
#: recomputes (r + gamma_mu) Y locally on the halo rows (projection
#: commutes with the transfer, keeping the wire at raw spinors)
WILSON_FORCE_HALO_PROJ_FLOPS = WILSON_FORCE_PROJ_FLOPS


@dataclass(frozen=True)
class OperatorCost:
    """Per-site cost sheet for one Dirac operator application.

    Attributes
    ----------
    flops_per_site:
        Floating-point operations per (4-dimensional) site.
    words_per_site:
        8-byte memory words moved per site in double precision
        (halve for single precision).
    gauge_words_per_site:
        The subset of ``words_per_site`` that is gauge-field traffic
        (re-usable across the 5th dimension for domain-wall fermions).
    comm_bytes_per_face_site:
        Bytes sent per boundary site per direction in double precision
        (halve for single) by the hand-tuned kernels: Wilson-type
        operators put spin-projected **half spinors** on the wire
        (``HALF_SPINOR_WORDS`` = 12 words = 96 bytes), exactly what the
        compressed SCU exchange of :mod:`repro.parallel` moves.
    uncompressed_comm_bytes_per_face_site:
        What a generic (full-spinor) exchange would ship per boundary
        site — the seed pipeline before half-spinor compression and the
        payload a 2004 commodity-cluster MPI code moves.  Equal to
        ``comm_bytes_per_face_site`` for staggered operators (a colour
        vector has no rank-2 spin structure to exploit).
    hop_depths:
        Hop distances needing halo exchange (ASQTAD needs 1 and 3).
    dirac_applications_per_cg_iteration:
        CG on the normal equations applies D and D^+ once each.
    """

    name: str
    flops_per_site: int
    words_per_site: int
    gauge_words_per_site: int
    comm_bytes_per_face_site: int
    uncompressed_comm_bytes_per_face_site: int
    hop_depths: Tuple[int, ...] = (1,)
    dirac_applications_per_cg_iteration: int = 2

    @property
    def arithmetic_intensity(self) -> float:
        """flops per byte of memory traffic (double precision)."""
        return self.flops_per_site / (8.0 * self.words_per_site)

    @property
    def site_vector_words(self) -> int:
        """64-bit words per site of one solver vector (double precision).

        Wilson-type spinors are 12 complex = 24 words; staggered colour
        vectors are 3 complex = 6 words.  Drives the CG linear-algebra
        cost in the performance model.
        """
        return (
            STAGGERED_WORDS
            if "staggered" in self.name or self.name == "asqtad"
            else SPINOR_WORDS
        )


def _wilson_cost() -> OperatorCost:
    return OperatorCost(
        name="wilson",
        flops_per_site=WILSON_DSLASH_FLOPS + DIAG_AXPY_FLOPS,  # 1368
        # gauge 8 x 18 + neighbour spinors 8 x 24 + site spinor 24 + store 24
        words_per_site=144 + 192 + 24 + 24,  # 384
        gauge_words_per_site=144,
        # half spinor on the wire: 12 words = 96 bytes per face site
        comm_bytes_per_face_site=HALF_SPINOR_WORDS * WORD_BYTES,
        uncompressed_comm_bytes_per_face_site=SPINOR_WORDS * WORD_BYTES,
    )


def _clover_cost() -> OperatorCost:
    w = _wilson_cost()
    return OperatorCost(
        name="clover",
        flops_per_site=w.flops_per_site + CLOVER_TERM_FLOPS,  # 1968
        # + packed clover: two hermitian 6x6 = 2 x (6 diag + 15 complex) words
        words_per_site=w.words_per_site + 72,  # 456
        gauge_words_per_site=w.gauge_words_per_site,
        comm_bytes_per_face_site=w.comm_bytes_per_face_site,
        uncompressed_comm_bytes_per_face_site=w.uncompressed_comm_bytes_per_face_site,
    )


def _asqtad_cost() -> OperatorCost:
    return OperatorCost(
        name="asqtad",
        flops_per_site=ASQTAD_DSLASH_FLOPS + STAGGERED_DIAG_FLOPS,  # 1158
        # fat links 8 x 18 + long links 8 x 18 + 16 neighbour vectors x 6
        # + site vector 6 + store 6
        words_per_site=144 + 144 + 96 + 6 + 6,  # 396
        gauge_words_per_site=288,
        # one colour vector (no spin structure to compress)
        comm_bytes_per_face_site=STAGGERED_WORDS * WORD_BYTES,
        uncompressed_comm_bytes_per_face_site=STAGGERED_WORDS * WORD_BYTES,
        hop_depths=(1, 3),
    )


def _naive_staggered_cost() -> OperatorCost:
    return OperatorCost(
        name="naive-staggered",
        flops_per_site=NAIVE_STAGGERED_DSLASH_FLOPS + STAGGERED_DIAG_FLOPS,  # 582
        words_per_site=144 + 48 + 6 + 6,  # 204
        gauge_words_per_site=144,
        comm_bytes_per_face_site=STAGGERED_WORDS * WORD_BYTES,
        uncompressed_comm_bytes_per_face_site=STAGGERED_WORDS * WORD_BYTES,
    )


def _dwf_cost(Ls: int = 1) -> OperatorCost:
    """Domain wall, expressed per 5-dimensional site.

    The gauge field is shared by all Ls slices; a blocked kernel streams it
    once per ``Ls`` slices, which is why the paper expects the
    domain-wall assembly to *surpass* clover efficiency (section 4).  The
    amortisation itself is applied by the performance model, which is why
    ``gauge_words_per_site`` is reported separately.
    """
    w = _wilson_cost()
    return OperatorCost(
        name="dwf" if Ls == 1 else f"dwf(Ls={Ls})",
        flops_per_site=WILSON_DSLASH_FLOPS + DWF_5D_EXTRA_FLOPS,  # 1416
        words_per_site=w.words_per_site,
        gauge_words_per_site=w.gauge_words_per_site,
        comm_bytes_per_face_site=w.comm_bytes_per_face_site,
        uncompressed_comm_bytes_per_face_site=w.uncompressed_comm_bytes_per_face_site,
    )


OPERATOR_COSTS: Dict[str, OperatorCost] = {
    c.name: c
    for c in (
        _wilson_cost(),
        _clover_cost(),
        _asqtad_cost(),
        _naive_staggered_cost(),
        _dwf_cost(),
    )
}


def operator_cost(name: str) -> OperatorCost:
    """Look up the cost sheet for an operator by name."""
    try:
        return OPERATOR_COSTS[name]
    except KeyError:
        raise KeyError(
            f"unknown operator {name!r}; known: {sorted(OPERATOR_COSTS)}"
        ) from None
