"""Euclidean gamma matrices (DeGrand-Rossi basis) and spin algebra.

Conventions: hermitian ``gamma_mu`` with ``{gamma_mu, gamma_nu} = 2
delta_{mu nu}``; ``gamma_5 = gamma_0 gamma_1 gamma_2 gamma_3`` is diagonal
in this basis.  Axis order follows the lattice: ``mu = 0..3`` = x, y, z, t.
"""

from __future__ import annotations

import numpy as np

_I = 1j

#: ``GAMMA[mu]`` is the 4x4 gamma matrix for direction mu (read-only).
GAMMA = np.array(
    [
        # gamma_x
        [
            [0, 0, 0, _I],
            [0, 0, _I, 0],
            [0, -_I, 0, 0],
            [-_I, 0, 0, 0],
        ],
        # gamma_y
        [
            [0, 0, 0, -1],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [-1, 0, 0, 0],
        ],
        # gamma_z
        [
            [0, 0, _I, 0],
            [0, 0, 0, -_I],
            [-_I, 0, 0, 0],
            [0, _I, 0, 0],
        ],
        # gamma_t
        [
            [0, 0, 1, 0],
            [0, 0, 0, 1],
            [1, 0, 0, 0],
            [0, 1, 0, 0],
        ],
    ],
    dtype=np.complex128,
)
GAMMA.setflags(write=False)

#: ``gamma_5 = gamma_x gamma_y gamma_z gamma_t`` (diagonal +1,+1,-1,-1 here).
GAMMA5 = np.ascontiguousarray(GAMMA[0] @ GAMMA[1] @ GAMMA[2] @ GAMMA[3])
GAMMA5.setflags(write=False)

#: Chiral projectors ``P_pm = (1 pm gamma_5)/2`` — the domain-wall fermion
#: 5th-dimension hopping matrices.
P_PLUS = np.ascontiguousarray((np.eye(4) + GAMMA5) / 2.0)
P_MINUS = np.ascontiguousarray((np.eye(4) - GAMMA5) / 2.0)
P_PLUS.setflags(write=False)
P_MINUS.setflags(write=False)


def sigma_munu(mu: int, nu: int) -> np.ndarray:
    """``sigma_{mu nu} = (i/2) [gamma_mu, gamma_nu]`` (hermitian for mu != nu).

    The clover term is ``-(c_sw/2) sum_{mu<nu} sigma_{mu nu} F_{mu nu}``.
    """
    return 0.5j * (GAMMA[mu] @ GAMMA[nu] - GAMMA[nu] @ GAMMA[mu])


def apply_spin_matrix(m: np.ndarray, psi: np.ndarray) -> np.ndarray:
    """Apply a 4x4 spin matrix to a field ``(..., 4, 3)``."""
    return np.einsum("st,...tc->...sc", m, psi)


def spin_project(mu: int, sign: int, psi: np.ndarray) -> np.ndarray:
    """Apply ``(1 - sign * gamma_mu)`` to a Wilson spinor field.

    This is the projector (up to the conventional factor 2) used in the
    Wilson hopping term: forward hopping carries ``(1 - gamma_mu)``
    (``sign=+1``), backward ``(1 + gamma_mu)`` (``sign=-1``).  On QCDOC the
    projected two-spin components are what travels over the SCU links —
    half the naive payload ("half spinors").
    """
    proj = np.eye(4) - sign * GAMMA[mu]
    return apply_spin_matrix(proj, psi)


def spin_reconstruct(mu: int, sign: int, half: np.ndarray) -> np.ndarray:
    """Identity companion of :func:`spin_project`.

    In this reference implementation projection keeps all four spin rows
    (the rank-2 structure is implicit), so reconstruction is a no-op; it
    exists so the parallel kernels read like production half-spinor code
    and so the comm-volume accounting has an explicit hook.
    """
    return half


def gamma5_sandwich(psi: np.ndarray) -> np.ndarray:
    """``gamma_5 psi`` for fields ``(..., 4, 3)``."""
    return apply_spin_matrix(GAMMA5, psi)
