"""Euclidean gamma matrices (DeGrand-Rossi basis) and spin algebra.

Conventions: hermitian ``gamma_mu`` with ``{gamma_mu, gamma_nu} = 2
delta_{mu nu}``; ``gamma_5 = gamma_0 gamma_1 gamma_2 gamma_3`` is diagonal
in this basis.  Axis order follows the lattice: ``mu = 0..3`` = x, y, z, t.
"""

from __future__ import annotations

import numpy as np

_I = 1j

#: ``GAMMA[mu]`` is the 4x4 gamma matrix for direction mu (read-only).
GAMMA = np.array(
    [
        # gamma_x
        [
            [0, 0, 0, _I],
            [0, 0, _I, 0],
            [0, -_I, 0, 0],
            [-_I, 0, 0, 0],
        ],
        # gamma_y
        [
            [0, 0, 0, -1],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [-1, 0, 0, 0],
        ],
        # gamma_z
        [
            [0, 0, _I, 0],
            [0, 0, 0, -_I],
            [-_I, 0, 0, 0],
            [0, _I, 0, 0],
        ],
        # gamma_t
        [
            [0, 0, 1, 0],
            [0, 0, 0, 1],
            [1, 0, 0, 0],
            [0, 1, 0, 0],
        ],
    ],
    dtype=np.complex128,
)
GAMMA.setflags(write=False)

#: ``gamma_5 = gamma_x gamma_y gamma_z gamma_t`` (diagonal +1,+1,-1,-1 here).
GAMMA5 = np.ascontiguousarray(GAMMA[0] @ GAMMA[1] @ GAMMA[2] @ GAMMA[3])
GAMMA5.setflags(write=False)

#: Chiral projectors ``P_pm = (1 pm gamma_5)/2`` — the domain-wall fermion
#: 5th-dimension hopping matrices.
P_PLUS = np.ascontiguousarray((np.eye(4) + GAMMA5) / 2.0)
P_MINUS = np.ascontiguousarray((np.eye(4) - GAMMA5) / 2.0)
P_PLUS.setflags(write=False)
P_MINUS.setflags(write=False)


def sigma_munu(mu: int, nu: int) -> np.ndarray:
    """``sigma_{mu nu} = (i/2) [gamma_mu, gamma_nu]`` (hermitian for mu != nu).

    The clover term is ``-(c_sw/2) sum_{mu<nu} sigma_{mu nu} F_{mu nu}``.
    """
    return 0.5j * (GAMMA[mu] @ GAMMA[nu] - GAMMA[nu] @ GAMMA[mu])


def apply_spin_matrix(
    m: np.ndarray, psi: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Apply a 4x4 spin matrix to a field ``(..., 4, 3)``.

    ``out`` (which must not alias ``psi``) makes the call allocation-free
    for the zero-copy hot path; the einsum arithmetic is identical.
    """
    if out is None:
        return np.einsum("st,...tc->...sc", m, psi)
    return np.einsum("st,...tc->...sc", m, psi, out=out)


#: ``_PARTNER[mu, s]`` — the single column where ``GAMMA[mu]`` row ``s``
#: is nonzero (every DeGrand-Rossi gamma is a signed permutation, one
#: entry per row), and ``_COEFF[mu, s]`` — that entry's value.  Because
#: the basis is chiral, rows 0-1 pair with columns 2-3 and vice versa:
#: every row of ``(1 -+ gamma_mu) psi`` mixes exactly one upper and one
#: lower component, which is what makes the rank-2 half-spinor
#: compression an index + scale operation (no dense 4x4 product).
_PARTNER = np.argmax(GAMMA != 0, axis=2)
_COEFF = np.take_along_axis(GAMMA, _PARTNER[:, :, None], axis=2)[:, :, 0]
_PARTNER.setflags(write=False)
_COEFF.setflags(write=False)

# sanity of the import-time tables: one nonzero per row, involutive
# pairing across chiralities, unit-modulus coefficients.
assert np.count_nonzero(GAMMA) == 16
assert all(
    _PARTNER[mu, _PARTNER[mu, s]] == s for mu in range(4) for s in range(4)
)
assert np.all(_PARTNER[:, :2] >= 2) and np.all(_PARTNER[:, 2:] < 2)
assert np.allclose(np.abs(_COEFF), 1.0)


def spin_project(
    mu: int, sign: int, psi: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Compress ``(1 - sign * gamma_mu) psi`` to its two independent rows.

    The Wilson hopping projector ``1 -+ gamma_mu`` has rank 2: the lower
    two spin rows of the projected spinor are fixed phase multiples of the
    upper two (see :func:`spin_reconstruct`).  QCDOC's SCU therefore never
    puts a full spinor on the wire — only the ``(..., 2, 3)`` **half
    spinor** returned here travels (12 words per face site instead of 24),
    half the naive payload.  Forward hopping uses ``sign=+1``
    (``1 - gamma_mu``), backward ``sign=-1`` (``1 + gamma_mu``).

    Implemented with the import-time ``_PARTNER``/``_COEFF`` tables as a
    pure gather + scale — no dense 4x4 einsum in the hot loop.
    """
    upper = psi[..., :2, :]
    partner = psi[..., _PARTNER[mu, :2], :]
    coeff = (sign * _COEFF[mu, :2])[:, None]
    if out is None:
        return upper - coeff * partner
    np.multiply(partner, coeff, out=out)
    np.subtract(upper, out, out=out)
    return out


def spin_reconstruct(
    mu: int, sign: int, half: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Expand a ``(..., 2, 3)`` half spinor back to the full projected spinor.

    For ``h = (1 - sign * gamma_mu) psi`` the lower rows satisfy
    ``h[j] = -(sign * c_j) h[p_j]`` with ``c_j = GAMMA[mu, j, p_j]`` and
    ``p_j`` the chirality partner of row ``j`` — a consequence of
    ``gamma_mu^2 = 1`` (so ``c_j c_{p_j} = 1``).  Reconstruction is thus
    the receiving node's index + scale expansion of the 12 words that
    arrived on the wire; commuting with the SU(3) colour multiply, it lets
    the sender ship half spinors (and half products) with **no** change to
    the assembled physics.
    """
    if out is None:
        out = np.empty(half.shape[:-2] + (4, 3), dtype=half.dtype)
    out[..., :2, :] = half
    coeff = (-(sign * _COEFF[mu, 2:]))[:, None]
    np.multiply(half[..., _PARTNER[mu, 2:], :], coeff, out=out[..., 2:, :])
    return out


def gamma5_sandwich(psi: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
    """``gamma_5 psi`` for fields ``(..., 4, 3)``.

    ``out`` (which must not alias ``psi``) makes the call allocation-free
    for the zero-copy hot-path ``D^+`` — identical einsum arithmetic.
    """
    return apply_spin_matrix(GAMMA5, psi, out=out)
