"""Staggered fermions: naive one-link and ASQTAD-improved operators.

The ASQTAD action (the second operator benchmarked in paper section 4, at
38% of peak) replaces the thin one-link transporter with a sum over smeared
paths — 3-, 5-, 7-link staples plus the Lepage term — and adds the 3-hop
**Naik** term that kills the O(a^2) error of the naive derivative.  The Naik
term is why the paper notes that improved discretisations "may require
second or third nearest-neighbor communications" (section 1): on QCDOC the
3-hop halo travels over the same nearest-neighbour SCU mesh in three stages.

Path coefficients are the standard tree-level ASQTAD set; on the unit gauge
configuration the smeared link sums to 9/8 and together with
``c_naik = -1/24`` gives the improved free dispersion
``(9/8) sin p - (1/24) sin 3p = p + O(p^5)``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.lattice.gauge import GaugeField, cmatvec
from repro.lattice.geometry import LatticeGeometry
from repro.lattice.su3 import dagger
from repro.util.errors import ConfigError

#: Tree-level ASQTAD path coefficients.  Keys: path family -> coefficient
#: applied to *each* path in the family.
ASQTAD_COEFFS: Dict[str, float] = {
    "one_link": 5.0 / 8.0,
    "staple3": 1.0 / 16.0,
    "staple5": 1.0 / 64.0,
    "staple7": 1.0 / 384.0,
    "lepage": -1.0 / 16.0,
    "naik": -1.0 / 24.0,
}


def staggered_phases(geometry: LatticeGeometry) -> np.ndarray:
    """Kawamoto-Smit phases ``eta_mu(x) = (-1)^(x_0 + ... + x_{mu-1})``.

    Shape ``(ndim, V)`` of +/-1 floats.
    """
    coords = geometry.coords
    phases = np.empty((geometry.ndim, geometry.volume))
    partial = np.zeros(geometry.volume, dtype=np.int64)
    for mu in range(geometry.ndim):
        phases[mu] = 1.0 - 2.0 * (partial % 2)
        partial = partial + coords[:, mu]
    return phases


def link_path(gauge: GaugeField, steps: Sequence[int]) -> np.ndarray:
    """Ordered product of links along a signed path, per starting site.

    ``steps`` is a sequence of signed axes encoded ``+(mu+1)`` for a hop in
    ``+mu`` and ``-(mu+1)`` for ``-mu`` (1-based so direction 0 is signable).
    Returns ``(V, 3, 3)``: the transporter from ``x`` to the path endpoint.
    """
    g = gauge.geometry
    idx = np.arange(g.volume)
    prod = None
    for s in steps:
        if s == 0 or abs(s) > g.ndim:
            raise ConfigError(f"bad path step {s} for {g.ndim}-dim lattice")
        mu = abs(s) - 1
        if s > 0:
            factor = gauge.links[mu][idx]
            idx = g.neighbour_fwd(mu)[idx]
        else:
            idx = g.neighbour_bwd(mu)[idx]
            factor = dagger(gauge.links[mu][idx])
        prod = factor if prod is None else prod @ factor
    if prod is None:
        raise ConfigError("empty path")
    return prod


def _staple_paths(mu: int, ndim: int) -> Dict[str, list]:
    """Enumerate the ASQTAD path families for direction ``mu`` (1-based codes)."""
    m = mu + 1
    others = [n for n in range(ndim) if n != mu]
    fams: Dict[str, list] = {"staple3": [], "staple5": [], "staple7": [], "lepage": []}
    for nu in others:
        for s in (+1, -1):
            a = s * (nu + 1)
            fams["staple3"].append((a, m, -a))
            fams["lepage"].append((a, a, m, -a, -a))
    for nu in others:
        for rho in others:
            if rho == nu:
                continue
            for s1 in (+1, -1):
                for s2 in (+1, -1):
                    a, b = s1 * (nu + 1), s2 * (rho + 1)
                    fams["staple5"].append((a, b, m, -b, -a))
    for nu in others:
        for rho in others:
            for lam in others:
                if len({nu, rho, lam}) != 3:
                    continue
                for s1 in (+1, -1):
                    for s2 in (+1, -1):
                        for s3 in (+1, -1):
                            a, b, c = s1 * (nu + 1), s2 * (rho + 1), s3 * (lam + 1)
                            fams["staple7"].append((a, b, c, m, -c, -b, -a))
    return fams


def fat_links(
    gauge: GaugeField, coeffs: Dict[str, float] = ASQTAD_COEFFS
) -> np.ndarray:
    """ASQTAD smeared ("fat") links, shape ``(ndim, V, 3, 3)``.

    ``fat_mu(x) = c1 U_mu(x) + sum over staple families coeff * path``.
    Fat links are *not* SU(3) (they are sums of group elements); on the unit
    configuration every entry equals ``(9/8) * identity``.
    """
    g = gauge.geometry
    out = np.empty((g.ndim, g.volume, 3, 3), dtype=np.complex128)
    for mu in range(g.ndim):
        acc = coeffs["one_link"] * gauge.links[mu].copy()
        fams = _staple_paths(mu, g.ndim)
        for fam, paths in fams.items():
            c = coeffs[fam]
            if c == 0.0:
                continue
            for path in paths:
                acc += c * link_path(gauge, path)
        out[mu] = acc
    return out


def long_links(gauge: GaugeField) -> np.ndarray:
    """Naik 3-link transporters ``U_mu(x) U_mu(x+mu) U_mu(x+2mu)``."""
    g = gauge.geometry
    out = np.empty((g.ndim, g.volume, 3, 3), dtype=np.complex128)
    for mu in range(g.ndim):
        m = mu + 1
        out[mu] = link_path(gauge, (m, m, m))
    return out


class NaiveStaggeredDirac:
    """One-link (Kogut-Susskind) staggered operator on ``(V, 3)`` fields.

    ``D chi(x) = m chi(x) + (1/2) sum_mu eta_mu(x)
                 [U_mu(x) chi(x+mu) - U_mu(x-mu)^+ chi(x-mu)]``

    The hopping part is anti-hermitian, so ``D^+ D = m^2 - Dslash^2`` is
    hermitian positive and block-diagonal in site parity.
    """

    spin_dof = (3,)

    def __init__(self, gauge: GaugeField, mass: float):
        self.gauge = gauge
        self.geometry = gauge.geometry
        self.mass = float(mass)
        self.phases = staggered_phases(self.geometry)

    def _check(self, chi: np.ndarray) -> None:
        expected = (self.geometry.volume,) + self.spin_dof
        if chi.shape != expected:
            raise ConfigError(f"field shape {chi.shape}, expected {expected}")

    def hopping(self, chi: np.ndarray) -> np.ndarray:
        """``sum_mu eta_mu (U chi_fwd - U^+ chi_bwd)`` (caller adds the 1/2)."""
        self._check(chi)
        g = self.gauge
        out = np.zeros_like(chi)
        for mu in range(self.geometry.ndim):
            term = g.transport_fwd(mu, chi) - g.transport_bwd(mu, chi)
            out += self.phases[mu][:, None] * term
        return out

    def apply(self, chi: np.ndarray) -> np.ndarray:
        return self.mass * chi + 0.5 * self.hopping(chi)

    def apply_dagger(self, chi: np.ndarray) -> np.ndarray:
        """``D^+ = m - (1/2) hopping`` (anti-hermitian hopping)."""
        return self.mass * chi - 0.5 * self.hopping(chi)

    def normal(self, chi: np.ndarray) -> np.ndarray:
        return self.apply_dagger(self.apply(chi))

    def __repr__(self) -> str:
        return f"NaiveStaggeredDirac(shape={self.geometry.shape}, m={self.mass})"


class AsqtadDirac(NaiveStaggeredDirac):
    """ASQTAD-improved staggered operator.

    ``D chi(x) = m chi(x) + (1/2) sum_mu eta_mu(x) [
        V_mu(x) chi(x+mu)  - V_mu(x-mu)^+  chi(x-mu)
      + c_naik ( W_mu(x) chi(x+3mu) - W_mu(x-3mu)^+ chi(x-3mu) ) ]``

    with ``V`` the fat links and ``W`` the 3-link Naik transporters.
    """

    def __init__(
        self,
        gauge: GaugeField,
        mass: float,
        coeffs: Dict[str, float] = ASQTAD_COEFFS,
    ):
        super().__init__(gauge, mass)
        self.coeffs = dict(coeffs)
        self.fat = fat_links(gauge, self.coeffs)
        self.long = long_links(gauge)

    def hopping(self, chi: np.ndarray) -> np.ndarray:
        self._check(chi)
        g = self.geometry
        c_naik = self.coeffs["naik"]
        out = np.zeros_like(chi)
        for mu in range(g.ndim):
            f1, b1 = g.hop(mu, +1), g.hop(mu, -1)
            f3, b3 = g.hop(mu, +3), g.hop(mu, -3)
            term = cmatvec(self.fat[mu], chi[f1])
            term -= cmatvec(dagger(self.fat[mu][b1]), chi[b1])
            term += c_naik * cmatvec(self.long[mu], chi[f3])
            term -= c_naik * cmatvec(dagger(self.long[mu][b3]), chi[b3])
            out += self.phases[mu][:, None] * term
        return out

    def __repr__(self) -> str:
        return f"AsqtadDirac(shape={self.geometry.shape}, m={self.mass})"
