"""The clover-improved Wilson-Dirac operator (Sheikholeslami-Wohlert).

``D_clover = D_wilson - (c_sw / 2) sum_{mu<nu} sigma_{mu nu} F_{mu nu}``

The added term is strictly site-local (built from the four plaquette
"clover leaves" around each site), so it adds floating-point work without
adding communication — which is exactly why the paper measures clover at
46.5% of peak versus 40% for naive Wilson (section 4): the extra local
flops raise arithmetic intensity on the same memory and network traffic.
"""

from __future__ import annotations

import numpy as np

from repro.fermions.gamma import gamma5_sandwich, sigma_munu
from repro.fermions.wilson import WilsonDirac
from repro.lattice.gauge import GaugeField


class CloverDirac(WilsonDirac):
    """Wilson operator plus the clover term.

    Parameters
    ----------
    c_sw:
        Sheikholeslami-Wohlert coefficient; 1.0 at tree level.
    """

    def __init__(self, gauge: GaugeField, mass: float, c_sw: float = 1.0, r: float = 1.0):
        super().__init__(gauge, mass, r=r)
        self.c_sw = float(c_sw)
        # Precompute the (V, 4, 3, 4, 3) clover tensor
        #   C[x, s, a, t, b] = -(c_sw/2) sum_{mu<nu} sigma[s,t] F[x,a,b].
        # For production this would be stored as two packed hermitian 6x6
        # blocks; we keep the explicit tensor for clarity and test the
        # hermiticity property instead.
        g = self.geometry
        clover = np.zeros((g.volume, 4, 3, 4, 3), dtype=np.complex128)
        for mu in range(g.ndim):
            for nu in range(mu + 1, g.ndim):
                sig = sigma_munu(mu, nu)
                # gauge.field_strength returns the anti-hermitian
                # (Q - Q^+)/8; the physical hermitian F_{mu nu} is -i times
                # that, making sigma (x) F hermitian in (spin x colour).
                f_herm = -1j * gauge.field_strength(mu, nu)
                clover += np.einsum("st,xab->xsatb", sig, f_herm)
        self.clover_tensor = -(self.c_sw / 2.0) * clover

    def clover_term(self, psi: np.ndarray) -> np.ndarray:
        """Apply the site-local clover matrix to ``psi``."""
        self._check(psi)
        return np.einsum("xsatb,xtb->xsa", self.clover_tensor, psi)

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """``(D_wilson + clover) psi``."""
        return super().apply(psi) + self.clover_term(psi)

    def apply_dagger(self, psi: np.ndarray) -> np.ndarray:
        return gamma5_sandwich(self.apply(gamma5_sandwich(psi)))

    def clover_is_hermitian(self, tol: float = 1e-12) -> bool:
        """The packed clover matrix must be hermitian in (spin x colour)."""
        v = self.geometry.volume
        m = self.clover_tensor.reshape(v, 12, 12)
        return bool(np.max(np.abs(m - np.conj(np.swapaxes(m, 1, 2)))) < tol)

    def __repr__(self) -> str:
        return (
            f"CloverDirac(shape={self.geometry.shape}, m={self.mass}, "
            f"c_sw={self.c_sw})"
        )
