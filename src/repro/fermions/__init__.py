"""Discretisations of the Dirac operator.

The paper benchmarks four fermion discretisations on QCDOC (section 4):

* **naive Wilson** — nearest-neighbour hopping, 40% of peak;
* **clover-improved Wilson** — Wilson plus a site-local field-strength
  term, 46.5% of peak (the extra local flops raise arithmetic intensity);
* **ASQTAD staggered** — smeared ("fat") one-link term plus a 3-hop Naik
  term, 38% of peak (third-nearest-neighbour communication);
* **domain-wall** — five-dimensional, the prime target for QCDOC's
  production running.

All four are implemented here against :mod:`repro.lattice`, each exposing
``apply`` (the operator), ``apply_dagger``, and exact per-site flop/byte
accounting in :mod:`repro.fermions.flops` consumed by the performance model.
"""

from repro.fermions.gamma import GAMMA, GAMMA5, sigma_munu, spin_project, spin_reconstruct
from repro.fermions.wilson import WilsonDirac
from repro.fermions.clover import CloverDirac
from repro.fermions.staggered import AsqtadDirac, NaiveStaggeredDirac, fat_links, long_links
from repro.fermions.dwf import DomainWallDirac
from repro.fermions.evenodd import EvenOddWilson
from repro.fermions.flops import OPERATOR_COSTS, OperatorCost, operator_cost
from repro.fermions.propagator import (
    effective_mass,
    pion_correlator,
    point_propagator,
    point_source,
)

__all__ = [
    "EvenOddWilson",
    "point_source",
    "point_propagator",
    "pion_correlator",
    "effective_mass",
    "GAMMA",
    "GAMMA5",
    "sigma_munu",
    "spin_project",
    "spin_reconstruct",
    "WilsonDirac",
    "CloverDirac",
    "NaiveStaggeredDirac",
    "AsqtadDirac",
    "fat_links",
    "long_links",
    "DomainWallDirac",
    "OperatorCost",
    "OPERATOR_COSTS",
    "operator_cost",
]
