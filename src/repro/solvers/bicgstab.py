"""BiCGStab for non-hermitian systems.

Solving ``D x = b`` directly (rather than through the normal equations)
roughly halves the operator applications per iteration at the price of a
rougher convergence history; production lattice codes keep both.  Included
as the second Krylov method of the paper's "standard Krylov space solvers".
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solvers.cg import Apply, Dot, SolveResult, _default_dot
from repro.solvers.kernels import axpy
from repro.util.errors import ConfigError


def bicgstab(
    apply_a: Apply,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 2000,
    dot: Dot = _default_dot,
    callback: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve general ``A x = b`` with stabilised bi-conjugate gradients."""
    if tol <= 0:
        raise ConfigError(f"tolerance must be positive, got {tol}")
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_a(x) if x0 is not None else b.copy()
    r_hat = r.copy()
    bb = dot(b, b).real
    if bb == 0.0:
        return SolveResult(np.zeros_like(b), True, 0, [0.0], 0.0)
    target = tol * tol * bb

    rho = alpha = omega = 1.0 + 0j
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    rr = dot(r, r).real
    residuals = [float(np.sqrt(rr / bb))]
    converged = rr <= target
    it = 0
    # Preallocated solver state: one workspace plus the intermediate
    # residual ``s`` — the inner loop below allocates nothing (operator
    # applications aside).  Every fused update is bitwise identical to
    # the textbook expression it replaces.
    ws = np.empty_like(b)
    s = np.empty_like(b)
    while not converged and it < maxiter:
        rho_new = dot(r_hat, r)
        if rho_new == 0:
            break  # breakdown: restart would be needed
        beta = (rho_new / rho) * (alpha / omega)
        # p <- r + beta * (p - omega * v), in place on p
        np.multiply(v, omega, out=ws)
        np.subtract(p, ws, out=p)
        np.multiply(p, beta, out=p)
        np.add(r, p, out=p)
        v = apply_a(p)
        denom = dot(r_hat, v)
        if denom == 0:
            break
        alpha = rho_new / denom
        # s <- r - alpha * v
        np.multiply(v, alpha, out=ws)
        np.subtract(r, ws, out=s)
        t = apply_a(s)
        tt = dot(t, t)
        omega = dot(t, s) / tt if tt != 0 else 0.0
        # x += alpha p + omega s  (two streamed axpys, left to right)
        axpy(alpha, p, x, ws)
        axpy(omega, s, x, ws)
        # r <- s - omega * t
        np.multiply(t, omega, out=ws)
        np.subtract(s, ws, out=r)
        rho = rho_new
        it += 1
        rr = dot(r, r).real
        rel = float(np.sqrt(rr / bb))
        residuals.append(rel)
        if callback is not None:
            callback(it, rel)
        converged = rr <= target

    true_res = float(np.sqrt(dot(b - apply_a(x), b - apply_a(x)).real / bb))
    return SolveResult(x, bool(converged), it, residuals, true_res)
