"""Fused, allocation-free vector kernels for the Krylov inner loops.

The paper's solver benchmarks run the CG linear algebra out of hand-tuned
assembly that streams each operand exactly once and never allocates.  In
numpy terms that means ``out=``-parameter ufuncs into caller-owned
workspaces: one temporary per *solver*, not one per *expression*.

Every kernel here is **bitwise identical** to the naive expression it
replaces (e.g. ``np.multiply(x, a, out=ws); np.add(y, ws, out=y)``
performs the exact elementwise operations of ``y += a * x``), so swapping
them into a solver changes no convergence history, only the allocation
count.  The inner products stay behind the ``dot`` hook so distributed
solves can route reductions through the simulated SCU global-sum tree.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.fermions.flops import CADD, CMUL

Dot = Callable[[np.ndarray, np.ndarray], complex]


class FlopLedger:
    """Opt-in flop accounting for the fused solver kernels.

    Disabled by default: the hot-path cost of telemetry-off is one
    attribute check per kernel call (``if LEDGER.enabled``), matching the
    rule of :mod:`repro.telemetry.counters`.  When enabled, every kernel
    records its exact flop count per the complex-arithmetic conventions
    of :mod:`repro.fermions.flops` (cmul = 6, cadd = 2), keyed by kernel
    name — so a telemetry report can attribute solver linear-algebra work
    alongside the machine-charged operator flops.
    """

    __slots__ = ("enabled", "flops", "calls")

    def __init__(self):
        self.enabled = False
        self.flops: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, kernel: str, flops: float) -> None:
        self.flops[kernel] = self.flops.get(kernel, 0.0) + flops
        self.calls[kernel] = self.calls.get(kernel, 0) + 1

    def reset(self) -> None:
        self.flops.clear()
        self.calls.clear()

    def total(self) -> float:
        return sum(self.flops.values())


#: module-level ledger shared by every kernel call (enable around a solve:
#: ``LEDGER.enabled = True; ...; LEDGER.total()``)
LEDGER = FlopLedger()

#: flops per complex element, flops.py conventions
AXPY_FLOPS_PER_ELEM = CMUL + CADD  # scalar multiply + add = 8
DOT_FLOPS_PER_ELEM = CMUL + CADD  # conjugate multiply + accumulate = 8
SCALE_AXPY_FLOPS_PER_ELEM = 2 * CMUL + CADD  # two scalings + add = 14


def _vdot(a: np.ndarray, b: np.ndarray) -> complex:
    return complex(np.vdot(a, b))


def axpy(alpha, x: np.ndarray, y: np.ndarray, ws: np.ndarray) -> np.ndarray:
    """``y += alpha * x`` through the workspace ``ws`` (no allocation).

    Bitwise identical to the naive expression: numpy evaluates
    ``y += alpha * x`` as a scalar-multiply temporary followed by an
    in-place add — exactly the two ufunc calls issued here.
    """
    np.multiply(x, alpha, out=ws)
    np.add(y, ws, out=y)
    if LEDGER.enabled:
        LEDGER.add("axpy", AXPY_FLOPS_PER_ELEM * y.size)
    return y


def xpay(x: np.ndarray, beta, y: np.ndarray) -> np.ndarray:
    """``y <- x + beta * y`` in place on ``y`` — workspace-free.

    The scale happens directly in ``y`` (safe: ``beta * y`` reads each
    element exactly once before overwriting it), then the add keeps ``x``
    as the first operand, matching ``x + beta * y`` bit for bit.  This is
    the CG search-direction update ``p <- r + beta p``.
    """
    np.multiply(y, beta, out=y)
    np.add(x, y, out=y)
    if LEDGER.enabled:
        LEDGER.add("xpay", AXPY_FLOPS_PER_ELEM * y.size)
    return y


def axpy_norm2(
    alpha, x: np.ndarray, y: np.ndarray, ws: np.ndarray, dot: Dot = _vdot
) -> float:
    """Fused ``y += alpha * x`` then ``dot(y, y).real`` — the CG residual
    update and its norm in one call (one fewer pass in a real kernel; the
    reduction still goes through ``dot`` so distributed solves hit the
    global-sum tree)."""
    axpy(alpha, x, y, ws)
    if LEDGER.enabled:
        LEDGER.add("dot", DOT_FLOPS_PER_ELEM * y.size)
    return dot(y, y).real


def scale_axpy(
    gamma, x: np.ndarray, beta, y: np.ndarray, ws: np.ndarray
) -> np.ndarray:
    """``y <- gamma * x + beta * y`` through ``ws`` (no allocation).

    Operand order matches ``gamma * x + beta * y`` exactly (the scaled
    ``x`` is the first add operand) — the multishift search-direction
    recurrence ``p_s <- zeta_s r + beta_s p_s``.
    """
    np.multiply(y, beta, out=y)
    np.multiply(x, gamma, out=ws)
    np.add(ws, y, out=y)
    if LEDGER.enabled:
        LEDGER.add("scale_axpy", SCALE_AXPY_FLOPS_PER_ELEM * y.size)
    return y
