"""Decomposition-independent inner products for bit-identical solves.

``numpy.vdot`` reduces a flattened array with pairwise summation, whose
association tree depends on the array *length* — so a lattice split into
tiles and re-summed can differ from the serial value in the last bit, and
"bit-identical at any node count" (the paper's section-4 verification
criterion) would be unachievable for any quantity that crosses an inner
product.  The canonical dot used by the HMC drivers fixes the reduction
order by construction:

1. reduce each *site* over its trailing (spin/colour) axes — a per-site
   computation, independent of how many sites the array holds;
2. normalise each per-site scalar with ``+ 0`` (in the site dtype), which
   collapses ``-0.0`` components to ``+0.0`` — exactly the normalisation
   the SCU global-sum tree applies when zero-padded rank contributions
   are accumulated, so serial and distributed agree even on signed zeros;
3. ``numpy.sum`` the length-``V`` site array, ``V`` the *global* volume.

A distributed rank computes step 1 locally, scatters its site scalars
into a zero-padded length-``V`` array at the tile's global site indices,
and contributes that through the machine's global-sum tree: canonical
rank-order accumulation of disjoint zero-padded arrays reconstructs the
very site array the serial code built, and both sides then run the same
steps 2–3.  Every float operation is therefore identical, whatever the
node count, shard count or word batch.
"""

from __future__ import annotations

import numpy as np


def site_inner(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-site ``<u, v>`` partials: ``(V, ...) -> (V,)`` complex.

    The reduction runs over the trailing axes of one site only, so the
    result for site ``x`` does not depend on how many other sites the
    array happens to carry — the property that makes the final sum
    decomposition-independent.
    """
    n = len(u)
    prod = np.conj(u.reshape(n, -1)) * v.reshape(n, -1)
    return np.sum(prod, axis=1)


def reduce_site_inner(site: np.ndarray) -> complex:
    """Steps 2–3: normalise signed zeros, then sum the full site array.

    The ``+ 0`` is in the *site dtype* (``complex64`` stays ``complex64``
    for the single-precision inner solver) and is idempotent, so applying
    it to an already-normalised globally-summed array changes nothing —
    which is what lets the serial and distributed paths share it
    unconditionally.
    """
    return complex(np.sum(site + site.dtype.type(0)))


def canonical_dot(u: np.ndarray, v: np.ndarray) -> complex:
    """Global ``<u, v>`` with a decomposition-independent reduction order.

    Drop-in for the ``dot`` hook of :func:`repro.solvers.cg.cg` — same
    value as ``numpy.vdot`` to machine precision, but bitwise stable
    under lattice tiling.
    """
    return reduce_site_inner(site_inner(u, v))
