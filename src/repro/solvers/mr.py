"""Minimal residual iteration.

The cheapest member of the Krylov family: one operator application and two
inner products per step, converging for operators whose hermitian part is
definite.  Lattice codes use a few MR sweeps as a smoother/preconditioner;
we expose it standalone.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solvers.cg import Apply, Dot, SolveResult, _default_dot
from repro.util.errors import ConfigError


def minres_iteration(
    apply_a: Apply,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 2000,
    omega: float = 1.0,
    dot: Dot = _default_dot,
    callback: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve ``A x = b`` by damped minimal-residual relaxation.

    Per step: ``alpha = <Ar, r> / <Ar, Ar>``, ``x += omega alpha r``,
    ``r -= omega alpha A r``.  ``omega < 1`` damps the update (useful as a
    preconditioner on rough backgrounds).
    """
    if tol <= 0:
        raise ConfigError(f"tolerance must be positive, got {tol}")
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_a(x) if x0 is not None else b.copy()
    bb = dot(b, b).real
    if bb == 0.0:
        return SolveResult(np.zeros_like(b), True, 0, [0.0], 0.0)
    target = tol * tol * bb

    rr = dot(r, r).real
    residuals = [float(np.sqrt(rr / bb))]
    converged = rr <= target
    it = 0
    while not converged and it < maxiter:
        ar = apply_a(r)
        denom = dot(ar, ar).real
        if denom == 0.0:
            break
        alpha = dot(ar, r) / denom
        x += omega * alpha * r
        r -= omega * alpha * ar
        rr = dot(r, r).real
        it += 1
        rel = float(np.sqrt(rr / bb))
        residuals.append(rel)
        if callback is not None:
            callback(it, rel)
        converged = rr <= target

    true_res = float(np.sqrt(dot(b - apply_a(x), b - apply_a(x)).real / bb))
    return SolveResult(x, bool(converged), it, residuals, true_res)
