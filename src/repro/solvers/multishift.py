"""Multi-shift conjugate gradients (CG-M).

Solves ``(A + sigma_i) x_i = b`` for a whole family of shifts
``sigma_i >= 0`` in a *single* Krylov space — the same operator
applications as one CG solve.  Shifted solvers are the engine of rational
HMC and of multi-mass analyses (many quark masses from one gauge field):
for Wilson-type operators ``A = D^+ D`` and ``sigma`` absorbs a mass
shift, so one solve prices out a full mass sweep — precisely the kind of
production economics a $1/Mflops machine was built for.

Algorithm: B. Jegerlehner, hep-lat/9612014 (the standard formulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.solvers.cg import Apply, Dot, _default_dot
from repro.solvers.kernels import axpy, axpy_norm2, scale_axpy, xpay
from repro.util.errors import ConfigError


@dataclass
class MultiShiftResult:
    """Solutions for every shift, plus shared iteration statistics."""

    shifts: List[float]
    x: Dict[float, np.ndarray]
    converged: bool
    iterations: int
    residuals: List[float] = field(default_factory=list)

    def __getitem__(self, shift: float) -> np.ndarray:
        return self.x[shift]


def multishift_cg(
    apply_a: Apply,
    b: np.ndarray,
    shifts: Sequence[float],
    tol: float = 1e-8,
    maxiter: int = 2000,
    dot: Dot = _default_dot,
) -> MultiShiftResult:
    """Solve ``(A + sigma) x = b`` for every ``sigma`` in ``shifts``.

    ``A`` must be hermitian positive-definite; all shifts must be
    non-negative (the smallest shift controls convergence).  The returned
    residual history is that of the base system (``sigma = 0``); the
    shifted residuals are proportional via the ``zeta`` factors and
    converge at least as fast.

    A shift ``s`` is **frozen** the moment its own residual bound
    ``|zeta_s| ||r|| <= tol ||b||`` is met: its ``x_s``/``p_s`` updates
    (two fused vector kernels per iteration) stop, while the shared
    Krylov recursion keeps running for the shifts still live.  Large
    shifts converge far earlier than the base system, so freezing
    removes most of the per-shift axpy work of a mass sweep; the
    iteration terminates when every shift is frozen, which for shift
    sets *without* ``sigma = 0`` can be before the base system itself
    converges.  For ``sigma = 0`` the ``zeta`` factors are identically
    ``1.0``, so its freeze criterion is bit-for-bit the old base-system
    stopping rule.

    Zero right-hand side returns the exact solution ``x = 0`` with
    ``residuals == [0.0]`` — the same sentinel history as
    :func:`repro.solvers.cg.cg` (a relative residual is undefined at
    ``||b|| = 0``; the main path's history always starts at ``1.0``).
    """
    shifts = [float(s) for s in shifts]
    if not shifts:
        raise ConfigError("need at least one shift")
    if any(s < 0 for s in shifts):
        raise ConfigError(f"shifts must be non-negative: {shifts}")
    if tol <= 0:
        raise ConfigError("tolerance must be positive")

    bb = dot(b, b).real
    if bb == 0.0:
        zero = {s: np.zeros_like(b) for s in shifts}
        return MultiShiftResult(shifts, zero, True, 0, [0.0])
    target = tol * tol * bb

    # base (sigma = 0) CG state
    r = b.copy()
    p = b.copy()
    rr = bb
    alpha_old = 1.0  # alpha_{n-1}
    beta_old = 0.0  # beta_{n-1}

    # per-shift state
    x = {s: np.zeros_like(b) for s in shifts}
    ps = {s: b.copy() for s in shifts}
    zeta = {s: 1.0 for s in shifts}  # zeta^n
    zeta_prev = {s: 1.0 for s in shifts}  # zeta^{n-1}

    residuals = [float(np.sqrt(rr / bb))]
    it = 0
    # Shifted residual bound: ||r_s|| = |zeta_s| ||r||, so shift s is done
    # once zeta_s^2 rr <= target.  zeta = 1 initially, so a converged-at-
    # entry rhs freezes everything immediately (it = 0, as before).
    active = [s for s in shifts if zeta[s] * zeta[s] * rr > target]
    # Single shared workspace: every per-shift update streams through it
    # (see :mod:`repro.solvers.kernels`), so the inner loop allocates
    # nothing beyond the operator application.
    ws = np.empty_like(b)
    while active and it < maxiter:
        ap = apply_a(p)
        p_ap = dot(p, ap).real
        alpha = rr / p_ap  # base-system step (note: positive)

        for s in active:
            denom = (
                alpha * beta_old * (zeta_prev[s] - zeta[s])
                + zeta_prev[s] * alpha_old * (1.0 + s * alpha)
            )
            zeta_new = (zeta[s] * zeta_prev[s] * alpha_old) / denom
            alpha_s = alpha * zeta_new / zeta[s]
            axpy(alpha_s, ps[s], x[s], ws)  # x_s += alpha_s p_s
            zeta_prev[s], zeta[s] = zeta[s], zeta_new

        # fused residual update + norm: r -= alpha ap; rr = <r, r>
        rr_new = axpy_norm2(-alpha, ap, r, ws, dot)
        beta = rr_new / rr
        xpay(r, beta, p)  # p <- r + beta p, in place
        still_active = [
            s for s in active if zeta[s] * zeta[s] * rr_new > target
        ]
        for s in still_active:
            beta_s = beta * (zeta[s] / zeta_prev[s]) ** 2
            scale_axpy(zeta[s], r, beta_s, ps[s], ws)  # p_s <- zeta_s r + beta_s p_s
        active = still_active
        alpha_old, beta_old = alpha, beta
        rr = rr_new
        it += 1
        residuals.append(float(np.sqrt(rr / bb)))

    return MultiShiftResult(shifts, x, not active, it, residuals)
