"""In-memory checkpoint store for distributed CG solves.

The paper's reliability machinery (section 2.2) guarantees that a run
which *finishes* moved no corrupt data; the companion papers'
12,288-node operating experience adds the case where a run does **not**
finish — a cable or daughterboard dies mid-solve and the host daemon
must restart the job on remapped hardware.  Because the distributed CG
accumulates its global sums in canonical rank order (bitwise
reproducible), the complete per-rank iteration state is a *sufficient*
checkpoint: resuming from it on any healthy partition of the same
logical shape continues the residual history bit for bit.

:class:`CGCheckpointStore` lives on the **host** side of the simulation
boundary (it models checkpoints streamed out over the Ethernet/JTAG
service network, not node DRAM), so a node death never takes its own
checkpoint down with it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.util.errors import ConfigError

#: per-rank CG state captured at the *end* of an iteration; together with
#: the (deterministic) operator this fully determines the remaining run
CG_STATE_KEYS = ("it", "x", "resid", "p", "rr", "bb", "residuals")


class CGCheckpointStore:
    """Host-side store of per-rank CG iteration state.

    ``every`` sets the checkpoint cadence in iterations; iteration 0 (the
    state right after the initial residual) is always stored, so a fault
    before the first periodic checkpoint still resumes rather than
    restarts.  :meth:`put` deep-copies the arrays — the solver keeps
    mutating its own buffers in place.

    A checkpoint generation is *complete* only when every rank has stored
    the same iteration; :meth:`latest_complete_states` returns the newest
    such generation (ranks can sit an iteration apart mid-stride when a
    fault hits between their ``put`` calls).
    """

    def __init__(self, every: int = 10, keep: int = 2):
        if every < 1:
            raise ConfigError(f"checkpoint cadence must be >= 1, got {every}")
        if keep < 1:
            raise ConfigError(f"must keep >= 1 checkpoint generations, got {keep}")
        self.every = int(every)
        self.keep = int(keep)
        #: iteration -> rank -> state dict
        self._generations: Dict[int, Dict[int, dict]] = {}
        self.puts = 0

    # -- solver side -------------------------------------------------------
    def due(self, iteration: int, converged: bool) -> bool:
        """Should the solver checkpoint at the end of this iteration?"""
        return iteration == 0 or converged or iteration % self.every == 0

    def put(self, rank: int, iteration: int, state: dict) -> None:
        """Store one rank's end-of-iteration state (deep-copied)."""
        missing = [k for k in CG_STATE_KEYS if k not in state]
        if missing:
            raise ConfigError(f"checkpoint state missing keys {missing}")
        snap = {
            "it": int(state["it"]),
            "x": np.array(state["x"], copy=True),
            "resid": np.array(state["resid"], copy=True),
            "p": np.array(state["p"], copy=True),
            "rr": float(state["rr"]),
            "bb": float(state["bb"]),
            "residuals": list(state["residuals"]),
        }
        self._generations.setdefault(int(iteration), {})[int(rank)] = snap
        self.puts += 1

    # -- host side ---------------------------------------------------------
    def complete_iterations(self, n_ranks: int) -> List[int]:
        """Sorted iterations at which *every* rank has stored state."""
        return sorted(
            it
            for it, ranks in self._generations.items()
            if len(ranks) == n_ranks
        )

    def has_complete_generation(self, n_ranks: int) -> bool:
        """True once some generation has every rank's state.

        A pure query (no pruning) — the service layer's preemption gate:
        a victim is only revoked once this holds, so "checkpoint before
        revoke" is an invariant rather than a race.
        """
        return bool(self.complete_iterations(n_ranks))

    def latest_complete_states(self, n_ranks: int) -> Optional[Dict[int, dict]]:
        """Newest complete generation as ``{rank: state}``, or ``None``.

        Also prunes older generations down to :attr:`keep` — the store
        models a bounded host-side ring, not an ever-growing archive.
        """
        complete = self.complete_iterations(n_ranks)
        if not complete:
            return None
        latest = complete[-1]
        for it in sorted(self._generations):
            if it not in complete[-self.keep :]:
                del self._generations[it]
        return self._generations[latest]

    def clear(self) -> None:
        self._generations.clear()

    def __len__(self) -> int:
        return len(self._generations)

    def __repr__(self) -> str:
        return (
            f"CGCheckpointStore(every={self.every}, "
            f"{len(self._generations)} generations, {self.puts} puts)"
        )
