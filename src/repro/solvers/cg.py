"""Conjugate gradients, exactly as run on QCDOC.

Per iteration: one operator application, two global inner products, three
axpy-type vector updates — the mix the performance model (E1) costs out.
The ``dot`` parameter is the hook through which the distributed solver
routes reductions into the simulated SCU global-sum tree; the *order of
arithmetic* inside ``cg`` never changes, which is what makes serial and
machine-distributed solves bitwise comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.solvers.kernels import axpy, axpy_norm2, xpay
from repro.util.errors import ConfigError

Apply = Callable[[np.ndarray], np.ndarray]
Dot = Callable[[np.ndarray, np.ndarray], complex]


def _default_dot(a: np.ndarray, b: np.ndarray) -> complex:
    return complex(np.vdot(a, b))


@dataclass
class SolveResult:
    """Outcome of a Krylov solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    #: relative residual history, one entry per iteration (including entry 0)
    residuals: List[float] = field(default_factory=list)
    #: ``|b - A x| / |b|`` recomputed from scratch at the end (audit value;
    #: catches drift in the recursively-updated residual)
    true_residual: float = 0.0

    def __repr__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"SolveResult({status} in {self.iterations} iterations, "
            f"true residual {self.true_residual:.3e})"
        )


def cg(
    apply_a: Apply,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 2000,
    dot: Dot = _default_dot,
    callback: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve ``A x = b`` for hermitian positive-definite ``A``.

    Parameters
    ----------
    apply_a:
        The matrix-vector product (e.g. ``operator.normal``).
    dot:
        Inner product; must return the *global* sum when the field is
        distributed.  Defaults to ``numpy.vdot``.
    callback:
        Called as ``callback(iteration, relative_residual)`` per iteration.
    """
    if tol <= 0:
        raise ConfigError(f"tolerance must be positive, got {tol}")
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_a(x) if x0 is not None else b.copy()
    p = r.copy()
    rr = dot(r, r).real
    bb = dot(b, b).real
    if bb == 0.0:
        return SolveResult(np.zeros_like(b), True, 0, [0.0], 0.0)
    target = tol * tol * bb

    residuals = [float(np.sqrt(rr / bb))]
    converged = rr <= target
    it = 0
    # One workspace for the whole solve: the axpy updates stream through
    # it instead of allocating a temporary per expression (see
    # :mod:`repro.solvers.kernels` — bitwise identical arithmetic).
    ws = np.empty_like(b)
    while not converged and it < maxiter:
        ap = apply_a(p)
        alpha = rr / dot(p, ap).real
        axpy(alpha, p, x, ws)  # x += alpha p
        # fused residual update + norm: r -= alpha ap; rr = <r, r>
        rr_new = axpy_norm2(-alpha, ap, r, ws, dot)
        beta = rr_new / rr
        xpay(r, beta, p)  # p <- r + beta p, in place
        rr = rr_new
        it += 1
        rel = float(np.sqrt(rr / bb))
        residuals.append(rel)
        if callback is not None:
            callback(it, rel)
        converged = rr <= target

    true_res = float(
        np.sqrt(dot(b - apply_a(x), b - apply_a(x)).real / bb)
    )
    return SolveResult(x, bool(converged), it, residuals, true_res)


def mixed_precision_cg(
    apply_a: Apply,
    b: np.ndarray,
    tol: float = 1e-8,
    maxiter: int = 2000,
    delta: float = 1e-2,
    max_inner: int = 100,
    dot: Optional[Dot] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """CG with single-precision inner accumulation and reliable updates.

    QCDOC's kernels ran the bandwidth-bound inner arithmetic in single
    precision wherever the physics allowed; this is the standard
    reliable-update formulation that recovers full double-precision
    accuracy anyway:

    * each **cycle** runs plain CG on the defect system ``A e = r``
      entirely in ``complex64`` (vectors, axpys and inner products),
      driving the single-precision residual down by ``delta``;
    * the correction is promoted and accumulated into ``x`` in double,
      and the residual is **replaced** — recomputed as ``r = b - A x``
      in full double precision — before the next cycle, so rounding in
      the inner loop can delay but never corrupt convergence.

    The operator itself stays the shared double-precision kernel (inner
    vectors are promoted per application), which is what keeps the
    serial and machine-distributed mixed solvers bitwise comparable:
    both run exactly this arithmetic, with ``dot`` defaulting to the
    decomposition-independent :func:`repro.solvers.sitedot.canonical_dot`.

    ``iterations`` counts inner iterations across all cycles; the
    residual history holds the double-precision relative residual at
    entry 0 and after every reliable update.
    """
    from repro.solvers.sitedot import canonical_dot

    if dot is None:
        dot = canonical_dot
    if tol <= 0:
        raise ConfigError(f"tolerance must be positive, got {tol}")
    if not 0.0 < delta < 1.0:
        raise ConfigError(f"cycle reduction delta must be in (0, 1), got {delta}")
    x = np.zeros_like(b)
    bb = dot(b, b).real
    if bb == 0.0:
        return SolveResult(x, True, 0, [0.0], 0.0)
    target = tol * tol * bb

    r = b.copy()
    rr = bb
    residuals = [float(np.sqrt(rr / bb))]
    converged = rr <= target
    it = 0
    ws32: Optional[np.ndarray] = None
    while not converged and it < maxiter:
        # -- inner cycle: CG on A e = r, entirely in single precision --
        r32 = r.astype(np.complex64)
        e = np.zeros_like(r32)
        p = r32.copy()
        rr32 = dot(r32, r32).real
        if rr32 == 0.0:
            break  # r underflows single precision: no representable defect
        inner_target = (delta * delta) * rr32
        if ws32 is None:
            ws32 = np.empty_like(r32)
        inner = 0
        while rr32 > inner_target and inner < max_inner and it + inner < maxiter:
            ap = apply_a(p.astype(np.complex128)).astype(np.complex64)
            alpha = rr32 / dot(p, ap).real
            axpy(alpha, p, e, ws32)  # e += alpha p
            rr32_new = axpy_norm2(-alpha, ap, r32, ws32, dot)
            beta = rr32_new / rr32
            xpay(r32, beta, p)  # p <- r32 + beta p
            rr32 = rr32_new
            inner += 1
        it += inner
        # -- reliable update: promote, accumulate, replace the residual --
        x += e.astype(np.complex128)
        r = b - apply_a(x)
        rr = dot(r, r).real
        rel = float(np.sqrt(rr / bb))
        residuals.append(rel)
        if callback is not None:
            callback(it, rel)
        converged = rr <= target

    true_res = float(
        np.sqrt(dot(b - apply_a(x), b - apply_a(x)).real / bb)
    )
    return SolveResult(x, bool(converged), it, residuals, true_res)


def cgne(
    apply_d: Apply,
    apply_d_dagger: Apply,
    b: np.ndarray,
    **kwargs,
) -> SolveResult:
    """Solve the non-hermitian ``D x = b`` via the normal equations.

    CG is run on ``(D^+ D) x = D^+ b`` — the standard production path for
    Wilson-type operators on QCDOC (gamma5-hermiticity guarantees
    ``D^+ D`` is hermitian positive-definite for nonzero mass).
    The returned ``true_residual`` is measured against the *original*
    system ``D x = b``.
    """

    def normal(v: np.ndarray) -> np.ndarray:
        return apply_d_dagger(apply_d(v))

    result = cg(normal, apply_d_dagger(b), **kwargs)
    dot = kwargs.get("dot", _default_dot)
    bb = dot(b, b).real
    if bb > 0:
        resid = b - apply_d(result.x)
        result.true_residual = float(np.sqrt(dot(resid, resid).real / bb))
    return result
