"""Krylov solvers.

"Standard Krylov space solvers work well to produce the solution and
dominate the calculational time for QCD simulations" (paper section 1);
QCDOC's benchmarks (section 4) are conjugate-gradient solves of the Dirac
normal equations.  These implementations take the inner product as a
parameter so the distributed versions can route it through the simulated
machine's SCU global-sum hardware.
"""

from repro.solvers.cg import SolveResult, cg, cgne, mixed_precision_cg
from repro.solvers.bicgstab import bicgstab
from repro.solvers.mr import minres_iteration
from repro.solvers.multishift import MultiShiftResult, multishift_cg
from repro.solvers.sitedot import canonical_dot

__all__ = [
    "SolveResult",
    "cg",
    "cgne",
    "mixed_precision_cg",
    "canonical_dot",
    "bicgstab",
    "minres_iteration",
    "multishift_cg",
    "MultiShiftResult",
]
