"""Tiny ASCII table renderer used by benches and examples.

The benchmark harness prints paper-style rows (efficiencies, dollar costs,
latencies); this keeps that output aligned and greppable without pulling in
any formatting dependency.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def fmt_si(value: float, digits: int = 3) -> str:
    """Format a number with an SI suffix (1.23 k, 4.56 M, ...)."""
    a = abs(value)
    for thresh, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if a >= thresh:
            return f"{value / thresh:.{digits}g} {suffix}"
    return f"{value:.{digits}g}"


class Table:
    """Accumulate rows, then render with padded columns.

    >>> t = Table(["operator", "efficiency"])
    >>> t.add_row(["wilson", "40.0%"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Any]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "  ".join("-" * w for w in widths)
        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append(sep)
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
