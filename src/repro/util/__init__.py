"""Shared utilities: units, deterministic RNG streams, errors, tables.

These helpers are deliberately dependency-free (numpy only) and are used by
every other subpackage.  Nothing here is QCDOC-specific.
"""

from repro.util.errors import (
    ConfigError,
    MachineError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.util.rng import rng_stream, spawn_rngs
from repro.util.tables import Table, fmt_si
from repro.util.units import (
    GB,
    GHZ,
    HZ,
    KB,
    MB,
    MHZ,
    MS,
    NS,
    SEC,
    US,
    fmt_bytes,
    fmt_rate,
    fmt_time,
)

__all__ = [
    "ConfigError",
    "MachineError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "rng_stream",
    "spawn_rngs",
    "Table",
    "fmt_si",
    "NS",
    "US",
    "MS",
    "SEC",
    "KB",
    "MB",
    "GB",
    "HZ",
    "MHZ",
    "GHZ",
    "fmt_time",
    "fmt_bytes",
    "fmt_rate",
]
