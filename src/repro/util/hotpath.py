"""Hot-path tagging for the zero-allocation contract.

The steady-state dslash/CG pipeline must not allocate numpy arrays: every
work buffer is owned by the operator context and preallocated once, so a
solver iterating thousands of times runs at a flat memory footprint (the
software analogue of the SCU's zero-copy DMA story — data is staged in
place, never copied through freshly-allocated temporaries).

``@hot_path`` marks a function as living on that steady-state path.  The
tag is enforced twice:

* statically, by reprolint rule REPRO105 (no numpy allocation calls —
  ``np.zeros``/``np.empty``/``np.concatenate``/... — anywhere in a
  ``@hot_path`` body);
* at runtime, by the allocation-counting fixture in
  ``tests/test_hotpath_alloc.py``, which patches the allocator entry
  points and fails if a tagged path triggers one mid-iteration.

The contract covers *Python-level allocation calls*.  C-level expression
temporaries (e.g. ``a + b`` materialising a result array) are outside its
scope — the approved allocation-free idioms are ``np.take(..., out=)``,
``np.copyto``, ``np.einsum(..., out=)`` and the ``out=`` forms of the
spin/colour kernels (see DESIGN.md §12).
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def hot_path(fn: F) -> F:
    """Mark ``fn`` as steady-state hot-path code (zero-allocation contract).

    The decorator is metadata only — it returns ``fn`` unchanged (no
    wrapper frame on the call path) and sets ``__hot_path__`` so tooling
    and tests can discover tagged functions.
    """
    fn.__hot_path__ = True
    return fn


def is_hot_path(fn: Callable) -> bool:
    """True when ``fn`` (or the function under a bound method) is tagged."""
    return bool(getattr(fn, "__hot_path__", False))
