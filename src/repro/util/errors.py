"""Exception hierarchy for the qcdoc-repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly (e.g. bad yield)."""


class MachineError(ReproError):
    """A machine-level operation failed (bad partition, unbooted node, ...)."""


class ProtocolError(ReproError):
    """A link/packet protocol invariant was violated (corrupt header, ...)."""


class FaultError(MachineError):
    """A *permanent* hardware fault was detected (vs transient bit flips,
    which the go-back-N resend protocol absorbs silently)."""


class LinkDownError(FaultError):
    """An SCU watchdog declared one serial-link direction dead.

    Carries enough structure for the host daemon to diagnose and remap:
    the detecting node, the physical link direction, and the watchdog's
    reason string (``"resend-storm"``, ``"no-ack-progress"``,
    ``"recv-stall"``).
    """

    def __init__(self, node: int, direction: int, reason: str):
        super().__init__(
            f"node {node} direction {direction}: link declared down ({reason})"
        )
        self.node = int(node)
        self.direction = int(direction)
        self.reason = reason

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` with the
        # formatted message as the only arg — wrong arity here.  Faults
        # cross process boundaries as sharded-run notifications, so spell
        # the constructor call out.
        return (LinkDownError, (self.node, self.direction, self.reason))


class DegradedMachineError(MachineError):
    """No healthy partition of the requested shape exists.

    ``failed_nodes`` / ``dead_links`` record what the daemon knows about
    the hardware loss; ``requested`` is the logical shape that could not
    be placed.
    """

    def __init__(self, requested, failed_nodes=(), dead_links=(), detail=""):
        requested = tuple(requested)
        msg = (
            f"no healthy sub-torus for logical dims {requested} "
            f"({len(tuple(failed_nodes))} failed nodes, "
            f"{len(tuple(dead_links))} dead links)"
        )
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.requested = requested
        self.failed_nodes = tuple(failed_nodes)
        self.dead_links = tuple(dead_links)
        self.detail = detail

    def __reduce__(self):
        # See LinkDownError.__reduce__: custom-arity ctor, must pickle
        # by explicit reconstruction.
        return (
            DegradedMachineError,
            (self.requested, self.failed_nodes, self.dead_links, self.detail),
        )
