"""Exception hierarchy for the qcdoc-repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly (e.g. bad yield)."""


class MachineError(ReproError):
    """A machine-level operation failed (bad partition, unbooted node, ...)."""


class ProtocolError(ReproError):
    """A link/packet protocol invariant was violated (corrupt header, ...)."""
