"""Physical units and formatting helpers.

Simulation time is kept in **seconds** (floats); these constants make call
sites read like the paper ("600 * NS", "8 * GB / SEC").  Byte quantities use
binary-free decimal multipliers to match the paper's GB/s figures (the paper's
"8 GBytes/second" is 8e9, i.e. 128 bits x 500 MHz).
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------
SEC = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9

# --- data ----------------------------------------------------------------
KB = 1e3
MB = 1e6
GB = 1e9

# --- frequency -----------------------------------------------------------
HZ = 1.0
MHZ = 1e6
GHZ = 1e9


def fmt_time(seconds: float) -> str:
    """Render a duration with an auto-selected unit, e.g. ``600.0 ns``."""
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3g} s"
    if a >= MS:
        return f"{seconds / MS:.3g} ms"
    if a >= US:
        return f"{seconds / US:.3g} us"
    return f"{seconds / NS:.3g} ns"


def fmt_bytes(nbytes: float) -> str:
    """Render a byte count with an auto-selected unit, e.g. ``4 MB``."""
    a = abs(nbytes)
    if a >= GB:
        return f"{nbytes / GB:.3g} GB"
    if a >= MB:
        return f"{nbytes / MB:.3g} MB"
    if a >= KB:
        return f"{nbytes / KB:.3g} kB"
    return f"{nbytes:.0f} B"


def fmt_rate(bytes_per_sec: float) -> str:
    """Render a bandwidth, e.g. ``1.3 GB/s``."""
    return fmt_bytes(bytes_per_sec) + "/s"
