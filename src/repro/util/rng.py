"""Deterministic, hierarchical random-number streams.

QCDOC's headline verification was re-running a five-day 128-node evolution
and requiring the result to be *identical in all bits* (paper section 4).  For
that to be testable in the reproduction, every stochastic component (gauge
field initialisation, HMC momenta, link-fault injection, ...) must draw from
a named stream derived purely from a root seed, never from global state.

``numpy.random.SeedSequence.spawn`` would give streams that depend on spawn
*order*; instead we derive each stream from ``(seed, name)`` so call sites can
create streams lazily and in any order and still be bit-reproducible.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List

import numpy as np


def _name_key(name: str) -> int:
    """Map a stream name to a stable 32-bit key (CRC32 of the UTF-8 bytes)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def rng_stream(seed: int, name: str) -> np.random.Generator:
    """Return a Generator deterministically derived from ``(seed, name)``.

    The same ``(seed, name)`` pair always yields an identical stream, on any
    platform, regardless of how many other streams were created before it.
    """
    ss = np.random.SeedSequence(entropy=int(seed), spawn_key=(_name_key(name),))
    return np.random.Generator(np.random.Philox(ss))


def spawn_rngs(seed: int, names: Iterable[str]) -> List[np.random.Generator]:
    """Create one independent stream per name (see :func:`rng_stream`)."""
    return [rng_stream(seed, n) for n in names]
