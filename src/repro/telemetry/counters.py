"""Typed hierarchical performance counters (sample-on-demand).

Design rule (acceptance criterion of PR 3): **telemetry disabled costs at
most one attribute check on simulation hot paths**.  The machine units
therefore keep the counters they always kept — plain integer attributes
like ``SendUnit.payload_words`` or ``SerialLink.bits_sent``, incremented
unconditionally (an int add is cheaper than any indirection we could
design around it).  A :class:`CounterBank` never intercepts those
increments; it registers *providers* — zero-argument callables returning
``{dotted.path: value}`` — and reads them only when :meth:`CounterBank
.sample` is called.  Attaching a bank to a machine is free until you look.

Counter paths are dotted hierarchies ``node.unit.counter``::

    node0.scu.payload_words_sent      (words)
    node0.mem.edram.read_bytes        (bytes)
    node0.cpu.kernel.dslash           (flops)
    link.n0.d0.bits_sent              (bits)

:func:`bank_for_machine` wires up the canonical provider set for a
:class:`~repro.machine.machine.QCDOCMachine`: per-node SCU transfer
counters (payload/wire words, acks, parity errors, resends, idle holds,
in-flight words), per-region memory DMA bytes, per-kernel CPU flops, and
per-link wire statistics.

Manual counters (:meth:`CounterBank.counter` / :meth:`CounterBank.add`)
exist for application-layer accounting — e.g. the solver flop ledger —
and are merged into the same namespace at sampling time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

Sample = Dict[str, float]


def merge_samples(samples: Iterable[Sample]) -> Sample:
    """Sum flat dotted-path samples into one (sharded-machine merge path).

    Per-shard :meth:`CounterBank.sample` snapshots — or per-shard subsets
    of one machine-wide bank — combine by plain addition because every
    counter in the hierarchy is a sum (words, bytes, flops, seconds);
    paths missing from a shard contribute zero.  Key order of the result
    follows first appearance, so merging sorted inputs stays sorted.
    """
    out: Sample = {}
    for sample in samples:
        for path, value in sample.items():
            out[path] = out.get(path, 0) + value
    return out


class Counter:
    """One manually-driven counter: a named value with a unit."""

    __slots__ = ("path", "unit", "value")

    def __init__(self, path: str, unit: str = "count"):
        self.path = path
        self.unit = unit
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.path}={self.value} {self.unit})"


class CounterBank:
    """A hierarchy of counters: manual :class:`Counter` objects plus
    sample-on-demand providers.

    Providers are zero-argument callables returning ``{path: value}``;
    they are invoked only inside :meth:`sample`, so registering any
    number of them adds zero cost to the simulation itself.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._providers: List[Callable[[], Sample]] = []
        self._units: Dict[str, str] = {}

    # -- registration -----------------------------------------------------
    def counter(self, path: str, unit: str = "count") -> Counter:
        """Get or create a manual counter at ``path``."""
        c = self._counters.get(path)
        if c is None:
            c = Counter(path, unit)
            self._counters[path] = c
            self._units[path] = unit
        return c

    def add(self, path: str, n: float = 1, unit: str = "count") -> None:
        self.counter(path, unit).add(n)

    def register_provider(
        self, fn: Callable[[], Sample], units: Optional[Dict[str, str]] = None
    ) -> None:
        """Register a pull-mode counter source.

        ``units`` optionally declares the unit of each path the provider
        will report (for documentation/typing of the hierarchy).
        """
        self._providers.append(fn)
        if units:
            self._units.update(units)

    def unit(self, path: str) -> str:
        return self._units.get(path, "count")

    # -- sampling ----------------------------------------------------------
    def sample(self) -> Sample:
        """A flat ``{dotted.path: value}`` snapshot, providers included."""
        out: Sample = {c.path: c.value for c in self._counters.values()}
        for fn in self._providers:
            for path, value in fn().items():
                out[path] = out.get(path, 0) + value
        return out

    flat = sample

    def tree(self) -> Dict:
        """The snapshot as a nested dict keyed by path segments."""
        root: Dict = {}
        for path, value in self.sample().items():
            node = root
            parts = path.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return root

    def total(self, prefix: str) -> float:
        """Sum of every counter at or under ``prefix``."""
        dotted = prefix + "."
        return sum(
            v
            for p, v in self.sample().items()
            if p == prefix or p.startswith(dotted)
        )

    def __len__(self) -> int:
        return len(self.sample())


# -- the canonical machine wiring ------------------------------------------

#: unit names for the per-node SCU counters reported by
#: :meth:`repro.machine.scu.SCU.transfer_counters`
SCU_COUNTER_UNITS = {
    "payload_words_sent": "words",
    "wire_words_sent": "words",
    "payload_words_received": "words",
    "resends": "events",
    "acks_received": "frames",
    "sends_completed": "transfers",
    "parity_errors": "events",
    "resend_requests": "frames",
    "acks_sent": "frames",
    "idle_held_words": "words",
    "idle_hold_events": "events",
    "recvs_completed": "transfers",
    # hard-fault watchdog (companion papers hep-lat/0306023 / 0309096)
    "watchdog_trips": "events",
    "backoff_waits": "events",
    "link_down": "links",
}


def _node_provider(node_id: int, node) -> Callable[[], Sample]:
    prefix = f"node{node_id}"

    def sample() -> Sample:
        out: Sample = {}
        for name, value in node.scu.transfer_counters().items():
            out[f"{prefix}.scu.{name}"] = value
        out[f"{prefix}.scu.in_flight_words"] = node.scu.in_flight_words()
        for region, nbytes in node.memory.read_bytes.items():
            out[f"{prefix}.mem.{region}.read_bytes"] = nbytes
        for region, nbytes in node.memory.write_bytes.items():
            out[f"{prefix}.mem.{region}.write_bytes"] = nbytes
        out[f"{prefix}.cpu.flops_charged"] = node.flops_charged
        out[f"{prefix}.cpu.compute_seconds"] = node.compute_time
        for kernel, flops in node.kernel_flops.items():
            out[f"{prefix}.cpu.kernel.{kernel or 'untagged'}"] = flops
        return out

    return sample


def _link_provider(src: int, direction: int, link) -> Callable[[], Sample]:
    prefix = f"link.n{src}.d{direction}"

    def sample() -> Sample:
        return {
            f"{prefix}.frames_sent": link.frames_sent,
            f"{prefix}.bits_sent": link.bits_sent,
            f"{prefix}.faults_injected": link.faults_injected,
            f"{prefix}.frames_dropped": link.frames_dropped,
            f"{prefix}.busy_seconds": link.busy_seconds,
        }

    return sample


def sample_nodes(machine, node_ids: Iterable[int]) -> Sample:
    """One-shot counter snapshot restricted to the given nodes.

    Same paths and values as the ``node<i>.*`` subset of
    :func:`bank_for_machine`'s bank, but without registering anything —
    the building block for per-job/per-tenant attribution: since a
    scheduler guarantees no two jobs share a node, the delta of this
    sample over a job's nodes between launch and completion is exactly
    the job's resource usage.
    """
    out: Sample = {}
    for node_id in sorted(node_ids):
        out.update(_node_provider(node_id, machine.nodes[node_id])())
    return out


def bank_for_machine(machine) -> CounterBank:
    """The canonical :class:`CounterBank` over a
    :class:`~repro.machine.machine.QCDOCMachine`.

    Hierarchy: ``node<i>.scu.*`` (transfer protocol counters),
    ``node<i>.mem.<region>.*`` (DMA bytes by memory region),
    ``node<i>.cpu.*`` (flops, per-kernel attribution), and
    ``link.n<src>.d<dir>.*`` (wire statistics per serial link).
    """
    bank = CounterBank()
    for node_id, node in machine.nodes.items():
        units = {
            f"node{node_id}.scu.{k}": u for k, u in SCU_COUNTER_UNITS.items()
        }
        units[f"node{node_id}.scu.in_flight_words"] = "words"
        units[f"node{node_id}.cpu.flops_charged"] = "flops"
        units[f"node{node_id}.cpu.compute_seconds"] = "seconds"
        bank.register_provider(_node_provider(node_id, node), units=units)
    for (src, direction), link in machine.network.links.items():
        bank.register_provider(
            _link_provider(src, direction, link),
            units={
                f"link.n{src}.d{direction}.bits_sent": "bits",
                f"link.n{src}.d{direction}.busy_seconds": "seconds",
            },
        )
    return bank
