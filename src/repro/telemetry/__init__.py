"""Machine-wide telemetry: performance counters, trace schema, exporters.

QCDOC's ASIC exposed hardware performance counters that made the paper's
quantitative claims — sustained Dirac efficiency, 420 Mbit/s/link wire
rates, global-sum hop counts — *measurable*.  This package is the
simulator's equivalent observability layer:

* :mod:`repro.telemetry.counters` — :class:`CounterBank`, a typed,
  hierarchical (``node -> unit -> counter``) sampling view over the
  always-on plain counters every machine unit keeps.  Sampling is pull,
  not push: the hot paths never see the bank.
* :mod:`repro.telemetry.schema` — the registry of every structured-trace
  tag (and its exact field names) emitted anywhere in :mod:`repro`;
  regression tests diff the registry against an AST scan of the source.
* :mod:`repro.telemetry.chrometrace` — a ``chrome://tracing`` /
  Perfetto-compatible JSON exporter turning a machine trace into a
  per-node timeline of compute vs. in-flight communication.
* :mod:`repro.telemetry.report` — :class:`MachineReport`, the roll-up of
  counters into the paper's derived metrics (sustained GFlops, link
  utilisation, overlap fraction) with a :meth:`MachineReport.crosscheck`
  that compares measurement against :mod:`repro.perfmodel` predictions
  within declared tolerances.
"""

from repro.telemetry.chrometrace import chrome_trace_events, export_chrome_trace
from repro.telemetry.counters import (
    Counter,
    CounterBank,
    bank_for_machine,
    merge_samples,
)
from repro.telemetry.report import CrosscheckEntry, CrosscheckResult, MachineReport
from repro.telemetry.schema import TRACE_SCHEMA, validate_record, validate_trace

__all__ = [
    "Counter",
    "CounterBank",
    "bank_for_machine",
    "merge_samples",
    "MachineReport",
    "CrosscheckEntry",
    "CrosscheckResult",
    "TRACE_SCHEMA",
    "validate_record",
    "validate_trace",
    "chrome_trace_events",
    "export_chrome_trace",
]
