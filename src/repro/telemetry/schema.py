"""The registry of every structured-trace tag emitted in :mod:`repro`.

Contract (PR 3): a tag may be emitted **only** if it appears here, with
**exactly** the field names declared here.  ``tests/test_trace_schema.py``
enforces both directions — it AST-scans the source tree for ``.emit(...)``
call sites and diffs them against :data:`TRACE_SCHEMA`, so adding an
emission without registering it (or silently renaming a field) fails CI.

Tags are namespaced ``unit.event``:

``link.*``
    the bit-serial physical layer (:mod:`repro.machine.hssl`);
``scu.*``
    the serial-communications unit protocol engines
    (:mod:`repro.machine.scu`);
``irq.*``
    the partition interrupt tree (:mod:`repro.machine.interrupts`);
``cpu.*``
    node compute charging (:mod:`repro.machine.node`);
``gsum.*``
    global-operations engine (:mod:`repro.machine.globalops`);
``cg.*``
    the distributed solver layer (:mod:`repro.parallel.pcg`);
``fault.*``
    the permanent-hardware-fault injection schedule
    (:mod:`repro.machine.faults`).

A record whose fields include ``dur`` is a **span**: it is emitted at the
*end* of the interval it describes, ``record.time - dur`` being the start.
The Chrome-trace exporter renders spans as complete ("X") events and
everything else as instants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.sim.trace import Trace, TraceRecord

#: tag -> exact field-name set carried by every emission of that tag
TRACE_SCHEMA: Dict[str, FrozenSet[str]] = {
    # -- physical link layer ------------------------------------------------
    "link.trained": frozenset({"link"}),
    "link.fault": frozenset({"link", "bit", "seq"}),
    "link.deliver": frozenset({"link", "ptype", "seq", "nwords"}),
    "link.down": frozenset({"link", "mode"}),
    # -- SCU protocol engines ----------------------------------------------
    "scu.send": frozenset({"node", "direction", "words", "resends", "dur"}),
    "scu.recv": frozenset({"node", "direction", "words", "dur"}),
    "scu.resend": frozenset({"node", "direction", "seq"}),
    "scu.parity_error": frozenset({"node", "direction", "seq"}),
    "scu.start_stored": frozenset({"node", "group", "n_transfers"}),
    "scu.supervisor": frozenset({"node", "direction", "word"}),
    # -- SCU hard-fault watchdog (companion papers) -------------------------
    "scu.backoff": frozenset({"node", "direction", "wait"}),
    "scu.link_down": frozenset({"node", "direction", "reason"}),
    # -- fault-injection schedule -------------------------------------------
    "fault.inject": frozenset({"kind", "node", "direction"}),
    # -- interrupt tree -----------------------------------------------------
    "irq.forward": frozenset({"node", "bits"}),
    "irq.present": frozenset({"node", "bits"}),
    # -- CPU compute charging ----------------------------------------------
    "cpu.compute": frozenset({"node", "flops", "kernel", "dur"}),
    # -- global operations --------------------------------------------------
    "gsum.complete": frozenset({"nwords", "hops", "dur"}),
    # -- solver layer -------------------------------------------------------
    "cg.iteration": frozenset({"rank", "iteration", "residual"}),
    "cg.checkpoint": frozenset({"rank", "iteration"}),
    "hmc.force": frozenset({"rank", "iterations"}),
}

#: tags whose records are spans (carry ``dur``; exporter draws intervals)
SPAN_TAGS: FrozenSet[str] = frozenset(
    tag for tag, fields in TRACE_SCHEMA.items() if "dur" in fields
)


def validate_record(record: TraceRecord) -> List[str]:
    """Schema violations for one record (empty list = conformant)."""
    problems: List[str] = []
    expected = TRACE_SCHEMA.get(record.tag)
    if expected is None:
        problems.append(f"unregistered trace tag {record.tag!r}")
        return problems
    got = frozenset(record.fields)
    if got != expected:
        missing = sorted(expected - got)
        extra = sorted(got - expected)
        problems.append(
            f"tag {record.tag!r} field drift: missing {missing}, extra {extra}"
        )
    return problems


def validate_trace(trace: Trace) -> List[str]:
    """Schema violations across an entire trace (empty list = conformant)."""
    problems: List[str] = []
    for record in trace:
        problems.extend(validate_record(record))
    return problems
