"""Chrome-tracing (``chrome://tracing`` / Perfetto) trace exporter.

Turns a machine :class:`~repro.sim.trace.Trace` into the Trace Event JSON
format, so a simulated dslash or CG iteration renders as a per-node
timeline: one *process* per node, with *threads* for the CPU and each
SCU send/receive direction — compute spans and in-flight communication
visually overlapping exactly as the two-phase pipeline schedules them.

Mapping
-------
* records whose fields carry ``dur`` (the span convention of
  :mod:`repro.telemetry.schema`) become complete events (``ph="X"``) with
  ``ts = (time - dur)`` — spans are emitted at interval *end*;
* all other records become thread-scoped instant events (``ph="i"``);
* ``pid`` is the node id (``node``/``rank`` field, or the source node
  parsed from a link name); machine-global records (``gsum.*``) live in
  pid ``-1``;
* ``tid`` is a small integer allocated per (pid, lane) with
  ``thread_name`` metadata events labelling the lanes (``cpu``,
  ``scu.send.d3`` ...).

All events are sorted by timestamp, so per-process timestamps are
monotone by construction — the property the schema regression test
asserts after a ``json.loads`` round trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.sim.trace import Trace, TraceRecord

_US = 1e6  # trace-event timestamps are microseconds


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars etc. into plain JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _pid(record: TraceRecord) -> int:
    fields = record.fields
    if "node" in fields:
        return int(fields["node"])
    if "rank" in fields:
        return int(fields["rank"])
    link = fields.get("link")
    if isinstance(link, str) and link.startswith("n"):
        # link names are "n<src>.d<dir>->n<dst>"
        head = link.split(".", 1)[0][1:]
        if head.isdigit():
            return int(head)
    return -1  # machine-global lane (gsum.* etc.)


def _lane(record: TraceRecord) -> str:
    tag = record.tag
    fields = record.fields
    if tag == "cpu.compute":
        return "cpu"
    if tag.startswith("scu.") and "direction" in fields:
        kind = "recv" if tag in ("scu.recv", "scu.parity_error") else "send"
        return f"scu.{kind}.d{int(fields['direction'])}"
    return tag.split(".", 1)[0]


def _name(record: TraceRecord) -> str:
    if record.tag == "cpu.compute" and record.fields.get("kernel"):
        return f"cpu.compute:{record.fields['kernel']}"
    return record.tag


def chrome_trace_events(trace: Trace) -> List[Dict[str, Any]]:
    """The trace as a list of Trace Event dicts (metadata + sorted events)."""
    tids: Dict[tuple, int] = {}
    metadata: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    for record in trace:
        pid = _pid(record)
        lane = _lane(record)
        key = (pid, lane)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == pid])
            tids[key] = tid
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        args = {k: _json_safe(v) for k, v in record.fields.items()}
        args["seq"] = record.seq
        dur = record.fields.get("dur")
        if dur is not None:
            events.append(
                {
                    "name": _name(record),
                    "ph": "X",
                    "ts": (record.time - float(dur)) * _US,
                    "dur": float(dur) * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": _name(record),
                    "ph": "i",
                    "s": "t",
                    "ts": record.time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return metadata + events


def export_chrome_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write the Trace Event JSON file; load it in ``chrome://tracing``
    or https://ui.perfetto.dev."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path
