"""Machine-wide counter roll-up and the measured-vs-model crosscheck.

:class:`MachineReport` aggregates the per-unit hardware-style counters of
a :class:`~repro.machine.machine.QCDOCMachine` into the derived metrics
the paper reports — sustained GFlops, per-link utilisation and wire rate,
the comm/compute overlap fraction — and :meth:`MachineReport.crosscheck`
compares the *measured* traffic/flop counters against the *exact*
predictions of :mod:`repro.perfmodel.dirac_perf` within declared
tolerances.  That turns the analytic performance model from a parallel
artifact into a tested invariant: if the wire format, the staging flop
charges, or the model formulas drift apart, the telemetry suite fails.

The ``wire_overhead`` metric (wire words / payload words) is predicted to
be exactly 1.0 on a clean machine; the go-back-N resend protocol makes it
strictly greater under injected link faults, so a crosscheck over a
degraded link **flags** the condition rather than silently absorbing it —
the behaviour the fault-injection telemetry test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perfmodel.dirac_perf import dirac_flops_per_node, halo_payload_words
from repro.telemetry.counters import CounterBank, bank_for_machine

#: counted quantities (words, flops) are exact by construction; the
#: tolerance only absorbs float accumulation in the flop charges.
EXACT_REL_TOL = 1e-9


@dataclass(frozen=True)
class CrosscheckEntry:
    """One measured-vs-predicted comparison."""

    metric: str
    measured: float
    predicted: float
    rel_tol: float

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.predicted), 1.0)
        return abs(self.measured - self.predicted) / scale

    @property
    def ok(self) -> bool:
        return self.rel_error <= self.rel_tol

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.metric}: measured {self.measured:g} vs "
            f"predicted {self.predicted:g} (rel err {self.rel_error:.3e}, "
            f"tol {self.rel_tol:.1e})"
        )


@dataclass
class CrosscheckResult:
    """All entries of one crosscheck run."""

    entries: List[CrosscheckEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    def failures(self) -> List[CrosscheckEntry]:
        return [e for e in self.entries if not e.ok]

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self.entries)


class MachineReport:
    """A snapshot of machine counters plus the paper's derived metrics."""

    def __init__(self, machine, bank: Optional[CounterBank] = None):
        self.machine = machine
        self.bank = bank if bank is not None else bank_for_machine(machine)
        self.counters: Dict[str, float] = self.bank.sample()
        self.elapsed = float(machine.sim.now)

    @classmethod
    def collect(cls, machine) -> "MachineReport":
        return cls(machine)

    # -- totals -------------------------------------------------------------
    def _scu_total(self, name: str) -> float:
        return sum(
            n.scu.transfer_counters()[name] for n in self.machine.nodes.values()
        )

    @property
    def total_flops(self) -> float:
        return sum(n.flops_charged for n in self.machine.nodes.values())

    @property
    def total_payload_words(self) -> float:
        return self._scu_total("payload_words_sent")

    @property
    def total_wire_words(self) -> float:
        return self._scu_total("wire_words_sent")

    @property
    def total_parity_errors(self) -> float:
        return self._scu_total("parity_errors")

    @property
    def total_resends(self) -> float:
        return self._scu_total("resends")

    @property
    def wire_overhead(self) -> float:
        """wire words / payload words (1.0 on a clean machine; > 1 under
        go-back-N retransmission)."""
        payload = self.total_payload_words
        return self.total_wire_words / payload if payload else 1.0

    # -- derived metrics ----------------------------------------------------
    @property
    def sustained_gflops(self) -> float:
        """Machine-wide average floating-point rate over elapsed time."""
        if self.elapsed <= 0:
            return 0.0
        return self.total_flops / self.elapsed / 1e9

    @property
    def peak_fraction(self) -> float:
        """Sustained fraction of aggregate FPU peak."""
        peak = self.machine.n_nodes * self.machine.asic.peak_flops
        if self.elapsed <= 0 or peak <= 0:
            return 0.0
        return self.total_flops / (peak * self.elapsed)

    def link_utilisation(self) -> Dict[str, float]:
        """Wire-busy fraction over links that carried traffic."""
        active = self.machine.network.active_links()
        if not active or self.elapsed <= 0:
            return {"mean": 0.0, "max": 0.0, "links_active": 0}
        fracs = [link.busy_seconds / self.elapsed for _, link in active]
        return {
            "mean": sum(fracs) / len(fracs),
            "max": max(fracs),
            "links_active": len(active),
        }

    def link_rate_mbit_s(self) -> float:
        """Mean achieved wire rate over active links (Mbit/s while busy) —
        the paper's "420 Mbit/s" per-link figure is this quantity."""
        active = self.machine.network.active_links()
        rates = [
            link.bits_sent / link.busy_seconds / 1e6
            for _, link in active
            if link.busy_seconds > 0
        ]
        return sum(rates) / len(rates) if rates else 0.0

    def overlap_fraction(self) -> float:
        """Fraction of communication hidden behind compute, machine-mean.

        Per node: with ``T_cpu`` the charged compute time, ``T_comm`` the
        busiest outgoing link's wire time, and ``T`` the elapsed window,
        ``overlap = (T_cpu + T_comm - T) / min(T_cpu, T_comm)`` clamped to
        [0, 1] — 1.0 when communication is fully hidden (the paper's
        sustained-efficiency assumption), 0.0 when fully serialized.
        """
        if self.elapsed <= 0:
            return 0.0
        per_node = []
        for node_id, node in self.machine.nodes.items():
            busy = [
                link.busy_seconds
                for (src, _), link in self.machine.network.links.items()
                if src == node_id and link.frames_sent > 0
            ]
            t_comm = max(busy) if busy else 0.0
            t_cpu = node.compute_time
            lo = min(t_cpu, t_comm)
            if lo <= 0:
                continue
            per_node.append(max(0.0, min(1.0, (t_cpu + t_comm - self.elapsed) / lo)))
        return sum(per_node) / len(per_node) if per_node else 0.0

    # -- serialisation -------------------------------------------------------
    def to_json(self) -> Dict:
        """A JSON-serialisable telemetry dump (bench ``--report`` output)."""
        return {
            "elapsed_seconds": self.elapsed,
            "n_nodes": self.machine.n_nodes,
            "derived": {
                "sustained_gflops": self.sustained_gflops,
                "peak_fraction": self.peak_fraction,
                "wire_overhead": self.wire_overhead,
                "link_utilisation": self.link_utilisation(),
                "link_rate_mbit_s": self.link_rate_mbit_s(),
                "overlap_fraction": self.overlap_fraction(),
            },
            "totals": {
                "flops": self.total_flops,
                "payload_words_sent": self.total_payload_words,
                "wire_words_sent": self.total_wire_words,
                "parity_errors": self.total_parity_errors,
                "resends": self.total_resends,
            },
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }

    # -- the measured-vs-model invariant -------------------------------------
    def crosscheck(
        self,
        op: str,
        local_shape: Sequence[int],
        machine_dims: Sequence[int],
        n_ranks: Optional[int] = None,
        n_applications: int = 1,
        Ls: int = 1,
        compress: bool = True,
        rel_tol: float = EXACT_REL_TOL,
        wire_tol: float = EXACT_REL_TOL,
    ) -> CrosscheckResult:
        """Compare measured counters against the perf-model predictions.

        ``n_applications`` counts distributed ``D`` (or ``D^+``) applies
        per rank in the measured window; ``machine_dims`` is the logical
        partition shape the physics ran on.  Word and flop counts are
        exact predictions (tolerance only absorbs float accumulation);
        ``wire_overhead`` is predicted 1.0 and *fails* under injected
        faults — the report flags a degraded link rather than absorbing
        the retransmission traffic into the payload accounting.
        """
        n_ranks = self.machine.n_nodes if n_ranks is None else int(n_ranks)
        words_per_rank = halo_payload_words(
            op, local_shape, machine_dims, Ls=Ls, compress=compress
        )
        flops_per_rank = dirac_flops_per_node(
            op, local_shape, machine_dims, Ls=Ls
        )
        result = CrosscheckResult()
        result.entries.append(
            CrosscheckEntry(
                metric="payload_words_sent",
                measured=self.total_payload_words,
                predicted=float(n_ranks * n_applications * words_per_rank),
                rel_tol=rel_tol,
            )
        )
        result.entries.append(
            CrosscheckEntry(
                metric="flops_charged",
                measured=self.total_flops,
                predicted=float(n_ranks * n_applications * flops_per_rank),
                rel_tol=rel_tol,
            )
        )
        result.entries.append(
            CrosscheckEntry(
                metric="wire_overhead",
                measured=self.wire_overhead,
                predicted=1.0,
                rel_tol=wire_tol,
            )
        )
        return result

    def crosscheck_composite(
        self,
        ops: Sequence[Tuple[str, int]],
        local_shape: Sequence[int],
        machine_dims: Sequence[int],
        n_ranks: Optional[int] = None,
        Ls: int = 1,
        compress: bool = True,
        rel_tol: float = EXACT_REL_TOL,
        wire_tol: float = EXACT_REL_TOL,
    ) -> CrosscheckResult:
        """Crosscheck a window that mixed *several* distributed kernels.

        ``ops`` is a sequence of ``(op, n_applications)`` pairs — e.g. a
        dynamical-HMC force evaluation charges ``("wilson", 2 * iters + 1)``
        operator applies plus ``("wilson-force", 1)`` — and the payload /
        flop predictions are the sums of the per-op exact closed forms.
        The same three counters are compared as for the single-op
        :meth:`crosscheck`.
        """
        n_ranks = self.machine.n_nodes if n_ranks is None else int(n_ranks)
        words_per_rank = 0.0
        flops_per_rank = 0.0
        for op, n_applications in ops:
            words_per_rank += n_applications * halo_payload_words(
                op, local_shape, machine_dims, Ls=Ls, compress=compress
            )
            flops_per_rank += n_applications * dirac_flops_per_node(
                op, local_shape, machine_dims, Ls=Ls
            )
        result = CrosscheckResult()
        result.entries.append(
            CrosscheckEntry(
                metric="payload_words_sent",
                measured=self.total_payload_words,
                predicted=float(n_ranks * words_per_rank),
                rel_tol=rel_tol,
            )
        )
        result.entries.append(
            CrosscheckEntry(
                metric="flops_charged",
                measured=self.total_flops,
                predicted=float(n_ranks * flops_per_rank),
                rel_tol=rel_tol,
            )
        )
        result.entries.append(
            CrosscheckEntry(
                metric="wire_overhead",
                measured=self.wire_overhead,
                predicted=1.0,
                rel_tol=wire_tol,
            )
        )
        return result
