"""qcdoc-repro: a software twin of QCDOC, the 10-Teraflops lattice-QCD
machine (Boyle et al., SC 2004).

The package reproduces the paper's three layers:

* the **machine** — a functional, timed simulation of the 6-dimensional
  torus of custom ASICs: SCU serial links with the three-in-the-air /
  idle-receive / auto-resend protocol, prefetching EDRAM + DDR memory
  system, pass-through global sums, partition interrupts, Ethernet/JTAG
  boot, qdaemon host software (:mod:`repro.machine`, :mod:`repro.host`,
  :mod:`repro.kernel`, :mod:`repro.comms`);
* the **application** — a from-scratch lattice-QCD library: SU(3) gauge
  fields, Wilson / clover / ASQTAD / domain-wall Dirac operators, Krylov
  solvers, HMC (:mod:`repro.lattice`, :mod:`repro.fermions`,
  :mod:`repro.solvers`, :mod:`repro.hmc`), runnable serially *or*
  distributed across the simulated nodes (:mod:`repro.parallel`);
* the **evaluation** — a calibrated performance/cost/packaging model that
  regenerates every number in the paper's evaluation
  (:mod:`repro.perfmodel`); see EXPERIMENTS.md for paper-vs-model.

Quickstart::

    from repro import QCDOCMachine, MachineConfig, GaugeField, LatticeGeometry
    from repro.parallel import solve_on_machine
    from repro.util import rng_stream

    machine = QCDOCMachine(MachineConfig(dims=(2, 2, 2, 1, 1, 1)), word_batch=4096)
    machine.bring_up()
    partition = machine.partition(groups=[(0,), (1,), (2,), (3,)])

    geom = LatticeGeometry((4, 4, 4, 2))
    gauge = GaugeField.hot(geom, rng_stream(1, "gauge"))
    b = ...  # a (V, 4, 3) source
    result = solve_on_machine(machine, partition, gauge, b, mass=0.3)
"""

from repro.fermions import (
    AsqtadDirac,
    CloverDirac,
    DomainWallDirac,
    NaiveStaggeredDirac,
    OperatorCost,
    WilsonDirac,
    operator_cost,
)
from repro.hmc import HMC, WilsonGaugeAction
from repro.host import Qcsh, Qdaemon
from repro.lattice import GaugeField, LatticeGeometry
from repro.machine import (
    ASICConfig,
    MachineConfig,
    PRESETS,
    Partition,
    QCDOCMachine,
    TorusTopology,
)
from repro.parallel import PhysicsMapping, solve_on_machine
from repro.perfmodel import DiracPerfModel, HardScalingModel, PackagingModel
from repro.solvers import SolveResult, bicgstab, cg, cgne

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine
    "ASICConfig",
    "MachineConfig",
    "PRESETS",
    "TorusTopology",
    "Partition",
    "QCDOCMachine",
    "Qdaemon",
    "Qcsh",
    # lattice + fermions
    "LatticeGeometry",
    "GaugeField",
    "WilsonDirac",
    "CloverDirac",
    "NaiveStaggeredDirac",
    "AsqtadDirac",
    "DomainWallDirac",
    "OperatorCost",
    "operator_cost",
    # solvers + hmc
    "cg",
    "cgne",
    "bicgstab",
    "SolveResult",
    "HMC",
    "WilsonGaugeAction",
    # parallel
    "PhysicsMapping",
    "solve_on_machine",
    # evaluation
    "DiracPerfModel",
    "HardScalingModel",
    "PackagingModel",
]
