PY      ?= python
PYTEST  = PYTHONPATH=src $(PY) -m pytest

.PHONY: test protocol overlap bench bench-smoke verify verify-telemetry \
        lint verify-sanitizer verify-faults verify-sharding verify-hotpath \
        verify-service verify-flow

## tier-1: the full unit/integration/property suite
test:
	$(PYTEST) -x -q

## serial-link protocol regressions at word_batch=1 (window, idle
## receive, go-back-N under fault injection)
protocol:
	$(PYTEST) -m protocol -q

## bit-exactness of the overlapped two-phase Dirac pipeline
overlap:
	$(PYTEST) tests/test_overlap_bitexact.py -q

## paper-claim benchmarks (E1..E15)
bench:
	$(PYTEST) benchmarks -q

## quick dslash timing smoke: half-spinor comms vs the full-spinor seed
## path + memoised vs rebuilt gather tables; writes BENCH_dslash.json,
## then the E18 dynamical-HMC chaos run (fault/remap/resume), which
## writes BENCH_hmc.json
bench-smoke:
	$(PYTEST) benchmarks/bench_dslash_smoke.py -m perf -q -s
	$(PYTEST) benchmarks/bench_e18_dynamical_hmc.py -m perf -q -s

## telemetry invariants: counter conservation, trace-schema registry,
## fault-injection accounting, measured-vs-model crosscheck
verify-telemetry:
	$(PYTEST) -m telemetry -q

## reprolint (the in-tree simulator-aware linter): full rule set
## including the whole-program REPRO5xx flow family over src/, plus
## API-hygiene-only scans of tests/ and benchmarks/ (fixture code there
## would trip the simulator-semantics rules on purpose).  ruff and mypy
## run when installed (skipped gracefully — the container does not bake
## them in).
lint:
	PYTHONPATH=src $(PY) -m repro.analysis src --flow
	PYTHONPATH=src $(PY) -m repro.analysis tests --hygiene --no-allowlist
	PYTHONPATH=src $(PY) -m repro.analysis benchmarks --hygiene --no-allowlist
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/analysis src/repro/telemetry src/repro/service src/repro/sim; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi

## whole-program flow analysis + SCU protocol state-machine verifier:
## the REPRO5xx interprocedural rules over src/, the bounded-model
## protocol enumeration against the production scu.py, and their suites
verify-flow:
	PYTHONPATH=src $(PY) -m repro.analysis src --flow
	PYTHONPATH=src $(PY) -m repro.analysis --protocol
	$(PYTEST) tests/test_flow_analysis.py tests/test_protocol_verifier.py -q

## halo-buffer race sanitizer: clean-pipeline run + seeded-race detection
verify-sanitizer:
	$(PYTEST) tests/test_race_sanitizer.py -q

## hard-fault tolerance: watchdog detection, partition abort, remap,
## bit-identical checkpoint resume (kill a cable / a node mid-CG)
verify-faults:
	$(PYTEST) -m faults -q

## sharded event engine: shards=1 vs N bit-identity across all fermion
## actions, window-protocol edge cases, 64-node cross-shard conservation
verify-sharding:
	$(PYTEST) -m sharding -q

## hot path: face-batch/replay bit-identity (protocol equivalence,
## fault recovery, CG under shards) + the zero-allocation steady state
verify-hotpath:
	$(PYTEST) tests/test_replay_hotpath.py tests/test_hotpath_alloc.py -q

## machine-as-a-service: scheduler property suite, chaos campaigns,
## sub-torus remap unit tests, quarantine-atomicity regressions
verify-service:
	$(PYTEST) -m service -q

## distributed dynamical-fermion HMC: serial-vs-machine bit-identity,
## force-kernel crosscheck/sanitizer runs, checkpoint/rebind resume
verify-hmc:
	$(PYTEST) -m hmc -q

## what CI gates a merge on: tier-1 + overlap bit-exactness + static
## analysis (incl. whole-program flow + the protocol verifier) + the
## race sanitizer + the hard-fault + sharding + hot-path + HMC suites
verify: test overlap lint verify-flow verify-sanitizer verify-faults verify-sharding verify-hotpath verify-service verify-hmc
	@echo "verify: tier-1 + overlap + lint + flow/protocol + sanitizer + faults + sharding + hotpath + service + hmc green"
