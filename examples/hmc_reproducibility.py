#!/usr/bin/env python
"""The paper's verification ritual: evolve, re-run, compare every bit.

Paper section 4: "A five day simulation was completed on a 128 node
machine in December, 2003 and then redone, with the requirement that the
resulting QCD configuration be identical in all bits.  This was found to
be the case.  No hardware errors on the SCU links were reported."

This example performs the same ritual at laptop scale:

1. a pure-gauge HMC evolution, run twice from the same seed — the final
   configurations must agree in all bits;
2. a machine-distributed CG solve, run twice on freshly built simulated
   machines — solutions, residual histories and simulated wall-clock must
   agree in all bits;
3. the end-of-run SCU link-checksum audit — the hardware's own "no
   erroneous data was exchanged" confirmation.

Run:  python examples/hmc_reproducibility.py
"""

import numpy as np

from repro import HMC, GaugeField, LatticeGeometry, MachineConfig, QCDOCMachine
from repro.parallel import solve_on_machine
from repro.util import Table, rng_stream


def evolve(seed: int):
    geom = LatticeGeometry((4, 4, 4, 4))
    hmc = HMC(GaugeField.unit(geom), beta=5.6, seed=seed, n_steps=10, dt=0.05)
    hmc.run(8)
    return hmc


def distributed_solve():
    machine = QCDOCMachine(MachineConfig(dims=(2, 2, 2, 1, 1, 1)), word_batch=4096)
    machine.bring_up()
    partition = machine.partition(groups=[(0,), (1,), (2,), (3,)])
    rng = rng_stream(128, "verification-problem")
    geom = LatticeGeometry((4, 4, 4, 2))
    gauge = GaugeField.weak(geom, rng, eps=0.3)
    b = rng.standard_normal((geom.volume, 4, 3)) + 0j
    res = solve_on_machine(
        machine, partition, gauge, b, mass=0.3, tol=1e-8, max_time=1e9
    )
    return res


def main() -> None:
    # -- 1. HMC evolution, twice ------------------------------------------------
    first, second = evolve(42), evolve(42)
    hmc_identical = first.fingerprint() == second.fingerprint()
    dh_identical = [t.delta_h for t in first.history] == [
        t.delta_h for t in second.history
    ]

    t = Table(["check", "result"], title="HMC evolution re-run (seed 42)")
    t.add_row(["trajectories", len(first.history)])
    t.add_row(["acceptance", f"{first.acceptance_rate:.0%}"])
    t.add_row(["final plaquette", f"{first.history[-1].plaquette:.6f}"])
    t.add_row(["configuration identical in all bits", hmc_identical])
    t.add_row(["dH history identical in all bits", dh_identical])
    print(t.render())

    # -- 2. distributed solve, twice ---------------------------------------------
    r1, r2 = distributed_solve(), distributed_solve()
    t2 = Table(["check", "result"], title="\nmachine-distributed CG re-run (8 nodes)")
    t2.add_row(["iterations", r1.iterations])
    t2.add_row(["solution identical in all bits", r1.x.tobytes() == r2.x.tobytes()])
    t2.add_row(["residual history identical", r1.residuals == r2.residuals])
    t2.add_row(
        ["simulated machine time identical", r1.machine_time == r2.machine_time]
    )
    # -- 3. the hardware's own audit -------------------------------------------
    t2.add_row(
        ["SCU link checksum audit", "clean" if not r1.checksum_mismatches else "FAIL"]
    )
    print(t2.render())

    assert hmc_identical and dh_identical
    assert r1.x.tobytes() == r2.x.tobytes()
    assert not r1.checksum_mismatches
    print("\nhmc_reproducibility OK — identical in all bits")


if __name__ == "__main__":
    main()
