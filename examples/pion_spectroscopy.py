#!/usr/bin/env python
"""End-to-end physics: generate configurations, measure the pion.

The full QCD workflow QCDOC was built to run, at laptop scale:

1. **generate** — thermalise a quenched gauge ensemble with the
   Cabibbo-Marinari heatbath (+ overrelaxation);
2. **save/load** — round-trip a configuration through the checksummed
   gauge-file format (the NFS-to-host-disk path of paper section 3.2);
3. **measure** — 12 CG solves per configuration for the point-source
   quark propagator (the solver workload that "dominates the
   calculational time"), then the pion two-point function and its
   effective mass.

Run:  python examples/pion_spectroscopy.py
"""

import numpy as np

from repro import GaugeField, LatticeGeometry, WilsonDirac
from repro.fermions.propagator import (
    effective_mass,
    pion_correlator,
    point_propagator,
)
from repro.hmc.heatbath import Heatbath
from repro.lattice.io import gauge_from_bytes, gauge_to_bytes
from repro.util import Table, rng_stream


def main() -> None:
    geom = LatticeGeometry((4, 4, 4, 8))
    beta, mass = 5.7, 0.35

    # -- 1. generate ------------------------------------------------------------
    hb = Heatbath(GaugeField.hot(geom, rng_stream(17, "ensemble")), beta=beta, seed=17)
    print(f"thermalising {geom.shape} at beta={beta} ...")
    hb.run(12, or_per_hb=1)
    print(f"plaquette after thermalisation: {hb.gauge.plaquette():.5f}")

    # -- 2. configuration round trip ----------------------------------------------
    blob = gauge_to_bytes(hb.gauge)
    gauge = gauge_from_bytes(blob)  # checksum-verified reload
    print(f"configuration file: {len(blob)/1e6:.2f} MB, checksum verified")

    # -- 3. measure ------------------------------------------------------------
    d = WilsonDirac(gauge, mass=mass)
    iterations = []
    prop = point_propagator(
        d, tol=1e-8, callback=lambda c, i: iterations.append(i)
    )
    print(
        f"propagator: 12 CG solves, {min(iterations)}-{max(iterations)} "
        f"iterations each"
    )
    corr = pion_correlator(prop, geom)
    meff = effective_mass(corr)

    t = Table(
        ["t", "C_pi(t)", "m_eff(t)"],
        title=f"\npion correlator (beta={beta}, m_q={mass})",
    )
    for time in range(len(corr)):
        t.add_row(
            [
                time,
                f"{corr[time]:.6e}",
                f"{meff[time]:.4f}" if time < len(meff) else "-",
            ]
        )
    print(t.render())

    nt = len(corr)
    assert np.all(corr > 0), "pseudoscalar correlator must be positive"
    assert np.allclose(corr[1:], corr[1:][::-1], rtol=0.3), "cosh symmetry"
    mid = nt // 2
    m_pi = float(np.arccosh(corr[mid - 1] / corr[mid]))
    print(f"\npion (cosh) mass estimate near midpoint: a m_pi = {m_pi:.3f}")
    print("pion_spectroscopy OK")


if __name__ == "__main__":
    main()
