#!/usr/bin/env python
"""The machine room: configurations, dollars, watts and floor space.

Regenerates the paper's machine-level tables from the models: the family
of machines (64-node motherboard through the 12,288-node production
systems), the 4096-node bill of materials, price/performance versus clock
speed, and the packaging/power roll-up.

Run:  python examples/machine_room.py
"""

from repro import PRESETS, DiracPerfModel, PackagingModel
from repro.perfmodel.cost import (
    QCDOC_4096_BOM,
    price_performance,
    price_performance_table,
    volume_scaled_bom,
)
from repro.util import Table, fmt_rate, fmt_si
from repro.util.units import MHZ


def main() -> None:
    # -- the machine family --------------------------------------------------
    t = Table(
        ["machine", "dims", "nodes", "peak", "power"],
        title="QCDOC machine family (paper sections 2.4 and 4)",
    )
    for name, cfg in PRESETS.items():
        t.add_row(
            [
                name,
                "x".join(map(str, cfg.dims)),
                cfg.n_nodes,
                fmt_si(cfg.peak_flops) + "flops",
                f"{cfg.power_watts()/1e3:.1f} kW",
            ]
        )
    print(t.render())

    # -- the published node parameters ------------------------------------------
    asic = PRESETS["rack-1024"].asic
    t0 = Table(["parameter", "value"], title="\nper-node parameters (500 MHz)")
    t0.add_row(["peak", fmt_si(asic.peak_flops) + "flops"])
    t0.add_row(["EDRAM", f"4 MB @ {fmt_rate(asic.edram_bandwidth)}"])
    t0.add_row(["DDR", fmt_rate(asic.ddr_bandwidth)])
    t0.add_row(["links", f"24 x {fmt_rate(asic.link_bandwidth)} = "
                + fmt_rate(asic.total_link_bandwidth)])
    t0.add_row(["neighbour latency", f"{asic.neighbour_latency*1e9:.0f} ns"])
    print(t0.render())

    # -- the 4096-node bill of materials ---------------------------------------
    t2 = Table(["item", "qty", "dollars"], title="\n4096-node machine cost (paper section 4)")
    for line in QCDOC_4096_BOM.lines:
        t2.add_row([line.item, line.quantity, f"${line.total_dollars:,.2f}"])
    audit = QCDOC_4096_BOM.audit()
    t2.add_row(["component sum", "", f"${audit['component_sum']:,.2f}"])
    t2.add_row(["paper's printed total", "", f"${audit['paper_total']:,.2f}"])
    t2.add_row(["prorated R&D", "", f"${QCDOC_4096_BOM.rnd_prorated_dollars:,.2f}"])
    t2.add_row(["grand total", "", f"${audit['with_rnd']:,.2f}"])
    print(t2.render())

    # -- price/performance vs clock ---------------------------------------------
    t3 = Table(
        ["clock", "sustained (45%)", "$/sustained Mflops", "paper"],
        title="\nprice/performance (4096 nodes)",
    )
    paper = {360: "$1.29", 420: "$1.10", 450: "$1.03"}
    for clock, price in price_performance_table():
        mhz = int(clock / MHZ)
        sustained = 4096 * 2 * clock * 0.45
        t3.add_row(
            [f"{mhz} MHz", fmt_si(sustained) + "flops", f"${price:.2f}", paper[mhz]]
        )
    bom12k = volume_scaled_bom(12288)
    p12k = price_performance(450 * MHZ, n_nodes=12288, total_dollars=bom12k.total_with_rnd)
    t3.add_row(["450 MHz, 12288 nodes (volume discount)", "", f"${p12k:.2f}", "~$1 target"])
    print(t3.render())

    # -- packaging / power / floor space ---------------------------------------
    pack = PackagingModel()
    t4 = Table(
        ["nodes", "racks", "power", "footprint", "peak"],
        title="\npackaging roll-up (water-cooled, stacked racks)",
    )
    for n in (64, 1024, 4096, 10240, 12288):
        b = pack.breakdown(n)
        t4.add_row(
            [
                n,
                b["racks"],
                f"{pack.power_watts(n)/1e3:.1f} kW",
                f"{pack.footprint_sqft(n):.0f} sqft",
                fmt_si(n * asic.peak_flops) + "flops",
            ]
        )
    print(t4.render())
    print(
        f"\none rack: {pack.rack_peak_flops()/1e12:.2f} Tflops peak at "
        f"{pack.rack_power_watts()/1e3:.1f} kW (paper: 1.0 Tflops, <10 kW)"
    )

    # -- what it sustains on physics -------------------------------------------
    model = DiracPerfModel()
    t5 = Table(
        ["operator", "model efficiency", "paper"],
        title="\nsustained CG efficiency, 4^4 local volume, double precision",
    )
    for op, paper_val in (("wilson", "40%"), ("asqtad", "38%"), ("clover", "46.5%")):
        t5.add_row([op, f"{100*model.efficiency(op):.1f}%", paper_val])
    print(t5.render())
    print("\nmachine_room OK")


if __name__ == "__main__":
    main()
