#!/usr/bin/env python
"""Quickstart: boot a small QCDOC, run a distributed Dirac solve on it.

This walks the whole stack in one sitting:

1. build an 8-node machine (a slice of one motherboard's 2^6 hypercube);
2. boot it the way the paper does — ~100 Ethernet/JTAG UDP packets per
   node for the boot kernel, ~100 more for the run kernel, then mesh
   training and a partition-interrupt check (no PROMs anywhere);
3. allocate a 4-dimensional logical partition through the qdaemon;
4. solve the Wilson-Dirac equation with CG, halos moving through the
   simulated SCU DMA engines and inner products through the SCU
   global-sum tree;
5. verify the answer against the serial solver and audit the link
   checksums (the paper's end-of-run confirmation).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GaugeField,
    LatticeGeometry,
    MachineConfig,
    QCDOCMachine,
    Qdaemon,
    WilsonDirac,
)
from repro.parallel import solve_on_machine
from repro.util import Table, fmt_time, rng_stream


def main() -> None:
    # -- 1. the machine ------------------------------------------------------
    machine = QCDOCMachine(MachineConfig(dims=(2, 2, 2, 1, 1, 1)), word_batch=4096)
    print(f"machine: {machine}")

    # -- 2. boot over Ethernet/JTAG ------------------------------------------
    daemon = Qdaemon(machine)
    booted = daemon.boot()
    a0 = daemon.agents[0].report
    print(
        f"booted {sum(booted.values())}/{len(booted)} nodes "
        f"({a0.jtag_packets} JTAG packets + {a0.run_kernel_packets} loader "
        f"packets per node, machine size {daemon.machine_size})"
    )

    # -- 3. a user partition ---------------------------------------------------
    alloc = daemon.allocate("quickstart", groups=[(0,), (1,), (2,), (3,)])
    partition = alloc.partition
    print(f"partition: logical {'x'.join(map(str, partition.logical_dims))}")

    # -- 4. physics: Wilson CG on the machine -----------------------------------
    geom = LatticeGeometry((4, 4, 4, 2))
    rng = rng_stream(2004, "quickstart")
    gauge = GaugeField.weak(geom, rng, eps=0.3)
    b = rng.standard_normal((geom.volume, 4, 3)) + 1j * rng.standard_normal(
        (geom.volume, 4, 3)
    )
    result = solve_on_machine(
        machine, partition, gauge, b, mass=0.3, tol=1e-8, max_time=1e9
    )

    # -- 5. verify -------------------------------------------------------------
    d = WilsonDirac(gauge, mass=0.3)
    true_resid = np.linalg.norm(d.apply(result.x) - b) / np.linalg.norm(b)

    t = Table(["quantity", "value"], title="\ndistributed Wilson CG on 8 nodes")
    t.add_row(["lattice", "4x4x4x2 over 2x2x2x1 nodes"])
    t.add_row(["converged", result.converged])
    t.add_row(["iterations", result.iterations])
    t.add_row(["true residual |Dx-b|/|b|", f"{true_resid:.2e}"])
    t.add_row(["simulated machine time", fmt_time(result.machine_time)])
    t.add_row(["flops charged", f"{result.flops:.3g}"])
    t.add_row(["link checksum audit", "clean" if not result.checksum_mismatches else "FAIL"])
    print(t.render())

    assert result.converged and true_resid < 1e-7
    assert not result.checksum_mismatches
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
