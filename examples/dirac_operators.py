#!/usr/bin/env python
"""Tour of the four Dirac discretisations QCDOC was benchmarked on.

Paper section 4 benchmarks naive Wilson, ASQTAD staggered and clover-
improved Wilson, and names domain-wall fermions as the prime production
target.  This example exercises all four on one gauge background:

* structural invariants (gamma5-hermiticity, staggered anti-hermiticity);
* CG solves of each operator's normal equations, with iteration counts;
* the per-site cost sheets that drive the machine's efficiency ranking.

Run:  python examples/dirac_operators.py
"""

import numpy as np

from repro import (
    AsqtadDirac,
    CloverDirac,
    DomainWallDirac,
    GaugeField,
    LatticeGeometry,
    WilsonDirac,
    cg,
    cgne,
    operator_cost,
)
from repro.util import Table, rng_stream


def main() -> None:
    geom = LatticeGeometry((4, 4, 4, 4))
    rng = rng_stream(7, "operators-example")
    gauge = GaugeField.weak(geom, rng, eps=0.35)
    print(f"background: {gauge!r}, plaquette = {gauge.plaquette():.5f}\n")

    wilson = WilsonDirac(gauge, mass=0.3)
    clover = CloverDirac(gauge, mass=0.3, c_sw=1.0)
    asqtad = AsqtadDirac(gauge, mass=0.3)
    dwf = DomainWallDirac(gauge, Ls=8, M5=1.8, mf=0.1)

    # -- invariants ------------------------------------------------------------
    psi = rng.standard_normal((geom.volume, 4, 3)) + 1j * rng.standard_normal(
        (geom.volume, 4, 3)
    )
    phi = rng.standard_normal((geom.volume, 4, 3)) + 0j
    g5h = abs(
        np.vdot(phi, wilson.apply(psi)) - np.vdot(wilson.apply_dagger(phi), psi)
    )
    print(f"Wilson gamma5-hermiticity defect: {g5h:.2e}")
    chi = rng.standard_normal((geom.volume, 3)) + 0j
    xi = rng.standard_normal((geom.volume, 3)) + 0j
    anti = abs(np.vdot(xi, asqtad.hopping(chi)) + np.vdot(asqtad.hopping(xi), chi))
    print(f"ASQTAD hopping anti-hermiticity defect: {anti:.2e}")
    print(f"clover term hermitian: {clover.clover_is_hermitian()}\n")

    # -- solves -------------------------------------------------------------
    t = Table(
        ["operator", "dof/site", "CG iters", "true residual"],
        title="CG on the normal equations (tol 1e-8)",
    )
    res_w = cgne(wilson.apply, wilson.apply_dagger, psi, tol=1e-8)
    t.add_row(["wilson", 24, res_w.iterations, f"{res_w.true_residual:.1e}"])
    res_c = cgne(clover.apply, clover.apply_dagger, psi, tol=1e-8)
    t.add_row(["clover", 24, res_c.iterations, f"{res_c.true_residual:.1e}"])
    res_a = cg(asqtad.normal, asqtad.apply_dagger(chi), tol=1e-8)
    t.add_row(["asqtad", 6, res_a.iterations, f"{res_a.true_residual:.1e}"])
    src5 = rng.standard_normal(dwf.field_shape) + 0j
    res_d = cgne(dwf.apply, dwf.apply_dagger, src5, tol=1e-7, maxiter=4000)
    t.add_row(["dwf (Ls=8)", "24 x 8", res_d.iterations, f"{res_d.true_residual:.1e}"])
    print(t.render())

    # -- why the machine ranks them the way it does -----------------------------
    t2 = Table(
        ["operator", "flops/site", "words/site", "flops/byte", "halo B/site"],
        title="\nper-site cost sheets (drive the paper's 46.5% > 40% > 38%)",
    )
    for name in ("clover", "wilson", "asqtad"):
        c = operator_cost(name)
        t2.add_row(
            [
                name,
                c.flops_per_site,
                c.words_per_site,
                f"{c.arithmetic_intensity:.2f}",
                c.comm_bytes_per_face_site,
            ]
        )
    print(t2.render())

    assert res_w.converged and res_c.converged and res_a.converged and res_d.converged
    print("\ndirac_operators OK")


if __name__ == "__main__":
    main()
